//! Rumor-pattern monitoring on a social message stream (the paper's other
//! motivating scenario: "message transmission on a social network can be
//! modeled as a dynamic graph, and CSM can be used to detect the spread of
//! rumors").
//!
//! Uses [`gcsm::MultiPipeline`] to register *all connected size-4 motifs*
//! as concurrent queries over one streaming social graph — the same
//! workload family as the paper's Fig. 11 — sharing the per-batch graph
//! update and reorganisation across queries. Counts are cross-checked
//! against single-query CPU pipelines.
//!
//! ```text
//! cargo run --release -p gcsm --example rumor_motifs
//! ```

use gcsm::prelude::*;
use gcsm_datagen::social::{generate_social, SocialConfig};
use gcsm_datagen::{StreamConfig, UpdateStream};
use gcsm_pattern::connected_motifs;

fn main() {
    // A social graph and a message stream derived from it.
    let graph = generate_social(&SocialConfig::new(13, 6, 7));
    let stream = UpdateStream::generate(&graph, StreamConfig::Fraction(0.05), 99);
    let batches: Vec<Vec<_>> = stream.batches(256).take(3).map(|b| b.to_vec()).collect();
    println!(
        "social graph: {} users, {} ties; streaming {} batches of ≤256 events",
        stream.initial.num_vertices(),
        stream.initial.num_edges(),
        batches.len()
    );

    // Unique-subgraph counting (symmetry breaking on), as in Fig. 11.
    let mut cfg = EngineConfig::default();
    cfg.plan.symmetry_break = true;

    let motifs = connected_motifs(4);
    println!("tracking all {} connected size-4 motifs via MultiPipeline\n", motifs.len());

    // One GCSM engine per motif, all over one shared dynamic graph.
    let mut multi = MultiPipeline::new(stream.initial.clone());
    for m in &motifs {
        multi = multi.register(m.clone(), Box::new(GcsmEngine::new(cfg.clone())));
    }

    // Reference: independent CPU pipelines per motif.
    let mut refs: Vec<(Pipeline, CpuWcojEngine)> = motifs
        .iter()
        .map(|m| {
            (Pipeline::new(stream.initial.clone(), m.clone()), CpuWcojEngine::new(cfg.clone()))
        })
        .collect();

    let mut header = String::from("batch");
    for m in &motifs {
        header.push_str(&format!("  {:>8}", m.name()));
    }
    println!("{header}   (Δ unique subgraphs per motif)");

    for (bi, batch) in batches.iter().enumerate() {
        let res = multi.process_batch(batch);
        let mut row = format!("{bi:>5}");
        for (mi, motif) in motifs.iter().enumerate() {
            let delta = res.get(motif.name()).expect("registered").matches;
            let (p, e) = &mut refs[mi];
            let check = p.process_batch(e, batch).matches;
            assert_eq!(delta, check, "multi vs single diverge on {}", motif.name());
            row.push_str(&format!("  {delta:>8}"));
        }
        println!("{row}");
    }
    println!("\ncounts verified against independent CPU pipelines on every batch");
}
