//! Fraud detection on a transaction stream (the paper's motivating
//! scenario: "financial transactions among bank accounts are a dynamic
//! graph, and CSM can be used to monitor suspected transaction patterns
//! such as money laundering").
//!
//! We model three account types — retail (label 0), merchant (1), and
//! offshore (2) — and watch for a *layering* pattern: a retail account, a
//! merchant, and two offshore accounts forming a dense 4-clique-minus-one
//! of money movement. Every time a transaction batch completes the
//! pattern, the example prints the concrete accounts involved.
//!
//! ```text
//! cargo run --release -p gcsm --example fraud_detection
//! ```

use gcsm_graph::{CsrBuilder, DynamicGraph, EdgeUpdate};
use gcsm_matcher::{collect_incremental, DriverOptions, DynSource};
use gcsm_pattern::QueryGraph;
use rand::{rngs::SmallRng, Rng, SeedableRng};

const RETAIL: u16 = 0;
const MERCHANT: u16 = 1;
const OFFSHORE: u16 = 2;

fn main() {
    let n_accounts = 3000usize;
    let mut rng = SmallRng::seed_from_u64(2024);

    // Account labels: 80% retail, 15% merchant, 5% offshore.
    let labels: Vec<u16> = (0..n_accounts)
        .map(|_| {
            let r: f64 = rng.gen();
            if r < 0.80 {
                RETAIL
            } else if r < 0.95 {
                MERCHANT
            } else {
                OFFSHORE
            }
        })
        .collect();

    // Historical transaction graph: random background activity.
    let mut b = CsrBuilder::new(n_accounts);
    for _ in 0..3 * n_accounts {
        let x = rng.gen_range(0..n_accounts as u32);
        let y = rng.gen_range(0..n_accounts as u32);
        b.add_edge(x, y);
    }
    b.set_labels(labels.clone());
    let g0 = b.build();

    // The suspicious pattern: retail → merchant, both wired to two
    // offshore accounts that also transact with each other (a kite with
    // labels — the paper's Fig. 1 query shape, labeled).
    let pattern = QueryGraph::with_labels(
        "layering",
        4,
        &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)],
        vec![RETAIL, OFFSHORE, OFFSHORE, MERCHANT],
    );

    let mut graph = DynamicGraph::from_csr(&g0);
    let opts = DriverOptions::default();
    let mut alerts = 0usize;

    println!("monitoring {} accounts for '{}' patterns…", n_accounts, pattern.name());
    for day in 0..10 {
        // A day's transactions: mostly noise, occasionally a planted ring.
        let mut batch = Vec::new();
        for _ in 0..200 {
            let x = rng.gen_range(0..n_accounts as u32);
            let y = rng.gen_range(0..n_accounts as u32);
            if x != y {
                batch.push(EdgeUpdate::insert(x, y));
            }
        }
        if day % 3 == 2 {
            // Plant a layering ring: find labeled accounts and wire them.
            let pick = |want: u16, rng: &mut SmallRng| loop {
                let v = rng.gen_range(0..n_accounts as u32);
                if labels[v as usize] == want {
                    return v;
                }
            };
            let (r, m) = (pick(RETAIL, &mut rng), pick(MERCHANT, &mut rng));
            let (o1, o2) = (pick(OFFSHORE, &mut rng), pick(OFFSHORE, &mut rng));
            if o1 != o2 {
                for (a, c) in [(r, o1), (r, o2), (o1, o2), (o1, m), (o2, m)] {
                    batch.push(EdgeUpdate::insert(a, c));
                }
            }
        }

        let summary = graph.apply_batch(&batch);
        let src = DynSource::new(&graph);
        let matches = collect_incremental(&src, &pattern, &summary.applied, &opts);
        graph.reorganize();

        let new_rings: Vec<_> = matches.iter().filter(|(_, sign)| *sign > 0).collect();
        if !new_rings.is_empty() {
            alerts += new_rings.len();
            println!(
                "day {day}: ALERT — {} new layering embedding(s), e.g. accounts {:?}",
                new_rings.len(),
                new_rings[0].0
            );
        } else {
            println!("day {day}: clean ({} transactions)", summary.len());
        }
    }
    println!("total alerts: {alerts}");
    assert!(alerts > 0, "planted rings must be detected");
}
