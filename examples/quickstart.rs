//! Quickstart: continuous subgraph matching in a dozen lines.
//!
//! Builds a small graph, registers a triangle query, streams two update
//! batches through the GCSM engine, and prints the incremental match
//! counts plus the engine's data-movement statistics.
//!
//! ```text
//! cargo run --release -p gcsm --example quickstart
//! ```

use gcsm::prelude::*;
use gcsm_graph::{CsrGraph, EdgeUpdate};
use gcsm_pattern::queries;

fn main() {
    // The initial graph G_0: a path with one triangle.
    //      0 - 1 - 2 - 3 - 4     plus edge (0, 2) closing triangle {0,1,2}.
    let g0 = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 2)]);

    // The query: a triangle. (`queries::all()` has the paper's Q1–Q6.)
    let query = queries::triangle();

    // An engine + pipeline. `EngineConfig` controls the simulated GPU
    // (cache budget, cost model) and the matching options.
    let mut engine = GcsmEngine::new(EngineConfig::default());
    let mut pipeline = Pipeline::new(g0, query);

    // Batch 1: close a second triangle {2,3,4} and destroy the first.
    let batch1 = vec![EdgeUpdate::insert(2, 4), EdgeUpdate::delete(0, 1)];
    let r1 = pipeline.process_batch(&mut engine, &batch1);
    println!("batch 1: ΔM = {:+} embeddings", r1.matches);
    println!("         simulated time  {:.3} ms", r1.total_ms());
    println!("         bytes from CPU  {}", r1.cpu_access_bytes);

    // Batch 2: bring the first triangle back.
    let batch2 = vec![EdgeUpdate::insert(0, 1)];
    let r2 = pipeline.process_batch(&mut engine, &batch2);
    println!("batch 2: ΔM = {:+} embeddings", r2.matches);

    // A triangle has |Aut| = 6, so each subgraph counts 6 embeddings.
    assert_eq!(r1.matches, 0); // one triangle destroyed, one created
    assert_eq!(r2.matches, 6); // triangle {0,1,2} restored
    println!("ok: counts match the expected incremental semantics");
}
