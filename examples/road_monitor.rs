//! Road-network monitoring: incremental pattern counting under road
//! closures and openings (the paper's flat-degree regime, Fig. 11).
//!
//! Streams closures/openings over a road lattice and tracks triangle
//! ("detour cell") counts incrementally, comparing the data movement of
//! the zero-copy baseline against GCSM's walk-guided cache — on a graph
//! with *no* degree skew, where caching must win purely on batch locality.
//!
//! ```text
//! cargo run --release -p gcsm --example road_monitor
//! ```

use gcsm::prelude::*;
use gcsm_datagen::road::{generate, RoadConfig};
use gcsm_datagen::{StreamConfig, UpdateStream};
use gcsm_pattern::queries;

fn main() {
    let road = generate(&RoadConfig::with_vertices(40_000, 11));
    println!(
        "road network: {} junctions, {} segments, max degree {}",
        road.num_vertices(),
        road.num_edges(),
        road.max_degree()
    );

    let stream = UpdateStream::generate(&road, StreamConfig::Fraction(0.10), 5);
    let batches: Vec<Vec<_>> = stream.batches(512).take(4).map(|b| b.to_vec()).collect();

    let mut cfg = EngineConfig::default();
    cfg.plan.symmetry_break = true; // count each detour cell once

    let query = queries::triangle();
    let mut gcsm = GcsmEngine::new(cfg.clone());
    let mut zp = ZeroCopyEngine::new(cfg.clone());
    let mut p_gcsm = Pipeline::new(stream.initial.clone(), query.clone());
    let mut p_zp = Pipeline::new(stream.initial.clone(), query.clone());

    println!("\nbatch  Δcells   GCSM ms     ZP ms  GCSM cpu-read  ZP cpu-read  hit%");
    let mut total_cells = 0i64;
    for (i, batch) in batches.iter().enumerate() {
        let rg = p_gcsm.process_batch(&mut gcsm, batch);
        let rz = p_zp.process_batch(&mut zp, batch);
        assert_eq!(rg.matches, rz.matches, "engines disagree");
        total_cells += rg.matches;
        println!(
            "{:>5}  {:>6}  {:>8.3}  {:>8.3}  {:>13}  {:>11}  {:>4.0}",
            i,
            rg.matches,
            rg.total_ms(),
            rz.total_ms(),
            rg.cpu_access_bytes,
            rz.cpu_access_bytes,
            rg.cache_hit_rate * 100.0
        );
    }
    println!("\nnet change in detour cells: {total_cells:+}");
    println!("even with flat degrees, the walk-guided cache cuts CPU reads");
}
