//! What-if hardware analysis: how does the CPU–GPU interconnect change the
//! GCSM-vs-zero-copy trade-off?
//!
//! The paper's platform attaches the RTX3090 over PCIe 3.0; it notes NVLink
//! as the alternative. Since GCSM's entire advantage is *avoided link
//! traffic*, a faster link should erode it — this example sweeps the
//! simulated interconnect (PCIe 3.0 → PCIe 4.0 → NVLink-class) and reports
//! the speedup GCSM retains over the zero-copy baseline.
//!
//! ```text
//! cargo run --release -p gcsm --example what_if_hardware
//! ```

use gcsm::prelude::*;
use gcsm_datagen::social::{generate_social, SocialConfig};
use gcsm_datagen::{StreamConfig, UpdateStream};
use gcsm_gpusim::GpuConfig;
use gcsm_pattern::queries;

fn main() {
    let graph = generate_social(&SocialConfig::new(16, 6, 3));
    let stream = UpdateStream::generate(&graph, StreamConfig::Count(4096), 11);
    let batches: Vec<Vec<_>> = stream.batches(1024).take(2).map(|b| b.to_vec()).collect();
    let budget = stream.initial.adjacency_bytes() / 8;
    println!(
        "graph: {} vertices, {} edges | query {} | cache budget {} KiB\n",
        stream.initial.num_vertices(),
        stream.initial.num_edges(),
        queries::q2().name(),
        budget / 1024
    );

    println!("{:<12} {:>10} {:>10} {:>14}", "link", "ZP ms", "GCSM ms", "GCSM speedup");
    let links: [(&str, GpuConfig); 3] = [
        ("PCIe 3.0", GpuConfig::rtx3090_scaled(budget)),
        ("PCIe 4.0", GpuConfig::pcie4_scaled(budget)),
        ("NVLink", GpuConfig::nvlink_scaled(budget)),
    ];
    let mut speedups = Vec::new();
    for (name, gpu) in links {
        let cfg = EngineConfig { gpu, ..EngineConfig::default() };
        let run = |mut engine: Box<dyn Engine>| -> f64 {
            let mut p = Pipeline::new(stream.initial.clone(), queries::q2());
            batches.iter().map(|b| p.process_batch(engine.as_mut(), b).total_ms()).sum::<f64>()
                / batches.len() as f64
        };
        let zp = run(Box::new(ZeroCopyEngine::new(cfg.clone())));
        let gc = run(Box::new(GcsmEngine::new(cfg.clone())));
        println!("{:<12} {:>10.3} {:>10.3} {:>13.2}x", name, zp, gc, zp / gc);
        speedups.push(zp / gc);
    }
    println!(
        "\nas the link gets faster, avoided traffic is worth less: {:.2}x → {:.2}x → {:.2}x",
        speedups[0], speedups[1], speedups[2]
    );
    assert!(speedups[0] > speedups[2], "GCSM's advantage must shrink on faster interconnects");
}
