//! Plan explanation: render a [`MatchPlan`] as the nested-loop pseudocode
//! of the paper's Fig. 2.
//!
//! Useful for debugging matching orders and for verifying by eye that the
//! view selection follows Eq. (1) — the rendered code for the kite's delta
//! plans reproduces Fig. 2b–f of the paper (see tests).

use crate::plan::{MatchPlan, ViewSel};
use std::fmt::Write;

/// Render the plan as nested-loop pseudocode in the paper's notation:
/// `x0, x1, …` are the data vertices in binding order; `N` and `N'` are
/// the old/new neighbor views.
pub fn explain_plan(plan: &MatchPlan) -> String {
    let mut out = String::new();
    let seed_src = match plan.delta_index {
        Some(i) => format!("ΔE  // ΔM_{} seeds on query edge {}", i + 1, i),
        None => "E".to_string(),
    };
    let u = |pos: usize| format!("u{}", plan.order[pos]);
    let _ = writeln!(out, "for ((x0,x1) ∈ {seed_src}) {{  // x0→{}, x1→{}", u(0), u(1));
    let mut indent = String::from("  ");
    for (level, lvl) in plan.levels.iter().enumerate() {
        let xi = level + 2;
        let terms: Vec<String> = lvl
            .constraints
            .iter()
            .map(|c| {
                let view = match c.view {
                    ViewSel::Old => "N",
                    ViewSel::New => "N'",
                };
                format!("{view}(x{})", c.pos)
            })
            .collect();
        let mut filters = String::new();
        for &p in &lvl.lt {
            let _ = write!(filters, " ∧ x{xi} < x{p}");
        }
        for &p in &lvl.gt {
            let _ = write!(filters, " ∧ x{xi} > x{p}");
        }
        let _ = writeln!(
            out,
            "{indent}for (x{xi} ∈ {}{}) {{  // x{xi}→u{}",
            terms.join(" ∩ "),
            filters,
            lvl.qvertex
        );
        indent.push_str("  ");
    }
    let vars: Vec<String> = (0..plan.num_vertices).map(|i| format!("x{i}")).collect();
    let _ = writeln!(out, "{indent}output ({});", vars.join(","));
    for level in (0..=plan.levels.len()).rev() {
        let _ = writeln!(out, "{}}}", "  ".repeat(level));
    }
    out
}

impl std::fmt::Display for MatchPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&explain_plan(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{compile_incremental_one, compile_static, PlanOptions};
    use crate::queries;

    /// The kite's ΔM_1 plan must render as Fig. 2b: both intersections on
    /// the new views.
    #[test]
    fn fig2b_rendering() {
        let q = queries::fig1_kite();
        let p = compile_incremental_one(&q, 0, PlanOptions::default());
        let s = explain_plan(&p);
        assert!(s.contains("ΔE"), "{s}");
        assert!(s.contains("N'(x0) ∩ N'(x1)"), "{s}");
        assert!(s.contains("N'(x1) ∩ N'(x2)"), "{s}");
        assert!(!s.contains(" N(x"), "no old views in ΔM_1:\n{s}");
    }

    /// ΔM_3 (Fig. 2d): x0 from old views, x3 from new views.
    #[test]
    fn fig2d_rendering() {
        let q = queries::fig1_kite();
        let p = compile_incremental_one(&q, 2, PlanOptions::default());
        let s = explain_plan(&p);
        assert!(s.contains("N(x0) ∩ N(x1)") || s.contains("N(x1) ∩ N(x0)"), "{s}");
        assert!(s.contains("N'("), "{s}");
    }

    /// Static plan reads the current graph only and seeds on E.
    #[test]
    fn static_rendering() {
        let q = queries::triangle();
        let p = compile_static(&q, PlanOptions { symmetry_break: true });
        let s = explain_plan(&p);
        assert!(s.starts_with("for ((x0,x1) ∈ E)"), "{s}");
        assert!(s.contains("x2 <") || s.contains("x2 >"), "sym-break filters shown: {s}");
        assert!(s.contains("output (x0,x1,x2);"), "{s}");
    }

    /// Rendering is balanced (every `for` has a closing brace).
    #[test]
    fn braces_balance_for_all_plans() {
        for q in queries::all() {
            for i in 0..q.num_edges() {
                let p = compile_incremental_one(&q, i, PlanOptions::default());
                let s = explain_plan(&p);
                assert_eq!(
                    s.matches('{').count(),
                    s.matches('}').count(),
                    "{}:{} unbalanced:\n{s}",
                    q.name(),
                    i
                );
            }
        }
    }
}
