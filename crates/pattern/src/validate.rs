//! Structural validation of compiled plans.
//!
//! Plans are produced by this crate's own compiler, but the invariants they
//! must satisfy are the correctness backbone of the whole system — so they
//! are checked explicitly (and property-tested against every preset and
//! random pattern), and exposed for downstream users who hand-craft plans.

use crate::plan::{MatchPlan, ViewSel};
use crate::query::QueryGraph;

/// Check every structural invariant of `plan` against its query. Returns a
/// list of violations (empty = valid).
pub fn validate_plan(q: &QueryGraph, plan: &MatchPlan) -> Vec<String> {
    let mut errs = Vec::new();
    let n = q.num_vertices();

    // Order is a permutation of the pattern vertices.
    let mut sorted = plan.order.clone();
    sorted.sort_unstable();
    if sorted != (0..n).collect::<Vec<_>>() {
        errs.push(format!("order {:?} is not a permutation of 0..{n}", plan.order));
    }
    if plan.num_vertices != n {
        errs.push(format!("num_vertices {} ≠ |V(Q)| {n}", plan.num_vertices));
    }
    if plan.levels.len() + 2 != n {
        errs.push(format!("{} levels for an n={n} pattern", plan.levels.len()));
    }

    // The seed edge exists and binds order[0], order[1].
    if plan.seed_edge >= q.num_edges() {
        errs.push(format!("seed edge {} out of range", plan.seed_edge));
    } else {
        let (a, b) = q.edges()[plan.seed_edge];
        let seed_set = [plan.order[0], plan.order[1]];
        if !(seed_set.contains(&a) && seed_set.contains(&b)) {
            errs.push(format!(
                "seed edge ({a},{b}) does not match order prefix {:?}",
                &plan.order[..2]
            ));
        }
    }

    // Every non-seed query edge appears exactly once as a constraint, with
    // the Eq. (1) view; every constraint references an earlier position.
    let mut seen = vec![0usize; q.num_edges()];
    for (li, lvl) in plan.levels.iter().enumerate() {
        let level_pos = li + 2;
        if plan.order.get(level_pos) != Some(&lvl.qvertex) {
            errs.push(format!(
                "level {li} binds {} but order says {:?}",
                lvl.qvertex,
                plan.order.get(level_pos)
            ));
        }
        if lvl.constraints.is_empty() {
            errs.push(format!("level {li} has no constraints (disconnected order)"));
        }
        for c in &lvl.constraints {
            if c.pos >= level_pos {
                errs.push(format!("level {li}: constraint pos {} not bound yet", c.pos));
                continue;
            }
            if c.edge >= q.num_edges() {
                errs.push(format!("level {li}: edge index {} out of range", c.edge));
                continue;
            }
            seen[c.edge] += 1;
            let (a, b) = q.edges()[c.edge];
            let pair = [plan.order[c.pos], lvl.qvertex];
            if !(pair.contains(&a) && pair.contains(&b)) {
                errs.push(format!(
                    "level {li}: constraint edge ({a},{b}) does not connect {:?}",
                    pair
                ));
            }
            if let Some(i) = plan.delta_index {
                let expect = if c.edge < i { ViewSel::Old } else { ViewSel::New };
                if c.edge == i {
                    errs.push(format!("level {li}: delta edge {i} reused as constraint"));
                } else if c.view != expect {
                    errs.push(format!(
                        "level {li}: edge {} view {:?} violates Eq. (1) for ΔM_{}",
                        c.edge,
                        c.view,
                        i + 1
                    ));
                }
            }
        }
        for &p in lvl.lt.iter().chain(&lvl.gt) {
            if p >= level_pos {
                errs.push(format!("level {li}: symmetry bound references unbound pos {p}"));
            }
        }
    }
    for (e, &count) in seen.iter().enumerate() {
        let expect = usize::from(e != plan.seed_edge);
        if count != expect {
            errs.push(format!("edge {e} appears {count} times as a constraint, expected {expect}"));
        }
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{compile_incremental, compile_static, PlanOptions};
    use crate::queries;

    #[test]
    fn all_compiled_plans_validate() {
        for q in queries::all() {
            for sb in [false, true] {
                let opts = PlanOptions { symmetry_break: sb };
                let errs = validate_plan(&q, &compile_static(&q, opts));
                assert!(errs.is_empty(), "{} static: {errs:?}", q.name());
                for p in compile_incremental(&q, opts) {
                    let errs = validate_plan(&q, &p);
                    assert!(errs.is_empty(), "{} Δ{:?}: {errs:?}", q.name(), p.delta_index);
                }
            }
        }
    }

    #[test]
    fn corrupted_plans_are_caught() {
        let q = queries::fig1_kite();
        let mut p = compile_incremental(&q, PlanOptions::default()).remove(2);

        // Flip a view against Eq. (1).
        let orig = p.levels[0].constraints[0].view;
        p.levels[0].constraints[0].view =
            if orig == ViewSel::Old { ViewSel::New } else { ViewSel::Old };
        assert!(validate_plan(&q, &p).iter().any(|e| e.contains("Eq. (1)")));
        p.levels[0].constraints[0].view = orig;

        // Break the order permutation.
        p.order[3] = p.order[2];
        assert!(validate_plan(&q, &p).iter().any(|e| e.contains("permutation")));
    }

    #[test]
    fn dropped_constraint_is_caught() {
        let q = queries::triangle();
        let mut p = compile_static(&q, PlanOptions::default());
        let removed = p.levels[0].constraints.pop().unwrap();
        let errs = validate_plan(&q, &p);
        assert!(errs.iter().any(|e| e.contains(&format!("edge {}", removed.edge))), "{errs:?}");
    }
}
