//! Query pattern representation.

use gcsm_graph::Label;

/// Maximum supported pattern size. The paper evaluates sizes 5–7; 8 gives
/// headroom for the extension benches while keeping bitmask adjacency.
pub const MAX_PATTERN: usize = 8;

/// A small connected undirected query pattern.
///
/// Edges carry a fixed **global index** `0..m` (the paper's relations
/// `R_1..R_m`): the incremental decomposition `ΔM = Σ_i ΔM_i` of Eq. (1) is
/// defined with respect to this numbering, and each delta plan `i` reads
/// relations `j < i` through the old view and `j > i` through the new view.
/// The numbering is the lexicographic order of `(min, max)` endpoint pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryGraph {
    n: usize,
    /// Adjacency bitmask per vertex.
    adj: [u16; MAX_PATTERN],
    /// Canonically ordered edge list; position = global edge index.
    edges: Vec<(usize, usize)>,
    labels: Vec<Label>,
    name: String,
}

impl QueryGraph {
    /// Build a pattern from an edge list. Panics on self loops, out-of-range
    /// vertices, duplicate edges, or a disconnected pattern.
    pub fn new(name: &str, n: usize, edges: &[(usize, usize)]) -> Self {
        Self::with_labels(name, n, edges, vec![0; n])
    }

    /// Build a labeled pattern.
    pub fn with_labels(name: &str, n: usize, edges: &[(usize, usize)], labels: Vec<Label>) -> Self {
        assert!((2..=MAX_PATTERN).contains(&n), "pattern size {n} out of range");
        assert_eq!(labels.len(), n);
        let mut canon: Vec<(usize, usize)> = edges
            .iter()
            .map(|&(a, b)| {
                assert!(a < n && b < n, "edge ({a},{b}) out of range");
                assert_ne!(a, b, "self loop in pattern");
                (a.min(b), a.max(b))
            })
            .collect();
        canon.sort_unstable();
        canon.windows(2).for_each(|w| assert_ne!(w[0], w[1], "duplicate edge"));

        let mut adj = [0u16; MAX_PATTERN];
        for &(a, b) in &canon {
            adj[a] |= 1 << b;
            adj[b] |= 1 << a;
        }
        let q = Self { n, adj, edges: canon, labels, name: name.to_string() };
        assert!(q.is_connected(), "pattern must be connected");
        q
    }

    /// Parse a pattern from a compact edge-list string: `"0-1,1-2,0-2"`.
    /// Vertex count is `max id + 1`. Errors (not panics) on malformed
    /// input; structural violations (self loops, disconnected) still panic
    /// in [`Self::new`].
    pub fn parse(name: &str, spec: &str) -> Result<Self, String> {
        let mut edges = Vec::new();
        let mut max_v = 0usize;
        for (i, part) in spec.split(',').enumerate() {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (a, b) = part
                .split_once('-')
                .ok_or_else(|| format!("edge {i}: expected 'a-b', got '{part}'"))?;
            let a: usize =
                a.trim().parse().map_err(|e| format!("edge {i}: bad vertex '{a}': {e}"))?;
            let b: usize =
                b.trim().parse().map_err(|e| format!("edge {i}: bad vertex '{b}': {e}"))?;
            max_v = max_v.max(a).max(b);
            edges.push((a, b));
        }
        if edges.is_empty() {
            return Err("no edges".into());
        }
        if max_v + 1 > MAX_PATTERN {
            return Err(format!("pattern size {} exceeds {MAX_PATTERN}", max_v + 1));
        }
        Ok(Self::new(name, max_v + 1, &edges))
    }

    /// Pattern name (e.g. "Q3").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of pattern vertices (`n` in the paper).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of pattern edges (`m` in the paper).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Canonically ordered edges; the slice index is the global edge index.
    #[inline]
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Neighbors of pattern vertex `u` as a bitmask.
    #[inline]
    pub fn adj_mask(&self, u: usize) -> u16 {
        self.adj[u]
    }

    /// True if `(a, b)` is a pattern edge.
    #[inline]
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adj[a] & (1 << b) != 0
    }

    /// Degree of pattern vertex `u`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].count_ones() as usize
    }

    /// Label of pattern vertex `u`.
    #[inline]
    pub fn label(&self, u: usize) -> Label {
        self.labels[u]
    }

    /// All labels.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Global index of edge `(a, b)`; panics if absent.
    pub fn edge_index(&self, a: usize, b: usize) -> usize {
        let key = (a.min(b), a.max(b));
        self.edges.binary_search(&key).expect("edge not in pattern")
    }

    /// Neighbors of `u` as an iterator.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        let mask = self.adj[u];
        (0..self.n).filter(move |&v| mask & (1 << v) != 0)
    }

    fn is_connected(&self) -> bool {
        if self.n == 0 {
            return false;
        }
        let mut seen = 1u16; // vertex 0
        let mut frontier = vec![0usize];
        while let Some(u) = frontier.pop() {
            for v in self.neighbors(u) {
                if seen & (1 << v) == 0 {
                    seen |= 1 << v;
                    frontier.push(v);
                }
            }
        }
        seen.count_ones() as usize == self.n
    }

    /// Graph diameter (max shortest-path length). VSGM copies the `k`-hop
    /// neighborhood of the batch where `k` is this diameter.
    pub fn diameter(&self) -> usize {
        let mut best = 0;
        for s in 0..self.n {
            let mut dist = [usize::MAX; MAX_PATTERN];
            dist[s] = 0;
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(u) = queue.pop_front() {
                for v in self.neighbors(u) {
                    if dist[v] == usize::MAX {
                        dist[v] = dist[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
            best = best.max((0..self.n).map(|v| dist[v]).max().unwrap());
        }
        best
    }

    /// Canonical form: the lexicographically smallest adjacency bitstring
    /// over all vertex permutations (labels included). Two patterns are
    /// isomorphic iff their canonical forms match. Exponential, fine for
    /// n ≤ 8.
    pub fn canonical_form(&self) -> Vec<u64> {
        let n = self.n;
        let mut perm: Vec<usize> = (0..n).collect();
        let mut best: Option<Vec<u64>> = None;
        permute(&mut perm, 0, &mut |p| {
            // encode: per vertex (in permuted order): label, then row bits
            let mut code = Vec::with_capacity(n);
            for i in 0..n {
                let u = p[i];
                let mut row = 0u64;
                for (j, &v) in p.iter().enumerate().take(n) {
                    if self.has_edge(u, v) {
                        row |= 1 << j;
                    }
                }
                code.push(((self.labels[u] as u64) << 32) | row);
            }
            if best.as_ref().map_or(true, |b| code < *b) {
                best = Some(code);
            }
        });
        best.unwrap()
    }
}

/// Visit all permutations of `v[k..]` (Heap's-algorithm-free simple swap
/// recursion; n ≤ 8 so at most 40320 leaves).
pub(crate) fn permute<F: FnMut(&[usize])>(v: &mut Vec<usize>, k: usize, f: &mut F) {
    if k == v.len() {
        f(v);
        return;
    }
    for i in k..v.len() {
        v.swap(k, i);
        permute(v, k + 1, f);
        v.swap(k, i);
    }
}

impl std::fmt::Display for QueryGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}(n={}, m={})", self.name, self.n, self.edges.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 1 query: a kite (4 vertices, 5 edges).
    fn kite() -> QueryGraph {
        QueryGraph::new("kite", 4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn edge_indexing_is_lexicographic() {
        let q = kite();
        assert_eq!(q.edges(), &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(q.edge_index(2, 1), 2);
        assert_eq!(q.edge_index(3, 2), 4);
    }

    #[test]
    fn degrees_and_adjacency() {
        let q = kite();
        assert_eq!(q.degree(0), 2);
        assert_eq!(q.degree(1), 3);
        assert!(q.has_edge(1, 3));
        assert!(!q.has_edge(0, 3));
        assert_eq!(q.neighbors(1).collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_rejected() {
        QueryGraph::new("bad", 4, &[(0, 1), (2, 3)]);
    }

    #[test]
    #[should_panic(expected = "self loop")]
    fn self_loop_rejected() {
        QueryGraph::new("bad", 3, &[(0, 0), (0, 1), (1, 2)]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_edge_rejected() {
        QueryGraph::new("bad", 3, &[(0, 1), (1, 0), (1, 2)]);
    }

    #[test]
    fn diameter_values() {
        assert_eq!(kite().diameter(), 2);
        let path = QueryGraph::new("p4", 4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(path.diameter(), 3);
        let tri = QueryGraph::new("k3", 3, &[(0, 1), (0, 2), (1, 2)]);
        assert_eq!(tri.diameter(), 1);
    }

    #[test]
    fn parse_compact_spec() {
        let q = QueryGraph::parse("t", "0-1, 1-2,0-2").unwrap();
        assert_eq!(q.num_vertices(), 3);
        assert_eq!(q.num_edges(), 3);
        assert!(QueryGraph::parse("bad", "0-1,x-2").is_err());
        assert!(QueryGraph::parse("bad", "01").is_err());
        assert!(QueryGraph::parse("bad", "").is_err());
        assert!(QueryGraph::parse("big", "0-9").is_err());
    }

    #[test]
    fn canonical_form_detects_isomorphism() {
        let a = QueryGraph::new("a", 4, &[(0, 1), (1, 2), (2, 3)]);
        let b = QueryGraph::new("b", 4, &[(2, 0), (0, 3), (3, 1)]); // relabeled path
        let c = QueryGraph::new("c", 4, &[(0, 1), (1, 2), (2, 3), (3, 0)]); // cycle
        assert_eq!(a.canonical_form(), b.canonical_form());
        assert_ne!(a.canonical_form(), c.canonical_form());
    }

    #[test]
    fn canonical_form_respects_labels() {
        let a = QueryGraph::with_labels("a", 2, &[(0, 1)], vec![1, 2]);
        let b = QueryGraph::with_labels("b", 2, &[(0, 1)], vec![2, 1]);
        let c = QueryGraph::with_labels("c", 2, &[(0, 1)], vec![1, 1]);
        assert_eq!(a.canonical_form(), b.canonical_form());
        assert_ne!(a.canonical_form(), c.canonical_form());
    }
}
