//! The evaluation query set.
//!
//! The paper's Fig. 7 shows six queries "from size-5 to size-7"; the figure
//! itself is an image unavailable in our source text, so we substitute the
//! standard GPM benchmark shapes of matching sizes (documented in
//! DESIGN.md §2). Every query is connected and unlabeled, like the paper's
//! (SNAP/LDBC graphs carry no labels in the evaluation).

use crate::query::QueryGraph;

/// Q1 — size 5: the "house" (4-cycle with a triangular roof), 6 edges.
pub fn q1() -> QueryGraph {
    QueryGraph::new("Q1", 5, &[(0, 1), (1, 2), (2, 3), (0, 3), (0, 4), (1, 4)])
}

/// Q2 — size 5: chain of three triangles sharing edges, 7 edges.
pub fn q2() -> QueryGraph {
    QueryGraph::new("Q2", 5, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (2, 4), (3, 4)])
}

/// Q3 — size 6: chain of four edge-sharing triangles, 9 edges.
pub fn q3() -> QueryGraph {
    QueryGraph::new(
        "Q3",
        6,
        &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (2, 4), (3, 4), (3, 5), (4, 5)],
    )
}

/// Q4 — size 6: two triangles sharing a vertex plus a connecting edge
/// ("bowtie with a bar"), 8 edges.
pub fn q4() -> QueryGraph {
    QueryGraph::new("Q4", 6, &[(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4), (3, 5), (4, 5)])
}

/// Q5 — size 7: a 5-clique core with a 2-path tail, 12 edges.
pub fn q5() -> QueryGraph {
    QueryGraph::new(
        "Q5",
        7,
        &[
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (2, 4),
            (4, 5),
            (3, 5),
            (5, 6),
            (4, 6),
        ],
    )
}

/// Q6 — size 7: chain of five edge-sharing triangles, 11 edges.
pub fn q6() -> QueryGraph {
    QueryGraph::new(
        "Q6",
        7,
        &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (2, 4), (3, 4), (3, 5), (4, 5), (4, 6), (5, 6)],
    )
}

/// The full evaluation set in paper order.
pub fn all() -> Vec<QueryGraph> {
    vec![q1(), q2(), q3(), q4(), q5(), q6()]
}

/// A query by name ("Q1".."Q6"), if known.
pub fn by_name(name: &str) -> Option<QueryGraph> {
    match name {
        "Q1" => Some(q1()),
        "Q2" => Some(q2()),
        "Q3" => Some(q3()),
        "Q4" => Some(q4()),
        "Q5" => Some(q5()),
        "Q6" => Some(q6()),
        _ => None,
    }
}

/// The running-example query of the paper's Fig. 1: a kite on 4 vertices
/// (edges (u0,u1),(u0,u2),(u1,u2),(u1,u3),(u2,u3)).
pub fn fig1_kite() -> QueryGraph {
    QueryGraph::new("kite", 4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
}

/// Triangle — the smallest useful pattern; used pervasively in tests.
pub fn triangle() -> QueryGraph {
    QueryGraph::new("triangle", 3, &[(0, 1), (0, 2), (1, 2)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_paper_range() {
        let qs = all();
        assert_eq!(qs.len(), 6);
        let sizes: Vec<usize> = qs.iter().map(|q| q.num_vertices()).collect();
        assert_eq!(sizes, vec![5, 5, 6, 6, 7, 7]);
        for q in &qs {
            assert!(q.num_edges() >= q.num_vertices()); // all denser than trees
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("Q3").unwrap().name(), "Q3");
        assert!(by_name("Q9").is_none());
    }

    #[test]
    fn queries_are_pairwise_nonisomorphic() {
        let qs = all();
        for i in 0..qs.len() {
            for j in i + 1..qs.len() {
                if qs[i].num_vertices() == qs[j].num_vertices() {
                    assert_ne!(
                        qs[i].canonical_form(),
                        qs[j].canonical_form(),
                        "{} ≅ {}",
                        qs[i].name(),
                        qs[j].name()
                    );
                }
            }
        }
    }

    #[test]
    fn kite_matches_fig1() {
        let k = fig1_kite();
        assert_eq!(k.num_edges(), 5);
        assert_eq!(k.diameter(), 2);
    }
}
