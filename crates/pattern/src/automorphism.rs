//! Automorphism groups and symmetry-breaking conditions.
//!
//! An embedding-based matcher finds each data subgraph once per pattern
//! automorphism. RapidFlow eliminates that redundancy with its "dual
//! matching" technique; the classic equivalent (used by STMatch, Automine,
//! etc., and implemented here) is to impose a `<` order on data vertices
//! mapped to symmetric pattern vertices, so each subgraph is emitted exactly
//! once. The same condition set filters both the static and the incremental
//! delta plans, so the `ΔM = match(G') − match(G)` invariant is preserved in
//! either counting mode.

use crate::query::{permute, QueryGraph};

/// All automorphisms of `q` (each a permutation `p` with `p[u]` = image of
/// pattern vertex `u`). Brute force over all `n!` permutations; n ≤ 8.
pub fn automorphisms(q: &QueryGraph) -> Vec<Vec<usize>> {
    let n = q.num_vertices();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut out = Vec::new();
    permute(&mut perm, 0, &mut |p| {
        if is_automorphism(q, p) {
            out.push(p.to_vec());
        }
    });
    out
}

fn is_automorphism(q: &QueryGraph, p: &[usize]) -> bool {
    let n = q.num_vertices();
    for u in 0..n {
        if q.label(u) != q.label(p[u]) {
            return false;
        }
        for v in u + 1..n {
            if q.has_edge(u, v) != q.has_edge(p[u], p[v]) {
                return false;
            }
        }
    }
    true
}

/// Symmetry-breaking conditions: pairs `(a, b)` meaning an embedding `f`
/// must satisfy `f(a) < f(b)`. With all conditions imposed, each data
/// subgraph isomorphic to `q` is counted exactly once.
///
/// Classic orbit-stabilizer construction (Grochow–Kellis): repeatedly take
/// the smallest vertex with a nontrivial orbit, emit `v < w` for every other
/// orbit member `w`, and restrict the group to the stabilizer of `v`.
pub fn symmetry_break_conditions(q: &QueryGraph) -> Vec<(usize, usize)> {
    let mut group = automorphisms(q);
    let n = q.num_vertices();
    let mut conds = Vec::new();
    loop {
        if group.len() <= 1 {
            return conds;
        }
        // Find the smallest vertex moved by some group element.
        let mut anchor = None;
        'outer: for v in 0..n {
            for g in &group {
                if g[v] != v {
                    anchor = Some(v);
                    break 'outer;
                }
            }
        }
        let v = match anchor {
            Some(v) => v,
            None => return conds, // identity-only (shouldn't happen with len>1)
        };
        // Orbit of v under the current group.
        let mut orbit: Vec<usize> = group.iter().map(|g| g[v]).collect();
        orbit.sort_unstable();
        orbit.dedup();
        for &w in &orbit {
            if w != v {
                conds.push((v, w));
            }
        }
        // Stabilizer of v.
        group.retain(|g| g[v] == v);
    }
}

/// Size of the automorphism group — the embeddings-per-subgraph multiplier.
pub fn automorphism_count(q: &QueryGraph) -> usize {
    automorphisms(q).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries;

    #[test]
    fn triangle_group_is_s3() {
        let q = queries::triangle();
        assert_eq!(automorphism_count(&q), 6);
        let conds = symmetry_break_conditions(&q);
        // Breaking S3 takes exactly the chain 0<1<2 (two + one conditions
        // from orbits {0,1,2} then {1,2}).
        assert_eq!(conds, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn path_group_is_reflection() {
        let q = QueryGraph::new("p3", 3, &[(0, 1), (1, 2)]);
        assert_eq!(automorphism_count(&q), 2); // identity + end swap
        assert_eq!(symmetry_break_conditions(&q), vec![(0, 2)]);
    }

    #[test]
    fn asymmetric_pattern_needs_no_conditions() {
        // Triangle with a 1-tail on one corner and a 2-tail on another:
        // no non-trivial automorphism survives the degree profile.
        let q = QueryGraph::new("asym", 6, &[(0, 1), (0, 2), (1, 2), (0, 3), (1, 4), (4, 5)]);
        assert_eq!(automorphism_count(&q), 1);
        assert!(symmetry_break_conditions(&q).is_empty());
    }

    #[test]
    fn labels_restrict_automorphisms() {
        let q = crate::QueryGraph::with_labels("lp3", 3, &[(0, 1), (1, 2)], vec![1, 0, 2]);
        assert_eq!(automorphism_count(&q), 1);
    }

    #[test]
    fn kite_group() {
        // Fig. 1 kite: swap u0↔u3 and/or u1↔u2 — wait: u0 has degree 2
        // (nbrs 1,2), u3 degree 2 (nbrs 1,2), u1,u2 degree 3. Swapping 0↔3
        // and swapping 1↔2 are both automorphisms → group of size 4.
        let q = queries::fig1_kite();
        assert_eq!(automorphism_count(&q), 4);
        let conds = symmetry_break_conditions(&q);
        assert!(conds.contains(&(0, 3)));
        assert!(conds.contains(&(1, 2)));
        assert_eq!(conds.len(), 2);
    }

    #[test]
    fn conditions_select_one_embedding_per_subgraph() {
        // For every pattern: the number of permutations of {0..n-1}
        // satisfying adjacency-preservation AND the conditions must be
        // |Aut| / |Aut| = ... more directly: among the automorphism group
        // itself, only the identity satisfies all conditions (standard
        // property of the construction).
        for q in queries::all() {
            let conds = symmetry_break_conditions(&q);
            let sat: Vec<_> = automorphisms(&q)
                .into_iter()
                .filter(|g| conds.iter().all(|&(a, b)| g[a] < g[b]))
                .collect();
            assert_eq!(sat.len(), 1, "{}", q.name());
            assert!(sat[0].iter().enumerate().all(|(i, &x)| i == x));
        }
    }

    #[test]
    fn triangle_chain_q6_has_reversal_symmetry() {
        let q = queries::q6();
        assert_eq!(automorphism_count(&q), 2); // identity + chain reversal
    }
}
