//! Worst-case output bounds (paper Sec. II-B, Eq. (2)).
//!
//! The WCOJ algorithm's run time is bounded by the AGM worst-case output
//! size: for any *fractional edge cover* `μ` of the query (weights on query
//! edges such that every query vertex is covered with total weight ≥ 1),
//!
//! ```text
//! |M| ≤ Π_j |R_j|^{μ_j}
//! ```
//!
//! and the tightest bound uses the cover minimizing `Σ_j μ_j·log|R_j|`.
//! This module computes optimal fractional edge covers with a tiny dense
//! simplex solver (patterns have ≤ 12 edges and ≤ 8 vertices, so exact LP
//! is trivial) and evaluates the Eq. (2) bound for the incremental
//! relations `ΔM_i`.

use crate::query::QueryGraph;

/// Result of the fractional-edge-cover LP.
#[derive(Clone, Debug)]
pub struct EdgeCover {
    /// Weight per query edge (global edge order).
    pub weights: Vec<f64>,
    /// The objective achieved: `Σ μ_j · cost_j`.
    pub objective: f64,
}

/// Minimize `Σ_j cost[j]·μ_j` subject to: for every query vertex `v`,
/// `Σ_{j : v ∈ e_j} μ_j ≥ 1`, and `μ_j ≥ 0`.
///
/// Solved exactly with a dense simplex on the standard-form dual-free
/// formulation (surplus variables + big-M). Pattern sizes make this a
/// ≤ 20-variable LP.
// Index loops iterate tableau *columns* while rows alias (`t[v]` vs `t[n]`);
// iterator rewrites would need split borrows for no clarity gain.
#[allow(clippy::needless_range_loop)]
pub fn min_fractional_edge_cover(q: &QueryGraph, cost: &[f64]) -> EdgeCover {
    let m = q.num_edges();
    let n = q.num_vertices();
    assert_eq!(cost.len(), m);
    assert!(cost.iter().all(|&c| c >= 0.0), "costs must be nonnegative");

    // Simplex with big-M: variables = m edge weights + n surplus + n
    // artificial. Constraints: A·μ − s + a = 1 per vertex.
    let nv = m + n + n;
    let big_m = 1e6 * (1.0 + cost.iter().cloned().fold(0.0, f64::max));
    // tableau rows: n constraints + 1 objective; columns: nv + 1 (rhs)
    let mut t = vec![vec![0.0f64; nv + 1]; n + 1];
    for v in 0..n {
        for (j, &(a, b)) in q.edges().iter().enumerate() {
            if a == v || b == v {
                t[v][j] = 1.0;
            }
        }
        t[v][m + v] = -1.0; // surplus
        t[v][m + n + v] = 1.0; // artificial
        t[v][nv] = 1.0; // rhs
    }
    // objective row: costs + big_m on artificials, then price out the
    // artificial basis.
    for (j, &c) in cost.iter().enumerate() {
        t[n][j] = c;
    }
    for v in 0..n {
        t[n][m + n + v] = big_m;
    }
    for v in 0..n {
        // subtract big_m × row v to make artificial columns' reduced cost 0
        for col in 0..=nv {
            t[n][col] -= big_m * t[v][col];
        }
    }
    let mut basis: Vec<usize> = (0..n).map(|v| m + n + v).collect();

    // Standard simplex iterations.
    for _ in 0..10_000 {
        // entering column: most negative reduced cost
        let (mut enter, mut best) = (usize::MAX, -1e-9);
        for col in 0..nv {
            if t[n][col] < best {
                best = t[n][col];
                enter = col;
            }
        }
        if enter == usize::MAX {
            break; // optimal
        }
        // ratio test
        let (mut leave, mut ratio) = (usize::MAX, f64::INFINITY);
        for (row, trow) in t.iter().enumerate().take(n) {
            if trow[enter] > 1e-12 {
                let r = trow[nv] / trow[enter];
                if r < ratio - 1e-12 {
                    ratio = r;
                    leave = row;
                }
            }
        }
        assert_ne!(leave, usize::MAX, "edge-cover LP cannot be unbounded");
        // pivot
        let piv = t[leave][enter];
        for col in 0..=nv {
            t[leave][col] /= piv;
        }
        for row in 0..=n {
            if row != leave {
                let f = t[row][enter];
                if f != 0.0 {
                    for col in 0..=nv {
                        t[row][col] -= f * t[leave][col];
                    }
                }
            }
        }
        basis[leave] = enter;
    }

    let mut weights = vec![0.0f64; m];
    for (row, &b) in basis.iter().enumerate() {
        if b < m {
            weights[b] = t[row][nv];
        }
    }
    let objective = weights.iter().zip(cost).map(|(w, c)| w * c).sum();
    EdgeCover { weights, objective }
}

/// The AGM bound `Π_j size[j]^{μ_j}` with the optimal fractional cover for
/// the given relation sizes (log-cost LP).
pub fn agm_bound(q: &QueryGraph, relation_sizes: &[f64]) -> f64 {
    assert_eq!(relation_sizes.len(), q.num_edges());
    let cost: Vec<f64> = relation_sizes.iter().map(|&s| s.max(1.0).ln()).collect();
    let cover = min_fractional_edge_cover(q, &cost);
    cover.objective.exp()
}

/// Eq. (2): worst-case size of the incremental result `ΔM_{i+1}` when
/// relation `i` is restricted to the batch (`|ΔR_i| = delta_size`) and
/// every other relation has `full_size` tuples.
pub fn delta_bound(q: &QueryGraph, i: usize, delta_size: f64, full_size: f64) -> f64 {
    let sizes: Vec<f64> =
        (0..q.num_edges()).map(|j| if j == i { delta_size } else { full_size }).collect();
    agm_bound(q, &sizes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries;

    fn cover_is_feasible(q: &QueryGraph, w: &[f64]) -> bool {
        (0..q.num_vertices()).all(|v| {
            let s: f64 = q
                .edges()
                .iter()
                .zip(w)
                .filter(|(&(a, b), _)| a == v || b == v)
                .map(|(_, &x)| x)
                .sum();
            s >= 1.0 - 1e-9
        })
    }

    #[test]
    fn triangle_cover_is_half_each() {
        // The classic result: the triangle's optimal cover is 1/2 per edge
        // ⇒ AGM bound |E|^{3/2}.
        let q = queries::triangle();
        let cover = min_fractional_edge_cover(&q, &[1.0, 1.0, 1.0]);
        assert!(cover_is_feasible(&q, &cover.weights));
        assert!((cover.objective - 1.5).abs() < 1e-6, "{:?}", cover);
        let bound = agm_bound(&q, &[100.0, 100.0, 100.0]);
        assert!((bound - 1000.0).abs() < 1e-3, "100^1.5 = 1000, got {bound}");
    }

    #[test]
    fn path_cover_uses_endpoints() {
        // Path a-b-c: both edges must be ≥1 at the endpoints ⇒ weight 1
        // each? No: vertex b is covered by either. Optimal = 1 on each edge
        // ≥ endpoints a and c each need their single incident edge at 1 ⇒
        // objective 2.
        let q = QueryGraph::new("p3", 3, &[(0, 1), (1, 2)]);
        let cover = min_fractional_edge_cover(&q, &[1.0, 1.0]);
        assert!(cover_is_feasible(&q, &cover.weights));
        assert!((cover.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn covers_feasible_for_all_queries() {
        for q in queries::all() {
            let cost = vec![1.0; q.num_edges()];
            let cover = min_fractional_edge_cover(&q, &cost);
            assert!(cover_is_feasible(&q, &cover.weights), "{}", q.name());
            // A cover never needs more than n/2... at most n weight total.
            assert!(cover.objective <= q.num_vertices() as f64 + 1e-9);
            // And at least n/2 (each unit of weight covers ≤ 2 vertices).
            assert!(cover.objective >= q.num_vertices() as f64 / 2.0 - 1e-9);
        }
    }

    #[test]
    fn asymmetric_costs_shift_weight_to_cheap_edges() {
        // Triangle with one expensive edge: the cover should avoid it.
        let q = queries::triangle();
        let cover = min_fractional_edge_cover(&q, &[10.0, 1.0, 1.0]);
        assert!(cover_is_feasible(&q, &cover.weights));
        // Optimal: weight 1 on each cheap edge (covers all three vertices),
        // 0 on the expensive one ⇒ objective 2.
        assert!((cover.objective - 2.0).abs() < 1e-6, "{:?}", cover);
        assert!(cover.weights[0] < 1e-9);
    }

    #[test]
    fn delta_bound_shrinks_with_batch() {
        let q = queries::triangle();
        let full = delta_bound(&q, 0, 1e6, 1e6);
        let small = delta_bound(&q, 0, 1e3, 1e6);
        assert!(small < full);
        // With a tiny ΔR the optimal cover leans on the delta edge.
        assert!(small <= 1e3 * 1e6 + 1.0); // ΔR × one full relation suffices
    }

    #[test]
    fn agm_bound_is_monotone_in_sizes() {
        let q = queries::q1();
        let small = agm_bound(&q, &vec![1e3; q.num_edges()]);
        let large = agm_bound(&q, &vec![1e4; q.num_edges()]);
        assert!(large > small);
    }
}
