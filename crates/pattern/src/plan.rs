//! Compilation of a query into nested-loop matching plans.
//!
//! A plan fixes a **vertex order** `order[0..n]` whose first two vertices
//! are the endpoints of a *seed edge*. The matcher binds the seed edge to a
//! data edge (all graph edges for the static plan of Fig. 2a; the batch
//! `ΔE` for the incremental plans of Fig. 2b–f) and then binds one vertex
//! per level by intersecting the neighbor lists of its already-bound
//! pattern neighbors.
//!
//! For the incremental plan with delta index `i` (0-based over the global
//! edge numbering `R_1..R_m`), Eq. (1) dictates the view of each backward
//! constraint: relations `j < i` read the **old** view `N`, relations
//! `j > i` read the **new** view `N'`. This module encodes that choice per
//! constraint so the matcher never has to reason about it.
//!
//! Optional symmetry-breaking conditions (`f(a) < f(b)` for pattern-vertex
//! pairs produced by [`crate::symmetry_break_conditions`]) are compiled into
//! per-level bound checks, giving unique-subgraph counting.

use crate::automorphism::symmetry_break_conditions;
use crate::query::QueryGraph;
use gcsm_graph::Label;

/// Which neighbor view a constraint reads (the paper's `N` vs `N'`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViewSel {
    /// `N` — the graph before the batch.
    Old,
    /// `N'` — the graph after the batch. The static plan uses `New`
    /// everywhere (on a clean graph the views coincide).
    New,
}

/// One backward adjacency constraint for the vertex bound at some level:
/// the candidate must appear in `view(f(order[pos]))`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Constraint {
    /// Order position of the already-bound pattern neighbor.
    pub pos: usize,
    /// Which view of that neighbor's list to read.
    pub view: ViewSel,
    /// Global edge index this constraint implements (provenance).
    pub edge: usize,
}

/// Per-level binding recipe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LevelPlan {
    /// Pattern vertex bound at this level.
    pub qvertex: usize,
    /// Backward adjacency constraints (≥ 1; plans keep patterns connected).
    pub constraints: Vec<Constraint>,
    /// Symmetry breaking: candidate must be `<` the binding at these
    /// positions.
    pub lt: Vec<usize>,
    /// Symmetry breaking: candidate must be `>` the binding at these
    /// positions.
    pub gt: Vec<usize>,
    /// Required data-vertex label (0 in unlabeled settings).
    pub label: Label,
}

/// A complete nested-loop plan.
#[derive(Clone, Debug)]
pub struct MatchPlan {
    /// Pattern vertices in binding order; `order\[0\], order\[1\]` are the seed
    /// edge endpoints.
    pub order: Vec<usize>,
    /// Global index of the seed edge.
    pub seed_edge: usize,
    /// Labels required of the data vertices bound to `order\[0\]`/`order\[1\]`.
    pub seed_labels: (Label, Label),
    /// `Some(i)` marks the incremental plan computing `ΔM_{i+1}`; `None`
    /// marks the static plan.
    pub delta_index: Option<usize>,
    /// Recipes for levels `2..n` (the seed binds levels 0 and 1).
    pub levels: Vec<LevelPlan>,
    /// Symmetry breaking between the two seed endpoints: `Some(true)`
    /// requires `f(order\[0\]) < f(order\[1\])`, `Some(false)` the reverse.
    pub seed_cond: Option<bool>,
    /// Number of pattern vertices.
    pub num_vertices: usize,
}

impl MatchPlan {
    /// Upper bound on enumeration depth (number of levels after the seed).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }
}

/// Plan compilation options.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlanOptions {
    /// Impose symmetry-breaking conditions so each data subgraph is emitted
    /// once (instead of once per pattern automorphism).
    pub symmetry_break: bool,
}

/// Compile the static (from-scratch) plan: seed on the pattern's first
/// global edge, every constraint reading the current graph.
pub fn compile_static(q: &QueryGraph, opts: PlanOptions) -> MatchPlan {
    // Seed on the edge whose endpoints have the highest combined degree —
    // a dense seed minimizes the candidate sets of the following levels.
    let seed = (0..q.num_edges())
        .max_by_key(|&e| {
            let (a, b) = q.edges()[e];
            q.degree(a) + q.degree(b)
        })
        .expect("pattern has no edges");
    compile_with_seed(q, seed, None, opts, None)
}

/// Compile all `m` incremental delta plans (`ΔM_1 .. ΔM_m` of Eq. (1)).
pub fn compile_incremental(q: &QueryGraph, opts: PlanOptions) -> Vec<MatchPlan> {
    (0..q.num_edges()).map(|i| compile_incremental_one(q, i, opts)).collect()
}

/// Compile the single delta plan for global edge index `i`.
pub fn compile_incremental_one(q: &QueryGraph, i: usize, opts: PlanOptions) -> MatchPlan {
    compile_with_seed(q, i, Some(i), opts, None)
}

/// Compile a delta plan with a **cardinality-driven** matching order: after
/// the seed, prefer the pattern vertex with the smallest `score` (e.g. its
/// candidate-set size) among the connectable ones — the ordering strategy
/// of optimized CPU systems like RapidFlow \[15\].
pub fn compile_incremental_scored(
    q: &QueryGraph,
    i: usize,
    opts: PlanOptions,
    scores: &[f64],
) -> MatchPlan {
    assert_eq!(scores.len(), q.num_vertices());
    compile_with_seed(q, i, Some(i), opts, Some(scores))
}

fn compile_with_seed(
    q: &QueryGraph,
    seed: usize,
    delta_index: Option<usize>,
    opts: PlanOptions,
    scores: Option<&[f64]>,
) -> MatchPlan {
    let n = q.num_vertices();
    let (sa, sb) = q.edges()[seed];

    // Vertex order: start at the seed endpoints, then repeatedly bind a
    // connectable vertex — by default the one with the most backward edges
    // (strongest intersection pruning, ties by higher pattern degree, then
    // lower id); with `scores`, the connectable vertex of minimum score.
    let mut order = vec![sa, sb];
    let mut in_order = vec![false; n];
    in_order[sa] = true;
    in_order[sb] = true;
    while order.len() < n {
        let connectable = (0..n).filter(|&v| !in_order[v] && q.neighbors(v).any(|u| in_order[u]));
        let next = match scores {
            // Cardinality-driven order (RapidFlow style): keep the
            // backward-edge count as the primary key — giving up
            // intersection pruning for a smaller candidate set is always a
            // regression — and use the candidate-set size to break ties.
            Some(s) => connectable
                .max_by(|&a, &b| {
                    let back = |v: usize| q.neighbors(v).filter(|&u| in_order[u]).count();
                    back(a)
                        .cmp(&back(b))
                        .then(s[b].partial_cmp(&s[a]).unwrap()) // smaller score wins
                        .then(b.cmp(&a))
                })
                .unwrap(),
            None => connectable
                .max_by_key(|&v| {
                    let back = q.neighbors(v).filter(|&u| in_order[u]).count();
                    (back, q.degree(v), usize::MAX - v)
                })
                .unwrap(),
        };
        order.push(next);
        in_order[next] = true;
    }
    let pos_of = |v: usize| order.iter().position(|&x| x == v).unwrap();

    // Per-level constraints with Eq. (1) view selection.
    let mut levels = Vec::with_capacity(n - 2);
    for (level, &v) in order.iter().enumerate().skip(2) {
        let mut constraints: Vec<Constraint> = q
            .neighbors(v)
            .filter(|&u| pos_of(u) < level)
            .map(|u| {
                let edge = q.edge_index(u, v);
                let view = match delta_index {
                    None => ViewSel::New,
                    Some(i) => {
                        debug_assert_ne!(edge, i, "seed edge reappears as constraint");
                        if edge < i {
                            ViewSel::Old
                        } else {
                            ViewSel::New
                        }
                    }
                };
                Constraint { pos: pos_of(u), view, edge }
            })
            .collect();
        constraints.sort_unstable_by_key(|c| c.pos);
        levels.push(LevelPlan {
            qvertex: v,
            constraints,
            lt: Vec::new(),
            gt: Vec::new(),
            label: q.label(v),
        });
    }

    // Symmetry breaking.
    let mut seed_cond = None;
    if opts.symmetry_break {
        for (a, b) in symmetry_break_conditions(q) {
            let (pa, pb) = (pos_of(a), pos_of(b));
            // Condition: f(a) < f(b).
            if pa <= 1 && pb <= 1 {
                seed_cond = Some(pa == 0); // f(order[0]) < f(order[1]) iff a is order[0]
            } else if pa < pb {
                // b bound later: candidate for b must be > f(a).
                levels[pb - 2].gt.push(pa);
            } else {
                // a bound later: candidate for a must be < f(b).
                levels[pa - 2].lt.push(pb);
            }
        }
    }

    MatchPlan {
        order,
        seed_edge: seed,
        seed_labels: (q.label(sa), q.label(sb)),
        delta_index,
        levels,
        seed_cond,
        num_vertices: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries;

    fn kite() -> QueryGraph {
        queries::fig1_kite()
    }

    #[test]
    fn incremental_plan_count_is_m() {
        let q = kite();
        let plans = compile_incremental(&q, PlanOptions::default());
        assert_eq!(plans.len(), 5);
        for (i, p) in plans.iter().enumerate() {
            assert_eq!(p.delta_index, Some(i));
            assert_eq!(p.seed_edge, i);
            assert_eq!(p.order.len(), 4);
            assert_eq!(p.levels.len(), 2);
        }
    }

    /// Fig. 2b: ΔM_1 seeds on (u0,u1); both remaining vertices read only
    /// the new view N'.
    #[test]
    fn delta_plan_0_matches_fig2b() {
        let q = kite();
        let p = compile_incremental_one(&q, 0, PlanOptions::default());
        assert_eq!(&p.order[..2], &[0, 1]);
        for lvl in &p.levels {
            for c in &lvl.constraints {
                assert_eq!(c.view, ViewSel::New, "edge {} should be N'", c.edge);
            }
        }
    }

    /// Fig. 2d: ΔM_3 seeds on (u1,u2); u0's constraints (edges 0,1 < 2) read
    /// the old view; u3's constraints (edges 3,4 > 2) read the new view.
    #[test]
    fn delta_plan_2_matches_fig2d() {
        let q = kite();
        let p = compile_incremental_one(&q, 2, PlanOptions::default());
        assert_eq!(&p.order[..2], &[1, 2]);
        for lvl in &p.levels {
            for c in &lvl.constraints {
                let expect = if c.edge < 2 { ViewSel::Old } else { ViewSel::New };
                assert_eq!(c.view, expect, "edge {}", c.edge);
            }
        }
        // Both remaining vertices close two backward edges each.
        assert!(p.levels.iter().all(|l| l.constraints.len() == 2));
    }

    /// Fig. 2f: ΔM_5 seeds on (u2,u3); every other relation (0..4) reads the
    /// old view.
    #[test]
    fn delta_plan_last_reads_only_old_views() {
        let q = kite();
        let p = compile_incremental_one(&q, 4, PlanOptions::default());
        for lvl in &p.levels {
            for c in &lvl.constraints {
                assert_eq!(c.view, ViewSel::Old);
            }
        }
    }

    #[test]
    fn static_plan_reads_current_graph() {
        let q = kite();
        let p = compile_static(&q, PlanOptions::default());
        assert_eq!(p.delta_index, None);
        for lvl in &p.levels {
            assert!(!lvl.constraints.is_empty());
            for c in &lvl.constraints {
                assert_eq!(c.view, ViewSel::New);
            }
        }
        // Dense seed: (1,2) has combined degree 6, the maximum.
        assert_eq!(p.seed_edge, q.edge_index(1, 2));
    }

    #[test]
    fn every_level_has_backward_constraints_for_all_queries() {
        for q in queries::all() {
            for p in std::iter::once(compile_static(&q, PlanOptions::default()))
                .chain(compile_incremental(&q, PlanOptions::default()))
            {
                assert_eq!(p.levels.len(), q.num_vertices() - 2);
                for lvl in &p.levels {
                    assert!(!lvl.constraints.is_empty(), "{} plan {:?}", q.name(), p.delta_index);
                    for c in &lvl.constraints {
                        assert!(c.pos < p.order.len());
                    }
                }
                // Order is a permutation of the pattern vertices.
                let mut sorted = p.order.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..q.num_vertices()).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn constraint_count_sums_to_m_minus_one() {
        // Every non-seed edge appears exactly once as a constraint.
        for q in queries::all() {
            for p in compile_incremental(&q, PlanOptions::default()) {
                let mut edges: Vec<usize> =
                    p.levels.iter().flat_map(|l| l.constraints.iter().map(|c| c.edge)).collect();
                edges.sort_unstable();
                edges.dedup();
                assert_eq!(edges.len(), q.num_edges() - 1);
                assert!(!edges.contains(&p.seed_edge));
            }
        }
    }

    #[test]
    fn symmetry_breaking_compiles_to_bound_checks() {
        let q = queries::triangle();
        let p = compile_static(&q, PlanOptions { symmetry_break: true });
        // Triangle conds: 0<1, 0<2, 1<2 on pattern ids. Order is some
        // permutation; combined seed_cond + level checks must encode all
        // three conditions.
        let lvl = &p.levels[0];
        assert!(p.seed_cond.is_some());
        assert_eq!(lvl.lt.len() + lvl.gt.len(), 2);
    }

    #[test]
    fn symmetry_breaking_absent_by_default() {
        let q = queries::triangle();
        let p = compile_static(&q, PlanOptions::default());
        assert!(p.seed_cond.is_none());
        assert!(p.levels.iter().all(|l| l.lt.is_empty() && l.gt.is_empty()));
    }
}
