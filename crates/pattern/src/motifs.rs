//! Enumeration of all connected motifs of a given size.
//!
//! Fig. 11 of the paper counts *all* size-3, size-4, and size-5 motifs on
//! the road networks ("we tested the performance with all size-3, 4, and 5
//! motifs instead of specific patterns"). This module generates those motif
//! sets: every connected graph on `k` vertices, one representative per
//! isomorphism class (2 / 6 / 21 classes for k = 3 / 4 / 5).

use crate::query::QueryGraph;
use std::collections::HashSet;

/// All connected non-isomorphic unlabeled graphs on `k` vertices
/// (2 ≤ k ≤ 6), named `m<k>_<index>` in generation order.
pub fn connected_motifs(k: usize) -> Vec<QueryGraph> {
    assert!((2..=6).contains(&k), "motif size {k} unsupported");
    let pairs: Vec<(usize, usize)> = (0..k).flat_map(|a| (a + 1..k).map(move |b| (a, b))).collect();
    let m = pairs.len();
    let mut seen: HashSet<Vec<u64>> = HashSet::new();
    let mut out = Vec::new();
    for mask in 0u32..(1 << m) {
        if (mask.count_ones() as usize) < k - 1 {
            continue; // cannot be connected
        }
        let edges: Vec<(usize, usize)> =
            (0..m).filter(|&i| mask & (1 << i) != 0).map(|i| pairs[i]).collect();
        if !covers_all_vertices(k, &edges) || !is_connected(k, &edges) {
            continue;
        }
        let q = QueryGraph::new("tmp", k, &edges);
        if seen.insert(q.canonical_form()) {
            let name = format!("m{}_{}", k, out.len() + 1);
            out.push(QueryGraph::new(&name, k, &edges));
        }
    }
    out
}

fn covers_all_vertices(k: usize, edges: &[(usize, usize)]) -> bool {
    let mut mask = 0u16;
    for &(a, b) in edges {
        mask |= 1 << a;
        mask |= 1 << b;
    }
    mask.count_ones() as usize == k
}

fn is_connected(k: usize, edges: &[(usize, usize)]) -> bool {
    let mut parent: Vec<usize> = (0..k).collect();
    fn find(p: &mut Vec<usize>, x: usize) -> usize {
        if p[x] != x {
            let r = find(p, p[x]);
            p[x] = r;
        }
        p[x]
    }
    for &(a, b) in edges {
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            parent[ra] = rb;
        }
    }
    let r0 = find(&mut parent, 0);
    (1..k).all(|v| find(&mut parent, v) == r0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_oeis_a001349() {
        // Connected graphs on n nodes: 1, 2, 6, 21, 112 for n = 2..6.
        assert_eq!(connected_motifs(2).len(), 1);
        assert_eq!(connected_motifs(3).len(), 2);
        assert_eq!(connected_motifs(4).len(), 6);
        assert_eq!(connected_motifs(5).len(), 21);
        assert_eq!(connected_motifs(6).len(), 112);
    }

    #[test]
    fn size3_motifs_are_path_and_triangle() {
        let ms = connected_motifs(3);
        let edge_counts: Vec<usize> = ms.iter().map(|m| m.num_edges()).collect();
        assert!(edge_counts.contains(&2)); // path
        assert!(edge_counts.contains(&3)); // triangle
    }

    #[test]
    fn all_motifs_connected_and_distinct() {
        let ms = connected_motifs(5);
        let mut canon = HashSet::new();
        for m in &ms {
            assert!(canon.insert(m.canonical_form()), "duplicate motif");
            assert_eq!(m.num_vertices(), 5);
        }
    }

    #[test]
    fn motif_names_are_sequential() {
        let ms = connected_motifs(4);
        assert_eq!(ms[0].name(), "m4_1");
        assert_eq!(ms[5].name(), "m4_6");
    }
}
