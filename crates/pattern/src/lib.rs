//! # gcsm-pattern — query patterns and worst-case-optimal-join plans
//!
//! This crate owns everything about the *query* side of continuous subgraph
//! matching:
//!
//! * [`QueryGraph`] — small connected (optionally labeled) patterns, with
//!   the fixed global edge numbering `R_1..R_m` that the incremental view
//!   maintenance decomposition of Eq. (1) is defined over;
//! * [`queries`] — the evaluation query set Q1–Q6 (sizes 5–7, standing in
//!   for the paper's Fig. 7) and the running example from Fig. 1;
//! * [`motifs`] — enumeration of all connected non-isomorphic graphs of a
//!   given size (the paper's Fig. 11 counts all size-3/4/5 motifs);
//! * [`automorphism`] — automorphism groups and the symmetry-breaking
//!   first-vertex conditions used for unique-subgraph counting;
//! * [`plan`] — compilation of a query into nested-loop matching plans: one
//!   **static** plan (Fig. 2a) and `m` **incremental delta plans**
//!   (Fig. 2b–f), each recording which neighbor view (`N` old / `N'` new)
//!   every set intersection must read, per Eq. (1).

//! ```
//! use gcsm_pattern::{compile_incremental, queries, PlanOptions, ViewSel};
//!
//! // The paper's Fig. 1 kite has five edges ⇒ five delta plans (Fig. 2b–f).
//! let kite = queries::fig1_kite();
//! let plans = compile_incremental(&kite, PlanOptions::default());
//! assert_eq!(plans.len(), 5);
//!
//! // ΔM_1 reads only new views; ΔM_5 reads only old views (Eq. (1)).
//! assert!(plans[0].levels.iter().all(|l| l.constraints.iter().all(|c| c.view == ViewSel::New)));
//! assert!(plans[4].levels.iter().all(|l| l.constraints.iter().all(|c| c.view == ViewSel::Old)));
//! ```

pub mod agm;
pub mod automorphism;
pub mod explain;
pub mod motifs;
pub mod plan;
pub mod queries;
pub mod query;
pub mod validate;

pub use agm::{agm_bound, delta_bound, min_fractional_edge_cover, EdgeCover};
pub use automorphism::{automorphisms, symmetry_break_conditions};
pub use explain::explain_plan;
pub use motifs::connected_motifs;
pub use plan::{
    compile_incremental, compile_incremental_one, compile_incremental_scored, compile_static,
    Constraint, LevelPlan, MatchPlan, PlanOptions, ViewSel,
};
pub use query::QueryGraph;
pub use validate::validate_plan;
