//! Incremental cache maintenance (extension beyond the paper).
//!
//! GCSM re-packs and re-ships the whole DCSR every batch. When consecutive
//! batches select overlapping vertex sets — common, because hot regions
//! persist — much of that DMA is redundant. [`DeltaPlanner`] diffs the new
//! selection against what is already resident and produces the minimal
//! transfer plan: rows to add, rows to drop, and rows whose lists changed
//! (their vertex was updated this batch) and must be re-sent.
//!
//! **Seal-time snapshot invariant.** The `updated` set handed to
//! [`DeltaPlan::diff`] / [`DeltaPlanner::update`] must be the one captured
//! when the batch was sealed — [`updated_set`] derives it from the sealed
//! [`BatchSummary`](gcsm_graph::BatchSummary), independent of graph phase.
//! `DynamicGraph::updated_vertices()` is cleared by `reorganize()`, so
//! diffing against the live graph after (or concurrently with)
//! reorganization would silently classify changed rows as `keep` and leave
//! a stale device cache.
//!
//! The ablation bench (`cache_delta` in `gcsm-bench`) quantifies the DMA
//! saved. Correctness is unaffected: the packed result is byte-identical
//! to a fresh pack of the surviving selection (tested below), so the
//! matcher sees the same cache.

use crate::Dcsr;
use gcsm_graph::{DynamicGraph, EdgeUpdate, VertexId};

/// Sorted, deduplicated endpoints of a sealed batch — the seal-time
/// snapshot of `DynamicGraph::updated_vertices()`, derivable from the
/// [`BatchSummary`](gcsm_graph::BatchSummary) alone so it stays valid after
/// (or during an overlapped) `reorganize()`.
pub fn updated_set(applied: &[EdgeUpdate]) -> Vec<VertexId> {
    let mut v: Vec<VertexId> = applied.iter().flat_map(|u| [u.src, u.dst]).collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// A minimal-transfer plan between two consecutive cache generations.
#[derive(Clone, Debug, Default)]
pub struct DeltaPlan {
    /// Vertices newly selected (their lists must be shipped).
    pub add: Vec<VertexId>,
    /// Previously cached vertices no longer selected.
    pub drop: Vec<VertexId>,
    /// Still-selected vertices whose lists changed this batch.
    pub refresh: Vec<VertexId>,
    /// Still-selected, unchanged vertices (no transfer needed).
    pub keep: Vec<VertexId>,
    /// Selected vertices evicted to honor the device-memory budget (they
    /// are *not* resident and not part of the packed cache).
    pub evicted: Vec<VertexId>,
}

impl DeltaPlan {
    /// Diff `new_selection` (sorted) against `resident` (sorted) given the
    /// batch's seal-time updated set (sorted; see [`updated_set`]).
    pub fn diff(resident: &[VertexId], new_selection: &[VertexId], updated: &[VertexId]) -> Self {
        let mut plan = DeltaPlan::default();
        let (mut i, mut j) = (0, 0);
        while i < resident.len() || j < new_selection.len() {
            match (resident.get(i), new_selection.get(j)) {
                (Some(&r), Some(&s)) if r == s => {
                    if updated.binary_search(&r).is_ok() {
                        plan.refresh.push(r);
                    } else {
                        plan.keep.push(r);
                    }
                    i += 1;
                    j += 1;
                }
                (Some(&r), Some(&s)) if r < s => {
                    plan.drop.push(r);
                    i += 1;
                }
                (Some(_), Some(&s)) => {
                    plan.add.push(s);
                    j += 1;
                }
                (Some(&r), None) => {
                    plan.drop.push(r);
                    i += 1;
                }
                (None, Some(&s)) => {
                    plan.add.push(s);
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        plan
    }

    /// Bytes that must cross PCIe under this plan (added + refreshed rows).
    pub fn transfer_bytes(&self, graph: &DynamicGraph) -> usize {
        self.add.iter().chain(&self.refresh).map(|&v| graph.list_bytes(v)).sum()
    }

    /// Fraction of the full-pack volume this plan avoids. An empty
    /// `full_selection` means nothing needed shipping at all, so everything
    /// was saved: 1.0 (not 0.0, which would read as "shipped everything").
    pub fn savings(&self, graph: &DynamicGraph, full_selection: &[VertexId]) -> f64 {
        let full: usize = full_selection.iter().map(|&v| graph.list_bytes(v)).sum();
        if full == 0 {
            return 1.0;
        }
        1.0 - self.transfer_bytes(graph) as f64 / full as f64
    }

    /// Remove `evicted` (sorted) from the add/refresh/keep partitions and
    /// record them, so transfer and residency reflect only survivors.
    fn apply_eviction(&mut self, evicted: Vec<VertexId>) {
        if evicted.is_empty() {
            return;
        }
        let gone = |v: &VertexId| evicted.binary_search(v).is_err();
        self.add.retain(gone);
        self.refresh.retain(gone);
        self.keep.retain(gone);
        self.evicted = evicted;
    }
}

/// Stateful incremental cache builder: tracks which rows are device
/// resident across batches and turns each new selection into a minimal
/// transfer plan plus the packed cache image.
#[derive(Clone, Debug, Default)]
pub struct DeltaPlanner {
    resident: Vec<VertexId>,
}

impl DeltaPlanner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Currently resident rows.
    pub fn resident(&self) -> &[VertexId] {
        &self.resident
    }

    /// Drop all residency state (e.g. after a device reset).
    pub fn clear(&mut self) {
        self.resident.clear();
    }

    /// Plan the transfer for `selection` given the batch's seal-time
    /// `updated` snapshot (see [`updated_set`]), rebuild the (logical)
    /// cache, and report the plan. The returned [`Dcsr`] equals a fresh
    /// pack of `selection`; the plan tells the caller how many bytes
    /// actually need shipping.
    pub fn update(
        &mut self,
        graph: &DynamicGraph,
        selection: &[VertexId],
        updated: &[VertexId],
    ) -> (Dcsr, DeltaPlan) {
        self.update_bounded(graph, selection, updated, usize::MAX)
    }

    /// Like [`Self::update`], but enforces a device-memory capacity of
    /// `budget_bytes` on the resident footprint (row payload + per-row DCSR
    /// metadata). When the selection exceeds the budget at current list
    /// sizes, the largest rows are evicted first (ties broken by vertex id)
    /// until the rest fits; evictions are recorded in the plan and excluded
    /// from both the packed cache and the new resident set.
    pub fn update_bounded(
        &mut self,
        graph: &DynamicGraph,
        selection: &[VertexId],
        updated: &[VertexId],
        budget_bytes: usize,
    ) -> (Dcsr, DeltaPlan) {
        let mut plan = DeltaPlan::diff(&self.resident, selection, updated);
        let footprint: usize =
            selection.iter().map(|&v| graph.list_bytes(v) + Dcsr::ROW_META_BYTES).sum();
        let survivors: Vec<VertexId> = if footprint > budget_bytes {
            let mut rows: Vec<(usize, VertexId)> =
                selection.iter().map(|&v| (graph.list_bytes(v), v)).collect();
            rows.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            let mut excess = footprint - budget_bytes;
            let mut evicted = Vec::new();
            for (bytes, v) in rows {
                if excess == 0 {
                    break;
                }
                evicted.push(v);
                excess = excess.saturating_sub(bytes + Dcsr::ROW_META_BYTES);
            }
            evicted.sort_unstable();
            let keep =
                selection.iter().copied().filter(|v| evicted.binary_search(v).is_err()).collect();
            plan.apply_eviction(evicted);
            keep
        } else {
            selection.to_vec()
        };
        let dcsr = Dcsr::pack(graph, &survivors);
        self.resident = survivors;
        (dcsr, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcsm_graph::{CsrGraph, EdgeUpdate};

    fn sealed(edges: &[(u32, u32)], batch: &[EdgeUpdate]) -> DynamicGraph {
        let mut g = DynamicGraph::from_csr(&CsrGraph::from_edges(8, edges));
        g.apply_batch(batch);
        g
    }

    #[test]
    fn diff_partitions_correctly() {
        let plan = DeltaPlan::diff(&[1, 2, 3, 5], &[2, 3, 4, 6], &[3, 4]);
        assert_eq!(plan.drop, vec![1, 5]);
        assert_eq!(plan.add, vec![4, 6]);
        assert_eq!(plan.refresh, vec![3]);
        assert_eq!(plan.keep, vec![2]);
        assert!(plan.evicted.is_empty());
    }

    #[test]
    fn empty_to_full_ships_everything() {
        let g = sealed(&[(0, 1), (1, 2)], &[EdgeUpdate::insert(2, 3)]);
        let plan = DeltaPlan::diff(&[], &[1, 2], g.updated_vertices());
        assert_eq!(plan.add, vec![1, 2]);
        assert_eq!(plan.transfer_bytes(&g), g.list_bytes(1) + g.list_bytes(2));
        assert_eq!(plan.savings(&g, &[1, 2]), 0.0);
    }

    #[test]
    fn savings_is_total_when_nothing_needs_shipping() {
        let g = sealed(&[(0, 1)], &[EdgeUpdate::insert(1, 2)]);
        let plan = DeltaPlan::diff(&[], &[], &[]);
        // Empty full selection: everything was saved, not "shipped all".
        assert_eq!(plan.savings(&g, &[]), 1.0);
        // Zero-byte rows (isolated vertices) degenerate the same way.
        assert_eq!(plan.savings(&g, &[6, 7]), 1.0);
    }

    #[test]
    fn stable_selection_ships_only_updates() {
        let g = sealed(&[(0, 1), (1, 2), (2, 3)], &[EdgeUpdate::insert(1, 3)]);
        // updated vertices: 1 and 3
        let plan = DeltaPlan::diff(&[0, 1, 2], &[0, 1, 2], g.updated_vertices());
        assert_eq!(plan.keep, vec![0, 2]);
        assert_eq!(plan.refresh, vec![1]);
        assert!(plan.add.is_empty() && plan.drop.is_empty());
        assert!(plan.savings(&g, &[0, 1, 2]) > 0.0);
    }

    #[test]
    fn planner_produces_identical_dcsr_to_fresh_pack() {
        let g = sealed(&[(0, 1), (0, 2), (1, 2), (2, 3)], &[EdgeUpdate::insert(3, 4)]);
        let selection = vec![0u32, 2, 3];
        let mut planner = DeltaPlanner::new();
        let (dcsr, plan) = planner.update(&g, &selection, g.updated_vertices());
        let fresh = Dcsr::pack(&g, &selection);
        assert_eq!(dcsr.rowidx, fresh.rowidx);
        assert_eq!(dcsr.rowptr, fresh.rowptr);
        assert_eq!(dcsr.colidx, fresh.colidx);
        assert_eq!(plan.add, selection);
        assert_eq!(planner.resident(), &selection[..]);
    }

    #[test]
    fn updated_set_matches_seal_time_snapshot() {
        let mut g =
            DynamicGraph::from_csr(&CsrGraph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 4)]));
        g.begin_batch();
        g.apply(EdgeUpdate::insert(1, 4));
        g.apply(EdgeUpdate::delete(2, 3));
        g.apply(EdgeUpdate::insert(0, 1)); // duplicate — skipped
        let summary = g.seal_batch();
        assert_eq!(updated_set(&summary.applied), g.updated_vertices());
    }

    #[test]
    fn planner_stays_correct_after_reorganize() {
        // Regression: diffing against graph.updated_vertices() after
        // reorganize() sees an empty set and misclassifies changed rows as
        // `keep`. The seal-time snapshot keeps the refresh visible.
        let mut g = sealed(&[(0, 1), (1, 2), (2, 3)], &[EdgeUpdate::insert(1, 3)]);
        let snapshot = updated_set(&g.sealed_batch().applied);
        let mut planner = DeltaPlanner::new();
        planner.update(&g, &[0, 1, 2], &snapshot); // warm residency
        g.reorganize();
        assert!(g.updated_vertices().is_empty());
        let (_, plan) = planner.update(&g, &[0, 1, 2], &snapshot);
        assert_eq!(plan.refresh, vec![1], "changed row must refresh, not keep");
        assert_eq!(plan.keep, vec![0, 2]);
    }

    #[test]
    fn eviction_honors_budget_and_prefers_large_rows() {
        let g =
            sealed(&[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (3, 4)], &[EdgeUpdate::insert(5, 6)]);
        // Row 0 has degree 4 (largest). Budget that fits all but one row at
        // current sizes forces evicting row 0 first.
        let selection = vec![0u32, 1, 2, 3];
        let full: usize = selection.iter().map(|&v| g.list_bytes(v) + Dcsr::ROW_META_BYTES).sum();
        let budget = full - 1;
        let mut planner = DeltaPlanner::new();
        let (dcsr, plan) = planner.update_bounded(&g, &selection, &[5, 6], budget);
        assert_eq!(plan.evicted, vec![0]);
        assert_eq!(dcsr.rowidx, vec![1, 2, 3]);
        assert_eq!(planner.resident(), &[1, 2, 3]);
        // Evicted rows ship nothing.
        assert!(!plan.add.contains(&0));
        let resident_bytes: usize =
            planner.resident().iter().map(|&v| g.list_bytes(v) + Dcsr::ROW_META_BYTES).sum();
        assert!(resident_bytes <= budget);
        // Packed image equals a fresh pack of the survivors.
        let fresh = Dcsr::pack(&g, &[1, 2, 3]);
        assert_eq!(dcsr.colidx, fresh.colidx);
    }

    #[test]
    fn eviction_is_stable_for_generous_budget() {
        let g = sealed(&[(0, 1), (1, 2)], &[EdgeUpdate::insert(2, 3)]);
        let mut planner = DeltaPlanner::new();
        let (_, plan) = planner.update_bounded(&g, &[0, 1, 2], &[2, 3], usize::MAX);
        assert!(plan.evicted.is_empty());
        assert_eq!(planner.resident(), &[0, 1, 2]);
    }
}
