//! Incremental cache maintenance (extension beyond the paper).
//!
//! GCSM re-packs and re-ships the whole DCSR every batch. When consecutive
//! batches select overlapping vertex sets — common, because hot regions
//! persist — much of that DMA is redundant. [`DeltaPlanner`] diffs the new
//! selection against what is already resident and produces the minimal
//! transfer plan: rows to add, rows to drop, and rows whose lists changed
//! (their vertex was updated this batch) and must be re-sent.
//!
//! The ablation bench (`cache_delta` in `gcsm-bench`) quantifies the DMA
//! saved. Correctness is unaffected: the packed result is byte-identical
//! to a fresh pack (tested below), so the matcher sees the same cache.

use crate::Dcsr;
use gcsm_graph::{DynamicGraph, VertexId};

/// A minimal-transfer plan between two consecutive cache generations.
#[derive(Clone, Debug, Default)]
pub struct DeltaPlan {
    /// Vertices newly selected (their lists must be shipped).
    pub add: Vec<VertexId>,
    /// Previously cached vertices no longer selected.
    pub drop: Vec<VertexId>,
    /// Still-selected vertices whose lists changed this batch.
    pub refresh: Vec<VertexId>,
    /// Still-selected, unchanged vertices (no transfer needed).
    pub keep: Vec<VertexId>,
}

impl DeltaPlan {
    /// Diff `new_selection` (sorted) against `resident` (sorted) given the
    /// batch's updated vertices (sorted).
    pub fn diff(resident: &[VertexId], new_selection: &[VertexId], updated: &[VertexId]) -> Self {
        let mut plan = DeltaPlan::default();
        let (mut i, mut j) = (0, 0);
        while i < resident.len() || j < new_selection.len() {
            match (resident.get(i), new_selection.get(j)) {
                (Some(&r), Some(&s)) if r == s => {
                    if updated.binary_search(&r).is_ok() {
                        plan.refresh.push(r);
                    } else {
                        plan.keep.push(r);
                    }
                    i += 1;
                    j += 1;
                }
                (Some(&r), Some(&s)) if r < s => {
                    plan.drop.push(r);
                    i += 1;
                }
                (Some(_), Some(&s)) => {
                    plan.add.push(s);
                    j += 1;
                }
                (Some(&r), None) => {
                    plan.drop.push(r);
                    i += 1;
                }
                (None, Some(&s)) => {
                    plan.add.push(s);
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        plan
    }

    /// Bytes that must cross PCIe under this plan (added + refreshed rows).
    pub fn transfer_bytes(&self, graph: &DynamicGraph) -> usize {
        self.add.iter().chain(&self.refresh).map(|&v| graph.list_bytes(v)).sum()
    }

    /// Fraction of the full-pack volume this plan avoids.
    pub fn savings(&self, graph: &DynamicGraph, full_selection: &[VertexId]) -> f64 {
        let full: usize = full_selection.iter().map(|&v| graph.list_bytes(v)).sum();
        if full == 0 {
            return 0.0;
        }
        1.0 - self.transfer_bytes(graph) as f64 / full as f64
    }
}

/// Stateful incremental cache builder.
#[derive(Default)]
pub struct DeltaPlanner {
    resident: Vec<VertexId>,
}

impl DeltaPlanner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Currently resident rows.
    pub fn resident(&self) -> &[VertexId] {
        &self.resident
    }

    /// Plan the transfer for `selection`, rebuild the (logical) cache, and
    /// report the plan. The returned [`Dcsr`] equals a fresh pack of
    /// `selection`; the plan tells the caller how many bytes actually need
    /// shipping.
    pub fn update(&mut self, graph: &DynamicGraph, selection: &[VertexId]) -> (Dcsr, DeltaPlan) {
        let plan = DeltaPlan::diff(&self.resident, selection, graph.updated_vertices());
        let dcsr = Dcsr::pack(graph, selection);
        self.resident = selection.to_vec();
        (dcsr, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcsm_graph::{CsrGraph, EdgeUpdate};

    fn sealed(edges: &[(u32, u32)], batch: &[EdgeUpdate]) -> DynamicGraph {
        let mut g = DynamicGraph::from_csr(&CsrGraph::from_edges(8, edges));
        g.apply_batch(batch);
        g
    }

    #[test]
    fn diff_partitions_correctly() {
        let plan = DeltaPlan::diff(&[1, 2, 3, 5], &[2, 3, 4, 6], &[3, 4]);
        assert_eq!(plan.drop, vec![1, 5]);
        assert_eq!(plan.add, vec![4, 6]);
        assert_eq!(plan.refresh, vec![3]);
        assert_eq!(plan.keep, vec![2]);
    }

    #[test]
    fn empty_to_full_ships_everything() {
        let g = sealed(&[(0, 1), (1, 2)], &[EdgeUpdate::insert(2, 3)]);
        let plan = DeltaPlan::diff(&[], &[1, 2], g.updated_vertices());
        assert_eq!(plan.add, vec![1, 2]);
        assert_eq!(plan.transfer_bytes(&g), g.list_bytes(1) + g.list_bytes(2));
        assert_eq!(plan.savings(&g, &[1, 2]), 0.0);
    }

    #[test]
    fn stable_selection_ships_only_updates() {
        let g = sealed(&[(0, 1), (1, 2), (2, 3)], &[EdgeUpdate::insert(1, 3)]);
        // updated vertices: 1 and 3
        let plan = DeltaPlan::diff(&[0, 1, 2], &[0, 1, 2], g.updated_vertices());
        assert_eq!(plan.keep, vec![0, 2]);
        assert_eq!(plan.refresh, vec![1]);
        assert!(plan.add.is_empty() && plan.drop.is_empty());
        assert!(plan.savings(&g, &[0, 1, 2]) > 0.0);
    }

    #[test]
    fn planner_produces_identical_dcsr_to_fresh_pack() {
        let g = sealed(&[(0, 1), (0, 2), (1, 2), (2, 3)], &[EdgeUpdate::insert(3, 4)]);
        let selection = vec![0u32, 2, 3];
        let mut planner = DeltaPlanner::new();
        let (dcsr, plan) = planner.update(&g, &selection);
        let fresh = Dcsr::pack(&g, &selection);
        assert_eq!(dcsr.rowidx, fresh.rowidx);
        assert_eq!(dcsr.rowptr, fresh.rowptr);
        assert_eq!(dcsr.colidx, fresh.colidx);
        assert_eq!(plan.add, selection);
        assert_eq!(planner.resident(), &selection[..]);
    }
}
