//! # gcsm-cache — the DCSR neighbor-list cache (paper Sec. V-B, Fig. 6)
//!
//! Before each GPU matching kernel, GCSM packs the neighbor lists of the
//! selected (high-frequency) vertices into a Doubly Compressed Sparse Row
//! structure and ships it to device memory in **one** DMA transaction:
//!
//! * `rowidx` — the selected vertex ids, sorted, so the kernel can resolve
//!   any vertex with a binary search;
//! * `colidx` — the raw adjacency entries of the selected vertices,
//!   concatenated. Entries keep the dynamic-graph encoding: tombstoned
//!   (deleted) neighbors carry the mark bit (the paper stores `-v`), and
//!   the neighbors appended by the current batch sit at the end of each
//!   list;
//! * `rowptr` — per selected vertex, **two** offsets into `colidx`: the
//!   start of the original list and the start of the appended tail (`-1`
//!   when the vertex gained no new neighbors). A final entry holds
//!   `colidx.len()`.
//!
//! Because both offsets are explicit, the cached data serves both the old
//! view `N` (original segment, tombstones included) and the new view `N'`
//! (original segment with tombstones skipped + appended tail) without any
//! reformatting — the same trick the CPU-side layout uses.

pub mod delta;
pub use delta::{updated_set, DeltaPlan, DeltaPlanner};

use gcsm_graph::{DynamicGraph, NeighborView, VertexId};

/// Sentinel for "no appended neighbors" in the second `rowptr` offset.
pub const NO_TAIL: i64 = -1;

/// The packed cache.
#[derive(Clone, Debug, Default)]
pub struct Dcsr {
    /// Selected vertices, ascending.
    pub rowidx: Vec<VertexId>,
    /// `(orig_start, tail_start_or_-1)` per vertex; one extra terminator
    /// entry `(colidx.len(), -1)`.
    pub rowptr: Vec<(i64, i64)>,
    /// Concatenated raw adjacency entries (dynamic-graph encoding).
    pub colidx: Vec<u32>,
}

impl Dcsr {
    /// Per-row metadata bytes beyond the raw list payload: one `rowidx`
    /// entry plus one `(i64, i64)` `rowptr` pair. Used when budgeting the
    /// device-resident footprint of a selection.
    pub const ROW_META_BYTES: usize =
        std::mem::size_of::<VertexId>() + std::mem::size_of::<(i64, i64)>();

    /// Pack the raw lists of `vertices` (must be sorted ascending, no
    /// duplicates) from the sealed dynamic graph. The three arrays are
    /// sized exactly (the paper: "the sizes of the three arrays are known
    /// before data copying ... a single memory allocation").
    pub fn pack(graph: &DynamicGraph, vertices: &[VertexId]) -> Self {
        debug_assert!(vertices.windows(2).all(|w| w[0] < w[1]), "rowidx must be sorted unique");
        let total: usize = vertices.iter().map(|&v| graph.raw_list(v).0.len()).sum();
        let mut rowidx = Vec::with_capacity(vertices.len());
        let mut rowptr = Vec::with_capacity(vertices.len() + 1);
        let mut colidx = Vec::with_capacity(total);
        for &v in vertices {
            let (raw, old_len) = graph.raw_list(v);
            let start = colidx.len() as i64;
            let tail_start = if old_len < raw.len() { start + old_len as i64 } else { NO_TAIL };
            rowidx.push(v);
            rowptr.push((start, tail_start));
            colidx.extend_from_slice(raw);
        }
        rowptr.push((colidx.len() as i64, NO_TAIL));
        Self { rowidx, rowptr, colidx }
    }

    /// Number of cached vertices.
    pub fn len(&self) -> usize {
        self.rowidx.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.rowidx.is_empty()
    }

    /// Total bytes of the three arrays — the size of the single DMA
    /// transfer that ships the cache.
    pub fn bytes(&self) -> usize {
        self.rowidx.len() * std::mem::size_of::<VertexId>()
            + self.rowptr.len() * std::mem::size_of::<(i64, i64)>()
            + self.colidx.len() * std::mem::size_of::<u32>()
    }

    /// Binary-search `rowidx` for `v` (the per-access lookup the GPU kernel
    /// performs, Sec. V-C). Returns the row index on a hit.
    #[inline]
    pub fn find(&self, v: VertexId) -> Option<usize> {
        self.rowidx.binary_search(&v).ok()
    }

    /// The raw `(prefix, tail)` segments of cached row `row`.
    #[inline]
    pub fn segments(&self, row: usize) -> (&[u32], &[u32]) {
        let (start, tail) = self.rowptr[row];
        let end = self.rowptr[row + 1].0;
        let split = if tail == NO_TAIL { end } else { tail };
        (&self.colidx[start as usize..split as usize], &self.colidx[split as usize..end as usize])
    }

    /// Neighbor view of a cached vertex. `old = true` yields the paper's
    /// `N` (pre-batch), otherwise `N'`.
    #[inline]
    pub fn view(&self, row: usize, old: bool) -> NeighborView<'_> {
        let (prefix, tail) = self.segments(row);
        if old {
            NeighborView::old(prefix)
        } else {
            NeighborView::new_view(prefix, tail)
        }
    }

    /// Bytes of the raw list stored for row `row` (payload read on a cache
    /// hit).
    #[inline]
    pub fn row_bytes(&self, row: usize) -> usize {
        let start = self.rowptr[row].0;
        let end = self.rowptr[row + 1].0;
        (end - start) as usize * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcsm_graph::{CsrGraph, EdgeUpdate};

    /// Rebuild the paper's Fig. 5/6 scenario: after the update, v3 gained a
    /// new neighbor and v4 did not; caching {v3, v4} must produce rowptr
    /// entries (0, tail) and (·, -1).
    #[test]
    fn fig6_layout() {
        // Initial: v3-v1, v4-v5, v4-v6 (shape only; ids matter, topology is
        // illustrative).
        let g0 = CsrGraph::from_edges(7, &[(3, 1), (4, 5), (4, 6)]);
        let mut g = gcsm_graph::DynamicGraph::from_csr(&g0);
        g.begin_batch();
        g.apply(EdgeUpdate::insert(3, 2)); // v3 gains neighbor v2
        g.seal_batch();

        let d = Dcsr::pack(&g, &[3, 4]);
        assert_eq!(d.rowidx, vec![3, 4]);
        // v3: original [1] at 0, tail [2] at 1.
        assert_eq!(d.rowptr[0], (0, 1));
        // v4: original [5, 6] at 2, no tail.
        assert_eq!(d.rowptr[1], (2, NO_TAIL));
        // Terminator = colidx length.
        assert_eq!(d.rowptr[2].0, 4);
        assert_eq!(d.colidx, vec![1, 2, 5, 6]);
    }

    #[test]
    fn lookup_hit_and_miss() {
        let g0 = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3)]);
        let mut g = gcsm_graph::DynamicGraph::from_csr(&g0);
        g.begin_batch();
        g.seal_batch();
        let d = Dcsr::pack(&g, &[1, 3]);
        assert_eq!(d.find(1), Some(0));
        assert_eq!(d.find(3), Some(1));
        assert_eq!(d.find(0), None);
        assert_eq!(d.find(2), None);
        assert_eq!(d.find(4), None);
    }

    #[test]
    fn views_match_dynamic_graph() {
        let g0 = CsrGraph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (1, 2), (2, 3), (3, 4)]);
        let mut g = gcsm_graph::DynamicGraph::from_csr(&g0);
        g.begin_batch();
        g.apply(EdgeUpdate::insert(0, 5));
        g.apply(EdgeUpdate::delete(0, 2));
        g.apply(EdgeUpdate::insert(2, 4));
        g.seal_batch();

        let cached: Vec<VertexId> = vec![0, 2, 4];
        let d = Dcsr::pack(&g, &cached);
        for &v in &cached {
            let row = d.find(v).unwrap();
            assert_eq!(d.view(row, true).to_vec(), g.old_view(v).to_vec(), "old view v{v}");
            assert_eq!(d.view(row, false).to_vec(), g.new_view(v).to_vec(), "new view v{v}");
        }
    }

    #[test]
    fn bytes_accounting() {
        let g0 = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut g = gcsm_graph::DynamicGraph::from_csr(&g0);
        g.begin_batch();
        g.seal_batch();
        let d = Dcsr::pack(&g, &[1, 2]);
        // rowidx: 2×4; rowptr: 3×16; colidx: 4×4.
        assert_eq!(d.bytes(), 8 + 48 + 16);
        assert_eq!(d.row_bytes(0), 8);
    }

    #[test]
    fn empty_cache() {
        let g0 = CsrGraph::from_edges(2, &[(0, 1)]);
        let mut g = gcsm_graph::DynamicGraph::from_csr(&g0);
        g.begin_batch();
        g.seal_batch();
        let d = Dcsr::pack(&g, &[]);
        assert!(d.is_empty());
        assert_eq!(d.find(0), None);
        assert_eq!(d.rowptr.len(), 1);
    }

    #[test]
    fn isolated_vertex_cached_as_empty_row() {
        let g0 = CsrGraph::from_edges(3, &[(0, 1)]);
        let mut g = gcsm_graph::DynamicGraph::from_csr(&g0);
        g.begin_batch();
        g.seal_batch();
        let d = Dcsr::pack(&g, &[2]);
        let row = d.find(2).unwrap();
        let (p, t) = d.segments(row);
        assert!(p.is_empty() && t.is_empty());
        assert_eq!(d.view(row, false).to_vec(), Vec::<u32>::new());
    }
}
