//! Road-network-like generator: a 2-D lattice with random perturbations.
//!
//! The paper's RoadNetPA/CA have max degree 9/12 and essentially no skew —
//! the regime where GCSM's caching must win on batch locality rather than
//! hub reuse (Fig. 11). A jittered grid with occasional diagonal shortcuts
//! and random road removals reproduces exactly that degree profile.

use gcsm_graph::{CsrBuilder, CsrGraph, VertexId};
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// Road-lattice parameters.
#[derive(Clone, Copy, Debug)]
pub struct RoadConfig {
    pub width: usize,
    pub height: usize,
    /// Probability a lattice edge is removed (dead ends, rivers).
    pub removal: f64,
    /// Probability a diagonal shortcut is added per cell.
    pub diagonal: f64,
    pub seed: u64,
}

impl RoadConfig {
    /// Roughly `n` vertices in a square-ish grid.
    pub fn with_vertices(n: usize, seed: u64) -> Self {
        let w = (n as f64).sqrt().ceil() as usize;
        Self { width: w, height: n.div_ceil(w.max(1)), removal: 0.08, diagonal: 0.05, seed }
    }
}

/// Generate the road network.
pub fn generate(config: &RoadConfig) -> CsrGraph {
    let (w, h) = (config.width, config.height);
    let n = w * h;
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut b = CsrBuilder::new(n);
    let id = |x: usize, y: usize| (y * w + x) as VertexId;
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w && !rng.gen_bool(config.removal) {
                b.add_edge(id(x, y), id(x + 1, y));
            }
            if y + 1 < h && !rng.gen_bool(config.removal) {
                b.add_edge(id(x, y), id(x, y + 1));
            }
            if x + 1 < w && y + 1 < h && rng.gen_bool(config.diagonal) {
                if rng.gen_bool(0.5) {
                    b.add_edge(id(x, y), id(x + 1, y + 1));
                } else {
                    b.add_edge(id(x + 1, y), id(x, y + 1));
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_are_flat_like_road_networks() {
        let g = generate(&RoadConfig::with_vertices(10_000, 3));
        assert!(g.max_degree() <= 8, "max degree {}", g.max_degree());
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(avg > 1.5 && avg < 4.0, "avg {avg}");
    }

    #[test]
    fn vertex_count_close_to_requested() {
        let g = generate(&RoadConfig::with_vertices(5000, 1));
        assert!(g.num_vertices() >= 5000);
        assert!(g.num_vertices() < 5200);
    }

    #[test]
    fn deterministic() {
        let a = generate(&RoadConfig::with_vertices(400, 9));
        let b = generate(&RoadConfig::with_vertices(400, 9));
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }
}
