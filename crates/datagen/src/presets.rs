//! The seven Table-I datasets as synthetic presets.
//!
//! Each preset records the paper's actual statistics (for EXPERIMENTS.md's
//! paper-vs-measured tables) and builds a laptop-scale stand-in with the
//! same degree-shape class. `scale` multiplies the vertex count; average
//! degree is held, so edges scale linearly.

use crate::road::{self, RoadConfig};
use crate::social::{self, SocialConfig};
use gcsm_graph::CsrGraph;

/// Table I of the paper (vertices, edges, max degree), for reference
/// printing next to measured stats.
#[derive(Clone, Copy, Debug)]
pub struct PaperRow {
    pub vertices: f64,
    pub edges: f64,
    pub max_degree: usize,
    pub size_gb: f64,
}

/// The seven datasets of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Preset {
    /// Amazon (AZ): 0.4 M vertices, 2.4 M edges, skewed.
    Amazon,
    /// RoadNetPA (PA): flat degrees (max 9).
    RoadNetPA,
    /// RoadNetCA (CA): flat degrees (max 12).
    RoadNetCA,
    /// LiveJournal (LJ): 3.1 M / 77 M, highly skewed.
    LiveJournal,
    /// Friendster (FR): 65.6 M / 3.6 B.
    Friendster,
    /// LDBC SF3K: 33.4 M / 5.8 B.
    Sf3k,
    /// LDBC SF10K: 100 M / 18.8 B.
    Sf10k,
}

/// A built dataset.
pub struct Dataset {
    pub preset: Preset,
    pub graph: CsrGraph,
}

impl Preset {
    /// Short name as used in the paper's tables ("AZ", "PA", ...).
    pub fn name(&self) -> &'static str {
        match self {
            Preset::Amazon => "AZ",
            Preset::RoadNetPA => "PA",
            Preset::RoadNetCA => "CA",
            Preset::LiveJournal => "LJ",
            Preset::Friendster => "FR",
            Preset::Sf3k => "SF3K",
            Preset::Sf10k => "SF10K",
        }
    }

    /// Look up a preset by its short name.
    pub fn by_name(name: &str) -> Option<Preset> {
        all_presets().into_iter().find(|p| p.name() == name)
    }

    /// True for the graphs with heavy-tailed degree distributions.
    pub fn is_skewed(&self) -> bool {
        !matches!(self, Preset::RoadNetPA | Preset::RoadNetCA)
    }

    /// The paper's Table-I row for this dataset.
    pub fn paper_row(&self) -> PaperRow {
        match self {
            Preset::Amazon => {
                PaperRow { vertices: 0.4e6, edges: 2.4e6, max_degree: 1367, size_gb: 0.019 }
            }
            Preset::RoadNetPA => {
                PaperRow { vertices: 1.08e6, edges: 1.5e6, max_degree: 9, size_gb: 0.022 }
            }
            Preset::RoadNetCA => {
                PaperRow { vertices: 1.96e6, edges: 2.7e6, max_degree: 12, size_gb: 0.037 }
            }
            Preset::LiveJournal => {
                PaperRow { vertices: 3.1e6, edges: 77.1e6, max_degree: 18311, size_gb: 0.308 }
            }
            Preset::Friendster => {
                PaperRow { vertices: 65.6e6, edges: 3612e6, max_degree: 5214, size_gb: 28.9 }
            }
            Preset::Sf3k => {
                PaperRow { vertices: 33.4e6, edges: 5824e6, max_degree: 4328, size_gb: 46.4 }
            }
            Preset::Sf10k => {
                PaperRow { vertices: 100.2e6, edges: 18809e6, max_degree: 4485, size_gb: 151.1 }
            }
        }
    }

    /// Base (scale = 1.0) synthetic dimensions: (log2 vertices for the
    /// social generator or vertex count for roads, backbone average
    /// degree). Sized so a 4096-edge batch's working set is a small
    /// fraction of the graph — the out-of-core regime the paper evaluates.
    fn base_shape(&self) -> (u32, usize) {
        match self {
            Preset::Amazon => (16, 6),      // 65 k vertices
            Preset::RoadNetPA => (17, 0),   // ~131 k road vertices
            Preset::RoadNetCA => (18, 0),   // ~262 k road vertices
            Preset::LiveJournal => (17, 6), // 131 k vertices
            Preset::Friendster => (19, 6),  // 524 k vertices, ~2 M edges
            Preset::Sf3k => (19, 8),        // 524 k vertices, ~2.7 M edges
            Preset::Sf10k => (20, 8),       // 1 M vertices, ~5.4 M edges
        }
    }

    /// Build the synthetic stand-in. `scale` multiplies the vertex count
    /// (0.25 halves the R-MAT scale twice, etc.); pass 1.0 for the default
    /// repro size. Deterministic per preset.
    pub fn build_scaled(&self, scale: f64) -> Dataset {
        assert!(scale > 0.0);
        let (base, avg) = self.base_shape();
        let shift = scale.log2().round() as i32;
        let graph = match self {
            Preset::RoadNetPA | Preset::RoadNetCA => {
                let n = ((1usize << base) as f64 * scale).round() as usize;
                road::generate(&RoadConfig::with_vertices(n.max(64), self.seed()))
            }
            _ => {
                let s = (base as i32 + shift).clamp(8, 26) as u32;
                social::generate_social(&SocialConfig::new(s, avg, self.seed()))
            }
        };
        Dataset { preset: *self, graph }
    }

    /// Build at the default scale.
    pub fn build(&self) -> Dataset {
        self.build_scaled(1.0)
    }

    fn seed(&self) -> u64 {
        match self {
            Preset::Amazon => 0xA2,
            Preset::RoadNetPA => 0x9A,
            Preset::RoadNetCA => 0xCA,
            Preset::LiveJournal => 0x17,
            Preset::Friendster => 0xF2,
            Preset::Sf3k => 0x3000,
            Preset::Sf10k => 0xA000,
        }
    }
}

/// All presets in Table-I order.
pub fn all_presets() -> Vec<Preset> {
    vec![
        Preset::Amazon,
        Preset::RoadNetPA,
        Preset::RoadNetCA,
        Preset::LiveJournal,
        Preset::Friendster,
        Preset::Sf3k,
        Preset::Sf10k,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_classes_match_paper() {
        let az = Preset::Amazon.build_scaled(0.25);
        let pa = Preset::RoadNetPA.build_scaled(0.25);
        let az_avg = 2.0 * az.graph.num_edges() as f64 / az.graph.num_vertices() as f64;
        assert!(az.graph.max_degree() as f64 > 5.0 * az_avg, "AZ should be skewed");
        assert!(pa.graph.max_degree() <= 12, "PA max degree {}", pa.graph.max_degree());
    }

    #[test]
    fn names_roundtrip() {
        for p in all_presets() {
            assert_eq!(Preset::by_name(p.name()), Some(p));
        }
        assert_eq!(Preset::by_name("XX"), None);
    }

    #[test]
    fn scaling_changes_size_monotonically() {
        let small = Preset::LiveJournal.build_scaled(0.25);
        let big = Preset::LiveJournal.build_scaled(0.5);
        assert!(small.graph.num_vertices() < big.graph.num_vertices());
        assert!(small.graph.num_edges() < big.graph.num_edges());
    }

    #[test]
    fn deterministic_builds() {
        let a = Preset::Amazon.build_scaled(0.25);
        let b = Preset::Amazon.build_scaled(0.25);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        assert_eq!(a.graph.max_degree(), b.graph.max_degree());
    }
}
