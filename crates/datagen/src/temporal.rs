//! Temporally-correlated update streams (extension beyond the paper).
//!
//! The paper's protocol samples update edges uniformly, so consecutive
//! batches touch unrelated regions. Real streams (message bursts, trading
//! sessions) revisit the same neighborhoods: a batch's working set overlaps
//! the previous batch's. This generator adds that knob — `locality ∈ [0,1]`
//! is the fraction of each batch drawn from the *focus region* (a slowly
//! drifting set of vertices) instead of uniformly.
//!
//! Used by the delta-cache ablation: with temporal locality, consecutive
//! cache selections overlap and incremental shipping pays off.

use gcsm_graph::{CsrGraph, EdgeUpdate, VertexId};
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// Temporal-stream parameters.
#[derive(Clone, Copy, Debug)]
pub struct TemporalConfig {
    /// Total updates to generate.
    pub updates: usize,
    /// Fraction of each batch drawn from the focus region.
    pub locality: f64,
    /// Focus-region size in vertices.
    pub region: usize,
    /// After how many updates the focus region drifts (replaces ~25 % of
    /// its vertices).
    pub drift_every: usize,
    pub seed: u64,
}

impl Default for TemporalConfig {
    fn default() -> Self {
        Self { updates: 4096, locality: 0.8, region: 256, drift_every: 1024, seed: 7 }
    }
}

/// Generate a temporally-correlated stream against `graph`. Updates
/// alternate inserts (new edges) and deletes (existing edges), with
/// endpoints biased into the focus region. All updates are applicable in
/// order (inserts absent, deletes present at generation time).
pub fn temporal_stream(graph: &CsrGraph, cfg: &TemporalConfig) -> Vec<EdgeUpdate> {
    let n = graph.num_vertices();
    assert!(n >= 4, "graph too small");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    // Live edge set mirror so generated updates are always applicable.
    let mut live: std::collections::HashSet<(VertexId, VertexId)> = graph.edges().collect();
    let mut focus: Vec<VertexId> =
        (0..cfg.region.min(n)).map(|_| rng.gen_range(0..n as u32)).collect();

    let mut out = Vec::with_capacity(cfg.updates);
    let mut guard = 0usize;
    while out.len() < cfg.updates && guard < cfg.updates * 200 {
        guard += 1;
        if out.len() % cfg.drift_every.max(1) == cfg.drift_every.max(1) - 1 {
            // Drift: replace a quarter of the region.
            for _ in 0..(focus.len() / 4).max(1) {
                let idx = rng.gen_range(0..focus.len());
                focus[idx] = rng.gen_range(0..n as u32);
            }
        }
        let pick = |rng: &mut SmallRng, focus: &[VertexId]| -> VertexId {
            if rng.gen_bool(cfg.locality) && !focus.is_empty() {
                focus[rng.gen_range(0..focus.len())]
            } else {
                rng.gen_range(0..n as u32)
            }
        };
        let a = pick(&mut rng, &focus);
        let b = pick(&mut rng, &focus);
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if rng.gen_bool(0.5) {
            if live.insert(key) {
                out.push(EdgeUpdate::insert(a, b));
            }
        } else if live.remove(&key) {
            out.push(EdgeUpdate::delete(a, b));
        }
    }
    out
}

/// Jaccard overlap of the endpoint sets of consecutive windows — the
/// temporal-locality metric the generator controls.
pub fn window_overlap(stream: &[EdgeUpdate], window: usize) -> f64 {
    let windows: Vec<std::collections::HashSet<VertexId>> =
        stream.chunks(window).map(|c| c.iter().flat_map(|u| [u.src, u.dst]).collect()).collect();
    if windows.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for w in windows.windows(2) {
        let inter = w[0].intersection(&w[1]).count() as f64;
        let union = w[0].union(&w[1]).count() as f64;
        total += if union == 0.0 { 0.0 } else { inter / union };
    }
    total / (windows.len() - 1) as f64
}

/// Shuffle a stream while keeping it applicable? Not possible in general —
/// instead, generate an *uncorrelated* control stream with the same graph
/// and length (locality 0).
pub fn uniform_control(graph: &CsrGraph, cfg: &TemporalConfig) -> Vec<EdgeUpdate> {
    temporal_stream(graph, &TemporalConfig { locality: 0.0, ..*cfg })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::er::gnm;
    use rand::seq::SliceRandom as _;

    #[test]
    fn stream_is_applicable_in_order() {
        let g = gnm(300, 900, 3);
        let stream = temporal_stream(&g, &TemporalConfig { updates: 500, ..Default::default() });
        assert_eq!(stream.len(), 500);
        let mut dg = gcsm_graph::DynamicGraph::from_csr(&g);
        for chunk in stream.chunks(50) {
            let s = dg.apply_batch(chunk);
            assert_eq!(s.skipped, 0, "every generated update must apply");
            dg.reorganize();
        }
    }

    #[test]
    fn locality_raises_window_overlap() {
        let g = gnm(2000, 6000, 9);
        let hot = temporal_stream(
            &g,
            &TemporalConfig { updates: 2048, locality: 0.9, region: 128, ..Default::default() },
        );
        let cold = uniform_control(
            &g,
            &TemporalConfig { updates: 2048, locality: 0.9, region: 128, ..Default::default() },
        );
        let o_hot = window_overlap(&hot, 256);
        let o_cold = window_overlap(&cold, 256);
        assert!(
            o_hot > 3.0 * o_cold,
            "temporal overlap {o_hot:.3} should dwarf uniform {o_cold:.3}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g = gnm(200, 600, 1);
        let cfg = TemporalConfig { updates: 100, ..Default::default() };
        assert_eq!(temporal_stream(&g, &cfg), temporal_stream(&g, &cfg));
    }

    #[test]
    fn overlap_of_shuffled_stream_is_lower() {
        // Sanity for the metric itself: destroying temporal order lowers it.
        let g = gnm(2000, 6000, 5);
        let hot = temporal_stream(
            &g,
            &TemporalConfig { updates: 2048, locality: 0.9, region: 96, ..Default::default() },
        );
        let mut shuffled = hot.clone();
        let mut rng = SmallRng::seed_from_u64(4);
        shuffled.shuffle(&mut rng);
        // Shuffling mixes drifted epochs together, lowering adjacency.
        assert!(window_overlap(&hot, 128) >= window_overlap(&shuffled, 128) * 0.9);
    }
}
