//! Erdős–Rényi G(n, m) generator — used by tests and property suites where
//! an unstructured graph is wanted.

use gcsm_graph::{CsrBuilder, CsrGraph, VertexId};
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// Generate a G(n, m)-style random graph (m sampled pairs; duplicates and
/// self loops dropped, so the realized count can be slightly lower).
pub fn gnm(n: usize, m: usize, seed: u64) -> CsrGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = CsrBuilder::new(n);
    b.reserve(m);
    for _ in 0..m {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        b.add_edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let g = gnm(100, 300, 5);
        assert_eq!(g.num_vertices(), 100);
        assert!(g.num_edges() > 250 && g.num_edges() <= 300);
        let h = gnm(100, 300, 5);
        assert_eq!(g.edges().collect::<Vec<_>>(), h.edges().collect::<Vec<_>>());
    }
}
