//! R-MAT recursive-matrix generator (Chakrabarti et al.) — the standard
//! synthetic source of power-law graphs; LDBC Graphalytics' generators are
//! in the same family.

use gcsm_graph::{CsrBuilder, CsrGraph, VertexId};
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// R-MAT parameters. `a + b + c + d = 1`; the default (0.57, 0.19, 0.19,
/// 0.05) is the Graph500 setting and yields a heavy-tailed degree
/// distribution like the paper's social graphs.
#[derive(Clone, Copy, Debug)]
pub struct RmatConfig {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Target number of (pre-dedup) undirected edges.
    pub edges: usize,
    pub a: f64,
    pub b: f64,
    pub c: f64,
    pub seed: u64,
}

impl RmatConfig {
    /// Default parameters at the given scale and average degree.
    ///
    /// The skew (0.48/0.21/0.21/0.10) is milder than Graph500's 0.57 —
    /// deliberately: at laptop scale a Graph500 hub would own a quarter of
    /// the vertex set, making the graph's *relative* density (and pattern
    /// counts) wildly unlike the paper's million-vertex graphs. This
    /// setting keeps a heavy tail (max degree ≫ average) while keeping hub
    /// size a few percent of |V|, matching the paper's regimes.
    pub fn new(scale: u32, avg_degree: usize, seed: u64) -> Self {
        Self { scale, edges: (1usize << scale) * avg_degree / 2, a: 0.45, b: 0.223, c: 0.223, seed }
    }
}

/// Generate an R-MAT graph. Duplicate edges and self loops are dropped by
/// the CSR builder, so the realized edge count is slightly below
/// `config.edges`.
pub fn generate(config: &RmatConfig) -> CsrGraph {
    let n = 1usize << config.scale;
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut b = CsrBuilder::new(n);
    b.reserve(config.edges);
    for _ in 0..config.edges {
        let (u, v) = sample_edge(config, &mut rng);
        b.add_edge(u, v);
    }
    b.build()
}

fn sample_edge(config: &RmatConfig, rng: &mut SmallRng) -> (VertexId, VertexId) {
    let (mut u, mut v) = (0usize, 0usize);
    let ab = config.a + config.b;
    let abc = ab + config.c;
    for _ in 0..config.scale {
        u <<= 1;
        v <<= 1;
        let r: f64 = rng.gen();
        if r < config.a {
            // top-left
        } else if r < ab {
            v |= 1;
        } else if r < abc {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u as VertexId, v as VertexId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let g = generate(&RmatConfig::new(10, 8, 1));
        assert_eq!(g.num_vertices(), 1024);
        // Dedup trims some edges but the bulk must survive.
        assert!(g.num_edges() > 2500, "got {}", g.num_edges());
        assert!(g.num_edges() <= 4096);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = generate(&RmatConfig::new(12, 16, 2));
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        // Heavy tail: max degree far above the average.
        assert!(g.max_degree() as f64 > 8.0 * avg, "max {} vs avg {:.1}", g.max_degree(), avg);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&RmatConfig::new(8, 4, 7));
        let b = generate(&RmatConfig::new(8, 4, 7));
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
        let c = generate(&RmatConfig::new(8, 4, 8));
        assert_ne!(a.edges().collect::<Vec<_>>(), c.edges().collect::<Vec<_>>());
    }
}
