//! Update-stream construction (paper Sec. VI-A, "Datasets and query
//! graphs").
//!
//! > "We generate dynamic graphs from static graphs. … we randomly select
//! > \[edges\] from each data graph to construct the edge updates. Each
//! > selected edge is marked as either insertion or deletion with equal
//! > probability. The edges marked for insertion are removed from the data
//! > graph."
//!
//! So the initial graph `G_0` = the static graph minus the insert-marked
//! edges; the stream then inserts them back and deletes the delete-marked
//! ones, in random order, batch by batch.

use gcsm_graph::{CsrBuilder, CsrGraph, EdgeUpdate};
use rand::{rngs::SmallRng, seq::SliceRandom, Rng, SeedableRng};

/// How many edges to turn into updates.
#[derive(Clone, Copy, Debug)]
pub enum StreamConfig {
    /// A fraction of the graph's edges (the paper uses 10% for AZ/LJ/PA/CA).
    Fraction(f64),
    /// A fixed count (the paper uses 12×8192 for FR/SF3K/SF10K).
    Count(usize),
}

/// A generated dynamic-graph workload.
pub struct UpdateStream {
    /// `G_0`: the static graph minus the insert-marked edges.
    pub initial: CsrGraph,
    /// The update sequence (shuffled; each edge appears exactly once).
    pub updates: Vec<EdgeUpdate>,
}

impl UpdateStream {
    /// Build the stream from a static graph.
    pub fn generate(graph: &CsrGraph, config: StreamConfig, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut edges: Vec<_> = graph.edges().collect();
        let k = match config {
            StreamConfig::Fraction(f) => ((edges.len() as f64) * f).round() as usize,
            StreamConfig::Count(c) => c,
        }
        .min(edges.len());
        edges.shuffle(&mut rng);
        let (selected, kept) = edges.split_at(k);

        let mut updates = Vec::with_capacity(k);
        let mut initial = CsrBuilder::new(graph.num_vertices());
        initial.reserve(kept.len() + k / 2);
        for &(a, b) in kept {
            initial.add_edge(a, b);
        }
        for &(a, b) in selected {
            if rng.gen_bool(0.5) {
                // Insert-marked: absent from G_0, inserted by the stream.
                updates.push(EdgeUpdate::insert(a, b));
            } else {
                // Delete-marked: present in G_0, deleted by the stream.
                initial.add_edge(a, b);
                updates.push(EdgeUpdate::delete(a, b));
            }
        }
        updates.shuffle(&mut rng);
        let mut initial = initial.build();
        // Preserve labels.
        if graph.labels().iter().any(|&l| l != 0) {
            let mut b = CsrBuilder::new(initial.num_vertices());
            for (x, y) in initial.edges() {
                b.add_edge(x, y);
            }
            b.set_labels(graph.labels().to_vec());
            initial = b.build();
        }
        Self { initial, updates }
    }

    /// The stream chopped into batches of `batch_size` (last batch may be
    /// short).
    pub fn batches(&self, batch_size: usize) -> impl Iterator<Item = &[EdgeUpdate]> {
        self.updates.chunks(batch_size)
    }

    /// Number of updates.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// True when the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::er::gnm;
    use gcsm_graph::UpdateOp;

    #[test]
    fn protocol_invariants() {
        let g = gnm(500, 3000, 11);
        let s = UpdateStream::generate(&g, StreamConfig::Fraction(0.1), 42);
        let k = s.updates.len();
        assert!((k as f64 - g.num_edges() as f64 * 0.1).abs() < 2.0);
        for u in &s.updates {
            match u.op {
                // Insert-marked edges were removed from G_0…
                UpdateOp::Insert => assert!(!s.initial.has_edge(u.src, u.dst)),
                // …delete-marked edges stayed in it.
                UpdateOp::Delete => assert!(s.initial.has_edge(u.src, u.dst)),
            }
        }
        // Roughly half and half.
        let inserts = s.updates.iter().filter(|u| u.op == UpdateOp::Insert).count();
        assert!(inserts > k / 4 && inserts < 3 * k / 4);
    }

    #[test]
    fn no_duplicate_updates() {
        let g = gnm(200, 1000, 3);
        let s = UpdateStream::generate(&g, StreamConfig::Count(100), 5);
        let mut seen = std::collections::HashSet::new();
        for u in &s.updates {
            assert!(seen.insert(u.canonical()), "duplicate {:?}", u);
        }
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn replaying_stream_restores_edge_count_delta() {
        let g = gnm(100, 400, 9);
        let s = UpdateStream::generate(&g, StreamConfig::Fraction(0.2), 21);
        let mut dg = gcsm_graph::DynamicGraph::from_csr(&s.initial);
        for batch in s.batches(16) {
            let summary = dg.apply_batch(batch);
            assert_eq!(summary.skipped, 0, "protocol guarantees clean application");
            dg.reorganize();
        }
        let final_graph = dg.to_csr();
        // Final graph = original minus delete-marked edges.
        let deletes = s.updates.iter().filter(|u| u.op == UpdateOp::Delete).count();
        assert_eq!(final_graph.num_edges(), g.num_edges() - deletes);
    }

    #[test]
    fn batching_covers_everything() {
        let g = gnm(100, 500, 2);
        let s = UpdateStream::generate(&g, StreamConfig::Count(50), 8);
        let total: usize = s.batches(7).map(|b| b.len()).sum();
        assert_eq!(total, 50);
        assert_eq!(s.batches(7).count(), 8); // ceil(50/7)
    }

    #[test]
    fn count_capped_at_edge_count() {
        let g = gnm(20, 40, 1);
        let s = UpdateStream::generate(&g, StreamConfig::Count(10_000), 2);
        assert_eq!(s.len(), g.num_edges());
    }
}
