//! Chung–Lu configuration-model generator: a power-law graph with an
//! *explicit* degree exponent and max-degree cap — the knob the R-MAT
//! family lacks. Used by the skew-sensitivity ablation bench and available
//! for dataset construction.

use gcsm_graph::{CsrBuilder, CsrGraph, VertexId};
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// Chung–Lu parameters.
#[derive(Clone, Copy, Debug)]
pub struct ChungLuConfig {
    pub vertices: usize,
    /// Target number of undirected edges (realized slightly lower after
    /// dedup).
    pub edges: usize,
    /// Power-law exponent γ of the target degree distribution
    /// (`P(deg = d) ∝ d^{-γ}`); 2.1–3.0 covers most real graphs.
    pub gamma: f64,
    /// Cap on any vertex's expected degree (None = uncapped).
    pub max_degree: Option<usize>,
    pub seed: u64,
}

/// Generate via weighted endpoint sampling: vertex `i` gets weight
/// `(i+1)^{-1/(γ-1)}` (the standard Chung–Lu/Zipf weights), optionally
/// clipped, and each edge picks both endpoints from the weight
/// distribution (inverse-CDF on the prefix sums).
pub fn generate_chung_lu(config: &ChungLuConfig) -> CsrGraph {
    let n = config.vertices;
    assert!(n >= 2);
    let exponent = -1.0 / (config.gamma - 1.0);
    let mut weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(exponent)).collect();
    if let Some(cap) = config.max_degree {
        // Clip weights so no expected degree exceeds the cap.
        let total: f64 = weights.iter().sum();
        let scale = 2.0 * config.edges as f64 / total;
        for w in &mut weights {
            *w = w.min(cap as f64 / scale);
        }
    }
    let mut prefix = Vec::with_capacity(n);
    let mut acc = 0.0;
    for w in &weights {
        acc += w;
        prefix.push(acc);
    }
    let total = acc;

    let mut rng = SmallRng::seed_from_u64(config.seed);
    let sample = |rng: &mut SmallRng| -> VertexId {
        let x: f64 = rng.gen::<f64>() * total;
        prefix.partition_point(|&p| p < x) as VertexId
    };
    let mut b = CsrBuilder::new(n);
    b.reserve(config.edges);
    for _ in 0..config.edges {
        let u = sample(&mut rng).min(n as VertexId - 1);
        let v = sample(&mut rng).min(n as VertexId - 1);
        b.add_edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_skew() {
        let g = generate_chung_lu(&ChungLuConfig {
            vertices: 5000,
            edges: 25_000,
            gamma: 2.3,
            max_degree: None,
            seed: 5,
        });
        assert_eq!(g.num_vertices(), 5000);
        assert!(g.num_edges() > 20_000);
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(g.max_degree() as f64 > 10.0 * avg, "should be heavy tailed");
    }

    #[test]
    fn degree_cap_respected_approximately() {
        let g = generate_chung_lu(&ChungLuConfig {
            vertices: 5000,
            edges: 25_000,
            gamma: 2.1,
            max_degree: Some(60),
            seed: 5,
        });
        // The cap bounds the *expected* degree; allow sampling noise.
        assert!(g.max_degree() < 120, "max degree {}", g.max_degree());
    }

    #[test]
    fn gamma_controls_skew() {
        let mk = |gamma| {
            generate_chung_lu(&ChungLuConfig {
                vertices: 4000,
                edges: 20_000,
                gamma,
                max_degree: None,
                seed: 9,
            })
        };
        let steep = mk(2.1); // heavier tail
        let flat = mk(3.5);
        assert!(steep.max_degree() > 2 * flat.max_degree());
    }

    #[test]
    fn deterministic() {
        let cfg =
            ChungLuConfig { vertices: 100, edges: 300, gamma: 2.5, max_degree: None, seed: 3 };
        let a = generate_chung_lu(&cfg);
        let b = generate_chung_lu(&cfg);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }
}
