//! # gcsm-datagen — datasets and update streams
//!
//! The paper evaluates on five SNAP graphs (Amazon, RoadNetPA, RoadNetCA,
//! LiveJournal, Friendster) and two LDBC Graphalytics graphs (SF3K, SF10K) —
//! up to 18.8 B edges (Table I). Neither the data nor that scale is
//! available here, so this crate generates *synthetic stand-ins with the
//! same shape* at configurable scale (DESIGN.md §2):
//!
//! * [`rmat`] — R-MAT generator for the skewed social/web-like graphs
//!   (AZ, LJ, FR, SF3K, SF10K); degree skew matches the regime that makes
//!   the paper's caching effective;
//! * [`road`] — near-planar lattice with perturbations for the road
//!   networks (max degree ≤ 12; the regime where skew is absent and
//!   Fig. 11 shows caching still helps because matching is batch-local);
//! * [`er`] — Erdős–Rényi, for tests;
//! * [`presets`] — the seven Table-I datasets with a global scale knob;
//! * [`stream`] — the paper's update-stream protocol (Sec. VI-A): sample
//!   edges, mark insert/delete with equal probability, remove
//!   insert-marked edges from the initial graph, and batch the stream.

pub mod config_model;
pub mod er;
pub mod presets;
pub mod rmat;
pub mod road;
pub mod social;
pub mod stream;
pub mod temporal;

pub use presets::{all_presets, Dataset, Preset};
pub use stream::{StreamConfig, UpdateStream};
