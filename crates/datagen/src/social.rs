//! Social-network-like generator: mild power-law skew + triangle closure.
//!
//! Plain R-MAT at laptop scale concentrates all traffic on a handful of
//! global hubs, which makes *degree* a perfect predictor of access
//! frequency — the opposite of what the paper measures on Friendster/LDBC
//! (its degree-ranked "Naive" cache is no better than zero-copy). Real
//! social graphs combine a heavy-tailed but not extreme degree
//! distribution with strong local clustering; matching traffic then
//! concentrates on the *batch's neighborhoods*, not on global hubs.
//!
//! This generator reproduces that: an R-MAT backbone with mild skew plus
//! uniform wedge closure (pick a vertex uniformly, connect two of its
//! neighbors), which plants triangles everywhere without preferential
//! attachment.

use crate::rmat::{generate, RmatConfig};
use gcsm_graph::{CsrBuilder, CsrGraph};
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// Parameters for the clustered social-graph generator.
#[derive(Clone, Copy, Debug)]
pub struct SocialConfig {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Average degree of the R-MAT backbone.
    pub backbone_degree: usize,
    /// R-MAT `a` parameter (0.38–0.45 ⇒ mild skew).
    pub skew: f64,
    /// Closure edges as a fraction of backbone edges.
    pub closure: f64,
    pub seed: u64,
}

impl SocialConfig {
    /// Friendster-class defaults at the given scale.
    pub fn new(scale: u32, backbone_degree: usize, seed: u64) -> Self {
        Self { scale, backbone_degree, skew: 0.42, closure: 0.45, seed }
    }
}

/// Generate the clustered graph.
pub fn generate_social(config: &SocialConfig) -> CsrGraph {
    let mut rmat = RmatConfig::new(config.scale, config.backbone_degree, config.seed);
    rmat.a = config.skew;
    rmat.b = (1.0 - config.skew) / 3.0 + 0.02;
    rmat.c = rmat.b;
    let base = generate(&rmat);

    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0xC105);
    let mut b = CsrBuilder::new(base.num_vertices());
    b.reserve(base.num_edges() * 2);
    for (x, y) in base.edges() {
        b.add_edge(x, y);
    }
    let n_close = (base.num_edges() as f64 * config.closure) as usize;
    let nv = base.num_vertices() as u32;
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < n_close && attempts < n_close * 20 {
        attempts += 1;
        let v = rng.gen_range(0..nv);
        let nb = base.neighbors(v);
        if nb.len() < 2 {
            continue;
        }
        let x = nb[rng.gen_range(0..nb.len())];
        let y = nb[rng.gen_range(0..nb.len())];
        if x != y {
            b.add_edge(x, y);
            added += 1;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_raises_triangle_density() {
        let cfg = SocialConfig::new(12, 6, 5);
        let closed = generate_social(&cfg);
        let open = generate_social(&SocialConfig { closure: 0.0, ..cfg });
        let count_triangles = |g: &CsrGraph| -> usize {
            let mut t = 0;
            for (u, v) in g.edges() {
                let (nu, nv) = (g.neighbors(u), g.neighbors(v));
                let (mut i, mut j) = (0, 0);
                while i < nu.len() && j < nv.len() {
                    match nu[i].cmp(&nv[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            t += 1;
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
            t / 3
        };
        assert!(count_triangles(&closed) > 3 * count_triangles(&open));
    }

    #[test]
    fn skew_is_mild() {
        let g = generate_social(&SocialConfig::new(14, 6, 9));
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        let ratio = g.max_degree() as f64 / avg;
        assert!(ratio > 5.0 && ratio < 120.0, "max/avg = {ratio:.0}");
    }

    #[test]
    fn deterministic() {
        let a = generate_social(&SocialConfig::new(10, 6, 3));
        let b = generate_social(&SocialConfig::new(10, 6, 3));
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }
}
