//! RapidFlow-like CPU continuous subgraph matching.
//!
//! RapidFlow \[15\] is the state-of-the-art CPU CSM system the paper compares
//! against (Fig. 14). Its two load-bearing ideas, reproduced here:
//!
//! 1. **Candidate index.** For every pattern vertex `u`, an explicit
//!    candidate set `C(u) = {v : L(v) = L(u) ∧ deg(v) ≥ deg_Q(u)}`, stored
//!    as a bitset over the data vertices. Candidates prune the enumeration
//!    hard, but the index is `O(|Q| · |V|)` bits *plus* per-candidate
//!    bookkeeping — the memory appetite that makes the real RapidFlow crash
//!    on the paper's billion-edge graphs.
//! 2. **Optimized matching order.** Delta plans order pattern vertices by
//!    ascending candidate-set cardinality (RapidFlow derives its order from
//!    its index, too), instead of the purely structural greedy order.
//!
//! The index is maintained across batches: degree changes from each sealed
//! batch update the affected bitset rows.
//!
//! The redundancy-elimination ("dual matching") of the original is covered
//! by the shared symmetry-breaking machinery (`PlanOptions::symmetry_break`),
//! which removes the same automorphism redundancy.

use gcsm_graph::{DynamicGraph, EdgeUpdate, VertexId};
use gcsm_matcher::{
    gen_candidates, seed_admissible, CostCounter, DynSource, IntersectAlgo, MatchStats,
};
use gcsm_pattern::{compile_incremental_scored, MatchPlan, PlanOptions, QueryGraph};
use rayon::prelude::*;

/// One bitset over the data vertices.
#[derive(Clone, Debug)]
struct Bitset {
    words: Vec<u64>,
    count: usize,
}

impl Bitset {
    fn new(n: usize) -> Self {
        Self { words: vec![0; n.div_ceil(64)], count: 0 }
    }

    #[inline]
    fn contains(&self, v: VertexId) -> bool {
        let v = v as usize;
        self.words.get(v / 64).is_some_and(|w| w & (1 << (v % 64)) != 0)
    }

    fn set(&mut self, v: VertexId, value: bool) {
        let idx = v as usize / 64;
        if idx >= self.words.len() {
            self.words.resize(idx + 1, 0);
        }
        let mask = 1u64 << (v as usize % 64);
        let was = self.words[idx] & mask != 0;
        if value && !was {
            self.words[idx] |= mask;
            self.count += 1;
        } else if !value && was {
            self.words[idx] &= !mask;
            self.count -= 1;
        }
    }

    fn bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// The RapidFlow-like matcher.
pub struct RapidFlow {
    query: QueryGraph,
    opts: PlanOptions,
    /// Candidate bitset per pattern vertex.
    candidates: Vec<Bitset>,
    /// Cardinality-ordered delta plans, recompiled when candidate sizes
    /// shift materially.
    plans: Vec<MatchPlan>,
}

impl RapidFlow {
    /// Build the candidate index over the current graph and compile the
    /// cardinality-ordered plans. This is the expensive, memory-hungry
    /// setup step.
    pub fn new(query: QueryGraph, graph: &DynamicGraph, opts: PlanOptions) -> Self {
        let n = graph.num_vertices();
        let mut candidates = Vec::with_capacity(query.num_vertices());
        for u in 0..query.num_vertices() {
            let mut bs = Bitset::new(n);
            let (lu, du) = (query.label(u), query.degree(u));
            for v in 0..n as VertexId {
                // Degree filter against the larger of the pre-/post-batch
                // degrees: deletion deltas (−1 matches) live in the *old*
                // graph, so a post-batch-only filter would prune them and
                // corrupt the signed count.
                let deg = graph.new_degree(v).max(graph.old_degree(v));
                if graph.label(v) == lu && deg >= du {
                    bs.set(v, true);
                }
            }
            candidates.push(bs);
        }
        let plans = Self::compile_plans(&query, opts, &candidates);
        Self { query, opts, candidates, plans }
    }

    fn compile_plans(q: &QueryGraph, opts: PlanOptions, cands: &[Bitset]) -> Vec<MatchPlan> {
        let scores: Vec<f64> = cands.iter().map(|b| b.count as f64).collect();
        (0..q.num_edges()).map(|i| compile_incremental_scored(q, i, opts, &scores)).collect()
    }

    /// Index memory footprint in bytes (the quantity that blows up on large
    /// graphs — reported alongside Fig. 14): the membership bitsets plus the
    /// materialized candidate-id arrays RapidFlow iterates during matching.
    pub fn index_bytes(&self) -> usize {
        self.candidates
            .iter()
            .map(|b| b.bytes() + b.count * std::mem::size_of::<gcsm_graph::VertexId>())
            .sum()
    }

    /// The compiled plans (inspection/tests).
    pub fn plans(&self) -> &[MatchPlan] {
        &self.plans
    }

    /// Refresh index rows for the vertices whose degree changed in the
    /// sealed batch, then recompile plans if candidate sizes moved.
    pub fn update_index(&mut self, graph: &DynamicGraph) {
        for &v in graph.updated_vertices() {
            for u in 0..self.query.num_vertices() {
                let deg = graph.new_degree(v).max(graph.old_degree(v));
                let eligible = graph.label(v) == self.query.label(u) && deg >= self.query.degree(u);
                self.candidates[u].set(v, eligible);
            }
        }
        self.plans = Self::compile_plans(&self.query, self.opts, &self.candidates);
    }

    /// Incremental matching over the sealed batch with candidate pruning.
    pub fn match_batch(&self, graph: &DynamicGraph, batch: &[EdgeUpdate]) -> MatchStats {
        let src = DynSource::new(graph);
        let tasks: Vec<(usize, VertexId, VertexId, i64)> = self
            .plans
            .iter()
            .enumerate()
            .flat_map(|(pi, _)| {
                batch.iter().flat_map(move |u| {
                    let s = u.op.sign();
                    [(pi, u.src, u.dst, s), (pi, u.dst, u.src, s)]
                })
            })
            .collect();
        tasks
            .par_iter()
            .map(|&(pi, a, b, sign)| self.run_seed(&src, &self.plans[pi], a, b, sign))
            .reduce(MatchStats::default, |x, y| x + y)
    }

    fn run_seed(
        &self,
        src: &DynSource<'_>,
        plan: &MatchPlan,
        x0: VertexId,
        x1: VertexId,
        sign: i64,
    ) -> MatchStats {
        let mut stats = MatchStats::default();
        if !seed_admissible(src, plan, x0, x1) {
            return stats;
        }
        // Seed endpoints must be candidates of their pattern vertices.
        if !self.candidates[plan.order[0]].contains(x0)
            || !self.candidates[plan.order[1]].contains(x1)
        {
            return stats;
        }
        let mut cost = CostCounter::default();
        let mut bound = vec![x0, x1];
        let mut bufs: Vec<Vec<VertexId>> = vec![Vec::new(); plan.levels.len()];
        self.descend(src, plan, 0, sign, &mut bound, &mut bufs, &mut cost, &mut stats);
        stats.intersect_ops += cost.ops;
        stats
    }

    #[allow(clippy::too_many_arguments)]
    fn descend(
        &self,
        src: &DynSource<'_>,
        plan: &MatchPlan,
        level: usize,
        sign: i64,
        bound: &mut Vec<VertexId>,
        bufs: &mut [Vec<VertexId>],
        cost: &mut CostCounter,
        stats: &mut MatchStats,
    ) {
        if level == plan.levels.len() {
            stats.matches += sign;
            return;
        }
        let (buf, rest) = bufs.split_first_mut().expect("scratch too shallow");
        gen_candidates(src, plan, level, bound, IntersectAlgo::Auto, buf, cost, stats);
        // RapidFlow's extra pruning: intersect with the candidate index.
        let qv = plan.levels[level].qvertex;
        buf.retain(|&c| self.candidates[qv].contains(c));
        let cands = std::mem::take(buf);
        for &cand in &cands {
            bound.push(cand);
            self.descend(src, plan, level + 1, sign, bound, rest, cost, stats);
            bound.pop();
        }
        *buf = cands;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcsm_datagen::er::gnm;
    use gcsm_matcher::{match_incremental, DriverOptions};
    use gcsm_pattern::queries;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn random_batch(g: &gcsm_graph::CsrGraph, k: usize, seed: u64) -> Vec<EdgeUpdate> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let existing: Vec<_> = g.edges().collect();
        let mut batch = Vec::new();
        let mut used = std::collections::HashSet::new();
        while batch.len() < k {
            if rng.gen_bool(0.5) && !existing.is_empty() {
                let &(a, b) = &existing[rng.gen_range(0..existing.len())];
                if used.insert((a, b)) {
                    batch.push(EdgeUpdate::delete(a, b));
                }
            } else {
                let a = rng.gen_range(0..g.num_vertices() as u32);
                let b = rng.gen_range(0..g.num_vertices() as u32);
                let (a, b) = (a.min(b), a.max(b));
                if a != b && !g.has_edge(a, b) && used.insert((a, b)) {
                    batch.push(EdgeUpdate::insert(a, b));
                }
            }
        }
        batch
    }

    #[test]
    fn rapidflow_agrees_with_plain_incremental() {
        for seed in 0..5u64 {
            let g0 = gnm(40, 200, seed);
            let mut g = DynamicGraph::from_csr(&g0);
            let batch = random_batch(&g0, 10, seed + 100);
            let summary = g.apply_batch(&batch);
            for q in [queries::triangle(), queries::q1()] {
                let rf = RapidFlow::new(q.clone(), &g, PlanOptions::default());
                let rf_count = rf.match_batch(&g, &summary.applied).matches;
                let src = DynSource::new(&g);
                let plain =
                    match_incremental(&src, &q, &summary.applied, &DriverOptions::default())
                        .matches;
                assert_eq!(rf_count, plain, "{} seed {}", q.name(), seed);
            }
        }
    }

    #[test]
    fn candidate_pruning_reduces_work() {
        // Labeled graph: only a few vertices carry the pattern's label, so
        // the candidate index should slash intersect work.
        let mut b = gcsm_graph::CsrBuilder::new(30);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..150 {
            let x = rng.gen_range(0..30u32);
            let y = rng.gen_range(0..30u32);
            b.add_edge(x, y);
        }
        let mut labels = vec![0u16; 30];
        for l in labels.iter_mut().take(6) {
            *l = 1;
        }
        b.set_labels(labels);
        let g0 = b.build();
        let mut g = DynamicGraph::from_csr(&g0);
        g.begin_batch();
        g.apply(EdgeUpdate::insert(0, 1));
        let summary = g.seal_batch();

        let q = gcsm_pattern::QueryGraph::with_labels(
            "lt",
            3,
            &[(0, 1), (0, 2), (1, 2)],
            vec![1, 1, 1],
        );
        let rf = RapidFlow::new(q.clone(), &g, PlanOptions::default());
        let rf_stats = rf.match_batch(&g, &summary.applied);
        let src = DynSource::new(&g);
        let plain = match_incremental(&src, &q, &summary.applied, &DriverOptions::default());
        assert_eq!(rf_stats.matches, plain.matches);
        assert!(rf_stats.intersect_ops <= plain.intersect_ops);
    }

    #[test]
    fn index_update_tracks_degree_changes() {
        let g0 = gnm(20, 60, 9);
        let mut g = DynamicGraph::from_csr(&g0);
        let q = queries::triangle();
        let mut rf = RapidFlow::new(q.clone(), &g, PlanOptions::default());

        // Run two consecutive batches, refreshing the index in between.
        for round in 0..2u64 {
            let snapshot = g.to_csr();
            let batch = random_batch(&snapshot, 6, 50 + round);
            let summary = g.apply_batch(&batch);
            rf.update_index(&g);
            let rf_count = rf.match_batch(&g, &summary.applied).matches;
            let src = DynSource::new(&g);
            let plain =
                match_incremental(&src, &q, &summary.applied, &DriverOptions::default()).matches;
            assert_eq!(rf_count, plain, "round {round}");
            g.reorganize();
        }
    }

    #[test]
    fn index_memory_grows_with_graph_and_pattern() {
        let small = gnm(100, 300, 1);
        let large = gnm(10_000, 30_000, 1);
        let q = queries::q5();
        let gs = DynamicGraph::from_csr(&small);
        let gl = DynamicGraph::from_csr(&large);
        let rf_s = RapidFlow::new(q.clone(), &gs, PlanOptions::default());
        let rf_l = RapidFlow::new(q, &gl, PlanOptions::default());
        assert!(rf_l.index_bytes() > 50 * rf_s.index_bytes());
    }
}
