//! Recompute-from-scratch reference (the strategy of IncIsoMatch \[12\],
//! minus its locality optimization): `ΔM = match(G_{k+1}) − match(G_k)`.

use gcsm_graph::DynamicGraph;
use gcsm_matcher::{match_static, CsrSource, DriverOptions};
use gcsm_pattern::QueryGraph;

/// Compute the exact signed match delta of the sealed batch by matching
/// both snapshots from scratch. The gold standard for correctness tests;
/// hopeless for performance — which is the point the incremental systems
/// make.
pub fn recompute_delta(graph: &DynamicGraph, q: &QueryGraph, opts: &DriverOptions) -> i64 {
    let before = graph.old_to_csr();
    let after = graph.to_csr();
    let b = {
        let src = CsrSource::new(&before);
        match_static(&src, q, &before.edges().collect::<Vec<_>>(), opts).matches
    };
    let a = {
        let src = CsrSource::new(&after);
        match_static(&src, q, &after.edges().collect::<Vec<_>>(), opts).matches
    };
    a - b
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcsm_graph::{CsrGraph, EdgeUpdate};
    use gcsm_matcher::{match_incremental, DynSource};
    use gcsm_pattern::queries;

    #[test]
    fn matches_incremental_on_small_case() {
        let g0 = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut g = DynamicGraph::from_csr(&g0);
        let batch =
            vec![EdgeUpdate::insert(0, 2), EdgeUpdate::insert(2, 4), EdgeUpdate::delete(1, 2)];
        let summary = g.apply_batch(&batch);
        let opts = DriverOptions::default();
        let q = queries::triangle();
        let reference = recompute_delta(&g, &q, &opts);
        let incremental = {
            let src = DynSource::new(&g);
            match_incremental(&src, &q, &summary.applied, &opts).matches
        };
        assert_eq!(reference, incremental);
    }
}
