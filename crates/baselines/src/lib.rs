//! # gcsm-baselines — the paper's CPU comparison systems
//!
//! * [`recompute`] — the IncIsoMatch-style reference \[12\]: re-match the
//!   pattern from scratch on the pre- and post-batch snapshots and take the
//!   difference. Exact, quadratic in practice; this is the ground truth the
//!   integration suite checks every engine against.
//! * [`rapidflow`] — a RapidFlow-like system \[15\]: a per-pattern-vertex
//!   **candidate index** (label + degree filter) that buys an optimized,
//!   cardinality-driven matching order and candidate pruning, at the cost
//!   of the index's memory footprint — the trade-off the paper discusses
//!   (RapidFlow runs out of memory on the large graphs, Fig. 14).

pub mod rapidflow;
pub mod recompute;

pub use rapidflow::RapidFlow;
pub use recompute::recompute_delta;
