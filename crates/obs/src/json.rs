//! Minimal hand-rolled JSON: escaping for the writers, a recursive-descent
//! parser for validation. The workspace is dependency-free, so exported
//! traces and metric snapshots are verified by round-tripping through this
//! parser (schema tests, `obs-validate`, CI) rather than through serde.

use std::collections::BTreeMap;
use std::fmt;

/// Escape a string for embedding inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parsed JSON value. Numbers are `f64` — all numbers the obs writers emit
/// (µs timestamps, counters) stay well inside the 2^53 exact-integer range.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not emitted by our writers;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Value::Num).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-3.5e2").unwrap(), Value::Num(-350.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":"x"}],"c":{}}"#).unwrap();
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("c"), Some(&Value::Obj(BTreeMap::new())));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_roundtrips() {
        let original = "he said \"hi\"\n\tback\\slash \u{1}";
        let wrapped = format!("\"{}\"", json_escape(original));
        assert_eq!(parse(&wrapped).unwrap(), Value::Str(original.into()));
    }

    #[test]
    fn integer_accessors_enforce_exactness() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-42").unwrap().as_i64(), Some(-42));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }
}
