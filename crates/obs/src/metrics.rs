//! Metric registry: named counters, gauges, and log-bucketed histograms.
//!
//! Handles are `Arc`s handed out by [`Registry::counter`] & co; recording on
//! a handle is a single relaxed atomic op, lock-free and wait-free. The
//! registry mutex is touched only at registration and snapshot time, never
//! on the hot path — call sites register once at setup and stash the handle.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json_escape;

/// Monotonically increasing event count (`u64`).
#[derive(Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        // Counters are sum-only; relaxed is enough because snapshots never
        // infer ordering between two different metrics.
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time signed level (`i64`) — queue depths, net match deltas.
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn dec(&self) {
        self.add(-1);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of log2 buckets: bucket `i` counts observations in
/// `[2^(i-1), 2^i)` (bucket 0 holds zeros and ones).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Log2-bucketed histogram of `u64` observations (typically latencies in
/// microseconds). Fixed bucket layout keeps recording allocation-free.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn observe(&self, value: u64) {
        let b = Self::bucket_index(value);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Index of the bucket `value` lands in: `0` for 0 and 1, otherwise
    /// `⌈log2(value)⌉` capped at the last bucket.
    pub fn bucket_index(value: u64) -> usize {
        if value <= 1 {
            0
        } else {
            (64 - (value - 1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        // Loads may tear against concurrent observes (count vs sum vs
        // buckets), which snapshots tolerate: each field is individually
        // consistent and per-batch sampling happens between batches.
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((i as u32, c));
            }
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Named metric store. Names are dot-separated (`matcher.intersect_ops`,
/// `stream.queue_depth`); registering the same name twice returns the same
/// underlying metric, and registering it as a different kind panics —
/// namespace clashes are programming errors we want loud.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    // lint:allow(lock-order) -- `Arc::new` inside `or_insert_with` is the
    // constructor, not a lock acquisition; the name-based call graph
    // conflates it with unrelated `new()` fns that do lock.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    /// Consistent-enough point-in-time copy of every registered metric,
    /// sorted by name (the map is a `BTreeMap`).
    pub fn snapshot(&self) -> Snapshot {
        let map = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let entries = map
            .iter()
            .map(|(name, m)| {
                let value = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                MetricEntry { name: name.clone(), value }
            })
            .collect();
        Snapshot { entries }
    }

    /// Zero every metric, keeping registrations (and outstanding handles)
    /// alive. Used between runs and by tests.
    pub fn reset(&self) {
        let map = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        for m in map.values() {
            match m {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }
}

#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    /// `(bucket_index, count)` for non-empty buckets only; bucket `i`
    /// covers `[2^(i-1), 2^i)` (bucket 0: values 0 and 1).
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramSnapshot),
}

#[derive(Clone, Debug, PartialEq)]
pub struct MetricEntry {
    pub name: String,
    pub value: MetricValue,
}

/// Point-in-time view of the whole registry, renderable as aligned text or
/// a JSON object keyed by metric name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    pub entries: Vec<MetricEntry>,
}

impl Snapshot {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find(|e| e.name == name).and_then(|e| match &e.value {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        })
    }

    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.entries.iter().find(|e| e.name == name).and_then(|e| match &e.value {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        })
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.entries.iter().find(|e| e.name == name).and_then(|e| match &e.value {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        })
    }

    /// Aligned `name value` lines; histograms render as `count/sum/mean`.
    pub fn to_text(&self) -> String {
        let width = self.entries.iter().map(|e| e.name.len()).max().unwrap_or(0);
        let mut out = String::new();
        for e in &self.entries {
            match &e.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{:width$}  {v}\n", e.name));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("{:width$}  {v}\n", e.name));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{:width$}  count={} sum={} mean={:.1}\n",
                        e.name,
                        h.count,
                        h.sum,
                        h.mean()
                    ));
                }
            }
        }
        out
    }

    /// JSON object keyed by metric name. Counters and gauges are plain
    /// numbers; histograms are `{"count","sum","buckets":[[idx,n],..]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&json_escape(&e.name));
            out.push_str("\":");
            match &e.value {
                MetricValue::Counter(v) => out.push_str(&v.to_string()),
                MetricValue::Gauge(v) => out.push_str(&v.to_string()),
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"count\":{},\"sum\":{},\"buckets\":[",
                        h.count, h.sum
                    ));
                    for (j, (idx, n)) in h.buckets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("[{idx},{n}]"));
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_roundtrip() {
        let r = Registry::default();
        let c = r.counter("a.ops");
        let g = r.gauge("a.depth");
        c.add(3);
        c.inc();
        g.set(10);
        g.dec();
        let s = r.snapshot();
        assert_eq!(s.counter("a.ops"), Some(4));
        assert_eq!(s.gauge("a.depth"), Some(9));
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn same_name_returns_same_metric() {
        let r = Registry::default();
        let c1 = r.counter("x");
        let c2 = r.counter("x");
        c1.inc();
        c2.inc();
        assert_eq!(r.snapshot().counter("x"), Some(2));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_clash_panics() {
        let r = Registry::default();
        let _c = r.counter("x");
        let _g = r.gauge("x");
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(5), 3);
        assert_eq!(Histogram::bucket_index(1024), 10);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_observe_and_reset() {
        let r = Registry::default();
        let h = r.histogram("lat");
        h.observe(1);
        h.observe(100);
        h.observe(100);
        let s = r.snapshot();
        let hs = s.histogram("lat").expect("histogram registered");
        assert_eq!(hs.count, 3);
        assert_eq!(hs.sum, 201);
        assert_eq!(hs.buckets, vec![(0, 1), (7, 2)]);
        r.reset();
        let hs = r.snapshot();
        assert_eq!(hs.histogram("lat").map(|h| h.count), Some(0));
    }

    #[test]
    fn snapshot_is_sorted_and_renders() {
        let r = Registry::default();
        r.counter("b.ops").add(2);
        r.gauge("a.depth").set(-1);
        r.histogram("c.lat").observe(5);
        let s = r.snapshot();
        let names: Vec<&str> = s.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["a.depth", "b.ops", "c.lat"]);
        let text = s.to_text();
        assert!(text.contains("a.depth"));
        assert!(text.contains("-1"));
        let json = s.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"b.ops\":2"));
        assert!(json.contains("\"a.depth\":-1"));
        assert!(json.contains("\"buckets\":[[3,1]]"));
    }
}
