//! Process-wide monotonic clock.
//!
//! Every timestamp in the observability layer — span `ts`/`dur` fields,
//! window-open ages, wall-clock phase attributions — derives from a single
//! `Instant` anchored at first use. Centralising the raw clock here is what
//! lets the `no-raw-clock` lint ban `Instant::now()` everywhere else: call
//! sites take `monotonic_micros()` / `Stopwatch` instead, so traces from
//! different threads land on one comparable timeline.

use std::sync::OnceLock;
use std::time::Instant;

fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// Microseconds since the process-wide anchor (first clock use).
///
/// Chrome trace-event timestamps are microseconds, so spans store this
/// directly. Monotonic and shared across threads.
pub fn monotonic_micros() -> u64 {
    anchor().elapsed().as_micros() as u64
}

/// Nanoseconds since the anchor — for wall-time measurement where
/// microsecond granularity would round sub-µs phases to zero.
pub fn monotonic_nanos() -> u64 {
    anchor().elapsed().as_nanos() as u64
}

/// A started wall-clock timer. Replaces ad-hoc `Instant::now()` pairs in
/// measurement code; nanosecond-resolution internally.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start_nanos: u64,
}

impl Stopwatch {
    pub fn start() -> Self {
        Stopwatch { start_nanos: monotonic_nanos() }
    }

    /// Seconds elapsed since `start()`.
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed_nanos() as f64 * 1e-9
    }

    pub fn elapsed_nanos(&self) -> u64 {
        monotonic_nanos().saturating_sub(self.start_nanos)
    }

    pub fn elapsed_micros(&self) -> u64 {
        self.elapsed_nanos() / 1_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micros_are_monotonic() {
        let a = monotonic_micros();
        let b = monotonic_micros();
        assert!(b >= a);
    }

    #[test]
    fn stopwatch_measures_nonnegative_time() {
        let sw = Stopwatch::start();
        let busy: u64 = (0..10_000).fold(0, |acc, x| acc ^ (x * 2654435761));
        assert!(sw.elapsed_seconds() >= 0.0);
        assert!(sw.elapsed_nanos() >= sw.elapsed_micros() * 1_000);
        let _ = busy;
    }
}
