//! `obs-validate` — offline checker for exported observability artifacts.
//!
//! ```text
//! obs-validate --trace out.trace.json --require ingest,seal,delta_build,dm_i,reorganize \
//!              --metrics out.metrics.json
//! ```
//!
//! Validates that a Chrome trace-event file parses, every event is a
//! well-formed complete (`"ph":"X"`) event, spans on each thread are
//! strictly nested with monotone timestamps, and all `--require`d phase
//! names appear; and that a metrics snapshot parses as an object of
//! numbers / histogram objects. Exit 0 on success, 1 with a message
//! otherwise. CI runs this against the `csm --trace` smoke workload.

use gcsm_obs::{parse, Value};

struct Args {
    trace: Option<String>,
    metrics: Option<String>,
    require: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args { trace: None, metrics: None, require: Vec::new() };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| -> Result<&String, String> {
            argv.get(i + 1).ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--trace" => {
                a.trace = Some(need(i)?.clone());
                i += 1;
            }
            "--metrics" => {
                a.metrics = Some(need(i)?.clone());
                i += 1;
            }
            "--require" => {
                a.require = need(i)?.split(',').map(|s| s.trim().to_string()).collect();
                i += 1;
            }
            "--help" | "-h" => {
                println!(
                    "usage: obs-validate [--trace FILE [--require name,name,..]] [--metrics FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    if a.trace.is_none() && a.metrics.is_none() {
        return Err("need --trace and/or --metrics".into());
    }
    Ok(a)
}

struct Span {
    name: String,
    ts: u64,
    end: u64,
    tid: u64,
}

fn validate_trace(path: &str, require: &[String]) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("{path}: missing traceEvents array"))?;
    let mut spans = Vec::with_capacity(events.len());
    for (i, ev) in events.iter().enumerate() {
        let field = |k: &str| ev.get(k).ok_or_else(|| format!("{path}: event {i} missing '{k}'"));
        let ph = field("ph")?.as_str().unwrap_or("");
        if ph != "X" {
            return Err(format!("{path}: event {i} has ph '{ph}', expected complete event 'X'"));
        }
        let name = field("name")?
            .as_str()
            .ok_or_else(|| format!("{path}: event {i} name is not a string"))?
            .to_string();
        field("cat")?;
        field("pid")?;
        let ts = field("ts")?
            .as_u64()
            .ok_or_else(|| format!("{path}: event {i} ts is not a non-negative integer"))?;
        let dur = field("dur")?
            .as_u64()
            .ok_or_else(|| format!("{path}: event {i} dur is not a non-negative integer"))?;
        let tid = field("tid")?
            .as_u64()
            .ok_or_else(|| format!("{path}: event {i} tid is not a non-negative integer"))?;
        spans.push(Span { name, ts, end: ts + dur, tid });
    }
    for want in require {
        if !spans.iter().any(|s| &s.name == want) {
            return Err(format!("{path}: required phase '{want}' not present in trace"));
        }
    }
    check_nesting(path, &mut spans)?;
    Ok(spans.len())
}

/// Per thread: events must be sorted by start time and each span must be
/// disjoint from or fully contained in any earlier still-open span.
fn check_nesting(path: &str, spans: &mut [Span]) -> Result<(), String> {
    spans.sort_by(|a, b| a.tid.cmp(&b.tid).then(a.ts.cmp(&b.ts)).then(b.end.cmp(&a.end)));
    let mut stack: Vec<(u64, u64)> = Vec::new(); // (end, tid) of open spans
    let mut last: Option<(u64, u64)> = None; // (tid, ts)
    for s in spans.iter() {
        if let Some((tid, ts)) = last {
            if tid == s.tid && s.ts < ts {
                return Err(format!("{path}: tid {tid} timestamps not monotone"));
            }
            if tid != s.tid {
                stack.clear();
            }
        }
        while let Some(&(end, tid)) = stack.last() {
            if tid != s.tid || end <= s.ts {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&(end, _)) = stack.last() {
            if s.end > end {
                return Err(format!(
                    "{path}: span '{}' [{}, {}] overlaps enclosing span ending at {} without nesting",
                    s.name, s.ts, s.end, end
                ));
            }
        }
        stack.push((s.end, s.tid));
        last = Some((s.tid, s.ts));
    }
    Ok(())
}

fn validate_metrics(path: &str) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let map = match &doc {
        Value::Obj(m) => m,
        _ => return Err(format!("{path}: metrics snapshot is not a JSON object")),
    };
    for (name, v) in map {
        match v {
            Value::Num(_) => {}
            Value::Obj(_) => {
                for k in ["count", "sum", "buckets"] {
                    if v.get(k).is_none() {
                        return Err(format!("{path}: histogram '{name}' missing '{k}'"));
                    }
                }
            }
            _ => return Err(format!("{path}: metric '{name}' is neither number nor histogram")),
        }
    }
    Ok(map.len())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("obs-validate: {e}\ntry --help");
            std::process::exit(2);
        }
    };
    let mut failed = false;
    if let Some(path) = &args.trace {
        match validate_trace(path, &args.require) {
            Ok(n) => println!("obs-validate: {path}: OK ({n} spans)"),
            Err(e) => {
                eprintln!("obs-validate: FAIL: {e}");
                failed = true;
            }
        }
    }
    if let Some(path) = &args.metrics {
        match validate_metrics(path) {
            Ok(n) => println!("obs-validate: {path}: OK ({n} metrics)"),
            Err(e) => {
                eprintln!("obs-validate: FAIL: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
