//! Span tracer: bounded ring of closed spans, exportable as Chrome
//! trace-event JSON (open in `chrome://tracing` or Perfetto).
//!
//! Spans are RAII guards: [`Tracer::span`] stamps the start, dropping the
//! guard stamps the duration and pushes one fixed-size record into the
//! ring. Everything is allocation-free at record time — names and
//! categories are `&'static str`, args are a small option struct — so the
//! only shared state touched per span is one short mutex critical section
//! at close.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::clock::monotonic_micros;

/// Default ring capacity: enough for ~10k batches of the full phase
/// taxonomy before the ring wraps (oldest spans dropped first).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// Optional structured payload attached to a span; shows up under `args`
/// in the Chrome trace. Fixed fields keep recording allocation-free.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanArgs {
    /// Batch index the span belongs to.
    pub batch: Option<u64>,
    /// Delta-plan level for `dm_i` spans.
    pub level: Option<u32>,
    /// Free count: updates ingested, tasks merged, lists rebuilt…
    pub count: Option<u64>,
    /// Shard index for multi-device spans (one lane per shard in the
    /// Chrome trace view).
    pub shard: Option<u32>,
}

/// A closed span as stored in the ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRec {
    pub name: &'static str,
    pub cat: &'static str,
    pub ts_us: u64,
    pub dur_us: u64,
    pub tid: u64,
    pub args: SpanArgs,
}

fn current_tid() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

#[derive(Default)]
struct Ring {
    buf: Vec<SpanRec>,
    /// Next write position once the ring is full.
    head: usize,
    dropped: u64,
}

/// Bounded span sink. One per [`crate::Obs`]; shared across threads.
pub struct Tracer {
    ring: Mutex<Ring>,
    capacity: usize,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl Tracer {
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer { ring: Mutex::new(Ring::default()), capacity: capacity.max(1) }
    }

    /// Open a span; the returned guard records it when dropped.
    pub fn span(&self, name: &'static str, cat: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            tracer: Some(self),
            name,
            cat,
            start_us: monotonic_micros(),
            args: SpanArgs::default(),
        }
    }

    /// Record an already-measured span (e.g. a stream window whose open
    /// timestamp predates the sealing thread's involvement).
    pub fn record_closed(
        &self,
        name: &'static str,
        cat: &'static str,
        ts_us: u64,
        dur_us: u64,
        args: SpanArgs,
    ) {
        self.push(SpanRec { name, cat, ts_us, dur_us, tid: current_tid(), args });
    }

    // lint:allow(lock-order) -- `ring.buf.push` is `Vec::push` under the ring
    // lock, not a nested lock acquisition; the name-based call graph
    // conflates it with unrelated `push()` fns that do lock.
    fn push(&self, rec: SpanRec) {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.buf.len() < self.capacity {
            ring.buf.push(rec);
        } else {
            let head = ring.head;
            ring.buf[head] = rec;
            ring.head = (head + 1) % self.capacity;
            ring.dropped += 1;
        }
    }

    /// All retained spans, oldest first; plus how many were evicted.
    pub fn spans(&self) -> (Vec<SpanRec>, u64) {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::with_capacity(ring.buf.len());
        out.extend_from_slice(&ring.buf[ring.head..]);
        out.extend_from_slice(&ring.buf[..ring.head]);
        (out, ring.dropped)
    }

    pub fn reset(&self) {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.buf.clear();
        ring.head = 0;
        ring.dropped = 0;
    }

    /// Chrome trace-event JSON: complete (`"ph":"X"`) events sorted by
    /// start time, parents before children at equal timestamps.
    pub fn to_chrome_json(&self) -> String {
        let (mut spans, _) = self.spans();
        spans.sort_by(|a, b| a.ts_us.cmp(&b.ts_us).then(b.dur_us.cmp(&a.dur_us)));
        let mut out = String::from("{\"traceEvents\":[");
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
                s.name, s.cat, s.ts_us, s.dur_us, s.tid
            ));
            let mut args = Vec::new();
            if let Some(b) = s.args.batch {
                args.push(format!("\"batch\":{b}"));
            }
            if let Some(l) = s.args.level {
                args.push(format!("\"level\":{l}"));
            }
            if let Some(c) = s.args.count {
                args.push(format!("\"count\":{c}"));
            }
            if let Some(sh) = s.args.shard {
                args.push(format!("\"shard\":{sh}"));
            }
            if !args.is_empty() {
                out.push_str(",\"args\":{");
                out.push_str(&args.join(","));
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

/// RAII handle for an open span. `None` tracer means tracing is disabled
/// and the drop is a no-op — this is the entire cost of a disabled span
/// besides the enabled-flag branch that produced it.
pub struct SpanGuard<'a> {
    tracer: Option<&'a Tracer>,
    name: &'static str,
    cat: &'static str,
    start_us: u64,
    args: SpanArgs,
}

impl SpanGuard<'_> {
    /// A guard that records nothing; returned when tracing is disabled.
    pub fn disabled() -> SpanGuard<'static> {
        SpanGuard { tracer: None, name: "", cat: "", start_us: 0, args: SpanArgs::default() }
    }

    pub fn is_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    pub fn set_batch(&mut self, batch: u64) {
        self.args.batch = Some(batch);
    }

    pub fn set_level(&mut self, level: u32) {
        self.args.level = Some(level);
    }

    pub fn set_count(&mut self, count: u64) {
        self.args.count = Some(count);
    }

    pub fn set_shard(&mut self, shard: u32) {
        self.args.shard = Some(shard);
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(tracer) = self.tracer {
            let now = monotonic_micros();
            tracer.push(SpanRec {
                name: self.name,
                cat: self.cat,
                ts_us: self.start_us,
                dur_us: now.saturating_sub(self.start_us),
                tid: current_tid(),
                args: self.args,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_records_one_span() {
        let t = Tracer::with_capacity(8);
        {
            let mut g = t.span("batch", "pipeline");
            g.set_batch(3);
        }
        let (spans, dropped) = t.spans();
        assert_eq!(dropped, 0);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "batch");
        assert_eq!(spans[0].args.batch, Some(3));
    }

    #[test]
    fn disabled_guard_records_nothing() {
        let t = Tracer::with_capacity(8);
        {
            let mut g = SpanGuard::disabled();
            assert!(!g.is_enabled());
            g.set_count(7);
        }
        assert_eq!(t.spans().0.len(), 0);
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let t = Tracer::with_capacity(4);
        for i in 0..10u64 {
            t.record_closed("s", "c", i, 1, SpanArgs::default());
        }
        let (spans, dropped) = t.spans();
        assert_eq!(spans.len(), 4);
        assert_eq!(dropped, 6);
        // Oldest-first: the survivors are the last four records.
        let ts: Vec<u64> = spans.iter().map(|s| s.ts_us).collect();
        assert_eq!(ts, vec![6, 7, 8, 9]);
    }

    #[test]
    fn chrome_json_shape() {
        let t = Tracer::with_capacity(8);
        t.record_closed("outer", "pipeline", 10, 20, SpanArgs::default());
        t.record_closed(
            "inner",
            "matcher",
            12,
            5,
            SpanArgs { level: Some(1), ..Default::default() },
        );
        t.record_closed(
            "shard_match",
            "engine",
            13,
            3,
            SpanArgs { shard: Some(2), ..Default::default() },
        );
        let json = t.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"outer\""));
        assert!(json.contains("\"args\":{\"level\":1}"));
        assert!(json.contains("\"args\":{\"shard\":2}"));
        assert!(json.ends_with("\"displayTimeUnit\":\"ms\"}"));
        // Sorted by start time: outer (ts 10) precedes inner (ts 12).
        assert!(json.find("outer").unwrap() < json.find("inner").unwrap());
    }

    #[test]
    fn reset_clears_ring() {
        let t = Tracer::with_capacity(4);
        t.record_closed("s", "c", 0, 1, SpanArgs::default());
        t.reset();
        assert_eq!(t.spans().0.len(), 0);
        assert_eq!(t.spans().1, 0);
    }
}
