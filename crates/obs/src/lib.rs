//! `gcsm-obs` — unified observability for the CSM pipeline.
//!
//! Three disconnected islands of instrumentation existed before this crate:
//! `matcher::MatchStats` (per-run enumeration work), `gpusim::Traffic`
//! (memory-system atomics), and the stream session's backpressure counters.
//! This crate gives them one home:
//!
//! * [`metrics::Registry`] — named counters / gauges / log-bucketed
//!   histograms behind relaxed atomics, snapshottable as text or JSON.
//! * [`trace::Tracer`] — RAII spans in a bounded ring, exported as Chrome
//!   trace-event JSON (`chrome://tracing`, Perfetto).
//! * [`clock`] — the process-wide monotonic clock all of it shares.
//!
//! # Zero cost when disabled
//!
//! The process-wide handle ([`global`]) starts disabled. Every
//! instrumentation site goes through [`span`] / [`enabled`], which load one
//! relaxed `AtomicBool` on a `'static` — the entire disabled-path cost is
//! that branch (verified by the overhead test in `tests/`). No allocation,
//! no lock, no clock read happens unless observability was switched on.
//!
//! # Span taxonomy
//!
//! Per batch: `batch` ⊃ { `ingest`, `seal`, `delta_build` ⊃ { `freq_est`,
//! `data_copy` }, `matching` ⊃ { `dm_i` (one per delta-plan level),
//! `merge` }, `reorganize` }. Stream mode adds `window` spans covering each
//! batch's open-to-seal interval. Delta-cache mode nests a `cache_delta`
//! span (resident diff + eviction) inside `delta_build`; overlapped
//! pipelines replace `reorganize` with a `reorg_overlap` span emitted from
//! the worker thread running the deferred merge.

pub mod clock;
pub mod json;
pub mod metrics;
pub mod trace;

pub use clock::{monotonic_micros, monotonic_nanos, Stopwatch};
pub use json::{json_escape, parse, ParseError, Value};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricEntry, MetricValue, Registry, Snapshot,
};
pub use trace::{SpanArgs, SpanGuard, SpanRec, Tracer};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Span categories — the `cat` field in Chrome traces, one per subsystem.
pub mod cat {
    pub const PIPELINE: &str = "pipeline";
    pub const ENGINE: &str = "engine";
    pub const MATCHER: &str = "matcher";
    pub const GRAPH: &str = "graph";
    pub const STREAM: &str = "stream";
}

/// The observability facade: enabled flag + registry + tracer.
pub struct Obs {
    enabled: AtomicBool,
    pub registry: Registry,
    pub tracer: Tracer,
}

impl Obs {
    fn new() -> Self {
        Obs {
            enabled: AtomicBool::new(false),
            registry: Registry::default(),
            tracer: Tracer::default(),
        }
    }

    /// One relaxed load; the only thing disabled hot paths pay.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn enable(&self) {
        self.set_enabled(true);
    }

    pub fn disable(&self) {
        self.set_enabled(false);
    }

    /// Open a span if enabled; a no-op guard otherwise.
    #[inline]
    pub fn span(&self, name: &'static str, cat: &'static str) -> SpanGuard<'_> {
        if self.enabled() {
            self.tracer.span(name, cat)
        } else {
            SpanGuard::disabled()
        }
    }

    /// Zero all metrics and drop all retained spans (registrations and the
    /// enabled flag are untouched).
    pub fn reset(&self) {
        self.registry.reset();
        self.tracer.reset();
    }
}

/// The process-wide [`Obs`] handle. Starts disabled; CLIs flip it on when
/// the user passes `--metrics` / `--trace`.
pub fn global() -> &'static Obs {
    static GLOBAL: OnceLock<Obs> = OnceLock::new();
    GLOBAL.get_or_init(Obs::new)
}

/// `global().enabled()` — the gate instrumentation sites branch on.
#[inline]
pub fn enabled() -> bool {
    global().enabled()
}

/// Open a span on the global handle (no-op guard when disabled).
#[inline]
pub fn span(name: &'static str, cat: &'static str) -> SpanGuard<'static> {
    global().span(name, cat)
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests share the process-global handle with nothing else in
    // this crate's unit-test binary, but still restore the disabled state
    // so ordering between them can't matter.

    #[test]
    fn global_starts_disabled_and_spans_are_noop() {
        let obs = global();
        let before = obs.tracer.spans().0.len();
        {
            let g = span("batch", cat::PIPELINE);
            assert!(!g.is_enabled() || obs.enabled());
        }
        if !obs.enabled() {
            assert_eq!(obs.tracer.spans().0.len(), before);
        }
    }

    #[test]
    fn enable_records_and_reset_clears() {
        let local = Obs::new();
        assert!(!local.enabled());
        local.enable();
        {
            let mut g = local.span("batch", cat::PIPELINE);
            assert!(g.is_enabled());
            g.set_batch(0);
        }
        local.registry.counter("x").inc();
        assert_eq!(local.tracer.spans().0.len(), 1);
        assert_eq!(local.registry.snapshot().counter("x"), Some(1));
        local.reset();
        assert_eq!(local.tracer.spans().0.len(), 0);
        assert_eq!(local.registry.snapshot().counter("x"), Some(0));
        local.disable();
        assert!(!local.span("batch", cat::PIPELINE).is_enabled());
    }
}
