//! Golden fixture tests: each rule has at least one firing fixture and one
//! clean fixture under `tests/fixtures/`. Fixtures are linted under a
//! pseudo-path that places them in the relevant rule's scope.

use gcsm_lint::{lint_file, Finding};
use std::path::Path;

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read fixture {}: {e}", p.display()))
}

fn rules_fired(findings: &[Finding]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = findings.iter().map(|f| f.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

#[test]
fn unsafe_doc_fires_and_clean() {
    let f = lint_file("crates/gpusim/src/fx.rs", &fixture("unsafe_doc_fires.rs"));
    assert_eq!(rules_fired(&f), vec!["unsafe-doc"], "{f:?}");
    assert_eq!(f[0].line, 3);
    let c = lint_file("crates/gpusim/src/fx.rs", &fixture("unsafe_doc_clean.rs"));
    assert!(c.is_empty(), "{c:?}");
}

#[test]
fn hot_path_fires_and_clean() {
    let hot = "crates/matcher/src/enumerate.rs";
    let f = lint_file(hot, &fixture("hot_path_fires.rs"));
    assert_eq!(rules_fired(&f), vec!["hot-path-panic"], "{f:?}");
    // unwrap, panic!, bare index, expect — four distinct sites.
    assert_eq!(f.len(), 4, "{f:?}");
    let c = lint_file(hot, &fixture("hot_path_clean.rs"));
    assert!(c.is_empty(), "{c:?}");
}

#[test]
fn hot_path_rule_is_scoped() {
    // The same violating source outside the hot-path scope is clean.
    let f = lint_file("crates/gpusim/src/fx.rs", &fixture("hot_path_fires.rs"));
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn relaxed_fires_and_clean() {
    let scope = "crates/core/src/stream/fx.rs";
    let f = lint_file(scope, &fixture("relaxed_fires.rs"));
    assert_eq!(rules_fired(&f), vec!["relaxed-justify"], "{f:?}");
    let c = lint_file(scope, &fixture("relaxed_clean.rs"));
    assert!(c.is_empty(), "{c:?}");
    // Out of scope: unjustified Relaxed is fine elsewhere.
    let o = lint_file("crates/gpusim/src/fx.rs", &fixture("relaxed_fires.rs"));
    assert!(o.is_empty(), "{o:?}");
}

#[test]
fn raw_clock_fires_and_clean() {
    let scope = "crates/core/src/stream/fx.rs";
    let f = lint_file(scope, &fixture("raw_clock_fires.rs"));
    assert_eq!(rules_fired(&f), vec!["no-raw-clock"], "{f:?}");
    // Imported and fully-qualified forms: two distinct sites.
    assert_eq!(f.len(), 2, "{f:?}");
    let c = lint_file(scope, &fixture("raw_clock_clean.rs"));
    assert!(c.is_empty(), "{c:?}");
    // Out of scope (e.g. the obs crate itself): raw clocks are fine.
    let o = lint_file("crates/obs/src/clock.rs", &fixture("raw_clock_fires.rs"));
    assert!(o.is_empty(), "{o:?}");
}

#[test]
fn lock_order_fires_direct_and_via_call() {
    let f = lint_file("crates/gpusim/src/fx.rs", &fixture("lock_order_fires.rs"));
    assert_eq!(rules_fired(&f), vec!["lock-order"], "{f:?}");
    assert!(f[0].message.contains("alpha") && f[0].message.contains("beta"), "{f:?}");
    let g = lint_file("crates/gpusim/src/fx.rs", &fixture("lock_order_call_fires.rs"));
    assert_eq!(rules_fired(&g), vec!["lock-order"], "{g:?}");
    assert!(g[0].message.contains("via touch_beta()"), "{g:?}");
}

#[test]
fn lock_order_clean_orders() {
    let c = lint_file("crates/gpusim/src/fx.rs", &fixture("lock_order_clean.rs"));
    assert!(c.is_empty(), "{c:?}");
}

#[test]
fn debug_macros_fire_and_clean() {
    let f = lint_file("crates/gpusim/src/fx.rs", &fixture("debug_macros_fires.rs"));
    assert_eq!(rules_fired(&f), vec!["no-debug-macros"], "{f:?}");
    // todo!, unimplemented!, and dbg! (inside a test — still banned).
    assert_eq!(f.len(), 3, "{f:?}");
    let c = lint_file("crates/gpusim/src/fx.rs", &fixture("debug_macros_clean.rs"));
    assert!(c.is_empty(), "{c:?}");
}

#[test]
fn allow_syntax_fires_and_clean() {
    let f = lint_file("crates/gpusim/src/fx.rs", &fixture("allow_syntax_fires.rs"));
    assert_eq!(rules_fired(&f), vec!["allow-syntax"], "{f:?}");
    assert!(f.len() >= 3, "unknown id + missing reason + malformed: {f:?}");
    let c = lint_file("crates/gpusim/src/fx.rs", &fixture("allow_syntax_clean.rs"));
    assert!(c.is_empty(), "{c:?}");
}

#[test]
fn vendor_pin_detects_drift_and_absence() {
    use std::fs;
    let base = std::env::temp_dir().join(format!("gcsm-lint-vendor-{}", std::process::id()));
    let _ = fs::remove_dir_all(&base);
    fs::create_dir_all(base.join("vendor/shim")).expect("mkdir");
    fs::write(
        base.join("vendor/shim/Cargo.toml"),
        "[package]\nname = \"shim\"\nversion = \"0.2.0\"\n",
    )
    .expect("write manifest");

    // Matching lockfile: clean.
    fs::write(
        base.join("Cargo.lock"),
        "version = 3\n\n[[package]]\nname = \"shim\"\nversion = \"0.2.0\"\n",
    )
    .expect("write lock");
    let mut findings = Vec::new();
    gcsm_lint::rules::vendor_pin::check(&base, &mut findings);
    assert!(findings.is_empty(), "{findings:?}");

    // Version drift: fires.
    fs::write(
        base.join("Cargo.lock"),
        "version = 3\n\n[[package]]\nname = \"shim\"\nversion = \"0.3.1\"\n",
    )
    .expect("write lock");
    let mut findings = Vec::new();
    gcsm_lint::rules::vendor_pin::check(&base, &mut findings);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "vendor-pin");
    assert!(findings[0].message.contains("0.2.0") && findings[0].message.contains("0.3.1"));

    // Absent from the lockfile entirely: fires.
    fs::write(base.join("Cargo.lock"), "version = 3\n").expect("write lock");
    let mut findings = Vec::new();
    gcsm_lint::rules::vendor_pin::check(&base, &mut findings);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("absent"));

    let _ = fs::remove_dir_all(&base);
}

#[test]
fn json_output_shape() {
    let f = lint_file("crates/matcher/src/enumerate.rs", &fixture("hot_path_fires.rs"));
    let json = gcsm_lint::findings_to_json(&f);
    assert!(json.starts_with("{\"findings\":["));
    assert!(json.contains("\"rule\":\"hot-path-panic\""));
    assert!(json.ends_with(&format!("\"count\":{}}}", f.len())));
}
