// Fixture: malformed suppressions must fire `allow-syntax`.
pub fn a(xs: &[u32]) -> u32 {
    // lint:allow(bogus-rule) -- unknown rule id
    xs.len() as u32
}

pub fn b(xs: &[u32]) -> u32 {
    xs.len() as u32 // lint:allow(hot-path-panic)
}

pub fn c(xs: &[u32]) -> u32 {
    // lint:allow missing parens entirely
    xs.len() as u32
}
