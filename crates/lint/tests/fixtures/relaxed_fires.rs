// Fixture: unjustified `Ordering::Relaxed` in a relaxed-scope module must
// fire `relaxed-justify`.
use std::sync::atomic::{AtomicUsize, Ordering};

pub fn bump(c: &AtomicUsize) {
    c.fetch_add(1, Ordering::Relaxed);
}
