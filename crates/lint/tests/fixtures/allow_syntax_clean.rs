// Fixture: well-formed suppressions (single and multi-rule) are clean.
pub fn a(xs: &[u32]) -> u32 {
    // lint:allow(hot-path-panic) -- fixture: length checked by caller
    xs.len() as u32
}

// lint:allow(hot-path-panic, lock-order) -- fixture: multi-rule form
pub fn b(xs: &[u32]) -> u32 {
    xs.len() as u32
}
