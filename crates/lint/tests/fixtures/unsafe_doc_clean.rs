// Fixture: documented unsafe is clean.
pub fn read_raw(p: *const u32) -> u32 {
    // SAFETY: caller guarantees `p` is valid and aligned (fixture contract).
    unsafe { *p }
}

// SAFETY: same-line form also counts.
pub unsafe fn same_line() {} // SAFETY: no-op body, nothing to uphold.
