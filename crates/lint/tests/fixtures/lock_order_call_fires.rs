// Fixture: a cycle closed through the call graph (hold `alpha`, call a
// helper that takes `beta`; elsewhere `beta` is held before `alpha`) must
// fire `lock-order`.
use std::sync::Mutex;

pub struct S {
    pub alpha: Mutex<u32>,
    pub beta: Mutex<u32>,
}

fn touch_beta(s: &S) {
    let _g = s.beta.lock();
}

pub fn alpha_then_helper(s: &S) {
    let _ga = s.alpha.lock();
    touch_beta(s);
}

pub fn beta_then_alpha(s: &S) {
    let _gb = s.beta.lock();
    let _ga = s.alpha.lock();
}
