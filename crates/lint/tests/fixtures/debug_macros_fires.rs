// Fixture: development scaffolding macros must fire `no-debug-macros`,
// tests included.
pub fn later() {
    todo!("wire this up")
}

pub fn never() {
    unimplemented!()
}

#[cfg(test)]
mod tests {
    #[test]
    fn peek() {
        let x = 1;
        dbg!(x);
    }
}
