// Fixture: `Instant::now()` in an obs-instrumented module must fire
// `no-raw-clock` — both the imported and the fully-qualified form.
use std::time::Instant;

pub fn timed() -> f64 {
    let t0 = Instant::now();
    let t1 = std::time::Instant::now();
    t1.duration_since(t0).as_secs_f64()
}
