// Fixture: justified `Ordering::Relaxed` is clean; other orderings are
// never flagged.
use std::sync::atomic::{AtomicUsize, Ordering};

pub fn bump(c: &AtomicUsize) {
    // Relaxed: advisory statistics counter; no ordering needed (fixture).
    c.fetch_add(1, Ordering::Relaxed);
}

pub fn publish(c: &AtomicUsize) {
    c.store(1, Ordering::Release);
}
