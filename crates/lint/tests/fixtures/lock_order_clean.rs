// Fixture: consistent acquisition order, statement-scoped temporaries, and
// explicit `drop` before re-acquisition are all clean.
use std::sync::Mutex;

pub struct S {
    pub alpha: Mutex<u32>,
    pub beta: Mutex<u32>,
}

pub fn forward(s: &S) {
    let _ga = s.alpha.lock();
    let _gb = s.beta.lock();
}

pub fn forward_again(s: &S) {
    let _ga = s.alpha.lock();
    let _gb = s.beta.lock();
}

pub fn sequential(s: &S) {
    // Temporary guards end with their statements: no nesting here.
    *s.beta.lock().unwrap() += 1;
    *s.alpha.lock().unwrap() += 1;
}

pub fn dropped(s: &S) {
    let gb = s.beta.lock();
    drop(gb);
    let _ga = s.alpha.lock();
}
