// Fixture: ordinary idents named like the macros, and `!=` comparisons,
// are clean.
pub struct Task {
    pub todo: bool,
}

pub fn check(t: &Task, other: &Task) -> bool {
    t.todo != other.todo
}
