// Fixture: panics and bare indexing in a hot-path module must fire
// `hot-path-panic` (linted under a hot-path pseudo-path).
pub fn pick(xs: &[u32], i: usize) -> u32 {
    let first = xs.first().unwrap();
    if *first == 0 {
        panic!("zero head");
    }
    let direct = xs[i];
    let chained = xs.get(i).expect("in range");
    direct + chained
}
