// Fixture: obs-clock timing, a suppressed raw clock, and a test-only raw
// clock are all clean under `no-raw-clock`.

pub fn timed() -> f64 {
    let sw = gcsm_obs::Stopwatch::start();
    sw.elapsed_seconds()
}

pub fn calibrate() -> std::time::Instant {
    // lint:allow(no-raw-clock) -- one-off calibration against the OS clock
    std::time::Instant::now()
}

#[cfg(test)]
mod tests {
    #[test]
    fn raw_clock_ok_in_tests() {
        let _ = std::time::Instant::now();
    }
}
