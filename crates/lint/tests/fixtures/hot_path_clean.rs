// Fixture: `get`-based access, `unwrap_or`, suppressed indexing, and
// test-only code are all clean in a hot-path module.
pub fn pick(xs: &[u32], i: usize) -> u32 {
    let Some(&first) = xs.first() else { return 0 };
    first + xs.get(i).copied().unwrap_or(0)
}

pub fn head(xs: &[u32]) -> u32 {
    // lint:allow(hot-path-panic) -- fixture: caller checked non-empty
    xs[0]
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let xs = [1u32];
        assert_eq!(xs[0], *xs.first().unwrap());
    }
}
