// Fixture: two functions taking the same pair of locks in opposite orders
// must fire `lock-order`.
use std::sync::Mutex;

pub struct S {
    pub alpha: Mutex<u32>,
    pub beta: Mutex<u32>,
}

pub fn forward(s: &S) {
    let _ga = s.alpha.lock();
    let _gb = s.beta.lock();
}

pub fn backward(s: &S) {
    let _gb = s.beta.lock();
    let _ga = s.alpha.lock();
}
