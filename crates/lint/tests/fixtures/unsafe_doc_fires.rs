// Fixture: `unsafe` without a SAFETY comment must fire `unsafe-doc`.
pub fn read_raw(p: *const u32) -> u32 {
    unsafe { *p }
}
