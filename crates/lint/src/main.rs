//! `gcsm-lint` CLI. Walks the workspace and prints findings.
//!
//! ```text
//! cargo run -p gcsm-lint            # human-readable, exit 1 on findings
//! cargo run -p gcsm-lint -- --json  # machine-readable (CI artifact)
//! cargo run -p gcsm-lint -- --root /path/to/workspace
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root requires a path argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: gcsm-lint [--json] [--root <workspace>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| {
        // Default to the workspace root: the manifest dir's grandparent when
        // run via `cargo run -p gcsm-lint`, else the current directory.
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest.parent().and_then(|p| p.parent()).map(PathBuf::from).unwrap_or_else(|| ".".into())
    });

    let findings = match gcsm_lint::run(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: failed to walk workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", gcsm_lint::findings_to_json(&findings));
    } else {
        for f in &findings {
            println!("{f}");
        }
        if findings.is_empty() {
            eprintln!("gcsm-lint: clean ({} rules)", gcsm_lint::RULE_IDS.len());
        } else {
            eprintln!("gcsm-lint: {} finding(s)", findings.len());
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
