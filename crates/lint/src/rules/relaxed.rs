//! `relaxed-justify`: `Ordering::Relaxed` in the stream subsystem and
//! `gcsm-graph` ([`crate::RELAXED_SCOPES`]) must carry an inline
//! justification — a comment containing `Relaxed:` on the same line or
//! directly above — explaining why no ordering is required. The stream
//! determinism contract (PR 1) makes unexamined relaxed atomics a real
//! hazard there; elsewhere (counters in gpusim, matcher access telemetry)
//! relaxed is the obviously-right default and stays unpoliced.

use crate::{Finding, SourceFile, RELAXED_SCOPES};

fn in_scope(path: &str) -> bool {
    RELAXED_SCOPES.iter().any(|m| path == *m || path.starts_with(m))
}

pub fn check(f: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(&f.path) {
        return;
    }
    let toks = &f.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.text != "Relaxed" || f.test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        // Require the `Ordering::Relaxed` (or `atomic::Ordering::Relaxed`)
        // path shape: `Relaxed` preceded by `::`.
        if i < 2 || toks[i - 1].text != ":" || toks[i - 2].text != ":" {
            continue;
        }
        if f.justified_by("Relaxed:", t.line) {
            continue;
        }
        if f.suppressed("relaxed-justify", t.line) {
            continue;
        }
        out.push(Finding {
            rule: "relaxed-justify",
            file: f.path.clone(),
            line: t.line,
            message: "`Ordering::Relaxed` without a `// Relaxed: …` justification".into(),
        });
    }
}
