//! `lock-order`: extract per-function `Mutex`/`RwLock` acquisition
//! sequences, propagate them across the call graph, and report cycles in
//! the resulting lock-order relation — the classic potential-deadlock
//! shape in the session/worker paths.
//!
//! Model (token-level, necessarily approximate — suppress with a reason
//! when it misfires):
//!
//! * A lock's identity is `crate::receiver` — the identifier the guard
//!   method is called on, qualified by the crate it is acquired in.
//! * `.lock()` with no arguments is always an acquisition; `.read()` /
//!   `.write()` with no arguments count only when the receiver matches a
//!   declared `Mutex`/`RwLock` binding somewhere in the workspace (so
//!   `io::Read`/`Write` never match).
//! * A guard bound in a `let` statement is held until its block ends (or
//!   until `drop(guard)`); a temporary guard (`x.lock().push(..)`) is held
//!   to the end of its statement.
//! * Calling a function that (transitively) acquires locks while holding
//!   one orders the held lock before every lock the callee can take.
//!
//! Vendor shims are excluded: their `.lock()` calls implement the
//! primitive rather than use it.

use crate::{Finding, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

#[derive(Clone, Debug)]
enum Event {
    Acquire { lock: String, line: u32, var: Option<String>, depth: usize },
    Call { callee: String, line: u32 },
    Release { var: String },
    BlockClose { depth: usize },
    StmtEnd,
}

struct FnBody {
    file_idx: usize,
    events: Vec<Event>,
}

/// An ordering edge `from → to`, with the site that witnessed it.
#[derive(Clone, Debug)]
struct Edge {
    from: String,
    to: String,
    file: String,
    line: u32,
    via: Option<String>,
}

pub fn check(sources: &[SourceFile], out: &mut Vec<Finding>) {
    let in_scope: Vec<&SourceFile> =
        sources.iter().filter(|s| !s.path.starts_with("vendor/")).collect();

    // Pass A: declared lock binding names (for read()/write() filtering).
    let mut declared: BTreeSet<String> = BTreeSet::new();
    for f in &in_scope {
        collect_declared_locks(f, &mut declared);
    }

    // Pass B: function bodies → event sequences.
    let mut fns: BTreeMap<String, Vec<FnBody>> = BTreeMap::new();
    for (fi, f) in in_scope.iter().enumerate() {
        for (name, events) in extract_functions(f, &declared) {
            fns.entry(name).or_default().push(FnBody { file_idx: fi, events });
        }
    }

    // Fixpoint: the set of locks each function may (transitively) acquire.
    let mut may_acquire: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    loop {
        let mut changed = false;
        for (name, bodies) in &fns {
            let mut set = may_acquire.get(name).cloned().unwrap_or_default();
            let before = set.len();
            for b in bodies {
                for e in &b.events {
                    match e {
                        Event::Acquire { lock, .. } => {
                            set.insert(lock.clone());
                        }
                        Event::Call { callee, .. } => {
                            if let Some(cs) = may_acquire.get(callee) {
                                set.extend(cs.iter().cloned());
                            }
                        }
                        _ => {}
                    }
                }
            }
            if set.len() != before {
                changed = true;
            }
            may_acquire.insert(name.clone(), set);
        }
        if !changed {
            break;
        }
    }

    // Replay each body tracking held guards; emit ordering edges.
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    for bodies in fns.values() {
        for b in bodies {
            let file = &in_scope[b.file_idx].path;
            replay(&b.events, &may_acquire, file, &mut edges);
        }
    }

    // Cycle detection over the lock-order digraph.
    let mut adj: BTreeMap<&str, Vec<&Edge>> = BTreeMap::new();
    for e in edges.values() {
        adj.entry(e.from.as_str()).or_default().push(e);
    }
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in adj.keys().copied().collect::<Vec<_>>() {
        find_cycles(start, &adj, &mut Vec::new(), &mut BTreeSet::new(), &mut reported, |cycle| {
            emit_cycle(cycle, &edges, &in_scope, out);
        });
    }
}

/// Record `X` for every `X: Mutex<…>` / `X = RwLock::new(…)`-shaped
/// declaration (through `Arc<…>` wrappers and path prefixes).
fn collect_declared_locks(f: &SourceFile, out: &mut BTreeSet<String>) {
    let toks = &f.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.text != "Mutex" && t.text != "RwLock" {
            continue;
        }
        let next_is_generic = toks.get(i + 1).is_some_and(|n| n.text == "<");
        let next_is_new = toks.get(i + 1).is_some_and(|n| n.text == ":")
            && toks.get(i + 2).is_some_and(|n| n.text == ":")
            && toks.get(i + 3).is_some_and(|n| n.text == "new");
        if !next_is_generic && !next_is_new {
            continue;
        }
        // Walk back over wrapper idents / path punctuation to the binding.
        let mut j = i;
        while j > 0 {
            let p = &toks[j - 1];
            let skip = matches!(p.text.as_str(), "<" | ":" | "Arc" | "Box" | "std" | "sync")
                || p.text == "parking_lot";
            if !skip {
                break;
            }
            j -= 1;
        }
        if j == 0 {
            continue;
        }
        let before = &toks[j - 1];
        if before.text == "=" {
            // `name = Mutex::new(..)` or `let name = Arc::new(Mutex::new(..))`.
            if j >= 2 {
                out.insert(toks[j - 2].text.clone());
            }
        } else if crate::lexer::TokKind::Ident == before.kind && !crate::is_keyword(&before.text) {
            out.insert(before.text.clone());
        }
    }
}

fn crate_of(path: &str) -> &str {
    let mut parts = path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("crates"),
        Some(top) => top,
        None => path,
    }
}

/// Extract `(fn name, events)` for each function item in the file.
fn extract_functions(f: &SourceFile, declared: &BTreeSet<String>) -> Vec<(String, Vec<Event>)> {
    let toks = &f.lexed.tokens;
    let krate = crate_of(&f.path).to_string();
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text != "fn" || toks.get(i + 1).map_or(true, |n| n.text == "(") {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.clone();
        // Find the body braces (or `;` for a trait method signature).
        let mut k = i + 2;
        let mut angle = 0i32;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" if angle <= 0 => break,
                ";" if angle <= 0 => break,
                _ => {}
            }
            k += 1;
        }
        if toks.get(k).map_or(true, |t| t.text != "{") {
            i = k;
            continue;
        }
        let body_start = k;
        let mut depth = 0usize;
        let mut end = k;
        while end < toks.len() {
            match toks[end].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
        let events = scan_body(f, &krate, declared, body_start, end.min(toks.len()));
        out.push((name, events));
        i = end + 1;
    }
    out
}

/// Scan one body's tokens into the event sequence the replay consumes.
fn scan_body(
    f: &SourceFile,
    krate: &str,
    declared: &BTreeSet<String>,
    start: usize,
    end: usize,
) -> Vec<Event> {
    let toks = &f.lexed.tokens;
    let mut events = Vec::new();
    let mut depth = 0usize;
    let mut stmt_let_var: Option<String> = None;
    let mut i = start;
    while i < end {
        let t = &toks[i];
        match t.text.as_str() {
            "{" => {
                depth += 1;
                stmt_let_var = None;
                events.push(Event::StmtEnd);
            }
            "}" => {
                depth = depth.saturating_sub(1);
                stmt_let_var = None;
                events.push(Event::StmtEnd);
                events.push(Event::BlockClose { depth });
            }
            ";" => {
                stmt_let_var = None;
                events.push(Event::StmtEnd);
            }
            "let" => {
                // `let [mut] name = …`: the guard binding drop() can name.
                let mut k = i + 1;
                if toks.get(k).is_some_and(|n| n.text == "mut") {
                    k += 1;
                }
                stmt_let_var = toks
                    .get(k)
                    .filter(|n| n.kind == crate::lexer::TokKind::Ident)
                    .map(|n| n.text.clone());
            }
            "lock" | "read" | "write"
                if i > start
                    && toks[i - 1].text == "."
                    && toks.get(i + 1).is_some_and(|n| n.text == "(")
                    && toks.get(i + 2).is_some_and(|n| n.text == ")") =>
            {
                if let Some(recv) = receiver_name(toks, i - 1, start) {
                    let counts = t.text == "lock" || declared.contains(&recv);
                    if counts {
                        events.push(Event::Acquire {
                            lock: format!("{krate}::{recv}"),
                            line: t.line,
                            var: stmt_let_var.clone(),
                            depth,
                        });
                    }
                }
            }
            "drop"
                if toks.get(i + 1).is_some_and(|n| n.text == "(")
                    && toks.get(i + 2).is_some_and(|n| n.kind == crate::lexer::TokKind::Ident)
                    && toks.get(i + 3).is_some_and(|n| n.text == ")") =>
            {
                events.push(Event::Release { var: toks[i + 2].text.clone() });
            }
            name if toks[i].kind == crate::lexer::TokKind::Ident
                && !crate::is_keyword(name)
                && name != "lock"
                && name != "read"
                && name != "write"
                && name != "drop"
                && toks.get(i + 1).is_some_and(|n| n.text == "(") =>
            {
                events.push(Event::Call { callee: name.to_string(), line: t.line });
            }
            _ => {}
        }
        i += 1;
    }
    events
}

/// The identifier a method-call chain dereferences: for `x.lock()` the token
/// before the `.`; through `]`/`)` groups (`shards[i].lock()`,
/// `cache().lock()`) the identifier before the group.
fn receiver_name(toks: &[crate::lexer::Token], dot: usize, floor: usize) -> Option<String> {
    let mut j = dot;
    loop {
        if j <= floor {
            return None;
        }
        j -= 1;
        let t = &toks[j];
        match t.text.as_str() {
            "]" | ")" => {
                let (open, close) = if t.text == "]" { ("[", "]") } else { ("(", ")") };
                let mut depth = 1usize;
                while depth > 0 {
                    if j <= floor {
                        return None;
                    }
                    j -= 1;
                    if toks[j].text == close {
                        depth += 1;
                    } else if toks[j].text == open {
                        depth -= 1;
                    }
                }
            }
            _ if t.kind == crate::lexer::TokKind::Ident => {
                // `a.b.lock()` names the innermost field `b`; `self` alone
                // is too generic to be a lock identity.
                if t.text == "self" {
                    return None;
                }
                return Some(t.text.clone());
            }
            _ => return None,
        }
    }
}

/// Walk a body's events with a held-guard stack, adding ordering edges.
fn replay(
    events: &[Event],
    may_acquire: &BTreeMap<String, BTreeSet<String>>,
    file: &str,
    edges: &mut BTreeMap<(String, String), Edge>,
) {
    // (lock, guard variable if let-bound, Some(block depth) if let-bound
    // else None-until-stmt-end)
    let mut held: Vec<(String, Option<String>, Option<usize>)> = Vec::new();
    let mut add_edge = |from: &str, to: &str, line: u32, via: Option<String>| {
        if from == to && via.is_some() {
            // Re-entry through a call is only a hazard if the callee's
            // acquisition is unconditional — too speculative at token level.
            return;
        }
        edges.entry((from.to_string(), to.to_string())).or_insert_with(|| Edge {
            from: from.to_string(),
            to: to.to_string(),
            file: file.to_string(),
            line,
            via,
        });
    };
    for e in events {
        match e {
            Event::Acquire { lock, line, var, depth } => {
                for (h, _, _) in &held {
                    add_edge(h, lock, *line, None);
                }
                held.push((lock.clone(), var.clone(), var.is_some().then_some(*depth)));
            }
            Event::Call { callee, line, .. } => {
                if held.is_empty() {
                    continue;
                }
                if let Some(locks) = may_acquire.get(callee) {
                    for (h, _, _) in &held {
                        for l in locks {
                            add_edge(h, l, *line, Some(callee.clone()));
                        }
                    }
                }
            }
            Event::Release { var } => held.retain(|(_, v, _)| v.as_deref() != Some(var)),
            Event::StmtEnd => held.retain(|(_, _, d)| d.is_some()),
            Event::BlockClose { depth } => {
                held.retain(|(_, _, d)| d.is_some_and(|bd| bd < *depth + 1));
            }
        }
    }
}

/// DFS from `start`; invoke `emit` once per canonicalized cycle.
fn find_cycles<'a>(
    start: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a Edge>>,
    path: &mut Vec<&'a str>,
    visiting: &mut BTreeSet<&'a str>,
    reported: &mut BTreeSet<Vec<String>>,
    mut emit: impl FnMut(&[&str]),
) {
    fn inner<'a>(
        node: &'a str,
        adj: &BTreeMap<&'a str, Vec<&'a Edge>>,
        path: &mut Vec<&'a str>,
        visiting: &mut BTreeSet<&'a str>,
        reported: &mut BTreeSet<Vec<String>>,
        emit: &mut impl FnMut(&[&str]),
    ) {
        path.push(node);
        visiting.insert(node);
        for e in adj.get(node).map(|v| v.as_slice()).unwrap_or(&[]) {
            let to = e.to.as_str();
            if let Some(pos) = path.iter().position(|&n| n == to) {
                let cycle: Vec<&str> = path[pos..].to_vec();
                let mut canon: Vec<String> = cycle.iter().map(|s| s.to_string()).collect();
                canon.sort();
                if reported.insert(canon) {
                    emit(&cycle);
                }
            } else if !visiting.contains(to) && path.len() < 32 {
                inner(to, adj, path, visiting, reported, emit);
            }
        }
        path.pop();
        visiting.remove(node);
    }
    inner(start, adj, path, visiting, reported, &mut emit);
}

fn emit_cycle(
    cycle: &[&str],
    edges: &BTreeMap<(String, String), Edge>,
    sources: &[&SourceFile],
    out: &mut Vec<Finding>,
) {
    let mut sites = Vec::new();
    for w in 0..cycle.len() {
        let from = cycle[w];
        let to = cycle[(w + 1) % cycle.len()];
        if let Some(e) = edges.get(&(from.to_string(), to.to_string())) {
            let via = e.via.as_ref().map(|v| format!(" via {v}()")).unwrap_or_default();
            sites.push(format!("{} → {} at {}:{}{}", from, to, e.file, e.line, via));
        }
    }
    // Suppressible at any participating edge's line.
    let first = cycle
        .first()
        .and_then(|f| edges.get(&(f.to_string(), cycle.get(1).unwrap_or(f).to_string())));
    let (file, line) = match first {
        Some(e) => (e.file.clone(), e.line),
        None => return,
    };
    for w in 0..cycle.len() {
        let from = cycle[w];
        let to = cycle[(w + 1) % cycle.len()];
        if let Some(e) = edges.get(&(from.to_string(), to.to_string())) {
            if let Some(src) = sources.iter().find(|s| s.path == e.file) {
                if src.suppressed("lock-order", e.line) {
                    return;
                }
            }
        }
    }
    out.push(Finding {
        rule: "lock-order",
        file,
        line,
        message: format!("lock acquisition order cycle (potential deadlock): {}", sites.join("; ")),
    });
}
