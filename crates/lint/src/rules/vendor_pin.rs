//! `vendor-pin`: every vendored shim crate (`vendor/*/Cargo.toml`) must
//! appear in the workspace `Cargo.lock` at exactly its manifest version.
//! Drift here means the lockfile was regenerated against a registry crate
//! (or the shim was bumped without `cargo update`), silently changing what
//! the offline build actually compiles.

use crate::Finding;
use std::path::Path;

pub fn check(root: &Path, out: &mut Vec<Finding>) {
    let lock_src = match std::fs::read_to_string(root.join("Cargo.lock")) {
        Ok(s) => s,
        Err(_) => {
            out.push(Finding {
                rule: "vendor-pin",
                file: "Cargo.lock".into(),
                line: 1,
                message: "Cargo.lock missing; vendored versions cannot be verified".into(),
            });
            return;
        }
    };
    let locked = parse_lock(&lock_src);

    let vendor_dir = root.join("vendor");
    let Ok(entries) = std::fs::read_dir(&vendor_dir) else { return };
    let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).filter(|p| p.is_dir()).collect();
    dirs.sort();
    for dir in dirs {
        let manifest = dir.join("Cargo.toml");
        let Ok(src) = std::fs::read_to_string(&manifest) else { continue };
        let rel = format!(
            "vendor/{}/Cargo.toml",
            dir.file_name().map(|n| n.to_string_lossy().to_string()).unwrap_or_default()
        );
        let Some((name, version, line)) = parse_package(&src) else {
            out.push(Finding {
                rule: "vendor-pin",
                file: rel,
                line: 1,
                message: "could not parse [package] name/version from vendored manifest".into(),
            });
            continue;
        };
        let versions: Vec<&str> =
            locked.iter().filter(|(n, _)| *n == name).map(|(_, v)| v.as_str()).collect();
        if versions.is_empty() {
            out.push(Finding {
                rule: "vendor-pin",
                file: rel,
                line,
                message: format!("vendored crate `{name}` is absent from Cargo.lock"),
            });
        } else if !versions.contains(&version.as_str()) {
            out.push(Finding {
                rule: "vendor-pin",
                file: rel,
                line,
                message: format!(
                    "vendored crate `{name}` pins {version} but Cargo.lock records {}",
                    versions.join(", ")
                ),
            });
        }
    }
}

/// `[[package]]` blocks of a Cargo.lock → `(name, version)` pairs.
fn parse_lock(src: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut in_pkg = false;
    let mut name: Option<String> = None;
    for line in src.lines() {
        let line = line.trim();
        if line.starts_with("[[") {
            in_pkg = line == "[[package]]";
            name = None;
            continue;
        }
        if !in_pkg {
            continue;
        }
        if let Some(v) = toml_str_value(line, "name") {
            name = Some(v);
        } else if let Some(v) = toml_str_value(line, "version") {
            if let Some(n) = name.take() {
                out.push((n, v));
            }
        }
    }
    out
}

/// `[package]` name + version (and the version key's 1-based line) from a
/// vendored crate manifest.
fn parse_package(src: &str) -> Option<(String, String, u32)> {
    let mut in_package = false;
    let mut name = None;
    let mut version = None;
    let mut version_line = 1u32;
    for (i, raw) in src.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if !in_package {
            continue;
        }
        if let Some(v) = toml_str_value(line, "name") {
            name = Some(v);
        } else if let Some(v) = toml_str_value(line, "version") {
            version = Some(v);
            version_line = (i + 1) as u32;
        }
    }
    Some((name?, version?, version_line))
}

/// `key = "value"` → `value` (the only TOML shape Cargo emits for these keys).
fn toml_str_value(line: &str, key: &str) -> Option<String> {
    let rest = line.strip_prefix(key)?.trim_start();
    let rest = rest.strip_prefix('=')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    rest.find('"').map(|end| rest[..end].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_parse_pairs() {
        let lock = "[[package]]\nname = \"a\"\nversion = \"1.2.3\"\n\n[[package]]\nname = \"b\"\nversion = \"0.1.0\"\n";
        assert_eq!(
            parse_lock(lock),
            vec![("a".into(), "1.2.3".into()), ("b".into(), "0.1.0".into())]
        );
    }

    #[test]
    fn manifest_parse_ignores_dependencies_section() {
        let m = "[package]\nname = \"shim\"\nversion = \"0.8.99\"\n\n[dependencies]\nother = { version = \"9.9\" }\n";
        let (n, v, line) = parse_package(m).expect("parses");
        assert_eq!((n.as_str(), v.as_str(), line), ("shim", "0.8.99", 3));
    }
}
