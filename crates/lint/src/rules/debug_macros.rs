//! `no-debug-macros`: `todo!`, `unimplemented!`, and `dbg!` are banned
//! workspace-wide, tests included — they are development scaffolding and
//! must never be committed.

use crate::lexer::TokKind;
use crate::{Finding, SourceFile};

const BANNED: &[&str] = &["todo", "unimplemented", "dbg"];

pub fn check(f: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &f.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !BANNED.contains(&t.text.as_str()) {
            continue;
        }
        if toks.get(i + 1).map_or(true, |n| n.text != "!") {
            continue;
        }
        // `name!` must be a macro invocation, not e.g. `a.todo != b`.
        if toks.get(i + 2).map_or(true, |n| n.text == "=") {
            continue;
        }
        if f.suppressed("no-debug-macros", t.line) {
            continue;
        }
        out.push(Finding {
            rule: "no-debug-macros",
            file: f.path.clone(),
            line: t.line,
            message: format!("`{}!` is banned (development scaffolding)", t.text),
        });
    }
}
