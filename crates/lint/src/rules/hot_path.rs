//! `hot-path-panic`: in the designated hot-path modules
//! ([`crate::HOT_PATH_MODULES`] — the WCOJ kernels, the engines, and the
//! delta cache), `unwrap()`, `expect()`, `panic!`, and bare slice indexing
//! are banned outside `#[cfg(test)]` code. Kernels must stay panic-free:
//! use `get`/`let-else` and push the error to the caller, or — when bounds
//! are locally provable — suppress with a reason that states the proof.

use crate::lexer::TokKind;
use crate::{is_keyword, Finding, SourceFile, HOT_PATH_MODULES};

fn in_scope(path: &str) -> bool {
    HOT_PATH_MODULES.iter().any(|m| path == *m || path.starts_with(m))
}

pub fn check(f: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(&f.path) {
        return;
    }
    let toks = &f.lexed.tokens;
    let push = |line: u32, message: String, out: &mut Vec<Finding>| {
        if !f.suppressed("hot-path-panic", line) {
            out.push(Finding { rule: "hot-path-panic", file: f.path.clone(), line, message });
        }
    };
    for (i, t) in toks.iter().enumerate() {
        if f.test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        match t.text.as_str() {
            "unwrap" | "expect"
                if t.kind == TokKind::Ident
                    && i > 0
                    && toks[i - 1].text == "."
                    && toks.get(i + 1).is_some_and(|n| n.text == "(") =>
            {
                push(
                    t.line,
                    format!("`.{}()` in hot path; return the error or use `get`", t.text),
                    out,
                );
            }
            "panic"
                if t.kind == TokKind::Ident && toks.get(i + 1).is_some_and(|n| n.text == "!") =>
            {
                push(t.line, "`panic!` in hot path".into(), out);
            }
            "[" if i > 0 => {
                let prev = &toks[i - 1];
                let is_index = match prev.kind {
                    TokKind::Ident => !is_keyword(&prev.text),
                    TokKind::Punct => prev.text == "]" || prev.text == ")",
                    _ => false,
                };
                if is_index {
                    push(
                        t.line,
                        "bare slice indexing in hot path; use `get` or prove bounds and \
                         suppress with a reason"
                            .into(),
                        out,
                    );
                }
            }
            _ => {}
        }
    }
}
