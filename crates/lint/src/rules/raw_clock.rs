//! `no-raw-clock`: `Instant::now()` is banned in the matcher and core
//! pipeline ([`crate::RAW_CLOCK_SCOPES`]) — timing there must go through
//! `gcsm-obs` (`Stopwatch` / `monotonic_micros`) so every measurement lands
//! on the single trace timeline and the zero-cost-when-disabled contract
//! holds. Test code is exempt; a deliberate raw clock needs
//! `// lint:allow(no-raw-clock) -- reason`.

use crate::{Finding, SourceFile, RAW_CLOCK_SCOPES};

fn in_scope(path: &str) -> bool {
    RAW_CLOCK_SCOPES.iter().any(|m| path == *m || path.starts_with(m))
}

pub fn check(f: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(&f.path) {
        return;
    }
    let toks = &f.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.text != "Instant" || f.test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        // Match the `Instant::now` path shape (`std::time::Instant::now()`
        // lexes the same way — `Instant` followed by `::` `now`).
        if toks.get(i + 1).map(|t| t.text.as_str()) != Some(":")
            || toks.get(i + 2).map(|t| t.text.as_str()) != Some(":")
            || toks.get(i + 3).map(|t| t.text.as_str()) != Some("now")
        {
            continue;
        }
        if f.suppressed("no-raw-clock", t.line) {
            continue;
        }
        out.push(Finding {
            rule: "no-raw-clock",
            file: f.path.clone(),
            line: t.line,
            message: "`Instant::now()` in an obs-instrumented module; use \
                      `gcsm_obs::Stopwatch` / `gcsm_obs::monotonic_micros` instead"
                .into(),
        });
    }
}
