//! `allow-syntax`: suppression comments must name a known rule and carry a
//! `-- reason`. A malformed allow silently suppresses nothing, which is
//! worse than a loud finding.

use crate::{Finding, SourceFile, RULE_IDS};

pub fn check(f: &SourceFile, out: &mut Vec<Finding>) {
    for a in &f.allows {
        if a.rules.is_empty() {
            out.push(Finding {
                rule: "allow-syntax",
                file: f.path.clone(),
                line: a.line,
                message: "malformed suppression: expected lint:allow(rule-id) -- reason".into(),
            });
            continue;
        }
        for r in &a.rules {
            if !RULE_IDS.contains(&r.as_str()) {
                out.push(Finding {
                    rule: "allow-syntax",
                    file: f.path.clone(),
                    line: a.line,
                    message: format!("unknown rule id '{r}' in lint:allow"),
                });
            }
        }
        if !a.has_reason {
            out.push(Finding {
                rule: "allow-syntax",
                file: f.path.clone(),
                line: a.line,
                message: "suppression without justification: append ' -- reason'".into(),
            });
        }
    }
}
