//! `unsafe-doc`: every `unsafe` block, fn, trait, or impl must be preceded
//! by a `// SAFETY:` comment stating why the invariants hold (on the same
//! line or the comment run directly above). Applies everywhere, tests and
//! vendor shims included — an undocumented unsafe is never acceptable.

use crate::lexer::TokKind;
use crate::{Finding, SourceFile};

pub fn check(f: &SourceFile, out: &mut Vec<Finding>) {
    for t in &f.lexed.tokens {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        if f.justified_by("SAFETY:", t.line) {
            continue;
        }
        if f.suppressed("unsafe-doc", t.line) {
            continue;
        }
        out.push(Finding {
            rule: "unsafe-doc",
            file: f.path.clone(),
            line: t.line,
            message: "`unsafe` without a preceding `// SAFETY:` comment".into(),
        });
    }
}
