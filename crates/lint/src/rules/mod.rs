//! The rule catalogue. Each rule module exposes
//! `check(&SourceFile, &mut Vec<Finding>)` (or a cross-file / filesystem
//! variant) and pushes suppression-filtered findings. Adding a rule:
//! write the module, add its id to [`crate::RULE_IDS`], call it from
//! [`crate::lint_project`] (or [`crate::run`] for filesystem rules), and add
//! one firing + one clean fixture under `tests/fixtures/`.

pub mod allow_syntax;
pub mod debug_macros;
pub mod hot_path;
pub mod lock_order;
pub mod raw_clock;
pub mod relaxed;
pub mod unsafe_doc;
pub mod vendor_pin;
