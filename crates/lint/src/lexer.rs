//! A minimal Rust lexer — just enough structure for the lint rules.
//!
//! Produces a flat token stream (identifiers, punctuation, literals) plus a
//! separate comment list, both carrying 1-based line numbers. Comments,
//! strings, char literals, lifetimes, and raw strings are recognized so that
//! rule patterns (`.unwrap(`, `Ordering::Relaxed`, `unsafe`, …) never match
//! inside text. This is intentionally not a full lexer: multi-character
//! operators arrive as single punctuation tokens (`::` is `:` `:`), which is
//! all the token-sequence rules need.

/// Token classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// `'a`-style lifetime.
    Lifetime,
    /// Single punctuation character.
    Punct,
    /// Numeric literal (integer or float, with suffix).
    Num,
    /// String, raw string, byte string, or char literal.
    Lit,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

/// One comment (line `//…` or block `/*…*/`, doc variants included).
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line of the `//` or `/*`.
    pub line: u32,
    /// 1-based line of the comment's last character.
    pub end_line: u32,
    /// Full comment text including the delimiters.
    pub text: String,
}

/// Lexer output: code tokens and comments, both in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// All comments that cover `line` (a block comment spans a range).
    pub fn comments_on(&self, line: u32) -> impl Iterator<Item = &Comment> {
        self.comments.iter().filter(move |c| c.line <= line && line <= c.end_line)
    }

    /// True if `line` holds comments/whitespace only (no code tokens).
    pub fn line_is_comment_only(&self, line: u32) -> bool {
        self.comments_on(line).next().is_some() && !self.tokens.iter().any(|t| t.line == line)
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `src` into tokens and comments. Never fails: unrecognized bytes are
/// emitted as punctuation so downstream rules stay deterministic.
pub fn lex(src: &str) -> Lexed {
    let mut c = Cursor { src: src.as_bytes(), pos: 0, line: 1 };
    let mut out = Lexed::default();

    while let Some(b) = c.peek(0) {
        let start = c.pos;
        let line = c.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek(1) == Some(b'/') => {
                while let Some(n) = c.peek(0) {
                    if n == b'\n' {
                        break;
                    }
                    c.bump();
                }
                out.comments.push(Comment {
                    line,
                    end_line: c.line,
                    text: src[start..c.pos].to_string(),
                });
            }
            b'/' if c.peek(1) == Some(b'*') => {
                c.bump();
                c.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (c.peek(0), c.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            c.bump();
                            c.bump();
                            depth += 1;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            c.bump();
                            c.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            c.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.comments.push(Comment {
                    line,
                    end_line: c.line,
                    text: src[start..c.pos].to_string(),
                });
            }
            b'r' | b'b' if starts_raw_or_byte_string(&c) => {
                lex_raw_or_byte_string(&mut c);
                out.tokens.push(Token { kind: TokKind::Lit, text: String::new(), line });
            }
            b'"' => {
                lex_quoted(&mut c, b'"');
                out.tokens.push(Token { kind: TokKind::Lit, text: String::new(), line });
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`, `'('`).
                if c.peek(1).is_some_and(is_ident_start) && c.peek(1) != Some(b'\\') {
                    let mut end = c.pos + 2;
                    while c.src.get(end).copied().is_some_and(is_ident_continue) {
                        end += 1;
                    }
                    if c.src.get(end) == Some(&b'\'') {
                        // Single-ident-char char literal like 'a'.
                        while c.pos <= end {
                            c.bump();
                        }
                        out.tokens.push(Token { kind: TokKind::Lit, text: String::new(), line });
                    } else {
                        let text = src[c.pos..end].to_string();
                        while c.pos < end {
                            c.bump();
                        }
                        out.tokens.push(Token { kind: TokKind::Lifetime, text, line });
                    }
                } else {
                    lex_quoted(&mut c, b'\'');
                    out.tokens.push(Token { kind: TokKind::Lit, text: String::new(), line });
                }
            }
            _ if is_ident_start(b) => {
                while c.peek(0).is_some_and(is_ident_continue) {
                    c.bump();
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: src[start..c.pos].to_string(),
                    line,
                });
            }
            _ if b.is_ascii_digit() => {
                while c.peek(0).is_some_and(|n| n.is_ascii_alphanumeric() || n == b'_') {
                    c.bump();
                }
                // Fractional part, but never swallow the `..` of a range.
                if c.peek(0) == Some(b'.') && c.peek(1).is_some_and(|n| n.is_ascii_digit()) {
                    c.bump();
                    while c.peek(0).is_some_and(|n| n.is_ascii_alphanumeric() || n == b'_') {
                        c.bump();
                    }
                }
                out.tokens.push(Token {
                    kind: TokKind::Num,
                    text: src[start..c.pos].to_string(),
                    line,
                });
            }
            _ => {
                c.bump();
                out.tokens.push(Token {
                    kind: TokKind::Punct,
                    text: (b as char).to_string(),
                    line,
                });
            }
        }
    }
    out
}

/// At `r"`/`r#"`, `br"`, `b"`, or `b'`? (`r#ident` raw identifiers and plain
/// `r`/`b` identifiers must fall through to ident lexing.)
fn starts_raw_or_byte_string(c: &Cursor<'_>) -> bool {
    match (c.peek(0), c.peek(1)) {
        (Some(b'b'), Some(b'"')) | (Some(b'b'), Some(b'\'')) => true,
        (Some(b'b'), Some(b'r')) => raw_quote_after_hashes(c, 2),
        (Some(b'r'), _) => raw_quote_after_hashes(c, 1),
        _ => false,
    }
}

fn raw_quote_after_hashes(c: &Cursor<'_>, mut i: usize) -> bool {
    while c.peek(i) == Some(b'#') {
        i += 1;
    }
    c.peek(i) == Some(b'"')
}

fn lex_raw_or_byte_string(c: &mut Cursor<'_>) {
    // Consume optional `b`, optional `r`, the `#`s, then the string.
    if c.peek(0) == Some(b'b') {
        c.bump();
    }
    let raw = c.peek(0) == Some(b'r');
    if raw {
        c.bump();
    }
    let mut hashes = 0usize;
    while c.peek(0) == Some(b'#') {
        c.bump();
        hashes += 1;
    }
    let quote = c.bump(); // opening " or '
    if quote == Some(b'\'') {
        lex_quoted_rest(c, b'\'');
        return;
    }
    if raw {
        loop {
            match c.bump() {
                None => break,
                Some(b'"') => {
                    let mut seen = 0usize;
                    while seen < hashes && c.peek(0) == Some(b'#') {
                        c.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => {}
            }
        }
    } else {
        lex_quoted_rest(c, b'"');
    }
}

fn lex_quoted(c: &mut Cursor<'_>, delim: u8) {
    c.bump(); // opening delimiter
    lex_quoted_rest(c, delim);
}

fn lex_quoted_rest(c: &mut Cursor<'_>, delim: u8) {
    while let Some(b) = c.bump() {
        if b == b'\\' {
            c.bump();
        } else if b == delim {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = "let x = \"unwrap() inside\"; // unwrap() in comment\nfoo();";
        assert_eq!(idents(src), vec!["let", "x", "foo"]);
        let l = lex(src);
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("unwrap"));
    }

    #[test]
    fn raw_strings_and_chars() {
        let src = "let s = r#\"a \" b\"#; let c = '\\''; let l: &'static str = \"x\";";
        assert_eq!(idents(src), vec!["let", "s", "let", "c", "let", "l", "str"]);
        let lifetimes: Vec<_> =
            lex(src).tokens.into_iter().filter(|t| t.kind == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 1);
        assert_eq!(lifetimes[0].text, "'static");
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ fn x() {}";
        assert_eq!(idents(src), vec!["fn", "x"]);
    }

    #[test]
    fn lines_are_tracked() {
        let src = "a\nb\n  c";
        let l = lex(src);
        assert_eq!(l.tokens[0].line, 1);
        assert_eq!(l.tokens[1].line, 2);
        assert_eq!(l.tokens[2].line, 3);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let src = "for i in 0..10 { x(1.5); }";
        let toks = lex(src);
        let nums: Vec<_> =
            toks.tokens.iter().filter(|t| t.kind == TokKind::Num).map(|t| &t.text).collect();
        assert_eq!(nums, vec!["0", "10", "1.5"]);
    }

    #[test]
    fn char_literal_vs_lifetime_disambiguation() {
        let src = "let a = 'x'; fn f<'a>(v: &'a u32) {}";
        let l = lex(src);
        let lits = l.tokens.iter().filter(|t| t.kind == TokKind::Lit).count();
        let lifes = l.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        assert_eq!(lits, 1);
        assert_eq!(lifes, 2);
    }
}
