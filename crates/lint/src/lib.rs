//! `gcsm-lint` — workspace-wide static invariant analyzer.
//!
//! The compiler can't see GCSM's project rules: sorted-adjacency and
//! tombstone invariants live in comments, hot-path kernels must stay
//! panic-free, and the stream worker's lock discipline is a convention. This
//! crate walks the whole workspace with its own lightweight lexer (no
//! external deps — consistent with the vendored-offline constraint) and
//! enforces them:
//!
//! | rule id           | checks                                                        |
//! |-------------------|---------------------------------------------------------------|
//! | `unsafe-doc`      | every `unsafe` is preceded by a `// SAFETY:` comment          |
//! | `hot-path-panic`  | no `unwrap`/`expect`/`panic!`/bare indexing in hot modules    |
//! | `relaxed-justify` | `Ordering::Relaxed` needs an inline `Relaxed:` justification  |
//! | `lock-order`      | cross-function lock acquisition order has no cycles           |
//! | `no-debug-macros` | `todo!`/`unimplemented!`/`dbg!` banned workspace-wide         |
//! | `no-raw-clock`    | `Instant::now()` banned in matcher/core; use `gcsm-obs` clocks|
//! | `vendor-pin`      | every `vendor/*` shim appears in `Cargo.lock` at its version  |
//! | `allow-syntax`    | suppression comments are well-formed (known rule, has reason) |
//!
//! Findings can be suppressed inline with
//! `// lint:allow(rule-id) -- reason` — on the offending line, on the line
//! directly above it, or directly above a `fn` item to cover the whole
//! function. The reason is mandatory. See DESIGN.md §9.

pub mod lexer;
pub mod rules;

use lexer::{Lexed, TokKind};
use std::fmt;
use std::path::{Path, PathBuf};

/// Rule identifiers accepted by `lint:allow(..)`.
pub const RULE_IDS: &[&str] = &[
    "unsafe-doc",
    "hot-path-panic",
    "relaxed-justify",
    "lock-order",
    "no-debug-macros",
    "no-raw-clock",
    "vendor-pin",
];

/// Hot-path modules (workspace-relative prefixes): panics and bare indexing
/// are banned here outside `#[cfg(test)]` code.
pub const HOT_PATH_MODULES: &[&str] = &[
    "crates/matcher/src/enumerate.rs",
    "crates/matcher/src/intersect.rs",
    "crates/matcher/src/stack.rs",
    "crates/core/src/engines/",
    "crates/cache/src/delta.rs",
];

/// Scopes where `Ordering::Relaxed` requires a justification comment.
pub const RELAXED_SCOPES: &[&str] = &["crates/core/src/stream/", "crates/graph/src/"];

/// Scopes where `Instant::now()` is banned in favor of the `gcsm-obs`
/// clock (`Stopwatch` / `monotonic_micros`), keeping every timing source on
/// the one trace timeline.
pub const RAW_CLOCK_SCOPES: &[&str] = &["crates/matcher/src/", "crates/core/src/"];

/// One diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Serialize findings as machine-readable JSON (hand-rolled; the workspace
/// carries no serde).
pub fn findings_to_json(findings: &[Finding]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for ch in s.chars() {
            match ch {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut s = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            esc(f.rule),
            esc(&f.file),
            f.line,
            esc(&f.message)
        ));
    }
    s.push_str(&format!("],\"count\":{}}}", findings.len()));
    s
}

/// A lexed source file plus everything the rules need to scope and suppress.
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    pub lexed: Lexed,
    /// `mask[i]` is true when token `i` sits inside `#[cfg(test)]` or
    /// `#[test]` code.
    pub test_mask: Vec<bool>,
    pub allows: Vec<Allow>,
}

/// One parsed `lint:allow` comment.
#[derive(Clone, Debug)]
pub struct Allow {
    /// Rules named in the parens (comma separated).
    pub rules: Vec<String>,
    pub has_reason: bool,
    /// Line of the comment itself.
    pub line: u32,
    /// Inclusive line range the suppression covers.
    pub covers: (u32, u32),
}

impl SourceFile {
    pub fn parse(path: &str, src: &str) -> Self {
        let lexed = lexer::lex(src);
        let test_mask = test_region_mask(&lexed);
        let allows = parse_allows(&lexed);
        Self { path: path.to_string(), lexed, test_mask, allows }
    }

    /// True if a well-formed allow for `rule` covers `line`.
    pub fn suppressed(&self, rule: &str, line: u32) -> bool {
        self.allows.iter().any(|a| {
            a.has_reason
                && a.covers.0 <= line
                && line <= a.covers.1
                && a.rules.iter().any(|r| r == rule)
        })
    }

    /// True when `line` (or the run of comment-only lines directly above it)
    /// carries a comment containing `marker`. This is how `SAFETY:` and
    /// `Relaxed:` justifications are located.
    pub fn justified_by(&self, marker: &str, line: u32) -> bool {
        if self.lexed.comments_on(line).any(|c| c.text.contains(marker)) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 && self.lexed.line_is_comment_only(l) {
            if self.lexed.comments_on(l).any(|c| c.text.contains(marker)) {
                return true;
            }
            l -= 1;
        }
        false
    }
}

/// Keywords that can directly precede `[` without forming an index
/// expression (slice patterns, array types after `&mut`, …).
pub(crate) fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "as" | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
    )
}

/// Mark every token inside `#[cfg(test)] mod … { }` / `#[test] fn … { }`
/// bodies (rules exempting test code consult this mask).
fn test_region_mask(lexed: &Lexed) -> Vec<bool> {
    let toks = &lexed.tokens;
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "#" && toks.get(i + 1).is_some_and(|t| t.text == "[") {
            // Scan the attribute's bracket group for a bare `test` ident.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut has_test = false;
            let mut has_not = false;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    "test" if toks[j].kind == TokKind::Ident => has_test = true,
                    "not" if toks[j].kind == TokKind::Ident => has_not = true,
                    _ => {}
                }
                j += 1;
            }
            if has_test && !has_not {
                // The attributed item's body: first `{` after the attribute,
                // to its matching `}`. A `;` first means a body-less item
                // (`#[cfg(test)] use …;`) — nothing to mask.
                let mut k = j;
                while k < toks.len() && toks[k].text != "{" && toks[k].text != ";" {
                    k += 1;
                }
                if toks.get(k).is_some_and(|t| t.text == ";") {
                    i = k;
                    continue;
                }
                let mut depth = 0usize;
                let body_start = k;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                for m in mask.iter_mut().take(k.min(toks.len() - 1) + 1).skip(body_start) {
                    *m = true;
                }
                i = j;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    mask
}

/// Parse every `lint:allow(rule, …) -- reason` comment and compute the line
/// range each one covers: its own line if code precedes the comment on that
/// line, otherwise the next code line — extended to the whole body when that
/// line starts a `fn` item.
fn parse_allows(lexed: &Lexed) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        // Doc comments are prose: an allow marker there is documentation
        // about the syntax, not a directive.
        let is_doc = c.text.starts_with("//!")
            || c.text.starts_with("/*!")
            || c.text.starts_with("/**")
            || (c.text.starts_with("///") && !c.text.starts_with("////"));
        if is_doc {
            continue;
        }
        let Some(idx) = c.text.find("lint:allow") else { continue };
        let rest = &c.text[idx + "lint:allow".len()..];
        let (rules, after) = match rest.strip_prefix('(').and_then(|r| {
            r.find(')').map(|close| {
                let ids: Vec<String> =
                    r[..close].split(',').map(|s| s.trim().to_string()).collect();
                (ids, &r[close + 1..])
            })
        }) {
            Some(v) => v,
            None => (Vec::new(), rest),
        };
        let has_reason =
            after.trim_start().strip_prefix("--").is_some_and(|r| !r.trim().is_empty());
        let trailing = lexed.tokens.iter().any(|t| t.line == c.line);
        let covers = if trailing { (c.line, c.line) } else { target_range(lexed, c.end_line) };
        out.push(Allow { rules, has_reason, line: c.line, covers });
    }
    out
}

/// The line range an own-line allow above `comment_end` covers: the next
/// code line, widened to the full body when that line begins a function
/// (attributes and visibility modifiers are skipped).
fn target_range(lexed: &Lexed, comment_end: u32) -> (u32, u32) {
    let toks = &lexed.tokens;
    let Some(first) = toks.iter().position(|t| t.line > comment_end) else {
        return (comment_end + 1, comment_end + 1);
    };
    let target_line = toks[first].line;
    // Skip attributes and modifiers to see whether the item is a `fn`.
    let mut i = first;
    loop {
        if toks.get(i).is_some_and(|t| t.text == "#")
            && toks.get(i + 1).is_some_and(|t| t.text == "[")
        {
            let mut depth = 0usize;
            i += 1;
            while i < toks.len() {
                match toks[i].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            continue;
        }
        match toks.get(i).map(|t| t.text.as_str()) {
            Some("pub") => {
                i += 1;
                // `pub(crate)` / `pub(super)` visibility scope.
                if toks.get(i).is_some_and(|t| t.text == "(") {
                    while i < toks.len() && toks[i].text != ")" {
                        i += 1;
                    }
                    i += 1;
                }
            }
            Some("const") | Some("unsafe") | Some("extern") | Some("async") => i += 1,
            _ => break,
        }
    }
    if toks.get(i).map_or(true, |t| t.text != "fn") {
        return (target_line, target_line);
    }
    // Function item: cover through the end of its body.
    let mut depth = 0usize;
    let mut end_line = target_line;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    end_line = toks[i].line;
                    break;
                }
            }
            _ => {}
        }
        i += 1;
    }
    (target_line, end_line)
}

/// Lint a set of in-memory sources (path → contents). Runs every token rule
/// plus the cross-file lock-order analysis; `vendor-pin` needs the real
/// filesystem and runs only via [`run`].
pub fn lint_project(files: &[(String, String)]) -> Vec<Finding> {
    let sources: Vec<SourceFile> = files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
    let mut findings = Vec::new();
    for f in &sources {
        rules::allow_syntax::check(f, &mut findings);
        rules::unsafe_doc::check(f, &mut findings);
        rules::debug_macros::check(f, &mut findings);
        rules::hot_path::check(f, &mut findings);
        rules::raw_clock::check(f, &mut findings);
        rules::relaxed::check(f, &mut findings);
    }
    rules::lock_order::check(&sources, &mut findings);
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

/// Lint a single file (fixture-test convenience; no lock-order cross-file
/// propagation beyond this file).
pub fn lint_file(path: &str, src: &str) -> Vec<Finding> {
    lint_project(&[(path.to_string(), src.to_string())])
}

/// Walk the workspace at `root` and lint everything: token rules over
/// `crates/`, `tests/`, `examples/`, and `vendor/`, plus the `vendor-pin`
/// filesystem check. `crates/lint/tests/fixtures/` (deliberately-violating
/// snippets) and `target/` are skipped.
pub fn run(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for top in ["crates", "tests", "examples", "vendor"] {
        collect_rs(&root.join(top), &mut files)?;
    }
    files.sort();
    let sources: Vec<(String, String)> = files
        .into_iter()
        .map(|p| {
            let rel = p.strip_prefix(root).unwrap_or(&p).to_string_lossy().replace('\\', "/");
            std::fs::read_to_string(&p).map(|s| (rel, s))
        })
        .collect::<std::io::Result<_>>()?;
    let mut findings = lint_project(&sources);
    rules::vendor_pin::check(root, &mut findings);
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().map(|n| n.to_string_lossy().to_string()).unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name == "fixtures" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let unwrap_pos =
            f.lexed.tokens.iter().position(|t| t.text == "unwrap").expect("token present");
        assert!(f.test_mask[unwrap_pos]);
        let live_pos = f.lexed.tokens.iter().position(|t| t.text == "live").expect("present");
        assert!(!f.test_mask[live_pos]);
    }

    #[test]
    fn allow_parses_rules_and_reason() {
        let src = "// lint:allow(hot-path-panic) -- bounds proven above\nlet x = a[i];\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert_eq!(f.allows.len(), 1);
        assert!(f.allows[0].has_reason);
        assert_eq!(f.allows[0].covers, (2, 2));
        assert!(f.suppressed("hot-path-panic", 2));
        assert!(!f.suppressed("unsafe-doc", 2));
    }

    #[test]
    fn allow_above_fn_covers_whole_body() {
        let src = "// lint:allow(lock-order) -- intentional\n#[inline]\npub fn f() {\n    a();\n    b();\n}\nfn g() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert_eq!(f.allows[0].covers, (2, 6));
        assert!(f.suppressed("lock-order", 5));
        assert!(!f.suppressed("lock-order", 7));
    }

    #[test]
    fn allow_without_reason_does_not_suppress() {
        let src = "let x = a[i]; // lint:allow(hot-path-panic)\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(!f.suppressed("hot-path-panic", 1));
    }

    #[test]
    fn json_escapes() {
        let fs = vec![Finding {
            rule: "unsafe-doc",
            file: "a\"b.rs".into(),
            line: 3,
            message: "tab\there".into(),
        }];
        let j = findings_to_json(&fs);
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("tab\\there"));
        assert!(j.contains("\"count\":1"));
    }
}
