//! # gcsm-freq — random-walk access-frequency estimation (paper Sec. IV)
//!
//! The GPU cache is only as good as the set of vertices chosen for it. The
//! paper estimates the access frequency `C_v` of every vertex — the number
//! of times `v`'s neighbor list would be read during exact incremental
//! matching — by sampling paths of the execution tree:
//!
//! 1. pick a batch seed with probability `1/|ΔE|`;
//! 2. at each level, compute the candidate set `V`, pick one candidate with
//!    probability `1/|V|`, and continue with probability `|V|/D` (`D` = max
//!    degree) — so every child node is reached with probability exactly
//!    `1/D`;
//! 3. estimate `C̃_v = Σ_i |ΔE|·D^{i−1}·c_{v,i}` (Eq. (3)), an unbiased
//!    estimator (Theorem 1 bounds the mis-ranking probability).
//!
//! Two implementations are provided:
//!
//! * [`naive::estimate_naive`] — `M` literal independent walks (the
//!   reference; slow, used by tests and the ablation bench);
//! * [`merged::estimate_merged`] — the paper's Sec. IV-B optimization: all
//!   `M` walks simulated in a *single* traversal by drawing binomial visit
//!   counts per loop iteration, eliminating redundant set operations.
//!
//! [`select`] turns an estimate into a cache set under a byte budget, and
//! implements the paper's *Naive* baseline policy (degree-based selection).
//! [`theory`] computes the Theorem-1 bound and the Eq. (5) sample-size rule
//! with its adaptive restart loop.

//! ```
//! use gcsm_freq::{estimate_merged, select_top_frequency, WalkParams};
//! use gcsm_graph::{CsrGraph, DynamicGraph, EdgeUpdate};
//! use gcsm_matcher::DynSource;
//! use gcsm_pattern::{compile_incremental, queries, PlanOptions};
//!
//! let g0 = CsrGraph::from_edges(6, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]);
//! let mut g = DynamicGraph::from_csr(&g0);
//! let batch = g.apply_batch(&[EdgeUpdate::insert(1, 3)]);
//!
//! let plans = compile_incremental(&queries::triangle(), PlanOptions::default());
//! let src = DynSource::new(&g);
//! let est = estimate_merged(&src, &plans, &batch.applied, g.max_degree_bound(),
//!                           &WalkParams { walks: 2048, seed: 1 });
//! // Cache everything the walks touched, budget permitting.
//! let sel = select_top_frequency(&est, 1 << 20, |v| g.list_bytes(v));
//! assert!(!sel.vertices.is_empty());
//! ```

pub mod estimate;
pub mod merged;
pub mod naive;
pub mod select;
pub mod theory;

pub use estimate::{FreqEstimate, WalkParams};
pub use merged::estimate_merged;
pub use naive::estimate_naive;
pub use select::{select_by_degree, select_top_frequency, CacheSelection};
pub use theory::{adaptive_walk_target, min_walks, misrank_bound, recommended_walks};
