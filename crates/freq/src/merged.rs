//! Merged estimator: `M` random walks in one traversal (paper Sec. IV-B).
//!
//! Instead of running each walk separately (redundant intersections, poor
//! locality), a single instrumented traversal carries a *visit count* `B`
//! per execution-tree node: `B_1 ~ Binomial(M, 1/S)` at each seed, and for
//! every candidate of a visited node an independent
//! `B_child ~ Binomial(B, 1/D)` (the per-iteration binomial of the paper).
//! Nodes with `B = 0` are pruned, so the traversal only performs the set
//! operations the `M` walks would actually have needed — once each.

use crate::estimate::{FreqEstimate, WalkParams};
use crate::naive::plan_seeds;
use gcsm_graph::{EdgeUpdate, VertexId};
use gcsm_matcher::{
    gen_candidates, seed_admissible, CostCounter, IntersectAlgo, MatchStats, NeighborSource,
};
use gcsm_pattern::MatchPlan;
use rand::{rngs::SmallRng, SeedableRng};
use rand_distr::{Binomial, Distribution};

/// Draw `Binomial(n, p)` (delegates to `rand_distr`; exact sampling).
#[inline]
fn binomial(rng: &mut SmallRng, n: u64, p: f64) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    Binomial::new(n, p).expect("valid binomial").sample(rng)
}

/// Estimate access frequencies with the merged single-execution scheme.
/// Distribution-equivalent to [`crate::estimate_naive`] (same per-node
/// visit probabilities), with far fewer set operations.
pub fn estimate_merged<S: NeighborSource>(
    src: &S,
    plans: &[MatchPlan],
    batch: &[EdgeUpdate],
    max_degree: usize,
    params: &WalkParams,
) -> FreqEstimate {
    let n = src.num_vertices();
    let mut est = FreqEstimate::new(n);
    if batch.is_empty() || max_degree == 0 || params.walks == 0 {
        return est;
    }
    let seeds = plan_seeds(batch);
    let s_count = seeds.len() as f64;
    let d = max_degree as f64;
    let m = params.walks;
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut cost = CostCounter::default();
    let mut stats = MatchStats::default();
    let mut bound: Vec<VertexId> = Vec::new();
    let mut bufs: Vec<Vec<VertexId>> = Vec::new();

    for plan in plans {
        if bufs.len() < plan.levels.len() {
            bufs.resize_with(plan.levels.len(), Vec::new);
        }
        for &(x0, x1) in &seeds {
            // How many of the M walks start at this seed.
            let b1 = binomial(&mut rng, m, 1.0 / s_count);
            if b1 == 0 || !seed_admissible(src, plan, x0, x1) {
                continue;
            }
            bound.clear();
            bound.push(x0);
            bound.push(x1);
            expand(
                src, plan, 0, b1, s_count, d, m, &mut rng, &mut bound, &mut bufs, &mut est,
                &mut cost, &mut stats,
            );
        }
    }
    est.walk_ops = cost.ops;
    est
}

/// Expand one execution-tree node visited by `b` of the `M` walks.
/// `weight` is the node's inverse sampling probability (S·D^level).
#[allow(clippy::too_many_arguments)]
fn expand<S: NeighborSource>(
    src: &S,
    plan: &MatchPlan,
    level: usize,
    b: u64,
    weight: f64,
    d: f64,
    m: u64,
    rng: &mut SmallRng,
    bound: &mut Vec<VertexId>,
    bufs: &mut [Vec<VertexId>],
    est: &mut FreqEstimate,
    cost: &mut CostCounter,
    stats: &mut MatchStats,
) {
    // Record the node's accesses, weighted by how many walks visit it.
    for c in &plan.levels[level].constraints {
        est.freq[bound[c.pos] as usize] += b as f64 * weight / m as f64;
    }
    let (buf, rest) = bufs.split_first_mut().expect("scratch too shallow");
    gen_candidates(src, plan, level, bound, IntersectAlgo::Auto, buf, cost, stats);
    if buf.is_empty() || level + 1 == plan.levels.len() {
        return;
    }
    let cands = std::mem::take(buf);
    for &cand in &cands {
        // Each walk at this node reaches each child with probability 1/D
        // (select 1/|V|, continue |V|/D) — the merged per-candidate
        // binomial of Sec. IV-B.
        let bc = binomial(rng, b, 1.0 / d);
        if bc > 0 {
            bound.push(cand);
            expand(src, plan, level + 1, bc, weight * d, d, m, rng, bound, rest, est, cost, stats);
            bound.pop();
        }
    }
    *buf = cands;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate_naive;
    use gcsm_graph::{CsrGraph, DynamicGraph};
    use gcsm_matcher::{
        match_incremental, AccessCounter, DriverOptions, DynSource, RecordingSource,
    };
    use gcsm_pattern::{compile_incremental, queries, PlanOptions};

    /// Shared fixture: a small skewed graph plus a mixed batch.
    fn fixture() -> (DynamicGraph, Vec<EdgeUpdate>) {
        // Hub-and-spoke plus triangles: vertex 0 is hot.
        let mut edges = vec![(0u32, 1u32), (0, 2), (1, 2), (0, 3), (0, 4), (3, 4), (2, 3)];
        for i in 5..14u32 {
            edges.push((0, i));
        }
        edges.push((5, 6));
        let g0 = CsrGraph::from_edges(14, &edges);
        let mut g = DynamicGraph::from_csr(&g0);
        let batch = vec![
            EdgeUpdate::insert(1, 3),
            EdgeUpdate::insert(2, 4),
            EdgeUpdate::delete(0, 2),
            EdgeUpdate::insert(5, 7),
        ];
        let summary = g.apply_batch(&batch);
        (g, summary.applied)
    }

    /// Exact access counts (the oracle `C_v`) for the fixture.
    fn oracle(g: &DynamicGraph, batch: &[EdgeUpdate]) -> Vec<u64> {
        let src = DynSource::new(g);
        let counter = AccessCounter::new(g.num_vertices());
        let rec = RecordingSource::new(&src, &counter);
        let q = queries::triangle();
        match_incremental(&rec, &q, batch, &DriverOptions::default());
        counter.to_vec()
    }

    /// Both estimators must be (empirically) unbiased: averaging many runs
    /// approaches the oracle counts.
    #[test]
    fn merged_and_naive_are_unbiased() {
        let (g, batch) = fixture();
        let truth = oracle(&g, &batch);
        let src = DynSource::new(&g);
        let plans = compile_incremental(&queries::triangle(), PlanOptions::default());
        let d = g.max_degree_bound();
        let runs = 60;
        let mut mean_naive = vec![0.0; g.num_vertices()];
        let mut mean_merged = vec![0.0; g.num_vertices()];
        for r in 0..runs {
            let p = WalkParams { walks: 400, seed: 1000 + r };
            let en = estimate_naive(&src, &plans, &batch, d, &p);
            let em = estimate_merged(&src, &plans, &batch, d, &p);
            for v in 0..g.num_vertices() {
                mean_naive[v] += en.freq[v] / runs as f64;
                mean_merged[v] += em.freq[v] / runs as f64;
            }
        }
        // Check relative error on the hottest vertices (where the law of
        // large numbers has kicked in).
        let total_truth: u64 = truth.iter().sum();
        assert!(total_truth > 0);
        for v in 0..g.num_vertices() {
            if truth[v] >= 5 {
                let t = truth[v] as f64;
                let rel_n = (mean_naive[v] - t).abs() / t;
                let rel_m = (mean_merged[v] - t).abs() / t;
                assert!(rel_n < 0.35, "naive biased at v{v}: {} vs {}", mean_naive[v], t);
                assert!(rel_m < 0.35, "merged biased at v{v}: {} vs {}", mean_merged[v], t);
            }
        }
    }

    /// The merged scheme must rank the genuinely hot vertices on top.
    #[test]
    fn merged_ranks_hot_vertices_first() {
        let (g, batch) = fixture();
        let truth = oracle(&g, &batch);
        let src = DynSource::new(&g);
        let plans = compile_incremental(&queries::triangle(), PlanOptions::default());
        let est = estimate_merged(
            &src,
            &plans,
            &batch,
            g.max_degree_bound(),
            &WalkParams { walks: 20_000, seed: 3 },
        );
        let mut truth_ranked: Vec<(u32, u64)> =
            truth.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (i as u32, c)).collect();
        truth_ranked.sort_by(|a, b| b.1.cmp(&a.1));
        let est_top: Vec<u32> = est.ranked().iter().take(3).map(|r| r.0).collect();
        // The single hottest oracle vertex must be within the estimator's
        // top three.
        assert!(
            est_top.contains(&truth_ranked[0].0),
            "hottest {:?} not in estimated top3 {:?}",
            truth_ranked[0],
            est_top
        );
    }

    /// Merged does far fewer set operations than naive at equal M.
    #[test]
    fn merged_is_cheaper_than_naive() {
        let (g, batch) = fixture();
        let src = DynSource::new(&g);
        let plans = compile_incremental(&queries::triangle(), PlanOptions::default());
        let p = WalkParams { walks: 20_000, seed: 9 };
        let en = estimate_naive(&src, &plans, &batch, g.max_degree_bound(), &p);
        let em = estimate_merged(&src, &plans, &batch, g.max_degree_bound(), &p);
        assert!(em.walk_ops * 4 < en.walk_ops, "merged {} vs naive {}", em.walk_ops, en.walk_ops);
    }

    #[test]
    fn zero_walks_estimate_is_empty() {
        let (g, batch) = fixture();
        let src = DynSource::new(&g);
        let plans = compile_incremental(&queries::triangle(), PlanOptions::default());
        let est = estimate_merged(
            &src,
            &plans,
            &batch,
            g.max_degree_bound(),
            &WalkParams { walks: 0, seed: 1 },
        );
        assert!(est.ranked().is_empty());
    }

    #[test]
    fn estimates_are_deterministic_given_seed() {
        let (g, batch) = fixture();
        let src = DynSource::new(&g);
        let plans = compile_incremental(&queries::triangle(), PlanOptions::default());
        let p = WalkParams { walks: 1000, seed: 42 };
        let a = estimate_merged(&src, &plans, &batch, g.max_degree_bound(), &p);
        let b = estimate_merged(&src, &plans, &batch, g.max_degree_bound(), &p);
        assert_eq!(a.freq, b.freq);
    }
}
