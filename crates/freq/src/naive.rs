//! Reference estimator: `M` literal independent random walks per plan.
//!
//! Slow (every walk redoes its set intersections) but a direct transcription
//! of Sec. IV-A; the merged estimator is validated against it.

use crate::estimate::{FreqEstimate, WalkParams};
use gcsm_graph::{EdgeUpdate, VertexId};
use gcsm_matcher::{
    gen_candidates, seed_admissible, CostCounter, IntersectAlgo, MatchStats, NeighborSource,
};
use gcsm_pattern::MatchPlan;
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// Oriented seeds of one delta plan: every batch edge in both orientations
/// (the relation `ΔR_i` holds both orientations of each undirected update).
pub(crate) fn plan_seeds(batch: &[EdgeUpdate]) -> Vec<(VertexId, VertexId)> {
    batch.iter().flat_map(|u| [(u.src, u.dst), (u.dst, u.src)]).collect()
}

/// Estimate access frequencies with `params.walks` independent walks per
/// delta plan. `max_degree` is the walk's `D` (any upper bound on the max
/// degree keeps the estimator unbiased).
pub fn estimate_naive<S: NeighborSource>(
    src: &S,
    plans: &[MatchPlan],
    batch: &[EdgeUpdate],
    max_degree: usize,
    params: &WalkParams,
) -> FreqEstimate {
    let n = src.num_vertices();
    let mut est = FreqEstimate::new(n);
    if batch.is_empty() || max_degree == 0 {
        return est;
    }
    let seeds = plan_seeds(batch);
    let s_count = seeds.len() as f64;
    let d = max_degree as f64;
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut cost = CostCounter::default();
    let mut stats = MatchStats::default();
    let mut cands: Vec<VertexId> = Vec::new();
    let mut bound: Vec<VertexId> = Vec::new();

    for plan in plans {
        for _ in 0..params.walks {
            let (x0, x1) = seeds[rng.gen_range(0..seeds.len())];
            if !seed_admissible(src, plan, x0, x1) {
                continue;
            }
            bound.clear();
            bound.push(x0);
            bound.push(x1);
            // Walk down the execution tree. `weight` is the inverse
            // sampling probability of the current node: S at the seed,
            // ×D per level below (Eq. (3)).
            let mut weight = s_count;
            for level in 0..plan.levels.len() {
                // Record the accesses this node performs (computing the
                // candidate set reads each constraint's neighbor list).
                for c in &plan.levels[level].constraints {
                    est.freq[bound[c.pos] as usize] += weight / params.walks as f64;
                }
                gen_candidates(
                    src,
                    plan,
                    level,
                    &bound,
                    IntersectAlgo::Auto,
                    &mut cands,
                    &mut cost,
                    &mut stats,
                );
                if cands.is_empty() {
                    break;
                }
                // Select a candidate (1/|V|) then continue w.p. |V|/D —
                // each child is reached with probability exactly 1/D.
                let v_size = cands.len() as f64;
                let cand = cands[rng.gen_range(0..cands.len())];
                if rng.gen::<f64>() >= (v_size / d).min(1.0) {
                    break;
                }
                bound.push(cand);
                weight *= d;
            }
        }
    }
    est.walk_ops = cost.ops;
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcsm_graph::{CsrGraph, DynamicGraph};
    use gcsm_matcher::DynSource;
    use gcsm_pattern::{compile_incremental, queries, PlanOptions};

    #[test]
    fn empty_batch_gives_empty_estimate() {
        let g = DynamicGraph::from_csr(&CsrGraph::from_edges(3, &[(0, 1), (1, 2)]));
        let src = DynSource::new(&g);
        let plans = compile_incremental(&queries::triangle(), PlanOptions::default());
        let est = estimate_naive(&src, &plans, &[], 10, &WalkParams::default());
        assert!(est.ranked().is_empty());
    }

    #[test]
    fn walk_touches_batch_neighborhood_only() {
        // Graph: triangle 0-1-2 plus a far-away component 5-6-7.
        let g0 = CsrGraph::from_edges(8, &[(0, 1), (1, 2), (5, 6), (6, 7), (5, 7)]);
        let mut g = DynamicGraph::from_csr(&g0);
        let batch = vec![EdgeUpdate::insert(0, 2)];
        let summary = g.apply_batch(&batch);
        let src = DynSource::new(&g);
        let plans = compile_incremental(&queries::triangle(), PlanOptions::default());
        let est = estimate_naive(
            &src,
            &plans,
            &summary.applied,
            g.max_degree_bound(),
            &WalkParams { walks: 512, seed: 7 },
        );
        // Only vertices 0/1/2 can be accessed.
        for v in [5u32, 6, 7] {
            assert_eq!(est.freq[v as usize], 0.0);
        }
        assert!(est.freq[0] > 0.0 && est.freq[2] > 0.0);
    }
}
