//! Cache-set selection under a byte budget.
//!
//! GCSM caches the neighbor lists of the highest-estimated-frequency
//! vertices, filling the GPU buffer greedily ("nodes with the highest
//! estimated frequency are cached in the GPU buffer", Sec. VI-A). The
//! *Naive* baseline uses the same mechanism with node degree as the
//! frequency proxy — the policy the paper shows to be ineffective.

use crate::estimate::FreqEstimate;
use gcsm_graph::VertexId;

/// A chosen cache set.
#[derive(Clone, Debug, Default)]
pub struct CacheSelection {
    /// Selected vertices, sorted by ascending id (the DCSR `rowidx` order).
    pub vertices: Vec<VertexId>,
    /// Total bytes their raw adjacency lists occupy.
    pub bytes: usize,
}

/// Greedily select the top-estimate vertices whose lists fit in
/// `budget_bytes`. `list_bytes(v)` must report the raw adjacency bytes of
/// `v` (prefix + appended tail, as shipped to the GPU). Vertices whose list
/// alone exceeds the remaining budget are skipped (lower-ranked smaller
/// lists may still fit — the greedy knapsack the paper's packing implies).
pub fn select_top_frequency(
    est: &FreqEstimate,
    budget_bytes: usize,
    mut list_bytes: impl FnMut(VertexId) -> usize,
) -> CacheSelection {
    let ranked = est.ranked();
    select_ranked(ranked.into_iter().map(|(v, _)| v), budget_bytes, &mut list_bytes)
}

/// The Naive baseline: rank by degree instead of estimated frequency.
/// `degrees` yields `(vertex, degree)` for candidate vertices (typically
/// all vertices, or the k-hop neighborhood of the batch).
pub fn select_by_degree(
    mut candidates: Vec<(VertexId, usize)>,
    budget_bytes: usize,
    mut list_bytes: impl FnMut(VertexId) -> usize,
) -> CacheSelection {
    candidates.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    select_ranked(candidates.into_iter().map(|(v, _)| v), budget_bytes, &mut list_bytes)
}

fn select_ranked(
    ranked: impl Iterator<Item = VertexId>,
    budget_bytes: usize,
    list_bytes: &mut impl FnMut(VertexId) -> usize,
) -> CacheSelection {
    let mut sel = CacheSelection::default();
    for v in ranked {
        let sz = list_bytes(v);
        if sel.bytes + sz <= budget_bytes {
            sel.vertices.push(v);
            sel.bytes += sz;
        }
    }
    sel.vertices.sort_unstable();
    sel
}

impl CacheSelection {
    /// Coverage of an oracle top set: `|S ∩ T| / |S|` (Sec. VI-D).
    pub fn coverage_of(&self, oracle_top: &[VertexId]) -> f64 {
        if oracle_top.is_empty() {
            return 1.0;
        }
        let hits = oracle_top.iter().filter(|v| self.vertices.binary_search(v).is_ok()).count();
        hits as f64 / oracle_top.len() as f64
    }

    /// Membership test (vertices are sorted).
    pub fn contains(&self, v: VertexId) -> bool {
        self.vertices.binary_search(&v).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est_from(freqs: &[f64]) -> FreqEstimate {
        let mut e = FreqEstimate::new(freqs.len());
        e.freq = freqs.to_vec();
        e
    }

    #[test]
    fn budget_respected_and_sorted() {
        let e = est_from(&[10.0, 50.0, 30.0, 0.0]);
        // Lists: 8 bytes each.
        let sel = select_top_frequency(&e, 16, |_| 8);
        assert_eq!(sel.vertices, vec![1, 2]); // top-2 by estimate, sorted by id
        assert_eq!(sel.bytes, 16);
    }

    #[test]
    fn oversized_lists_are_skipped_not_fatal() {
        let e = est_from(&[10.0, 50.0, 30.0]);
        // Vertex 1 has a giant list; greedy skips it and still packs 2 and 0.
        let sel = select_top_frequency(&e, 20, |v| if v == 1 { 100 } else { 8 });
        assert_eq!(sel.vertices, vec![0, 2]);
    }

    #[test]
    fn zero_estimates_never_selected() {
        let e = est_from(&[0.0, 0.0]);
        let sel = select_top_frequency(&e, 1000, |_| 8);
        assert!(sel.vertices.is_empty());
    }

    #[test]
    fn degree_policy_prefers_hubs() {
        let sel = select_by_degree(vec![(0, 3), (1, 100), (2, 7)], 16, |_| 8);
        assert_eq!(sel.vertices, vec![1, 2]);
    }

    #[test]
    fn coverage_metric() {
        let sel = CacheSelection { vertices: vec![1, 3, 5], bytes: 0 };
        assert!((sel.coverage_of(&[1, 2, 3, 4]) - 0.5).abs() < 1e-12);
        assert_eq!(sel.coverage_of(&[]), 1.0);
        assert!(sel.contains(3));
        assert!(!sel.contains(2));
    }
}
