//! Theorem 1 and the sample-size rule of Eq. (5).

/// The Theorem-1 bound on the probability that the estimator ranks `y`
/// above `x` when the true frequencies satisfy `C_x = (1+α)·C_y`:
///
/// `Pr[C̃_x < C̃_y] ≤ (n−1)(2+α)·|ΔE|·D^{n−2} / (α²·M·C_y)`  (Eq. (4)).
pub fn misrank_bound(
    n: usize,
    alpha: f64,
    delta_e: usize,
    max_degree: usize,
    walks: u64,
    c_y: f64,
) -> f64 {
    assert!(n >= 2 && alpha > 0.0 && c_y > 0.0 && walks > 0);
    let numer =
        (n as f64 - 1.0) * (2.0 + alpha) * delta_e as f64 * (max_degree as f64).powi(n as i32 - 2);
    numer / (alpha * alpha * walks as f64 * c_y)
}

/// Minimum number of walks to achieve ranking confidence `δ` (Eq. (5)):
/// `M ≥ (n−1)(2+α)|ΔE|D^{n−2} / (α²(1−δ)C_y)`.
pub fn min_walks(
    n: usize,
    alpha: f64,
    delta_e: usize,
    max_degree: usize,
    delta_conf: f64,
    c_y: f64,
) -> u64 {
    assert!((0.0..1.0).contains(&delta_conf));
    let numer =
        (n as f64 - 1.0) * (2.0 + alpha) * delta_e as f64 * (max_degree as f64).powi(n as i32 - 2);
    (numer / (alpha * alpha * (1.0 - delta_conf) * c_y)).ceil() as u64
}

/// The paper's practical setting (Sec. VI-A): `M = |ΔE|·D^{n−2} / 32^n`,
/// clamped to `[32·|ΔE|, 128·|ΔE|]` walks per delta plan.
///
/// The clamp matters at laptop scale: the paper's graphs have `D ≈ 5000`,
/// which makes the formula allot thousands of walks per batch edge; our
/// stand-ins have `D` in the hundreds, where the raw formula would sample
/// each seed only a handful of times and miss the deeper tree levels. The
/// floor restores the paper's per-seed sampling intensity; the ceiling
/// bounds estimation cost for large patterns (where `D^{n−2}` explodes).
pub fn recommended_walks(n: usize, delta_e: usize, max_degree: usize) -> u64 {
    let m = delta_e as f64 * (max_degree as f64).powi(n as i32 - 2) / 32f64.powi(n as i32);
    let floor = 16 * delta_e.max(2) as u64;
    let ceiling = 96 * delta_e.max(2) as u64;
    (m.ceil() as u64).clamp(floor, ceiling)
}

/// One step of the adaptive loop of Sec. IV-A: given the smallest estimated
/// frequency observed with `walks` samples, report whether `walks` already
/// meets the Eq. (5) requirement, and if not, the new target.
pub fn adaptive_walk_target(
    n: usize,
    alpha: f64,
    delta_e: usize,
    max_degree: usize,
    delta_conf: f64,
    min_estimated_freq: f64,
    walks: u64,
) -> Result<(), u64> {
    let need = min_walks(n, alpha, delta_e, max_degree, delta_conf, min_estimated_freq);
    if walks >= need {
        Ok(())
    } else {
        Err(need)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_decreases_with_more_walks() {
        let b1 = misrank_bound(4, 0.5, 100, 50, 1_000, 10.0);
        let b2 = misrank_bound(4, 0.5, 100, 50, 10_000, 10.0);
        assert!(b2 < b1);
        assert!((b1 / b2 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn bound_decreases_with_larger_gap() {
        let small_gap = misrank_bound(4, 0.1, 100, 50, 1_000, 10.0);
        let large_gap = misrank_bound(4, 2.0, 100, 50, 1_000, 10.0);
        assert!(large_gap < small_gap);
    }

    #[test]
    fn min_walks_satisfies_bound() {
        let (n, alpha, de, d, conf, cy) = (5, 0.5, 512, 100, 0.9, 20.0);
        let m = min_walks(n, alpha, de, d, conf, cy);
        let bound = misrank_bound(n, alpha, de, d, m, cy);
        assert!(bound <= 1.0 - conf + 1e-9);
        // One fewer walk would violate it (up to rounding).
        let bound_less = misrank_bound(n, alpha, de, d, (m as f64 * 0.9) as u64, cy);
        assert!(bound_less > bound);
    }

    #[test]
    fn recommended_walks_matches_paper_formula() {
        // |ΔE| = 4096, D = 5000, n = 5: formula ≈ 1.526e7 → ceiling 96·|ΔE|.
        assert_eq!(recommended_walks(5, 4096, 5000), 96 * 4096);
        // Tiny instance hits the floor 16·|ΔE|.
        assert_eq!(recommended_walks(3, 4, 5), 64);
        // Low-D mid-range also floors: 4096·64/32768 = 8 → 16·4096.
        assert_eq!(recommended_walks(3, 4096, 64), 16 * 4096);
        // Floor still binds at moderate D: |ΔE|=64, D=1300, n=4 → 1024.
        assert_eq!(recommended_walks(4, 64, 1300), 1024);
        // Genuinely in-band: |ΔE|=64, D=8192, n=4: 64·8192²/32⁴ = 4096.
        assert_eq!(recommended_walks(4, 64, 8192), 4096);
    }

    #[test]
    fn adaptive_loop_converges() {
        let (n, alpha, de, d, conf) = (4, 1.0, 64, 32, 0.8);
        let mut walks = 128u64;
        let min_freq = 50.0;
        let mut rounds = 0;
        loop {
            match adaptive_walk_target(n, alpha, de, d, conf, min_freq, walks) {
                Ok(()) => break,
                Err(need) => {
                    walks = need;
                    rounds += 1;
                    assert!(rounds < 3, "adaptive loop must converge in one step here");
                }
            }
        }
        assert!(walks >= 128);
    }
}
