//! Shared estimator types.

use gcsm_graph::VertexId;

/// Walk configuration.
#[derive(Clone, Copy, Debug)]
pub struct WalkParams {
    /// Number of simulated walks `M` **per delta plan**. The paper sets
    /// `M = |ΔE|·D^{n−2}/32^n` (Sec. VI-A); engines compute that via
    /// [`crate::theory::recommended_walks`].
    pub walks: u64,
    /// RNG seed (runs are reproducible given the seed).
    pub seed: u64,
}

impl Default for WalkParams {
    fn default() -> Self {
        Self { walks: 1024, seed: 0x9e3779b97f4a7c15 }
    }
}

/// The estimation result.
#[derive(Clone, Debug, Default)]
pub struct FreqEstimate {
    /// Estimated access frequency per vertex (`C̃_v` averaged over walks);
    /// `0.0` for vertices never sampled. Length = number of graph vertices
    /// (the paper's O(|V|) space).
    pub freq: Vec<f64>,
    /// Set-intersection element operations spent by the estimator — the
    /// "FE" overhead of the paper's Table II, charged at CPU cost by the
    /// engines.
    pub walk_ops: u64,
}

impl FreqEstimate {
    pub fn new(n: usize) -> Self {
        Self { freq: vec![0.0; n], walk_ops: 0 }
    }

    /// Vertices with nonzero estimates, ranked by descending estimate
    /// (ties by ascending id).
    pub fn ranked(&self) -> Vec<(VertexId, f64)> {
        let mut v: Vec<(VertexId, f64)> = self
            .freq
            .iter()
            .enumerate()
            .filter(|(_, &f)| f > 0.0)
            .map(|(i, &f)| (i as VertexId, f))
            .collect();
        v.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        v
    }

    /// Smallest nonzero estimate (the `C_y` plugged into the Eq. (5)
    /// adaptivity check).
    pub fn min_nonzero(&self) -> Option<f64> {
        self.freq
            .iter()
            .copied()
            .filter(|&f| f > 0.0)
            .fold(None, |acc, f| Some(acc.map_or(f, |a: f64| a.min(f))))
    }

    /// Merge another estimate (averaging handled by caller's weights).
    pub fn add_assign(&mut self, other: &FreqEstimate) {
        assert_eq!(self.freq.len(), other.freq.len());
        for (a, b) in self.freq.iter_mut().zip(&other.freq) {
            *a += b;
        }
        self.walk_ops += other.walk_ops;
    }

    /// Scale all estimates by `s` (used when averaging pooled runs).
    pub fn scale(&mut self, s: f64) {
        for f in &mut self.freq {
            *f *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranked_orders_descending() {
        let mut e = FreqEstimate::new(4);
        e.freq = vec![0.0, 5.0, 2.0, 5.0];
        assert_eq!(e.ranked(), vec![(1, 5.0), (3, 5.0), (2, 2.0)]);
        assert_eq!(e.min_nonzero(), Some(2.0));
    }

    #[test]
    fn empty_estimate() {
        let e = FreqEstimate::new(3);
        assert!(e.ranked().is_empty());
        assert_eq!(e.min_nonzero(), None);
    }

    #[test]
    fn add_and_scale() {
        let mut a = FreqEstimate::new(2);
        a.freq = vec![1.0, 2.0];
        a.walk_ops = 10;
        let mut b = FreqEstimate::new(2);
        b.freq = vec![3.0, 4.0];
        b.walk_ops = 5;
        a.add_assign(&b);
        a.scale(0.5);
        assert_eq!(a.freq, vec![2.0, 3.0]);
        assert_eq!(a.walk_ops, 15);
    }
}
