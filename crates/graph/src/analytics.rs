//! Small graph analytics used by workload characterization and the
//! experiment harness: degree histograms, induced subgraphs, connectivity.

use crate::csr::{CsrBuilder, CsrGraph};
use crate::types::VertexId;

/// Degree histogram: `hist[d]` = number of vertices of degree `d`.
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in 0..g.num_vertices() as VertexId {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Degree-distribution skew: max degree / average degree. ~1 for regular
/// graphs; large for the hub-heavy graphs where degree-based caching could
/// plausibly work.
pub fn degree_skew(g: &CsrGraph) -> f64 {
    let n = g.num_vertices();
    if n == 0 || g.num_edges() == 0 {
        return 0.0;
    }
    let avg = 2.0 * g.num_edges() as f64 / n as f64;
    g.max_degree() as f64 / avg
}

/// Global clustering coefficient: 3 × triangles / wedges. The quantity the
/// social generator's wedge closure raises (real social graphs: 0.1–0.3;
/// plain R-MAT: ≪ 0.01).
pub fn clustering_coefficient(g: &CsrGraph) -> f64 {
    let mut triangles = 0u64;
    let mut wedges = 0u64;
    for v in 0..g.num_vertices() as VertexId {
        let d = g.degree(v) as u64;
        wedges += d.saturating_sub(1) * d / 2;
    }
    for (u, v) in g.edges() {
        // |N(u) ∩ N(v)| by sorted merge.
        let (nu, nv) = (g.neighbors(u), g.neighbors(v));
        let (mut i, mut j) = (0, 0);
        while i < nu.len() && j < nv.len() {
            match nu[i].cmp(&nv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    triangles += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    // Each triangle is counted once per edge = 3 times.
    if wedges == 0 {
        0.0
    } else {
        triangles as f64 / wedges as f64
    }
}

/// Induced subgraph on `vertices` (ids are remapped to `0..k` in the order
/// given; labels carried over). Useful for zooming into a batch's
/// neighborhood.
pub fn induced_subgraph(g: &CsrGraph, vertices: &[VertexId]) -> CsrGraph {
    let mut remap = std::collections::HashMap::with_capacity(vertices.len());
    for (i, &v) in vertices.iter().enumerate() {
        remap.insert(v, i as VertexId);
    }
    let mut b = CsrBuilder::new(vertices.len());
    for &v in vertices {
        if let Some(&rv) = remap.get(&v) {
            for &w in g.neighbors(v) {
                if let Some(&rw) = remap.get(&w) {
                    if rv < rw {
                        b.add_edge(rv, rw);
                    }
                }
            }
        }
    }
    b.set_labels(vertices.iter().map(|&v| g.label(v)).collect());
    b.build()
}

/// Number of connected components.
pub fn connected_components(g: &CsrGraph) -> usize {
    let n = g.num_vertices();
    let mut seen = vec![false; n];
    let mut components = 0;
    let mut stack = Vec::new();
    for s in 0..n {
        if seen[s] {
            continue;
        }
        components += 1;
        seen[s] = true;
        stack.push(s as VertexId);
        while let Some(v) = stack.pop() {
            for &w in g.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    stack.push(w);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrGraph {
        // Triangle {0,1,2} + path 3-4; 5 isolated.
        CsrGraph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4)])
    }

    #[test]
    fn histogram_and_skew() {
        let g = sample();
        let h = degree_histogram(&g);
        assert_eq!(h[0], 1); // vertex 5
        assert_eq!(h[1], 2); // 3, 4
        assert_eq!(h[2], 3); // triangle
        let avg = 2.0 * 4.0 / 6.0;
        assert!((degree_skew(&g) - 2.0 / avg).abs() < 1e-12);
    }

    #[test]
    fn clustering() {
        let g = sample();
        // Wedges: 3 (one per triangle corner). Triangle edge-count = 3.
        assert!((clustering_coefficient(&g) - 1.0).abs() < 1e-12);
        let path = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(clustering_coefficient(&path), 0.0);
    }

    #[test]
    fn induced() {
        let g = sample();
        let sub = induced_subgraph(&g, &[0, 2, 4]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 1); // only (0,2) survives
        assert!(sub.has_edge(0, 1)); // remapped ids: 0→0, 2→1
    }

    #[test]
    fn components() {
        assert_eq!(connected_components(&sample()), 3);
        assert_eq!(connected_components(&CsrGraph::from_edges(1, &[])), 1);
        assert_eq!(connected_components(&CsrGraph::from_edges(0, &[])), 0);
    }
}
