//! Neighbor-list views: the paper's `N` (old) and `N'` (new) (Fig. 2).
//!
//! A dynamic adjacency list mid-batch is physically laid out as
//!
//! ```text
//! [ sorted original prefix, some entries tombstoned | sorted appended tail ]
//!   ^--------------------- old_len ----------------^
//! ```
//!
//! * the **old** view `N(v)` is the prefix with tombstone bits *ignored*
//!   (a tombstoned entry was still an edge of `G_k`);
//! * the **new** view `N'(v)` is the prefix with tombstoned entries *skipped*
//!   plus the appended tail.
//!
//! Both views are sequences of (at most two) sorted runs. The matcher crate
//! performs merge/galloping intersections run-by-run; this module only
//! defines the view itself plus the basic operations (`contains`, iteration)
//! used by tests and by the non-performance-critical code paths.

use crate::types::{decode_neighbor, is_tombstone, VertexId};

/// One sorted run of encoded adjacency entries.
#[derive(Clone, Copy, Debug)]
pub struct NeighborRun<'a> {
    /// Encoded entries (tombstone bit possibly set), sorted by decoded id.
    pub data: &'a [u32],
    /// If true, entries with the tombstone bit are skipped; otherwise the
    /// tombstone bit is masked off and the entry is yielded.
    pub skip_tombstones: bool,
}

impl<'a> NeighborRun<'a> {
    /// Iterate decoded neighbor ids in sorted order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + 'a {
        let skip = self.skip_tombstones;
        self.data.iter().copied().filter_map(move |e| {
            if skip && is_tombstone(e) {
                None
            } else {
                Some(decode_neighbor(e))
            }
        })
    }

    /// Binary search for `v` by decoded id. Returns true if present (and not
    /// filtered out by tombstone skipping).
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        match self.data.binary_search_by_key(&v, |&e| decode_neighbor(e)) {
            Ok(i) => !(self.skip_tombstones && is_tombstone(self.data[i])),
            Err(_) => false,
        }
    }

    /// Number of raw entries (an upper bound on yielded entries).
    #[inline]
    pub fn raw_len(&self) -> usize {
        self.data.len()
    }
}

/// A neighbor view: at most two sorted runs over disjoint id sets.
///
/// For the old view the tail run is absent. For the new view the prefix run
/// skips tombstones and the tail run holds the (sorted) appended neighbors.
#[derive(Clone, Copy, Debug)]
pub struct NeighborView<'a> {
    pub prefix: NeighborRun<'a>,
    /// Appended-in-this-batch neighbors; `None` for old views and for
    /// vertices without appended edges.
    pub tail: Option<&'a [u32]>,
}

impl<'a> NeighborView<'a> {
    /// Old view over a raw list prefix.
    pub fn old(prefix: &'a [u32]) -> Self {
        Self { prefix: NeighborRun { data: prefix, skip_tombstones: false }, tail: None }
    }

    /// New view over a raw prefix + appended tail.
    pub fn new_view(prefix: &'a [u32], tail: &'a [u32]) -> Self {
        Self {
            prefix: NeighborRun { data: prefix, skip_tombstones: true },
            tail: if tail.is_empty() { None } else { Some(tail) },
        }
    }

    /// View over a plain sorted list with no tombstones or tail (CSR snapshot
    /// or reorganized list).
    pub fn plain(list: &'a [u32]) -> Self {
        Self { prefix: NeighborRun { data: list, skip_tombstones: false }, tail: None }
    }

    /// The tail as a run (plain sorted ids).
    #[inline]
    pub fn tail_run(&self) -> Option<NeighborRun<'a>> {
        self.tail.map(|t| NeighborRun { data: t, skip_tombstones: false })
    }

    /// Upper bound on the number of neighbors in the view.
    #[inline]
    pub fn raw_len(&self) -> usize {
        self.prefix.raw_len() + self.tail.map_or(0, <[u32]>::len)
    }

    /// Membership test across both runs.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.prefix.contains(v) || self.tail_run().is_some_and(|r| r.contains(v))
    }

    /// Decoded neighbors in globally sorted order (merges the two runs).
    /// Intended for tests and cold paths; hot paths intersect run-by-run.
    pub fn iter_sorted(&self) -> MergedIter<'a> {
        MergedIter { prefix: self.prefix, pi: 0, tail: self.tail.unwrap_or(&[]), ti: 0 }
    }

    /// Collect decoded neighbors into a vector (sorted).
    pub fn to_vec(&self) -> Vec<VertexId> {
        self.iter_sorted().collect()
    }

    /// Exact number of neighbors in the view.
    pub fn count(&self) -> usize {
        self.iter_sorted().count()
    }
}

/// Merging iterator over a view's two sorted runs.
pub struct MergedIter<'a> {
    prefix: NeighborRun<'a>,
    pi: usize,
    tail: &'a [u32],
    ti: usize,
}

impl<'a> Iterator for MergedIter<'a> {
    type Item = VertexId;

    fn next(&mut self) -> Option<VertexId> {
        // Advance past skipped tombstones in the prefix.
        while self.pi < self.prefix.data.len()
            && self.prefix.skip_tombstones
            && is_tombstone(self.prefix.data[self.pi])
        {
            self.pi += 1;
        }
        let p = self.prefix.data.get(self.pi).map(|&e| decode_neighbor(e));
        let t = self.tail.get(self.ti).copied();
        match (p, t) {
            (Some(pv), Some(tv)) => {
                if pv <= tv {
                    self.pi += 1;
                    Some(pv)
                } else {
                    self.ti += 1;
                    Some(tv)
                }
            }
            (Some(pv), None) => {
                self.pi += 1;
                Some(pv)
            }
            (None, Some(tv)) => {
                self.ti += 1;
                Some(tv)
            }
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::encode_tombstone;

    #[test]
    fn old_view_includes_tombstones() {
        let raw = vec![1u32, encode_tombstone(3), 5];
        let v = NeighborView::old(&raw);
        assert_eq!(v.to_vec(), vec![1, 3, 5]);
        assert!(v.contains(3));
        assert_eq!(v.count(), 3);
    }

    #[test]
    fn new_view_skips_tombstones_and_merges_tail() {
        let raw = vec![1u32, encode_tombstone(3), 5];
        let tail = vec![2u32, 9];
        let v = NeighborView::new_view(&raw, &tail);
        assert_eq!(v.to_vec(), vec![1, 2, 5, 9]);
        assert!(!v.contains(3));
        assert!(v.contains(2));
        assert!(v.contains(9));
        assert_eq!(v.raw_len(), 5);
        assert_eq!(v.count(), 4);
    }

    #[test]
    fn empty_views() {
        let v = NeighborView::plain(&[]);
        assert_eq!(v.to_vec(), Vec::<u32>::new());
        assert!(!v.contains(0));
    }

    #[test]
    fn tail_only_view() {
        let tail = vec![4u32, 7];
        let v = NeighborView::new_view(&[], &tail);
        assert_eq!(v.to_vec(), vec![4, 7]);
    }

    #[test]
    fn run_contains_respects_skip_flag() {
        let raw = vec![encode_tombstone(2)];
        let keep = NeighborRun { data: &raw, skip_tombstones: false };
        let skip = NeighborRun { data: &raw, skip_tombstones: true };
        assert!(keep.contains(2));
        assert!(!skip.contains(2));
    }
}
