//! Graph statistics in the shape of the paper's Table I.

/// Dataset statistics: vertices, edges, max degree, adjacency bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphStats {
    pub num_vertices: usize,
    pub num_edges: usize,
    pub max_degree: usize,
    pub adjacency_bytes: usize,
}

impl GraphStats {
    /// Adjacency size in (fractional) gigabytes, as Table I reports it.
    pub fn size_gb(&self) -> f64 {
        self.adjacency_bytes as f64 / 1e9
    }

    /// Average degree (2|E| / |V|).
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            2.0 * self.num_edges as f64 / self.num_vertices as f64
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} |E|={} maxdeg={} size={:.4}GB",
            self.num_vertices,
            self.num_edges,
            self.max_degree,
            self.size_gb()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let s = GraphStats { num_vertices: 4, num_edges: 6, max_degree: 3, adjacency_bytes: 48 };
        assert!((s.avg_degree() - 3.0).abs() < 1e-12);
        assert!((s.size_gb() - 48e-9).abs() < 1e-18);
        assert!(format!("{s}").contains("|V|=4"));
    }

    #[test]
    fn empty_graph_avg_degree() {
        let s = GraphStats { num_vertices: 0, num_edges: 0, max_degree: 0, adjacency_bytes: 0 };
        assert_eq!(s.avg_degree(), 0.0);
    }
}
