//! Edge-list I/O.
//!
//! Reads/writes the whitespace-separated edge-list format used by SNAP
//! datasets (`# comment` lines ignored, one `src dst` pair per line) plus
//! an optional label file (`vertex label` per line), so real datasets can
//! be dropped in for the synthetic stand-ins.

use crate::csr::{CsrBuilder, CsrGraph};
use crate::types::{EdgeUpdate, Label, VertexId};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Parse an edge list from any reader. Lines starting with `#` or `%` are
/// comments; blank lines are skipped. Returns an error string on malformed
/// input (line number included).
pub fn read_edge_list<R: Read>(reader: R) -> Result<CsrGraph, String> {
    let mut builder = CsrBuilder::new(0);
    let mut line = String::new();
    let mut br = BufReader::new(reader);
    let mut lineno = 0usize;
    loop {
        line.clear();
        lineno += 1;
        let n = br.read_line(&mut line).map_err(|e| format!("line {lineno}: {e}"))?;
        if n == 0 {
            break;
        }
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let a: VertexId = it
            .next()
            .ok_or_else(|| format!("line {lineno}: missing src"))?
            .parse()
            .map_err(|e| format!("line {lineno}: bad src: {e}"))?;
        let b: VertexId = it
            .next()
            .ok_or_else(|| format!("line {lineno}: missing dst"))?
            .parse()
            .map_err(|e| format!("line {lineno}: bad dst: {e}"))?;
        builder.add_edge(a, b);
    }
    Ok(builder.build())
}

/// Load an edge-list file.
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<CsrGraph, String> {
    let f = std::fs::File::open(path.as_ref())
        .map_err(|e| format!("{}: {e}", path.as_ref().display()))?;
    read_edge_list(f)
}

/// Write a graph as a canonical edge list (one undirected edge per line).
pub fn write_edge_list<W: Write>(g: &CsrGraph, mut w: W) -> std::io::Result<()> {
    writeln!(w, "# {} vertices, {} edges", g.num_vertices(), g.num_edges())?;
    for (a, b) in g.edges() {
        writeln!(w, "{a} {b}")?;
    }
    Ok(())
}

/// Parse a `vertex label` file into a label vector of length `n`.
pub fn read_labels<R: Read>(reader: R, n: usize) -> Result<Vec<Label>, String> {
    let mut labels = vec![0 as Label; n];
    let br = BufReader::new(reader);
    for (i, line) in br.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", i + 1))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let v: usize = it
            .next()
            .ok_or_else(|| format!("line {}: missing vertex", i + 1))?
            .parse()
            .map_err(|e| format!("line {}: {e}", i + 1))?;
        let l: Label = it
            .next()
            .ok_or_else(|| format!("line {}: missing label", i + 1))?
            .parse()
            .map_err(|e| format!("line {}: {e}", i + 1))?;
        if v >= n {
            return Err(format!("line {}: vertex {v} out of range", i + 1));
        }
        labels[v] = l;
    }
    Ok(labels)
}

/// Parse an update stream: one update per line, `+ src dst` for insertion
/// or `- src dst` for deletion (`#` comments and blanks skipped).
pub fn read_updates<R: Read>(reader: R) -> Result<Vec<EdgeUpdate>, String> {
    let br = BufReader::new(reader);
    let mut out = Vec::new();
    for (i, line) in br.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", i + 1))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let op = it.next().unwrap();
        let a: VertexId = it
            .next()
            .ok_or_else(|| format!("line {}: missing src", i + 1))?
            .parse()
            .map_err(|e| format!("line {}: {e}", i + 1))?;
        let b: VertexId = it
            .next()
            .ok_or_else(|| format!("line {}: missing dst", i + 1))?
            .parse()
            .map_err(|e| format!("line {}: {e}", i + 1))?;
        out.push(match op {
            "+" => EdgeUpdate::insert(a, b),
            "-" => EdgeUpdate::delete(a, b),
            other => return Err(format!("line {}: bad op '{other}' (want + or -)", i + 1)),
        });
    }
    Ok(out)
}

/// Load an update-stream file.
pub fn load_updates<P: AsRef<Path>>(path: P) -> Result<Vec<EdgeUpdate>, String> {
    let f = std::fs::File::open(path.as_ref())
        .map_err(|e| format!("{}: {e}", path.as_ref().display()))?;
    read_updates(f)
}

/// Write an update stream in the `+/- src dst` format.
pub fn write_updates<W: Write>(updates: &[EdgeUpdate], mut w: W) -> std::io::Result<()> {
    for u in updates {
        let op = match u.op {
            crate::types::UpdateOp::Insert => '+',
            crate::types::UpdateOp::Delete => '-',
        };
        writeln!(w, "{op} {} {}", u.src, u.dst)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g.edges().collect::<Vec<_>>(), g2.edges().collect::<Vec<_>>());
    }

    #[test]
    fn comments_blanks_and_whitespace() {
        let text = "# snap header\n% matrix-market style\n\n  1   2 \n2 3\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(1, 2) && g.has_edge(2, 3));
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let err = read_edge_list("1 2\nx y\n".as_bytes()).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = read_edge_list("1\n".as_bytes()).unwrap_err();
        assert!(err.contains("missing dst"), "{err}");
    }

    #[test]
    fn labels_parse_and_validate() {
        let l = read_labels("0 5\n2 7\n".as_bytes(), 3).unwrap();
        assert_eq!(l, vec![5, 0, 7]);
        assert!(read_labels("9 1\n".as_bytes(), 3).is_err());
    }

    #[test]
    fn missing_file_errors() {
        assert!(load_edge_list("/nonexistent/path.el").is_err());
        assert!(load_updates("/nonexistent/path.upd").is_err());
    }

    #[test]
    fn updates_roundtrip() {
        let ups = vec![EdgeUpdate::insert(1, 2), EdgeUpdate::delete(3, 4)];
        let mut buf = Vec::new();
        write_updates(&ups, &mut buf).unwrap();
        let back = read_updates(&buf[..]).unwrap();
        assert_eq!(back, ups);
    }

    #[test]
    fn updates_reject_bad_ops() {
        assert!(read_updates("* 1 2\n".as_bytes()).is_err());
        assert!(read_updates("+ 1\n".as_bytes()).is_err());
        let ok = read_updates("# c\n\n+ 1 2\n- 2 3\n".as_bytes()).unwrap();
        assert_eq!(ok.len(), 2);
    }
}
