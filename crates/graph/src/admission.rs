//! Batch admission: sequencing and conflict coalescing for streamed updates.
//!
//! The streaming front-end (in `gcsm::stream`) admits updates into an open
//! *window* before sealing it into a batch for the matching pipeline. Within
//! a window, updates touching the same undirected edge are **coalesced**:
//!
//! * a duplicate of the surviving op for that edge is dropped
//!   (`+e, +e → +e`);
//! * an op opposite to the surviving op *cancels* it — both disappear
//!   (`+e, -e → ∅`, and `-e, +e → ∅`);
//! * self-loops are rejected outright (the dynamic store would skip them
//!   at apply time anyway; rejecting at admission keeps them out of the
//!   size-based seal accounting).
//!
//! Cancellation treats the window as a net state transition — an edge
//! inserted and deleted inside one window was never visible at batch
//! granularity. This is exact for *well-formed* streams (inserts of absent
//! edges, deletes of present edges, the protocol `gcsm-datagen` generates
//! and `DynamicGraph::apply` otherwise skips); see DESIGN.md § Streaming.
//!
//! Everything here is keyed by the caller-supplied total order `seq`, never
//! by arrival time, so a window's survivors — and therefore batch contents
//! and boundaries — are a pure function of the sequenced update stream.

use crate::types::{EdgeUpdate, UpdateOp, VertexId};
use std::collections::HashMap;

/// What happened to one update at admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// The update survives in the window (for now).
    Admitted,
    /// Same op already pending for this edge; this update was dropped.
    Duplicate,
    /// Opposite op was pending; both it and this update were removed.
    CancelledPair,
    /// `src == dst`; rejected.
    SelfLoop,
}

/// Counters accumulated over one window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Updates offered to the window (everything except self-loops).
    pub offered: usize,
    /// Duplicates dropped (`+e, +e` or `-e, -e`).
    pub duplicates: usize,
    /// Insert/delete pairs that annihilated (counts *pairs*, not updates).
    pub cancelled_pairs: usize,
    /// Self-loops rejected.
    pub self_loops: usize,
}

impl AdmissionStats {
    fn absorb(&mut self, other: AdmissionStats) {
        self.offered += other.offered;
        self.duplicates += other.duplicates;
        self.cancelled_pairs += other.cancelled_pairs;
        self.self_loops += other.self_loops;
    }
}

/// One window's coalescing state: at most one surviving op per canonical
/// edge (the duplicate/cancel rules guarantee the per-edge "stack" never
/// exceeds depth one).
#[derive(Debug, Default)]
pub struct CoalesceWindow {
    /// canonical edge → (seq of the surviving op, the op).
    slots: HashMap<(VertexId, VertexId), (u64, UpdateOp)>,
    stats: AdmissionStats,
}

impl CoalesceWindow {
    pub fn new() -> Self {
        Self::default()
    }

    /// Admit one sequenced update. `seq` values must be distinct; relative
    /// order of `admit` calls must follow `seq` order (the stream layer's
    /// sequencer guarantees this).
    pub fn admit(&mut self, seq: u64, update: EdgeUpdate) -> Admission {
        if update.src == update.dst {
            self.stats.self_loops += 1;
            return Admission::SelfLoop;
        }
        self.stats.offered += 1;
        let key = update.canonical();
        match self.slots.get(&key) {
            None => {
                self.slots.insert(key, (seq, update.op));
                Admission::Admitted
            }
            Some(&(_, pending)) if pending == update.op => {
                self.stats.duplicates += 1;
                Admission::Duplicate
            }
            Some(_) => {
                self.slots.remove(&key);
                self.stats.cancelled_pairs += 1;
                Admission::CancelledPair
            }
        }
    }

    /// Number of surviving updates currently in the window (what size-based
    /// seal policies count).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Seal the window: survivors in `seq` order, plus this window's
    /// admission counters. The window resets for reuse.
    pub fn drain(&mut self) -> (Vec<EdgeUpdate>, AdmissionStats) {
        let mut survivors: Vec<(u64, EdgeUpdate)> = self
            .slots
            .drain()
            .map(|((a, b), (seq, op))| (seq, EdgeUpdate { src: a, dst: b, op }))
            .collect();
        survivors.sort_unstable_by_key(|&(seq, _)| seq);
        let stats = std::mem::take(&mut self.stats);
        (survivors.into_iter().map(|(_, u)| u).collect(), stats)
    }
}

/// Coalesce a pre-sequenced slice in one call (the serial-reference path and
/// tests use this; the stream worker admits incrementally).
pub fn coalesce(updates: &[(u64, EdgeUpdate)]) -> (Vec<EdgeUpdate>, AdmissionStats) {
    let mut sorted: Vec<(u64, EdgeUpdate)> = updates.to_vec();
    sorted.sort_unstable_by_key(|&(seq, _)| seq);
    let mut window = CoalesceWindow::new();
    let mut stats = AdmissionStats::default();
    for (seq, u) in sorted {
        window.admit(seq, u);
    }
    let (survivors, s) = window.drain();
    stats.absorb(s);
    (survivors, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ins(s: u32, d: u32) -> EdgeUpdate {
        EdgeUpdate::insert(s, d)
    }
    fn del(s: u32, d: u32) -> EdgeUpdate {
        EdgeUpdate::delete(s, d)
    }

    #[test]
    fn duplicates_collapse_to_first() {
        let mut w = CoalesceWindow::new();
        assert_eq!(w.admit(0, ins(1, 2)), Admission::Admitted);
        assert_eq!(w.admit(1, ins(2, 1)), Admission::Duplicate); // canonical
        assert_eq!(w.admit(2, ins(1, 2)), Admission::Duplicate);
        let (survivors, stats) = w.drain();
        assert_eq!(survivors, vec![ins(1, 2)]);
        assert_eq!(stats.duplicates, 2);
        assert_eq!(stats.offered, 3);
    }

    #[test]
    fn opposite_ops_cancel() {
        let mut w = CoalesceWindow::new();
        w.admit(0, ins(1, 2));
        assert_eq!(w.admit(1, del(1, 2)), Admission::CancelledPair);
        assert!(w.is_empty());
        // ... and the edge can come back afterwards.
        assert_eq!(w.admit(2, ins(1, 2)), Admission::Admitted);
        let (survivors, stats) = w.drain();
        assert_eq!(survivors, vec![ins(1, 2)]);
        assert_eq!(stats.cancelled_pairs, 1);
    }

    #[test]
    fn delete_then_insert_also_cancels() {
        let mut w = CoalesceWindow::new();
        w.admit(0, del(3, 4));
        assert_eq!(w.admit(1, ins(4, 3)), Admission::CancelledPair);
        assert!(w.is_empty());
    }

    #[test]
    fn self_loops_rejected() {
        let mut w = CoalesceWindow::new();
        assert_eq!(w.admit(0, ins(5, 5)), Admission::SelfLoop);
        let (survivors, stats) = w.drain();
        assert!(survivors.is_empty());
        assert_eq!(stats.self_loops, 1);
        assert_eq!(stats.offered, 0);
    }

    #[test]
    fn survivors_emerge_in_seq_order() {
        let input = [(5, ins(0, 1)), (1, ins(2, 3)), (3, del(4, 5))];
        let (survivors, _) = coalesce(&input);
        assert_eq!(survivors, vec![ins(2, 3), del(4, 5), ins(0, 1)]);
    }

    #[test]
    fn coalesce_is_order_insensitive_in_input_layout() {
        // Same (seq, update) set in two different slice orders → identical
        // output: coalescing is a function of the sequenced set.
        let a = [(0, ins(1, 2)), (1, del(1, 2)), (2, ins(6, 7)), (3, ins(6, 7))];
        let mut b = a;
        b.reverse();
        assert_eq!(coalesce(&a), coalesce(&b));
    }

    #[test]
    fn alternating_chain_reduces_to_parity() {
        // +e −e +e −e +e → single surviving insert (at the last seq).
        let seq: Vec<(u64, EdgeUpdate)> =
            (0..5u64).map(|i| (i, if i % 2 == 0 { ins(1, 2) } else { del(1, 2) })).collect();
        let (survivors, stats) = coalesce(&seq);
        assert_eq!(survivors, vec![ins(1, 2)]);
        assert_eq!(stats.cancelled_pairs, 2);
    }
}
