//! # gcsm-graph — graph substrate for the GCSM reproduction
//!
//! This crate provides the two graph representations the GCSM system is built
//! on:
//!
//! * [`CsrGraph`] — an immutable compressed-sparse-row snapshot used for
//!   static (from-scratch) matching and as the initial state of a dynamic
//!   graph.
//! * [`DynamicGraph`] — the CPU-side dynamic graph store of the paper
//!   (Sec. V-A): one growable sorted adjacency array per vertex, insertions
//!   appended at the tail, deletions tombstoned in place (the paper stores
//!   `-v`; we set a tombstone bit), and a post-match *reorganize* step that
//!   removes tombstones and restores the fully-sorted invariant.
//!
//! The dynamic store exposes the two neighbor views the incremental
//! worst-case-optimal join needs (Fig. 2 of the paper):
//!
//! * `N(v)`  — the **old** view: the adjacency list as it was *before* the
//!   current batch (tombstoned entries still count; appended entries do not).
//! * `N'(v)` — the **new** view: the list *after* the batch (tombstones
//!   skipped, appended tail included).
//!
//! Both views are exposed as sorted runs so the matcher can use merge-based
//! set intersection: the old view is one sorted run (tombstone bit is ignored
//! by the comparator), the new view is two sorted runs (original prefix with
//! tombstones skipped + sorted appended tail).
//!
//! ```
//! use gcsm_graph::{CsrGraph, DynamicGraph, EdgeUpdate};
//!
//! let mut g = DynamicGraph::from_csr(&CsrGraph::from_edges(4, &[(0, 1), (1, 2)]));
//! g.begin_batch();
//! g.apply(EdgeUpdate::insert(2, 3));
//! g.apply(EdgeUpdate::delete(0, 1));
//! g.seal_batch();
//!
//! assert_eq!(g.old_view(2).to_vec(), vec![1]);      // N: pre-batch
//! assert_eq!(g.new_view(2).to_vec(), vec![1, 3]);   // N': post-batch
//! assert_eq!(g.new_view(0).to_vec(), Vec::<u32>::new());
//!
//! g.reorganize();                                   // Step-4: sorted again
//! assert_eq!(g.old_view(2).to_vec(), vec![1, 3]);
//! ```

pub mod admission;
pub mod analytics;
pub mod csr;
pub mod dynamic;
pub mod io;
pub mod stats;
pub mod types;
pub mod view;

pub use admission::{coalesce, Admission, AdmissionStats, CoalesceWindow};
pub use csr::{CsrBuilder, CsrGraph};
pub use dynamic::{BatchSummary, DynamicGraph, ReorgResult, ReorgTask};
pub use stats::GraphStats;
pub use types::{
    decode_neighbor, encode_tombstone, is_tombstone, EdgeUpdate, Label, UpdateOp, VertexId,
    TOMBSTONE_BIT,
};
pub use view::{NeighborRun, NeighborView};
