//! Core identifier types and the encoded-neighbor representation.

/// Vertex identifier. The paper's datasets go to 100 M vertices; `u32` covers
/// that while keeping adjacency arrays compact (half the bytes of `u64`,
/// which matters because the simulated PCIe traffic is measured in bytes).
pub type VertexId = u32;

/// Vertex label. The paper's SNAP/LDBC graphs are unlabeled in the evaluation
/// but the problem definition (Sec. II-A) includes a labeling function `L`,
/// so we carry labels end-to-end. Label 0 is the "unlabeled" wildcard-free
/// default.
pub type Label = u16;

/// Tombstone marker bit. The paper marks a deleted neighbor `v` by storing
/// `-v` in the adjacency array; since our ids are unsigned we set the MSB
/// instead. Vertex ids must therefore stay below `2^31`, which is ample for
/// every dataset in the paper.
pub const TOMBSTONE_BIT: u32 = 1 << 31;

/// True if an encoded adjacency entry is a deleted (tombstoned) edge.
#[inline(always)]
pub fn is_tombstone(encoded: u32) -> bool {
    encoded & TOMBSTONE_BIT != 0
}

/// Strip the tombstone bit, yielding the neighbor id (the paper's `|v|`).
#[inline(always)]
pub fn decode_neighbor(encoded: u32) -> VertexId {
    encoded & !TOMBSTONE_BIT
}

/// Mark an id as tombstoned (the paper's `v := -v`).
#[inline(always)]
pub fn encode_tombstone(v: VertexId) -> u32 {
    debug_assert_eq!(v & TOMBSTONE_BIT, 0, "vertex id overflows tombstone bit");
    v | TOMBSTONE_BIT
}

/// Whether an edge update inserts or deletes the edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UpdateOp {
    /// Edge insertion (`(e, +)` in the paper).
    Insert,
    /// Edge deletion (`(e, -)` in the paper).
    Delete,
}

impl UpdateOp {
    /// +1 for insertions, -1 for deletions: the sign an incremental match
    /// rooted at this delta edge contributes to the result multiset.
    #[inline]
    pub fn sign(self) -> i64 {
        match self {
            UpdateOp::Insert => 1,
            UpdateOp::Delete => -1,
        }
    }
}

/// One element of the update stream `[(e_0, ±), (e_1, ±), ...]`.
///
/// Graphs are undirected: an update touches the adjacency lists of both
/// endpoints. `src < dst` is *not* required; self loops are rejected at
/// application time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EdgeUpdate {
    pub src: VertexId,
    pub dst: VertexId,
    pub op: UpdateOp,
}

impl EdgeUpdate {
    /// Insertion update.
    pub fn insert(src: VertexId, dst: VertexId) -> Self {
        Self { src, dst, op: UpdateOp::Insert }
    }

    /// Deletion update.
    pub fn delete(src: VertexId, dst: VertexId) -> Self {
        Self { src, dst, op: UpdateOp::Delete }
    }

    /// The endpoints in canonical (min, max) order, used for dedup.
    pub fn canonical(&self) -> (VertexId, VertexId) {
        if self.src <= self.dst {
            (self.src, self.dst)
        } else {
            (self.dst, self.src)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tombstone_roundtrip() {
        for v in [0u32, 1, 1234, (1 << 31) - 1] {
            let t = encode_tombstone(v);
            assert!(is_tombstone(t));
            assert!(!is_tombstone(v));
            assert_eq!(decode_neighbor(t), v);
            assert_eq!(decode_neighbor(v), v);
        }
    }

    #[test]
    fn update_sign() {
        assert_eq!(UpdateOp::Insert.sign(), 1);
        assert_eq!(UpdateOp::Delete.sign(), -1);
    }

    #[test]
    fn canonical_order() {
        assert_eq!(EdgeUpdate::insert(5, 3).canonical(), (3, 5));
        assert_eq!(EdgeUpdate::delete(3, 5).canonical(), (3, 5));
    }
}
