//! Immutable compressed-sparse-row snapshot.
//!
//! Used (a) as the initial graph `G_0` a [`crate::DynamicGraph`] is seeded
//! from, and (b) by the from-scratch reference matcher that validates the
//! incremental results (the paper's correctness anchor: `ΔM` must equal the
//! difference between matching `G_{k+1}` and `G_k` from scratch).

use crate::types::{Label, VertexId};

/// An undirected graph in CSR form with sorted, deduplicated neighbor lists.
#[derive(Clone, Debug, Default)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    neighbors: Vec<VertexId>,
    labels: Vec<Label>,
    max_degree: usize,
}

impl CsrGraph {
    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of undirected edges (each stored twice internally).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Total number of directed adjacency entries (2 × undirected edges).
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// The maximum vertex degree `D` used by the random-walk estimator.
    #[inline]
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// Sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Label of `v`.
    #[inline]
    pub fn label(&self, v: VertexId) -> Label {
        self.labels[v as usize]
    }

    /// All labels (index = vertex id).
    #[inline]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// True if the undirected edge `(a, b)` exists.
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        let (probe, list) = if self.degree(a) <= self.degree(b) {
            (b, self.neighbors(a))
        } else {
            (a, self.neighbors(b))
        };
        list.binary_search(&probe).is_ok()
    }

    /// Iterate over each undirected edge once, as `(min, max)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices() as VertexId).flat_map(move |u| {
            self.neighbors(u).iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// In-memory size of the adjacency structure in bytes (the quantity the
    /// paper's Table I reports as "Size (GB)").
    pub fn adjacency_bytes(&self) -> usize {
        self.neighbors.len() * std::mem::size_of::<VertexId>()
            + self.offsets.len() * std::mem::size_of::<usize>()
    }
}

/// Builder that accumulates undirected edges and produces a [`CsrGraph`].
///
/// Duplicate edges and self loops are silently dropped; vertex count grows to
/// cover the largest id seen.
#[derive(Clone, Debug, Default)]
pub struct CsrBuilder {
    edges: Vec<(VertexId, VertexId)>,
    labels: Vec<Label>,
    num_vertices: usize,
}

impl CsrBuilder {
    /// New builder with `num_vertices` pre-declared (ids `0..num_vertices`).
    pub fn new(num_vertices: usize) -> Self {
        Self { edges: Vec::new(), labels: Vec::new(), num_vertices }
    }

    /// Reserve capacity for `n` more edges.
    pub fn reserve(&mut self, n: usize) {
        self.edges.reserve(n);
    }

    /// Add an undirected edge. Self loops are ignored.
    pub fn add_edge(&mut self, a: VertexId, b: VertexId) {
        if a == b {
            return;
        }
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        self.num_vertices = self.num_vertices.max(b as usize + 1);
        self.edges.push((a, b));
    }

    /// Set per-vertex labels (missing entries default to 0).
    pub fn set_labels(&mut self, labels: Vec<Label>) {
        self.labels = labels;
    }

    /// Number of (possibly duplicate) edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Build the CSR graph: sort, dedup, and lay out neighbor arrays.
    pub fn build(mut self) -> CsrGraph {
        let n = self.num_vertices;
        self.edges.sort_unstable();
        self.edges.dedup();

        let mut degrees = vec![0usize; n];
        for &(a, b) in &self.edges {
            degrees[a as usize] += 1;
            degrees[b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as VertexId; acc];
        for &(a, b) in &self.edges {
            neighbors[cursor[a as usize]] = b;
            cursor[a as usize] += 1;
            neighbors[cursor[b as usize]] = a;
            cursor[b as usize] += 1;
        }
        // Each list was filled in increasing order of the *other* endpoint
        // only for the `a` side; sort every list to make the invariant
        // unconditional.
        for v in 0..n {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        let mut labels = self.labels;
        labels.resize(n, 0);
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        CsrGraph { offsets, neighbors, labels, max_degree }
    }
}

impl CsrGraph {
    /// Convenience constructor from an undirected edge list.
    pub fn from_edges(num_vertices: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut b = CsrBuilder::new(num_vertices);
        for &(a, c) in edges {
            b.add_edge(a, c);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        // The data graph G_0 of the paper's Fig. 1 (unlabeled): a kite.
        CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn basic_topology() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2, 3]);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.max_degree(), 3);
        assert!(g.has_edge(1, 3));
        assert!(g.has_edge(3, 1));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn dedup_and_self_loops() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn edges_iterator_is_canonical_and_complete() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn neighbor_lists_sorted() {
        let g = CsrGraph::from_edges(6, &[(5, 0), (5, 3), (5, 1), (5, 4), (5, 2)]);
        assert_eq!(g.neighbors(5), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn labels_default_and_explicit() {
        let mut b = CsrBuilder::new(3);
        b.add_edge(0, 1);
        b.set_labels(vec![7, 8]);
        let g = b.build();
        assert_eq!(g.label(0), 7);
        assert_eq!(g.label(1), 8);
        assert_eq!(g.label(2), 0);
    }

    #[test]
    fn isolated_trailing_vertices_preserved() {
        let g = CsrGraph::from_edges(10, &[(0, 1)]);
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.degree(9), 0);
    }
}
