//! The CPU-side dynamic graph store (paper Sec. V-A, Fig. 5).
//!
//! Per vertex we keep one growable array of encoded neighbor entries:
//!
//! * arrays are preallocated at **double** the initial degree so insertions
//!   are amortised O(1) (paper Step-1);
//! * new vertices get an array sized to the average degree (Step-2);
//! * deletions are **tombstoned in place** — the paper stores `-v`, we set
//!   the MSB — located by binary search in the sorted prefix (Step-3);
//! * after the batch has been matched, [`DynamicGraph::reorganize`] removes
//!   tombstones and merges the sorted appended tail back into the prefix in
//!   linear time per updated list (Step-4), restoring the fully-sorted
//!   invariant for the next batch.
//!
//! Between [`DynamicGraph::begin_batch`] and [`DynamicGraph::reorganize`]
//! the structure serves both the **old** view `N` (pre-batch) and the **new**
//! view `N'` (post-batch) required by the incremental join of Fig. 2.

use crate::csr::{CsrBuilder, CsrGraph};
use crate::stats::GraphStats;
use crate::types::{
    decode_neighbor, encode_tombstone, is_tombstone, EdgeUpdate, Label, UpdateOp, VertexId,
};
use crate::view::NeighborView;

/// One adjacency array.
#[derive(Clone, Debug, Default)]
struct AdjList {
    /// `[0..old_len)`: sorted original prefix (entries may be tombstoned);
    /// `[old_len..)`: neighbors appended this batch (sorted by `seal_batch`).
    data: Vec<u32>,
    /// Length of the prefix = degree at batch start.
    old_len: usize,
    /// Number of tombstoned entries currently in the prefix.
    dead: usize,
}

/// Merge one raw adjacency array back into a single sorted live run:
/// tombstones in the prefix are dropped and the sorted tail is interleaved
/// (linear time). Shared by the serial, parallel, and off-thread
/// reorganization paths so they cannot drift apart.
fn merge_list(data: &[u32], old_len: usize) -> Vec<u32> {
    let (prefix, tail) = data.split_at(old_len);
    let mut merged = Vec::with_capacity(data.len());
    let (mut pi, mut ti) = (0, 0);
    while pi < prefix.len() || ti < tail.len() {
        // Skip tombstones in the prefix.
        if pi < prefix.len() && is_tombstone(prefix[pi]) {
            pi += 1;
            continue;
        }
        match (prefix.get(pi), tail.get(ti)) {
            (Some(&p), Some(&t)) => {
                if p <= t {
                    merged.push(p);
                    pi += 1;
                } else {
                    merged.push(t);
                    ti += 1;
                }
            }
            (Some(&p), None) => {
                merged.push(p);
                pi += 1;
            }
            (None, Some(&t)) => {
                merged.push(t);
                ti += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    merged
}

impl AdjList {
    fn live_degree(&self) -> usize {
        self.data.len() - self.dead
    }

    /// Binary search the prefix by decoded id.
    fn find_in_prefix(&self, v: VertexId) -> Result<usize, usize> {
        self.data[..self.old_len].binary_search_by_key(&v, |&e| decode_neighbor(e))
    }

    /// Structural invariant: `dead` counts exactly the tombstones in the
    /// prefix (the tail never holds tombstones). Referenced from
    /// `debug_assert!` sites, so it must exist in release builds too.
    fn tombstones_consistent(&self) -> bool {
        self.data[..self.old_len].iter().filter(|&&e| is_tombstone(e)).count() == self.dead
            && !self.data[self.old_len..].iter().any(|&e| is_tombstone(e))
    }

    /// Post-reorganize invariant: a single strictly sorted live run with no
    /// tombstones and no unsealed tail. Referenced from `debug_assert!`
    /// sites, so it must exist in release builds too.
    fn is_clean_sorted(&self) -> bool {
        self.dead == 0
            && self.old_len == self.data.len()
            && self.data.windows(2).all(|w| w[0] < w[1])
            && !self.data.iter().any(|&e| is_tombstone(e))
    }
}

/// Summary of a sealed batch, handed to the matching stage.
#[derive(Clone, Debug, Default)]
pub struct BatchSummary {
    /// Updates that actually changed the graph, in application order.
    pub applied: Vec<EdgeUpdate>,
    /// Number of requested updates that were no-ops (duplicate insert /
    /// missing delete).
    pub skipped: usize,
}

impl BatchSummary {
    /// `|ΔE|` — the batch size seen by the matcher and the walk estimator.
    pub fn len(&self) -> usize {
        self.applied.len()
    }

    /// True if no update was applied.
    pub fn is_empty(&self) -> bool {
        self.applied.is_empty()
    }
}

/// Phase of the update/match cycle (Fig. 3 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Lists fully sorted, no tombstones or tails; ready for `begin_batch`.
    Clean,
    /// Accepting `apply` calls.
    Applying,
    /// Batch sealed: tails sorted, views `N`/`N'` live; ready to match and
    /// then `reorganize`.
    Sealed,
    /// Overlap mode: the previous batch is still sealed (its reorganization
    /// runs off-thread) while the next batch's updates are journaled via
    /// [`DynamicGraph::apply`]. Entered by
    /// [`DynamicGraph::begin_staged_batch`]; left by `seal_batch` after
    /// [`DynamicGraph::install_reorg`] has landed.
    Staging,
}

/// Snapshot of the merge work for one sealed batch, detached from the graph
/// so it can be computed on another thread while the graph keeps serving
/// reads (and journaling the next batch). Produced by
/// [`DynamicGraph::take_reorg_task`]; consumed by [`ReorgTask::compute`].
#[derive(Clone, Debug)]
pub struct ReorgTask {
    /// Seal epoch this task was taken at; checked on install so a stale
    /// result can never clobber a newer graph state.
    epoch: u64,
    /// `(vertex, raw list clone, prefix length)` for every touched list that
    /// actually needs merging (has tombstones or an appended tail).
    items: Vec<(VertexId, Vec<u32>, usize)>,
}

impl ReorgTask {
    /// True when no list needs merging (resurrection-only batches): the
    /// caller can install the (empty) result inline instead of spawning.
    pub fn is_trivial(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of lists that will be merged.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no list needs merging.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Run the merges (rayon-parallel across lists, as in
    /// [`DynamicGraph::reorganize_parallel`]). Borrows nothing from the
    /// graph, so it can run on any thread.
    pub fn compute(self) -> ReorgResult {
        use rayon::prelude::*;
        let epoch = self.epoch;
        let merged = self
            .items
            .into_par_iter()
            .map(|(v, data, old_len)| (v, merge_list(&data, old_len)))
            .collect();
        ReorgResult { epoch, merged }
    }
}

/// Output of [`ReorgTask::compute`], applied via
/// [`DynamicGraph::install_reorg`].
#[derive(Clone, Debug)]
pub struct ReorgResult {
    epoch: u64,
    merged: Vec<(VertexId, Vec<u32>)>,
}

impl ReorgResult {
    /// Number of lists merged.
    pub fn len(&self) -> usize {
        self.merged.len()
    }

    /// True when no list was merged.
    pub fn is_empty(&self) -> bool {
        self.merged.is_empty()
    }
}

/// The dynamic data graph.
#[derive(Clone, Debug)]
pub struct DynamicGraph {
    lists: Vec<AdjList>,
    labels: Vec<Label>,
    /// Monotone upper bound on the max live degree (the walk estimator's `D`
    /// only needs an upper bound; tracking the exact max under deletions
    /// would cost a scan).
    max_degree: usize,
    /// Current number of live undirected edges.
    num_edges: usize,
    /// Average degree of the initial graph, used to size new vertices'
    /// arrays (paper Step-2).
    initial_avg_degree: usize,
    phase: Phase,
    /// Vertices whose lists changed in the current batch (deduplicated at
    /// seal time).
    touched: Vec<VertexId>,
    batch: BatchSummary,
    /// Seal epoch: incremented every `seal_batch`. Guards
    /// [`Self::install_reorg`] against stale results.
    seals: u64,
    /// Updates journaled while in [`Phase::Staging`], replayed at seal.
    staged: Vec<EdgeUpdate>,
    /// Whether the pending reorganization result has been installed for the
    /// current staged batch.
    reorg_installed: bool,
}

impl DynamicGraph {
    /// Seed from an initial snapshot `G_0`. Arrays are preallocated at twice
    /// the initial degree, as in the paper.
    pub fn from_csr(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let mut lists = Vec::with_capacity(n);
        for v in 0..n as VertexId {
            let nbrs = g.neighbors(v);
            let mut data = Vec::with_capacity((nbrs.len() * 2).max(4));
            data.extend_from_slice(nbrs);
            lists.push(AdjList { old_len: data.len(), data, dead: 0 });
        }
        let avg = (2 * g.num_edges()).checked_div(n).unwrap_or(4).max(1);
        Self {
            lists,
            labels: g.labels().to_vec(),
            max_degree: g.max_degree(),
            num_edges: g.num_edges(),
            initial_avg_degree: avg,
            phase: Phase::Clean,
            touched: Vec::new(),
            batch: BatchSummary::default(),
            seals: 0,
            staged: Vec::new(),
            reorg_installed: false,
        }
    }

    /// Empty graph with `n` isolated unlabeled vertices.
    pub fn with_vertices(n: usize) -> Self {
        Self::from_csr(&CsrGraph::from_edges(n, &[]))
    }

    /// Number of vertices (including isolated ones).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.lists.len()
    }

    /// Current number of live undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Upper bound on the maximum degree (the estimator's `D`).
    #[inline]
    pub fn max_degree_bound(&self) -> usize {
        self.max_degree
    }

    /// Vertex label.
    #[inline]
    pub fn label(&self, v: VertexId) -> Label {
        self.labels[v as usize]
    }

    /// Set a vertex label (labels are static in the paper's model; exposed
    /// for dataset construction).
    pub fn set_label(&mut self, v: VertexId, l: Label) {
        self.labels[v as usize] = l;
    }

    /// Average degree of the initial snapshot.
    #[inline]
    pub fn initial_avg_degree(&self) -> usize {
        self.initial_avg_degree
    }

    // ------------------------------------------------------------------
    // Batch lifecycle
    // ------------------------------------------------------------------

    /// Start accepting a batch of updates (Step-1 of Fig. 3).
    pub fn begin_batch(&mut self) {
        assert_eq!(self.phase, Phase::Clean, "previous batch not reorganized");
        self.phase = Phase::Applying;
        self.touched.clear();
        self.batch = BatchSummary::default();
    }

    /// Start accepting the next batch while the previous one is still sealed
    /// and its reorganization runs off-thread (overlap mode, double-buffered
    /// Fig. 3). Updates are journaled — not applied — until
    /// [`Self::install_reorg`] lands and `seal_batch` replays them, so the
    /// sealed views `N`/`N'` stay readable throughout.
    pub fn begin_staged_batch(&mut self) {
        assert_eq!(self.phase, Phase::Sealed, "staged batch requires a pending sealed batch");
        self.phase = Phase::Staging;
        self.staged.clear();
        self.reorg_installed = false;
        self.batch = BatchSummary::default();
    }

    /// Apply one update. Returns `true` if it changed the graph. Duplicate
    /// insertions and deletions of absent edges are counted as skipped.
    /// Inserting an edge whose endpoints exceed the current vertex count
    /// grows the graph (the paper: "a newly inserted edge may consist of new
    /// vertices"); new vertices get label 0.
    ///
    /// In a staged batch (overlap mode) the update is journaled and the
    /// return value is provisionally `true`; no-op detection happens when the
    /// journal is replayed at seal time and is reflected in the returned
    /// [`BatchSummary`].
    pub fn apply(&mut self, u: EdgeUpdate) -> bool {
        if self.phase == Phase::Staging {
            self.staged.push(u);
            return true;
        }
        assert_eq!(self.phase, Phase::Applying, "apply outside begin_batch");
        if u.src == u.dst {
            self.batch.skipped += 1;
            return false;
        }
        let applied = match u.op {
            UpdateOp::Insert => {
                self.ensure_vertex(u.src.max(u.dst));
                self.insert_half(u.src, u.dst) && {
                    let ok = self.insert_half(u.dst, u.src);
                    debug_assert!(ok, "asymmetric adjacency state");
                    ok
                }
            }
            UpdateOp::Delete => {
                if (u.src as usize) < self.lists.len() && (u.dst as usize) < self.lists.len() {
                    self.delete_half(u.src, u.dst) && {
                        let ok = self.delete_half(u.dst, u.src);
                        debug_assert!(ok, "asymmetric adjacency state");
                        ok
                    }
                } else {
                    false
                }
            }
        };
        if applied {
            match u.op {
                UpdateOp::Insert => {
                    self.num_edges += 1;
                    let d = self.lists[u.src as usize]
                        .live_degree()
                        .max(self.lists[u.dst as usize].live_degree());
                    self.max_degree = self.max_degree.max(d);
                }
                UpdateOp::Delete => self.num_edges -= 1,
            }
            self.touched.push(u.src);
            self.touched.push(u.dst);
            self.batch.applied.push(u);
        } else {
            self.batch.skipped += 1;
        }
        applied
    }

    /// Grow the vertex set so that id `v` exists.
    fn ensure_vertex(&mut self, v: VertexId) {
        let need = v as usize + 1;
        if need > self.lists.len() {
            let cap = self.initial_avg_degree;
            self.lists.resize_with(need, || AdjList {
                data: Vec::with_capacity(cap),
                old_len: 0,
                dead: 0,
            });
            self.labels.resize(need, 0);
        }
    }

    /// Insert `b` into `a`'s list. Returns false if the edge already exists
    /// live. A tombstoned prefix entry is resurrected in place; a tail entry
    /// is a duplicate.
    fn insert_half(&mut self, a: VertexId, b: VertexId) -> bool {
        let list = &mut self.lists[a as usize];
        match list.find_in_prefix(b) {
            Ok(i) => {
                if is_tombstone(list.data[i]) {
                    list.data[i] = b;
                    list.dead -= 1;
                    true
                } else {
                    false
                }
            }
            Err(_) => {
                if list.data[list.old_len..].contains(&b) {
                    false
                } else {
                    list.data.push(b);
                    true
                }
            }
        }
    }

    /// Tombstone `b` in `a`'s prefix, or remove it from the tail if it was
    /// appended earlier in this same batch. Returns false if absent.
    fn delete_half(&mut self, a: VertexId, b: VertexId) -> bool {
        let list = &mut self.lists[a as usize];
        match list.find_in_prefix(b) {
            Ok(i) => {
                if is_tombstone(list.data[i]) {
                    false
                } else {
                    list.data[i] = encode_tombstone(b);
                    list.dead += 1;
                    true
                }
            }
            Err(_) => {
                if let Some(pos) = list.data[list.old_len..].iter().position(|&e| e == b) {
                    let idx = list.old_len + pos;
                    list.data.remove(idx);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Seal the batch: sort every appended tail (so `ΔN` is sorted, enabling
    /// merge intersections — paper Sec. V-C) and deduplicate the touched set.
    /// Returns the batch summary handed to the matcher.
    pub fn seal_batch(&mut self) -> BatchSummary {
        if self.phase == Phase::Staging {
            assert!(
                self.reorg_installed,
                "staged batch sealed before install_reorg landed the pending reorganization"
            );
            self.phase = Phase::Applying;
            self.batch = BatchSummary::default();
            let staged = std::mem::take(&mut self.staged);
            for u in staged {
                self.apply(u);
            }
        }
        assert_eq!(self.phase, Phase::Applying, "seal outside batch");
        self.seals += 1;
        self.touched.sort_unstable();
        self.touched.dedup();
        for &v in &self.touched {
            let list = &mut self.lists[v as usize];
            let old_len = list.old_len;
            list.data[old_len..].sort_unstable();
            debug_assert!(
                list.data[old_len..].windows(2).all(|w| w[0] < w[1]),
                "sealed tail of v{v} not strictly sorted (duplicate append slipped through)"
            );
            debug_assert!(
                list.tombstones_consistent(),
                "tombstone count drifted for v{v} during batch application"
            );
        }
        self.phase = Phase::Sealed;
        self.batch.clone()
    }

    /// The batch currently sealed for matching.
    pub fn sealed_batch(&self) -> &BatchSummary {
        assert_eq!(self.phase, Phase::Sealed, "no sealed batch");
        &self.batch
    }

    /// Vertices whose adjacency lists changed in the sealed batch (sorted).
    pub fn updated_vertices(&self) -> &[VertexId] {
        &self.touched
    }

    /// Step-4: remove tombstones and merge each updated list back into one
    /// sorted run. Linear in the length of each updated list. Returns the
    /// number of lists reorganized.
    pub fn reorganize(&mut self) -> usize {
        assert_eq!(self.phase, Phase::Sealed, "reorganize requires a sealed batch");
        let mut span = gcsm_obs::span("reorganize", gcsm_obs::cat::GRAPH);
        let mut count = 0;
        for &v in &self.touched {
            let list = &mut self.lists[v as usize];
            if list.dead == 0 && list.old_len == list.data.len() {
                continue; // resurrections only; already sorted
            }
            let merged = merge_list(&list.data, list.old_len);
            // Keep the doubled-capacity allocation if it still fits; the
            // paper never shrinks arrays.
            list.data.clear();
            list.data.extend_from_slice(&merged);
            list.old_len = list.data.len();
            list.dead = 0;
            debug_assert!(
                list.is_clean_sorted(),
                "reorganize left v{v} unsorted, duplicated, or tombstoned"
            );
            count += 1;
        }
        self.touched.clear();
        self.phase = Phase::Clean;
        span.set_count(count as u64);
        count
    }

    /// Parallel variant of [`Self::reorganize`]: updated lists are
    /// independent, so the merge runs across the rayon pool (the paper's
    /// platform reorganizes with 32 CPU threads available). Semantically
    /// identical to the serial version.
    pub fn reorganize_parallel(&mut self) -> usize {
        use rayon::prelude::*;
        assert_eq!(self.phase, Phase::Sealed, "reorganize requires a sealed batch");
        let mut span = gcsm_obs::span("reorganize", gcsm_obs::cat::GRAPH);
        let mut touched_flags = vec![false; self.lists.len()];
        for &v in &self.touched {
            touched_flags[v as usize] = true;
        }
        let count = self
            .lists
            .par_iter_mut()
            .zip(touched_flags.par_iter())
            .filter(|(_, &t)| t)
            .map(|(list, _)| {
                if list.dead == 0 && list.old_len == list.data.len() {
                    return 0usize;
                }
                let merged = merge_list(&list.data, list.old_len);
                list.data.clear();
                list.data.extend_from_slice(&merged);
                list.old_len = list.data.len();
                list.dead = 0;
                debug_assert!(
                    list.is_clean_sorted(),
                    "parallel reorganize left a list unsorted, duplicated, or tombstoned"
                );
                1
            })
            .sum();
        self.touched.clear();
        self.phase = Phase::Clean;
        span.set_count(count as u64);
        count
    }

    /// Detach the merge work for the sealed batch so it can run off-thread
    /// ([`ReorgTask::compute`]) while the graph keeps serving the sealed
    /// views — and, via [`Self::begin_staged_batch`], journaling the next
    /// batch. Touched lists that need no merge (resurrection-only) are
    /// excluded. The graph stays `Sealed`; apply the result with
    /// [`Self::install_reorg`].
    pub fn take_reorg_task(&self) -> ReorgTask {
        assert_eq!(self.phase, Phase::Sealed, "reorganize requires a sealed batch");
        let items = self
            .touched
            .iter()
            .filter_map(|&v| {
                let list = &self.lists[v as usize];
                if list.dead == 0 && list.old_len == list.data.len() {
                    None
                } else {
                    Some((v, list.data.clone(), list.old_len))
                }
            })
            .collect();
        ReorgTask { epoch: self.seals, items }
    }

    /// Install an off-thread reorganization result. Equivalent to having run
    /// [`Self::reorganize`] at [`Self::take_reorg_task`] time: merged lists
    /// replace their raw form, the touched set clears, and the phase
    /// advances (`Sealed` → `Clean`, or marks the pending reorganization
    /// installed when a staged batch is open). Panics if the result's seal
    /// epoch does not match the graph's — a stale result can never clobber
    /// newer state. Returns the number of lists reorganized.
    pub fn install_reorg(&mut self, res: ReorgResult) -> usize {
        match self.phase {
            Phase::Sealed => {}
            Phase::Staging => {
                assert!(!self.reorg_installed, "reorganize result installed twice")
            }
            _ => panic!("install_reorg requires a sealed or staged batch"),
        }
        assert_eq!(res.epoch, self.seals, "stale reorganize result (seal epoch mismatch)");
        let count = res.merged.len();
        for (v, merged) in res.merged {
            let list = &mut self.lists[v as usize];
            list.data.clear();
            list.data.extend_from_slice(&merged);
            list.old_len = list.data.len();
            list.dead = 0;
            debug_assert!(
                list.is_clean_sorted(),
                "install_reorg left v{v} unsorted, duplicated, or tombstoned"
            );
        }
        self.touched.clear();
        if self.phase == Phase::Sealed {
            self.phase = Phase::Clean;
        } else {
            self.reorg_installed = true;
        }
        count
    }

    /// Convenience: run a whole batch in one call (apply → seal). The caller
    /// matches against the sealed state and then calls [`Self::reorganize`].
    pub fn apply_batch(&mut self, updates: &[EdgeUpdate]) -> BatchSummary {
        self.begin_batch();
        for &u in updates {
            self.apply(u);
        }
        self.seal_batch()
    }

    // ------------------------------------------------------------------
    // Views
    // ------------------------------------------------------------------

    /// The old view `N(v)`: the list as of the start of the sealed batch.
    #[inline]
    pub fn old_view(&self, v: VertexId) -> NeighborView<'_> {
        let list = &self.lists[v as usize];
        NeighborView::old(&list.data[..list.old_len])
    }

    /// The new view `N'(v)`: the post-batch list.
    #[inline]
    pub fn new_view(&self, v: VertexId) -> NeighborView<'_> {
        let list = &self.lists[v as usize];
        NeighborView::new_view(&list.data[..list.old_len], &list.data[list.old_len..])
    }

    /// Raw encoded entries `[prefix | tail]` plus the prefix length. This is
    /// exactly the byte layout shipped to the GPU cache (DCSR `colidx` keeps
    /// the same encoding, with the second `rowptr` offset marking the tail).
    #[inline]
    pub fn raw_list(&self, v: VertexId) -> (&[u32], usize) {
        let list = &self.lists[v as usize];
        (&list.data, list.old_len)
    }

    /// Degree before the sealed batch.
    #[inline]
    pub fn old_degree(&self, v: VertexId) -> usize {
        self.lists[v as usize].old_len
    }

    /// Degree after the sealed batch (live entries).
    #[inline]
    pub fn new_degree(&self, v: VertexId) -> usize {
        self.lists[v as usize].live_degree()
    }

    /// Bytes occupied by `v`'s raw list — the unit of traffic for the GPU
    /// memory model.
    #[inline]
    pub fn list_bytes(&self, v: VertexId) -> usize {
        self.lists[v as usize].data.len() * std::mem::size_of::<u32>()
    }

    // ------------------------------------------------------------------
    // Snapshots
    // ------------------------------------------------------------------

    /// Snapshot of the *current* (post-batch if sealed) graph as a CSR.
    pub fn to_csr(&self) -> CsrGraph {
        let mut b = CsrBuilder::new(self.num_vertices());
        for v in 0..self.num_vertices() as VertexId {
            for w in self.new_view(v).iter_sorted() {
                if v < w {
                    b.add_edge(v, w);
                }
            }
        }
        b.set_labels(self.labels.clone());
        b.build()
    }

    /// Snapshot of the *pre-batch* graph as a CSR (old views).
    pub fn old_to_csr(&self) -> CsrGraph {
        let mut b = CsrBuilder::new(self.num_vertices());
        for v in 0..self.num_vertices() as VertexId {
            for w in self.old_view(v).iter_sorted() {
                if v < w {
                    b.add_edge(v, w);
                }
            }
        }
        b.set_labels(self.labels.clone());
        b.build()
    }

    /// Total heap bytes held by the adjacency arrays, including the
    /// doubled-capacity headroom the paper's allocation strategy keeps
    /// (contrast with [`GraphStats::adjacency_bytes`], which counts used
    /// entries only).
    pub fn allocated_bytes(&self) -> usize {
        self.lists.iter().map(|l| l.data.capacity() * std::mem::size_of::<u32>()).sum::<usize>()
            + self.lists.capacity() * std::mem::size_of::<AdjList>()
            + self.labels.capacity() * std::mem::size_of::<Label>()
    }

    /// Basic statistics in the shape of the paper's Table I.
    pub fn stats(&self) -> GraphStats {
        let mut max_deg = 0usize;
        let mut bytes = 0usize;
        for l in &self.lists {
            max_deg = max_deg.max(l.live_degree());
            bytes += l.data.len() * std::mem::size_of::<u32>();
        }
        GraphStats {
            num_vertices: self.num_vertices(),
            num_edges: self.num_edges,
            max_degree: max_deg,
            adjacency_bytes: bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 1's G_0: kite on 4 vertices; the update batch of the figure adds
    /// (v4, v6)… we use small synthetic variants instead.
    fn seed() -> DynamicGraph {
        DynamicGraph::from_csr(&CsrGraph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]))
    }

    #[test]
    fn insert_appends_to_tail_and_views_split() {
        let mut g = seed();
        g.begin_batch();
        assert!(g.apply(EdgeUpdate::insert(3, 4)));
        assert!(g.apply(EdgeUpdate::insert(0, 4)));
        let b = g.seal_batch();
        assert_eq!(b.len(), 2);

        // Old view of 3 excludes the new neighbor 4.
        assert_eq!(g.old_view(3).to_vec(), vec![1, 2]);
        assert_eq!(g.new_view(3).to_vec(), vec![1, 2, 4]);
        // Vertex 4 existed but was isolated.
        assert_eq!(g.old_view(4).to_vec(), Vec::<u32>::new());
        assert_eq!(g.new_view(4).to_vec(), vec![0, 3]);
        assert_eq!(g.num_edges(), 7);

        g.reorganize();
        assert_eq!(g.old_view(3).to_vec(), vec![1, 2, 4]);
    }

    #[test]
    fn delete_tombstones_prefix() {
        let mut g = seed();
        g.begin_batch();
        assert!(g.apply(EdgeUpdate::delete(1, 2)));
        g.seal_batch();
        assert_eq!(g.old_view(1).to_vec(), vec![0, 2, 3]);
        assert_eq!(g.new_view(1).to_vec(), vec![0, 3]);
        assert_eq!(g.new_view(2).to_vec(), vec![0, 3]);
        assert_eq!(g.num_edges(), 4);
        g.reorganize();
        assert_eq!(g.old_view(1).to_vec(), vec![0, 3]);
        assert_eq!(g.old_degree(1), 2);
    }

    #[test]
    fn duplicate_insert_and_missing_delete_are_noops() {
        let mut g = seed();
        g.begin_batch();
        assert!(!g.apply(EdgeUpdate::insert(0, 1)));
        assert!(!g.apply(EdgeUpdate::delete(0, 3)));
        assert!(!g.apply(EdgeUpdate::insert(2, 2)));
        let b = g.seal_batch();
        assert_eq!(b.len(), 0);
        assert_eq!(b.skipped, 3);
        g.reorganize();
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    fn insert_then_delete_same_batch_cancels() {
        let mut g = seed();
        g.begin_batch();
        assert!(g.apply(EdgeUpdate::insert(3, 4)));
        assert!(g.apply(EdgeUpdate::delete(3, 4)));
        g.seal_batch();
        assert_eq!(g.new_view(3).to_vec(), vec![1, 2]);
        assert_eq!(g.num_edges(), 5);
        g.reorganize();
        assert_eq!(g.old_view(4).to_vec(), Vec::<u32>::new());
    }

    #[test]
    fn delete_then_reinsert_same_batch_resurrects() {
        let mut g = seed();
        g.begin_batch();
        assert!(g.apply(EdgeUpdate::delete(0, 1)));
        assert!(g.apply(EdgeUpdate::insert(0, 1)));
        g.seal_batch();
        assert_eq!(g.new_view(0).to_vec(), vec![1, 2]);
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    fn new_vertices_grow_graph() {
        let mut g = seed();
        g.begin_batch();
        assert!(g.apply(EdgeUpdate::insert(2, 9)));
        g.seal_batch();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.label(9), 0);
        assert_eq!(g.new_view(9).to_vec(), vec![2]);
        g.reorganize();
        assert_eq!(g.old_view(9).to_vec(), vec![2]);
    }

    #[test]
    fn tail_is_sorted_after_seal() {
        let mut g = seed();
        g.begin_batch();
        for w in [9, 7, 5, 8, 6] {
            assert!(g.apply(EdgeUpdate::insert(0, w)));
        }
        g.seal_batch();
        assert_eq!(g.new_view(0).to_vec(), vec![1, 2, 5, 6, 7, 8, 9]);
        let (raw, old_len) = g.raw_list(0);
        assert_eq!(old_len, 2);
        assert!(raw[old_len..].windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut g = seed();
        g.begin_batch();
        g.apply(EdgeUpdate::insert(3, 4));
        g.apply(EdgeUpdate::delete(0, 2));
        g.seal_batch();
        let old = g.old_to_csr();
        let new = g.to_csr();
        assert_eq!(old.num_edges(), 5);
        assert_eq!(new.num_edges(), 5); // +1 −1
        assert!(old.has_edge(0, 2) && !new.has_edge(0, 2));
        assert!(!old.has_edge(3, 4) && new.has_edge(3, 4));
        g.reorganize();
        let reorg = g.to_csr();
        assert_eq!(reorg.edges().collect::<Vec<_>>(), new.edges().collect::<Vec<_>>());
    }

    #[test]
    fn updated_vertices_tracked_and_cleared() {
        let mut g = seed();
        g.begin_batch();
        g.apply(EdgeUpdate::insert(3, 4));
        g.apply(EdgeUpdate::delete(1, 2));
        g.seal_batch();
        assert_eq!(g.updated_vertices(), &[1, 2, 3, 4]);
        g.reorganize();
        assert!(g.updated_vertices().is_empty());
    }

    #[test]
    fn allocated_bytes_include_headroom() {
        let g = seed();
        // Doubled preallocation ⇒ capacity ≥ 2× used entries.
        let used: usize = (0..5u32).map(|v| g.list_bytes(v)).sum();
        assert!(g.allocated_bytes() >= 2 * used);
    }

    #[test]
    fn stats_reflect_live_graph() {
        let g = seed();
        let s = g.stats();
        assert_eq!(s.num_vertices, 5);
        assert_eq!(s.num_edges, 5);
        assert_eq!(s.max_degree, 3);
    }

    #[test]
    #[should_panic(expected = "previous batch not reorganized")]
    fn begin_twice_panics() {
        let mut g = seed();
        g.begin_batch();
        g.seal_batch();
        g.begin_batch();
    }

    #[test]
    fn parallel_reorganize_equals_serial() {
        let build = || {
            let mut g = seed();
            g.begin_batch();
            g.apply(EdgeUpdate::insert(3, 4));
            g.apply(EdgeUpdate::delete(0, 2));
            g.apply(EdgeUpdate::insert(0, 4));
            g.seal_batch();
            g
        };
        let mut a = build();
        let mut b = build();
        let ca = a.reorganize();
        let cb = b.reorganize_parallel();
        assert_eq!(ca, cb);
        for v in 0..a.num_vertices() as u32 {
            assert_eq!(a.raw_list(v).0, b.raw_list(v).0, "v{v}");
        }
        assert!(b.updated_vertices().is_empty());
    }

    #[test]
    fn take_compute_install_equals_reorganize() {
        let build = || {
            let mut g = seed();
            g.begin_batch();
            g.apply(EdgeUpdate::insert(3, 4));
            g.apply(EdgeUpdate::delete(0, 2));
            g.apply(EdgeUpdate::insert(0, 4));
            g.seal_batch();
            g
        };
        let mut a = build();
        let mut b = build();
        let ca = a.reorganize();
        let task = b.take_reorg_task();
        assert!(!task.is_trivial());
        let cb = b.install_reorg(task.compute());
        assert_eq!(ca, cb);
        for v in 0..a.num_vertices() as u32 {
            assert_eq!(a.raw_list(v).0, b.raw_list(v).0, "v{v}");
        }
        assert!(b.updated_vertices().is_empty());
        // Both back to Clean: a fresh batch starts without panicking.
        b.begin_batch();
        b.seal_batch();
        b.reorganize();
    }

    #[test]
    fn staged_batch_overlaps_reorganize() {
        let mut g = seed();
        g.begin_batch();
        g.apply(EdgeUpdate::insert(3, 4));
        g.apply(EdgeUpdate::delete(0, 1));
        g.seal_batch();

        // Detach batch-1 merge work, then open batch 2 while it is "running".
        let task = g.take_reorg_task();
        g.begin_staged_batch();
        // Journaled updates: one real insert, one duplicate (no-op), one
        // delete of an edge the pending reorganize will have removed.
        g.apply(EdgeUpdate::insert(2, 4));
        g.apply(EdgeUpdate::insert(0, 2)); // duplicate → skipped at replay
        g.apply(EdgeUpdate::delete(0, 1)); // already deleted in batch 1 → skipped
                                           // Sealed views of batch 1 still readable while staged.
        assert_eq!(g.new_view(3).to_vec(), vec![1, 2, 4]);
        assert_eq!(g.old_view(0).to_vec(), vec![1, 2]);

        g.install_reorg(task.compute());
        let b = g.seal_batch();
        assert_eq!(b.len(), 1, "only the real insert applies");
        assert_eq!(b.skipped, 2);
        assert_eq!(g.new_view(2).to_vec(), vec![0, 1, 3, 4]);
        assert_eq!(g.old_view(2).to_vec(), vec![0, 1, 3]);
        g.reorganize();
        assert_eq!(g.old_view(0).to_vec(), vec![2]);
        assert_eq!(g.num_edges(), 6);
    }

    #[test]
    #[should_panic(expected = "staged batch sealed before install_reorg")]
    fn staged_seal_without_install_panics() {
        let mut g = seed();
        g.begin_batch();
        g.apply(EdgeUpdate::insert(3, 4));
        g.seal_batch();
        g.begin_staged_batch();
        g.seal_batch();
    }

    #[test]
    #[should_panic(expected = "seal epoch mismatch")]
    fn stale_reorg_result_rejected() {
        let mut g = seed();
        g.begin_batch();
        g.apply(EdgeUpdate::insert(3, 4));
        g.seal_batch();
        let stale = g.take_reorg_task().compute();
        g.reorganize();
        g.begin_batch();
        g.apply(EdgeUpdate::insert(0, 4));
        g.seal_batch();
        g.install_reorg(stale);
    }

    #[test]
    fn trivial_reorg_task_for_resurrection_only_batch() {
        let mut g = seed();
        g.begin_batch();
        g.apply(EdgeUpdate::delete(0, 1));
        g.apply(EdgeUpdate::insert(0, 1)); // resurrect in place
        g.seal_batch();
        let task = g.take_reorg_task();
        assert!(task.is_trivial());
        assert_eq!(g.install_reorg(task.compute()), 0);
        assert!(g.updated_vertices().is_empty());
        g.begin_batch(); // phase advanced to Clean
        g.seal_batch();
        g.reorganize();
    }

    #[test]
    fn multi_batch_lifecycle() {
        let mut g = seed();
        for k in 0..10u32 {
            g.begin_batch();
            g.apply(EdgeUpdate::insert(0, 5 + k));
            g.seal_batch();
            g.reorganize();
        }
        assert_eq!(g.new_degree(0), 12);
        let (raw, old_len) = g.raw_list(0);
        assert_eq!(old_len, raw.len());
        assert!(raw.windows(2).all(|w| w[0] < w[1]));
    }
}
