//! Neighbor-list providers.
//!
//! The enumerators are generic over [`NeighborSource`]: the same loop nest
//! runs against a CSR snapshot (reference matcher), a sealed
//! [`DynamicGraph`] (CPU baselines), or — in the `gcsm` core crate — a
//! cached/zero-copy/unified-memory source that records simulated GPU
//! traffic per access.

use crate::access::AccessCounter;
use gcsm_graph::{CsrGraph, DynamicGraph, Label, NeighborView, VertexId};
use gcsm_pattern::ViewSel;

/// Provider of the two neighbor views, plus the vertex metadata the
/// enumerators need.
pub trait NeighborSource: Sync {
    /// Neighbor view of `v` under `sel` (`Old` = the paper's `N`,
    /// `New` = `N'`). Implementations record any traffic costs here.
    fn view(&self, v: VertexId, sel: ViewSel) -> NeighborView<'_>;

    /// Vertex label.
    fn label(&self, v: VertexId) -> Label;

    /// Number of vertices.
    fn num_vertices(&self) -> usize;

    /// Upper bound on the max degree (the estimator's `D`).
    fn max_degree(&self) -> usize;
}

/// Source over an immutable CSR snapshot: both views are the same plain
/// sorted list.
pub struct CsrSource<'a> {
    graph: &'a CsrGraph,
}

impl<'a> CsrSource<'a> {
    pub fn new(graph: &'a CsrGraph) -> Self {
        Self { graph }
    }

    /// The underlying snapshot.
    pub fn graph(&self) -> &CsrGraph {
        self.graph
    }
}

impl NeighborSource for CsrSource<'_> {
    #[inline]
    fn view(&self, v: VertexId, _sel: ViewSel) -> NeighborView<'_> {
        NeighborView::plain(self.graph.neighbors(v))
    }

    #[inline]
    fn label(&self, v: VertexId) -> Label {
        self.graph.label(v)
    }

    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    fn max_degree(&self) -> usize {
        self.graph.max_degree()
    }
}

/// Source over a sealed dynamic graph: `Old` and `New` are the real pre- and
/// post-batch views. This is the CPU baseline's direct-memory source.
pub struct DynSource<'a> {
    graph: &'a DynamicGraph,
}

impl<'a> DynSource<'a> {
    pub fn new(graph: &'a DynamicGraph) -> Self {
        Self { graph }
    }

    pub fn graph(&self) -> &DynamicGraph {
        self.graph
    }
}

impl NeighborSource for DynSource<'_> {
    #[inline]
    fn view(&self, v: VertexId, sel: ViewSel) -> NeighborView<'_> {
        match sel {
            ViewSel::Old => self.graph.old_view(v),
            ViewSel::New => self.graph.new_view(v),
        }
    }

    #[inline]
    fn label(&self, v: VertexId) -> Label {
        self.graph.label(v)
    }

    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    fn max_degree(&self) -> usize {
        self.graph.max_degree_bound()
    }
}

/// Decorator that counts per-vertex accesses on top of any source — the
/// exact access-frequency oracle of Fig. 15 (`C_v` of Theorem 1).
pub struct RecordingSource<'a, S: NeighborSource> {
    inner: &'a S,
    counter: &'a AccessCounter,
}

impl<'a, S: NeighborSource> RecordingSource<'a, S> {
    pub fn new(inner: &'a S, counter: &'a AccessCounter) -> Self {
        Self { inner, counter }
    }
}

impl<S: NeighborSource> NeighborSource for RecordingSource<'_, S> {
    #[inline]
    fn view(&self, v: VertexId, sel: ViewSel) -> NeighborView<'_> {
        self.counter.record(v);
        self.inner.view(v, sel)
    }

    #[inline]
    fn label(&self, v: VertexId) -> Label {
        self.inner.label(v)
    }

    fn num_vertices(&self) -> usize {
        self.inner.num_vertices()
    }

    fn max_degree(&self) -> usize {
        self.inner.max_degree()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcsm_graph::EdgeUpdate;

    #[test]
    fn csr_source_views_coincide() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let s = CsrSource::new(&g);
        assert_eq!(s.view(1, ViewSel::Old).to_vec(), s.view(1, ViewSel::New).to_vec());
        assert_eq!(s.num_vertices(), 3);
        assert_eq!(s.max_degree(), 2);
    }

    #[test]
    fn dyn_source_distinguishes_views() {
        let mut g = DynamicGraph::from_csr(&CsrGraph::from_edges(3, &[(0, 1), (1, 2)]));
        g.begin_batch();
        g.apply(EdgeUpdate::insert(0, 2));
        g.apply(EdgeUpdate::delete(1, 2));
        g.seal_batch();
        let s = DynSource::new(&g);
        assert_eq!(s.view(2, ViewSel::Old).to_vec(), vec![1]);
        assert_eq!(s.view(2, ViewSel::New).to_vec(), vec![0]);
    }

    #[test]
    fn recording_source_counts_accesses() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let s = CsrSource::new(&g);
        let c = AccessCounter::new(3);
        let r = RecordingSource::new(&s, &c);
        r.view(1, ViewSel::New);
        r.view(1, ViewSel::Old);
        r.view(2, ViewSel::New);
        assert_eq!(c.count(1), 2);
        assert_eq!(c.count(2), 1);
        assert_eq!(c.count(0), 0);
    }
}
