//! STMatch-style iterative enumerator.
//!
//! STMatch \[9\] — the kernel the paper's GPU matcher is built on — replaces
//! recursion with an explicit per-level stack of candidate arrays and a
//! cursor per level, so a GPU thread block can run the DFS without a call
//! stack and idle blocks can steal subtrees. This module is the faithful
//! CPU rendering of that control structure; it shares the candidate
//! generation of [`crate::enumerate`] and is therefore result-equivalent to
//! the recursive enumerator by construction (property-tested in the
//! integration suite as well).

use crate::enumerate::{gen_candidates, seed_admissible};
use crate::intersect::{CostCounter, IntersectAlgo};
use crate::source::NeighborSource;
use crate::stats::MatchStats;
use gcsm_graph::VertexId;
use gcsm_pattern::MatchPlan;

/// Per-level stack frame: the filtered candidate array plus a cursor
/// (STMatch's "stack data structure to store intermediate subgraphs").
#[derive(Default)]
struct Frame {
    cands: Vec<VertexId>,
    cursor: usize,
}

/// Reusable frame stack.
#[derive(Default)]
pub struct StackScratch {
    frames: Vec<Frame>,
    bound: Vec<VertexId>,
}

/// Iterative equivalent of [`crate::enumerate::match_from_seed`].
#[allow(clippy::too_many_arguments)]
pub fn match_from_seed_stack<S, F>(
    src: &S,
    plan: &MatchPlan,
    x0: VertexId,
    x1: VertexId,
    sign: i64,
    algo: IntersectAlgo,
    scratch: &mut StackScratch,
    emit: &mut F,
) -> MatchStats
where
    S: NeighborSource,
    F: FnMut(&[VertexId], i64),
{
    let mut stats = MatchStats::default();
    if !seed_admissible(src, plan, x0, x1) {
        return stats;
    }
    let depth = plan.levels.len();
    if scratch.frames.len() < depth {
        scratch.frames.resize_with(depth, Frame::default);
    }
    scratch.bound.clear();
    scratch.bound.push(x0);
    scratch.bound.push(x1);

    if depth == 0 {
        // Two-vertex pattern: the seed is the whole match.
        stats.matches += sign;
        emit(&scratch.bound, sign);
        return stats;
    }

    let mut cost = CostCounter::default();
    // Enter level 0. The resize above guarantees `frames.len() >= depth`,
    // and `level` stays `< depth` throughout, so the frame lookups below
    // cannot miss; `get_mut` + `debug_assert` keeps the kernel panic-free.
    {
        let Some(frame) = scratch.frames.first_mut() else {
            debug_assert!(false, "frame stack empty at nonzero depth");
            return stats;
        };
        let mut cands = std::mem::take(&mut frame.cands);
        gen_candidates(src, plan, 0, &scratch.bound, algo, &mut cands, &mut cost, &mut stats);
        frame.cands = cands;
        frame.cursor = 0;
    }
    let mut level = 0usize;
    loop {
        let Some(frame) = scratch.frames.get_mut(level) else {
            debug_assert!(false, "level beyond frame stack");
            break;
        };
        let Some(&cand) = frame.cands.get(frame.cursor) else {
            // Exhausted: backtrack.
            if level == 0 {
                break;
            }
            level -= 1;
            scratch.bound.pop();
            continue;
        };
        frame.cursor += 1;
        if level + 1 == depth {
            // Innermost loop: output the match.
            scratch.bound.push(cand);
            stats.matches += sign;
            emit(&scratch.bound, sign);
            scratch.bound.pop();
        } else {
            scratch.bound.push(cand);
            level += 1;
            let Some(frame) = scratch.frames.get_mut(level) else {
                debug_assert!(false, "level beyond frame stack");
                break;
            };
            let mut cands = std::mem::take(&mut frame.cands);
            gen_candidates(
                src,
                plan,
                level,
                &scratch.bound,
                algo,
                &mut cands,
                &mut cost,
                &mut stats,
            );
            let Some(frame) = scratch.frames.get_mut(level) else {
                debug_assert!(false, "level beyond frame stack");
                break;
            };
            frame.cands = cands;
            frame.cursor = 0;
        }
    }
    stats.intersect_ops += cost.ops;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{match_from_seed, Scratch};
    use crate::source::CsrSource;
    use gcsm_graph::CsrGraph;
    use gcsm_pattern::{compile_static, queries, PlanOptions, QueryGraph};
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn random_graph(n: usize, p: f64, seed: u64) -> CsrGraph {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for a in 0..n as u32 {
            for b in a + 1..n as u32 {
                if rng.gen_bool(p) {
                    edges.push((a, b));
                }
            }
        }
        CsrGraph::from_edges(n, &edges)
    }

    fn compare_enumerators(g: &CsrGraph, q: &QueryGraph, sb: bool) {
        let plan = compile_static(q, PlanOptions { symmetry_break: sb });
        let src = CsrSource::new(g);
        let mut rs = Scratch::default();
        let mut ss = StackScratch::default();
        let mut rec_total = MatchStats::default();
        let mut stk_total = MatchStats::default();
        let mut rec_matches = Vec::new();
        let mut stk_matches = Vec::new();
        for (u, v) in g.edges().collect::<Vec<_>>() {
            for (a, b) in [(u, v), (v, u)] {
                rec_total.merge(match_from_seed(
                    &src,
                    &plan,
                    a,
                    b,
                    1,
                    IntersectAlgo::Auto,
                    &mut rs,
                    &mut |m, _| rec_matches.push(m.to_vec()),
                ));
                stk_total.merge(match_from_seed_stack(
                    &src,
                    &plan,
                    a,
                    b,
                    1,
                    IntersectAlgo::Auto,
                    &mut ss,
                    &mut |m, _| stk_matches.push(m.to_vec()),
                ));
            }
        }
        rec_matches.sort();
        stk_matches.sort();
        assert_eq!(rec_matches, stk_matches, "{} sb={}", q.name(), sb);
        assert_eq!(rec_total, stk_total, "{} sb={} stats diverge", q.name(), sb);
    }

    #[test]
    fn stack_equals_recursive_on_random_graphs() {
        for seed in 0..5 {
            let g = random_graph(18, 0.3, seed);
            for q in [queries::triangle(), queries::fig1_kite(), queries::q1()] {
                compare_enumerators(&g, &q, false);
                compare_enumerators(&g, &q, true);
            }
        }
    }

    #[test]
    fn stack_handles_two_vertex_pattern() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let q = QueryGraph::new("edge", 2, &[(0, 1)]);
        let plan = compile_static(&q, PlanOptions::default());
        let src = CsrSource::new(&g);
        let mut ss = StackScratch::default();
        let mut count = 0;
        for (u, v) in [(0u32, 1u32), (1, 0), (1, 2), (2, 1)] {
            count += match_from_seed_stack(
                &src,
                &plan,
                u,
                v,
                1,
                IntersectAlgo::Auto,
                &mut ss,
                &mut |_, _| {},
            )
            .matches;
        }
        assert_eq!(count, 4); // 2 edges × 2 orientations
    }

    #[test]
    fn scratch_reuse_across_calls_is_clean() {
        let g = random_graph(12, 0.5, 7);
        let q = queries::q2();
        let plan = compile_static(&q, PlanOptions::default());
        let src = CsrSource::new(&g);
        let mut ss = StackScratch::default();
        let edges: Vec<_> = g.edges().collect();
        let mut first = Vec::new();
        let mut second = Vec::new();
        for pass in 0..2 {
            let out = if pass == 0 { &mut first } else { &mut second };
            for &(u, v) in &edges {
                let s = match_from_seed_stack(
                    &src,
                    &plan,
                    u,
                    v,
                    1,
                    IntersectAlgo::Auto,
                    &mut ss,
                    &mut |_, _| {},
                );
                out.push(s.matches);
            }
        }
        assert_eq!(first, second);
    }
}
