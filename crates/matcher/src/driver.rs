//! Whole-task matching drivers.
//!
//! * [`match_static`] — match a pattern on a full graph by seeding the
//!   static plan on every (directed) graph edge (Fig. 2a).
//! * [`match_incremental`] — compute the signed incremental result `ΔM`
//!   for a batch `ΔE`: run all `m` delta plans, seeding each on every batch
//!   edge in both orientations, summing `op.sign()` per found match
//!   (Eq. (1); Fig. 2b–f).
//!
//! Both drivers run serially or data-parallel over seeds (rayon); the
//! engines in the `gcsm` core crate reuse the same per-seed primitives
//! under the simulated GPU executor instead.

use crate::enumerate::{match_from_seed, Scratch};
use crate::intersect::IntersectAlgo;
use crate::source::NeighborSource;
use crate::stack::{match_from_seed_stack, StackScratch};
use crate::stats::MatchStats;
use gcsm_graph::{EdgeUpdate, VertexId};
use gcsm_pattern::{compile_incremental, compile_static, MatchPlan, PlanOptions, QueryGraph};
use rayon::prelude::*;

/// Which enumerator implementation to run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EnumeratorKind {
    /// Recursive DFS (reference implementation).
    Recursive,
    /// STMatch-style explicit stack (the GPU kernel's control structure).
    #[default]
    Stack,
}

/// Driver configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct DriverOptions {
    pub algo: IntersectAlgo,
    pub enumerator: EnumeratorKind,
    pub plan: PlanOptions,
    /// Parallelize over seeds with rayon (the paper's CPU baseline runs the
    /// outermost loop on 32 threads).
    pub parallel: bool,
}

/// Run one seed with the configured enumerator.
#[allow(clippy::too_many_arguments)]
fn run_seed<S: NeighborSource>(
    src: &S,
    plan: &MatchPlan,
    x0: VertexId,
    x1: VertexId,
    sign: i64,
    opts: &DriverOptions,
    scratch: &mut (Scratch, StackScratch),
) -> MatchStats {
    match opts.enumerator {
        EnumeratorKind::Recursive => {
            match_from_seed(src, plan, x0, x1, sign, opts.algo, &mut scratch.0, &mut |_, _| {})
        }
        EnumeratorKind::Stack => match_from_seed_stack(
            src,
            plan,
            x0,
            x1,
            sign,
            opts.algo,
            &mut scratch.1,
            &mut |_, _| {},
        ),
    }
}

/// Static matching: seed the static plan on every undirected edge in both
/// orientations. `edges` is the graph's undirected edge list.
pub fn match_static<S: NeighborSource>(
    src: &S,
    q: &QueryGraph,
    edges: &[(VertexId, VertexId)],
    opts: &DriverOptions,
) -> MatchStats {
    let plan = compile_static(q, opts.plan);
    if opts.parallel {
        edges
            .par_iter()
            .fold(
                || (MatchStats::default(), (Scratch::default(), StackScratch::default())),
                |(mut acc, mut scratch), &(u, v)| {
                    acc.merge(run_seed(src, &plan, u, v, 1, opts, &mut scratch));
                    acc.merge(run_seed(src, &plan, v, u, 1, opts, &mut scratch));
                    (acc, scratch)
                },
            )
            .map(|(acc, _)| acc)
            .reduce(MatchStats::default, |a, b| a + b)
    } else {
        let mut scratch = (Scratch::default(), StackScratch::default());
        let mut acc = MatchStats::default();
        for &(u, v) in edges {
            acc.merge(run_seed(src, &plan, u, v, 1, opts, &mut scratch));
            acc.merge(run_seed(src, &plan, v, u, 1, opts, &mut scratch));
        }
        acc
    }
}

/// The (plan × batch-edge × orientation) seed tasks of one incremental
/// matching run. Exposed so engines can distribute them across the
/// simulated GPU grid themselves.
pub fn delta_seeds(
    plans: &[MatchPlan],
    batch: &[EdgeUpdate],
) -> Vec<(usize, VertexId, VertexId, i64)> {
    let mut tasks = Vec::with_capacity(plans.len() * batch.len() * 2);
    for (pi, _) in plans.iter().enumerate() {
        for u in batch {
            let sign = u.op.sign();
            tasks.push((pi, u.src, u.dst, sign));
            tasks.push((pi, u.dst, u.src, sign));
        }
    }
    tasks
}

/// Incremental matching per Eq. (1): `ΔM = Σ_i ΔM_i`, each `ΔM_i` seeded on
/// the batch edges, insertions counting `+1`, deletions `−1`. The source
/// must expose the sealed batch's old/new views.
pub fn match_incremental<S: NeighborSource>(
    src: &S,
    q: &QueryGraph,
    batch: &[EdgeUpdate],
    opts: &DriverOptions,
) -> MatchStats {
    let plans = compile_incremental(q, opts.plan);
    let tasks = delta_seeds(&plans, batch);
    // `delta_seeds` is plan-major: the tasks of plan `i` form one
    // contiguous chunk of `batch.len() * 2` seeds, so with tracing on each
    // ΔM_i level runs under its own `dm_i` span. Totals are unchanged —
    // the chunks partition the same task list.
    let stride = batch.len() * 2;
    if gcsm_obs::enabled() && stride > 0 {
        let mut acc = MatchStats::default();
        for (level, chunk) in tasks.chunks(stride).enumerate() {
            let mut span = gcsm_obs::span("dm_i", gcsm_obs::cat::MATCHER);
            span.set_level(level as u32);
            span.set_count(chunk.len() as u64);
            acc.merge(run_tasks(src, &plans, chunk, opts));
        }
        acc
    } else {
        run_tasks(src, &plans, &tasks, opts)
    }
}

/// Run a slice of `(plan, seed, seed, sign)` tasks, serially or in
/// parallel, and sum the stats.
fn run_tasks<S: NeighborSource>(
    src: &S,
    plans: &[MatchPlan],
    tasks: &[(usize, VertexId, VertexId, i64)],
    opts: &DriverOptions,
) -> MatchStats {
    if opts.parallel {
        tasks
            .par_iter()
            .fold(
                || (MatchStats::default(), (Scratch::default(), StackScratch::default())),
                |(mut acc, mut scratch), &(pi, a, b, sign)| {
                    acc.merge(run_seed(src, &plans[pi], a, b, sign, opts, &mut scratch));
                    (acc, scratch)
                },
            )
            .map(|(acc, _)| acc)
            .reduce(MatchStats::default, |a, b| a + b)
    } else {
        let mut scratch = (Scratch::default(), StackScratch::default());
        let mut acc = MatchStats::default();
        for &(pi, a, b, sign) in tasks {
            acc.merge(run_seed(src, &plans[pi], a, b, sign, opts, &mut scratch));
        }
        acc
    }
}

/// Collect the individual signed incremental matches (serial; for tests and
/// examples that need the embeddings, not just counts).
pub fn collect_incremental<S: NeighborSource>(
    src: &S,
    q: &QueryGraph,
    batch: &[EdgeUpdate],
    opts: &DriverOptions,
) -> Vec<(Vec<VertexId>, i64)> {
    let plans = compile_incremental(q, opts.plan);
    let mut out = Vec::new();
    let mut scratch = Scratch::default();
    for plan in &plans {
        for u in batch {
            let sign = u.op.sign();
            for (a, b) in [(u.src, u.dst), (u.dst, u.src)] {
                match_from_seed(src, plan, a, b, sign, opts.algo, &mut scratch, &mut |m, s| {
                    out.push((m.to_vec(), s));
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{CsrSource, DynSource};
    use gcsm_graph::{CsrGraph, DynamicGraph};
    use gcsm_pattern::queries;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn random_graph(n: usize, p: f64, seed: u64) -> CsrGraph {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for a in 0..n as u32 {
            for b in a + 1..n as u32 {
                if rng.gen_bool(p) {
                    edges.push((a, b));
                }
            }
        }
        CsrGraph::from_edges(n, &edges)
    }

    /// Build a random batch against `g`: deletions of existing edges and
    /// insertions of non-edges.
    fn random_batch(g: &CsrGraph, k: usize, seed: u64) -> Vec<EdgeUpdate> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let existing: Vec<_> = g.edges().collect();
        let mut batch = Vec::new();
        let mut used = std::collections::HashSet::new();
        while batch.len() < k {
            if rng.gen_bool(0.5) && !existing.is_empty() {
                let &(a, b) = &existing[rng.gen_range(0..existing.len())];
                if used.insert((a, b)) {
                    batch.push(EdgeUpdate::delete(a, b));
                }
            } else {
                let a = rng.gen_range(0..g.num_vertices() as u32);
                let b = rng.gen_range(0..g.num_vertices() as u32);
                let (a, b) = (a.min(b), a.max(b));
                if a != b && !g.has_edge(a, b) && used.insert((a, b)) {
                    batch.push(EdgeUpdate::insert(a, b));
                }
            }
        }
        batch
    }

    /// The central invariant: ΔM == match(G_{k+1}) − match(G_k).
    fn check_delta_invariant(q: &gcsm_pattern::QueryGraph, seed: u64, sb: bool) {
        let g0 = random_graph(16, 0.35, seed);
        let mut dg = DynamicGraph::from_csr(&g0);
        let batch = random_batch(&g0, 6, seed ^ 0xdead);
        let summary = dg.apply_batch(&batch);

        let opts = DriverOptions { plan: PlanOptions { symmetry_break: sb }, ..Default::default() };
        let before = {
            let src = CsrSource::new(&g0);
            match_static(&src, q, &g0.edges().collect::<Vec<_>>(), &opts).matches
        };
        let g1 = dg.to_csr();
        let after = {
            let src = CsrSource::new(&g1);
            match_static(&src, q, &g1.edges().collect::<Vec<_>>(), &opts).matches
        };
        let delta = {
            let src = DynSource::new(&dg);
            match_incremental(&src, q, &summary.applied, &opts).matches
        };
        assert_eq!(
            delta,
            after - before,
            "{} sb={} seed={}: Δ={} but after-before={}",
            q.name(),
            sb,
            seed,
            delta,
            after - before
        );
    }

    #[test]
    fn incremental_equals_recompute_triangle() {
        for seed in 0..8 {
            check_delta_invariant(&queries::triangle(), seed, false);
            check_delta_invariant(&queries::triangle(), seed, true);
        }
    }

    #[test]
    fn incremental_equals_recompute_kite() {
        for seed in 0..6 {
            check_delta_invariant(&queries::fig1_kite(), seed, false);
            check_delta_invariant(&queries::fig1_kite(), seed, true);
        }
    }

    #[test]
    fn incremental_equals_recompute_q1_q2() {
        for seed in 0..3 {
            check_delta_invariant(&queries::q1(), seed, false);
            check_delta_invariant(&queries::q2(), seed, true);
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let g0 = random_graph(20, 0.3, 99);
        let mut dg = DynamicGraph::from_csr(&g0);
        let batch = random_batch(&g0, 8, 123);
        let summary = dg.apply_batch(&batch);
        let src = DynSource::new(&dg);
        let q = queries::q1();
        let serial = match_incremental(&src, &q, &summary.applied, &DriverOptions::default());
        let parallel = match_incremental(
            &src,
            &q,
            &summary.applied,
            &DriverOptions { parallel: true, ..Default::default() },
        );
        assert_eq!(serial.matches, parallel.matches);
        assert_eq!(serial.intersect_ops, parallel.intersect_ops);
        assert_eq!(serial.list_accesses, parallel.list_accesses);
    }

    #[test]
    fn recursive_and_stack_drivers_agree() {
        let g0 = random_graph(16, 0.35, 5);
        let mut dg = DynamicGraph::from_csr(&g0);
        let batch = random_batch(&g0, 6, 55);
        let summary = dg.apply_batch(&batch);
        let src = DynSource::new(&dg);
        for q in [queries::triangle(), queries::q2()] {
            let rec = match_incremental(
                &src,
                &q,
                &summary.applied,
                &DriverOptions { enumerator: EnumeratorKind::Recursive, ..Default::default() },
            );
            let stk = match_incremental(
                &src,
                &q,
                &summary.applied,
                &DriverOptions { enumerator: EnumeratorKind::Stack, ..Default::default() },
            );
            assert_eq!(rec.matches, stk.matches);
            assert_eq!(rec.intersect_ops, stk.intersect_ops);
        }
    }

    #[test]
    fn collected_matches_sum_to_count() {
        let g0 = random_graph(14, 0.4, 3);
        let mut dg = DynamicGraph::from_csr(&g0);
        let batch = random_batch(&g0, 5, 33);
        let summary = dg.apply_batch(&batch);
        let src = DynSource::new(&dg);
        let q = queries::triangle();
        let opts = DriverOptions::default();
        let matches = collect_incremental(&src, &q, &summary.applied, &opts);
        let count = match_incremental(&src, &q, &summary.applied, &opts).matches;
        let sum: i64 = matches.iter().map(|(_, s)| s).sum();
        assert_eq!(sum, count);
    }

    #[test]
    fn empty_batch_yields_zero_delta() {
        let g0 = random_graph(10, 0.3, 1);
        let mut dg = DynamicGraph::from_csr(&g0);
        dg.begin_batch();
        dg.seal_batch();
        let src = DynSource::new(&dg);
        let s = match_incremental(&src, &queries::triangle(), &[], &DriverOptions::default());
        assert_eq!(s.matches, 0);
        assert_eq!(s.intersect_ops, 0);
    }

    #[test]
    fn delta_seed_task_count() {
        let q = queries::triangle();
        let plans = compile_incremental(&q, PlanOptions::default());
        let batch = vec![EdgeUpdate::insert(0, 1), EdgeUpdate::delete(2, 3)];
        let tasks = delta_seeds(&plans, &batch);
        assert_eq!(tasks.len(), 3 * 2 * 2); // m plans × edges × orientations
    }
}
