//! Budgeted matching: stop enumeration once enough matches have been seen.
//!
//! Interactive CSM deployments (alerting, dashboards) often only need to
//! know *that* a pattern appeared, or want the first `k` instances — not
//! the exhaustive count. This driver runs the delta plans seed by seed and
//! stops at seed granularity once the budget is met, reporting whether the
//! result was truncated.

use crate::driver::delta_seeds;
use crate::enumerate::{match_from_seed, Scratch};
use crate::intersect::IntersectAlgo;
use crate::source::NeighborSource;
use crate::stats::MatchStats;
use gcsm_graph::{EdgeUpdate, VertexId};
use gcsm_pattern::{compile_incremental, PlanOptions, QueryGraph};

/// Result of a budgeted run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LimitedResult {
    /// Stats accumulated before stopping.
    pub stats: MatchStats,
    /// The collected matches: data-vertex bindings (in plan order) + sign.
    pub matches: Vec<(Vec<VertexId>, i64)>,
    /// True if enumeration stopped early (more matches may exist).
    pub truncated: bool,
}

/// Incremental matching that stops (at seed granularity) once at least
/// `limit` matches have been emitted. `limit = 0` returns immediately.
pub fn match_incremental_limited<S: NeighborSource>(
    src: &S,
    q: &QueryGraph,
    batch: &[EdgeUpdate],
    plan_opts: PlanOptions,
    algo: IntersectAlgo,
    limit: usize,
) -> LimitedResult {
    let mut out =
        LimitedResult { stats: MatchStats::default(), matches: Vec::new(), truncated: false };
    if limit == 0 {
        out.truncated = true;
        return out;
    }
    let plans = compile_incremental(q, plan_opts);
    let tasks = delta_seeds(&plans, batch);
    let mut scratch = Scratch::default();
    for (i, &(pi, a, b, sign)) in tasks.iter().enumerate() {
        let matches = &mut out.matches;
        let s = match_from_seed(src, &plans[pi], a, b, sign, algo, &mut scratch, &mut |m, sg| {
            matches.push((m.to_vec(), sg));
        });
        out.stats.merge(s);
        if out.matches.len() >= limit {
            out.truncated = i + 1 < tasks.len();
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::DynSource;
    use gcsm_graph::{CsrGraph, DynamicGraph};
    use gcsm_pattern::queries;

    fn dense_case() -> (DynamicGraph, Vec<EdgeUpdate>) {
        // K6 missing one edge; the batch inserts it → many new triangles.
        let mut edges = Vec::new();
        for a in 0..6u32 {
            for b in (a + 1)..6 {
                if (a, b) != (4, 5) {
                    edges.push((a, b));
                }
            }
        }
        let mut g = DynamicGraph::from_csr(&CsrGraph::from_edges(6, &edges));
        let s = g.apply_batch(&[EdgeUpdate::insert(4, 5)]);
        (g, s.applied)
    }

    #[test]
    fn unlimited_run_is_exhaustive() {
        let (g, batch) = dense_case();
        let src = DynSource::new(&g);
        let r = match_incremental_limited(
            &src,
            &queries::triangle(),
            &batch,
            PlanOptions::default(),
            IntersectAlgo::Auto,
            usize::MAX,
        );
        assert!(!r.truncated);
        // New triangles through (4,5): 4 common neighbors × 6 embeddings.
        assert_eq!(r.stats.matches, 24);
        assert_eq!(r.matches.len(), 24);
    }

    #[test]
    fn limit_truncates_early() {
        let (g, batch) = dense_case();
        let src = DynSource::new(&g);
        let r = match_incremental_limited(
            &src,
            &queries::triangle(),
            &batch,
            PlanOptions::default(),
            IntersectAlgo::Auto,
            3,
        );
        assert!(r.truncated);
        assert!(r.matches.len() >= 3);
        assert!(r.matches.len() < 24);
    }

    #[test]
    fn zero_limit_short_circuits() {
        let (g, batch) = dense_case();
        let src = DynSource::new(&g);
        let r = match_incremental_limited(
            &src,
            &queries::triangle(),
            &batch,
            PlanOptions::default(),
            IntersectAlgo::Auto,
            0,
        );
        assert!(r.truncated);
        assert!(r.matches.is_empty());
        assert_eq!(r.stats.intersect_ops, 0);
    }

    #[test]
    fn exact_boundary_is_not_truncated() {
        let (g, batch) = dense_case();
        let src = DynSource::new(&g);
        let r = match_incremental_limited(
            &src,
            &queries::triangle(),
            &batch,
            PlanOptions::default(),
            IntersectAlgo::Auto,
            24,
        );
        // All 24 found; whether truncated depends on whether later seeds
        // remained — the last seed of the only productive plan may not be
        // the global last. Accept either, but the count must be complete.
        assert_eq!(r.matches.len(), 24);
    }
}
