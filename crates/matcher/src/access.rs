//! Exact per-vertex access-frequency instrumentation.
//!
//! The paper's cache-quality evaluation (Fig. 15) compares the random-walk
//! *estimate* of access frequency against the *true* frequency `C_v` — the
//! number of times vertex `v`'s neighbor list is read during an exact
//! incremental matching run. [`AccessCounter`] collects `C_v` with atomic
//! counters so the instrumented run can stay parallel.

use gcsm_graph::VertexId;
use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic per-vertex access counters.
pub struct AccessCounter {
    counts: Vec<AtomicU64>,
}

impl AccessCounter {
    /// Counter for a graph of `n` vertices.
    pub fn new(n: usize) -> Self {
        let mut counts = Vec::with_capacity(n);
        counts.resize_with(n, AtomicU64::default);
        Self { counts }
    }

    /// Record one neighbor-list access of `v`.
    #[inline]
    pub fn record(&self, v: VertexId) {
        self.counts[v as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Accesses recorded for `v`.
    pub fn count(&self, v: VertexId) -> u64 {
        self.counts[v as usize].load(Ordering::Relaxed)
    }

    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Snapshot as a plain vector (index = vertex id).
    pub fn to_vec(&self) -> Vec<u64> {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Vertices with nonzero counts, sorted by descending count (ties by
    /// ascending id for determinism).
    pub fn ranked(&self) -> Vec<(VertexId, u64)> {
        let mut v: Vec<(VertexId, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then_some((i as VertexId, n))
            })
            .collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Access-coverage curve: for each requested top-fraction `p` of the
    /// *accessed* vertices (by rank), the fraction of all accesses they
    /// account for. This is exactly the quantity plotted in Fig. 15a.
    pub fn coverage_curve(&self, fractions: &[f64]) -> Vec<(f64, f64)> {
        let ranked = self.ranked();
        let total: u64 = ranked.iter().map(|r| r.1).sum();
        if total == 0 {
            return fractions.iter().map(|&f| (f, 0.0)).collect();
        }
        let mut prefix = Vec::with_capacity(ranked.len() + 1);
        let mut acc = 0u64;
        prefix.push(0u64);
        for r in &ranked {
            acc += r.1;
            prefix.push(acc);
        }
        fractions
            .iter()
            .map(|&f| {
                let k = ((ranked.len() as f64 * f).ceil() as usize).min(ranked.len());
                (f, prefix[k] as f64 / total as f64)
            })
            .collect()
    }

    /// Byte-weighted ranking: vertices ordered by the *traffic* they
    /// generate (`accesses × list bytes`) — the quantity Fig. 15a reports
    /// ("% of the memory access") and the quantity a cache actually saves.
    pub fn ranked_weighted(
        &self,
        mut bytes_of: impl FnMut(VertexId) -> u64,
    ) -> Vec<(VertexId, u64)> {
        let mut v: Vec<(VertexId, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then(|| (i as VertexId, n * bytes_of(i as VertexId)))
            })
            .collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Byte-weighted coverage curve: share of total access *traffic*
    /// attributable to the top-fraction of traffic-ranked vertices.
    pub fn coverage_curve_weighted(
        &self,
        fractions: &[f64],
        bytes_of: impl FnMut(VertexId) -> u64,
    ) -> Vec<(f64, f64)> {
        let ranked = self.ranked_weighted(bytes_of);
        let total: u64 = ranked.iter().map(|r| r.1).sum();
        if total == 0 {
            return fractions.iter().map(|&f| (f, 0.0)).collect();
        }
        let mut prefix = Vec::with_capacity(ranked.len() + 1);
        let mut acc = 0u64;
        prefix.push(0u64);
        for r in &ranked {
            acc += r.1;
            prefix.push(acc);
        }
        fractions
            .iter()
            .map(|&f| {
                let k = ((ranked.len() as f64 * f).ceil() as usize).min(ranked.len());
                (f, prefix[k] as f64 / total as f64)
            })
            .collect()
    }

    /// The top-fraction `p` most accessed vertices (the oracle set `S` of
    /// the coverage metric `|S ∩ T| / |S|` in Sec. VI-D).
    pub fn top_fraction(&self, p: f64) -> Vec<VertexId> {
        let ranked = self.ranked();
        let k = ((ranked.len() as f64 * p).ceil() as usize).min(ranked.len());
        ranked[..k].iter().map(|r| r.0).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_with(counts: &[u64]) -> AccessCounter {
        let c = AccessCounter::new(counts.len());
        for (i, &n) in counts.iter().enumerate() {
            for _ in 0..n {
                c.record(i as VertexId);
            }
        }
        c
    }

    #[test]
    fn ranking_orders_by_count_then_id() {
        let c = counter_with(&[2, 5, 0, 5]);
        assert_eq!(c.ranked(), vec![(1, 5), (3, 5), (0, 2)]);
        assert_eq!(c.total(), 12);
    }

    #[test]
    fn coverage_curve_is_monotone_and_normalized() {
        let c = counter_with(&[100, 50, 10, 5, 1, 1, 1, 1, 1, 1]);
        let curve = c.coverage_curve(&[0.1, 0.2, 0.5, 1.0]);
        assert_eq!(curve.len(), 4);
        for w in curve.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-12);
        // Top 10% of 10 accessed vertices = the single hottest one: 100/171.
        assert!((curve[0].1 - 100.0 / 171.0).abs() < 1e-12);
    }

    #[test]
    fn top_fraction_selects_hottest() {
        let c = counter_with(&[1, 9, 3, 7]);
        assert_eq!(c.top_fraction(0.25), vec![1]);
        assert_eq!(c.top_fraction(0.5), vec![1, 3]);
        assert_eq!(c.top_fraction(1.0), vec![1, 3, 2, 0]);
    }

    #[test]
    fn empty_counter() {
        let c = AccessCounter::new(4);
        assert!(c.ranked().is_empty());
        assert_eq!(c.coverage_curve(&[0.5])[0].1, 0.0);
        assert!(c.top_fraction(0.5).is_empty());
    }

    #[test]
    fn weighted_ranking_reorders_by_traffic() {
        // Vertex 0: 10 accesses × 4 bytes = 40; vertex 1: 2 × 100 = 200.
        let c = counter_with(&[10, 2]);
        let bytes = |v: VertexId| if v == 0 { 4 } else { 100 };
        assert_eq!(c.ranked_weighted(bytes), vec![(1, 200), (0, 40)]);
        let curve = c.coverage_curve_weighted(&[0.5, 1.0], bytes);
        assert!((curve[0].1 - 200.0 / 240.0).abs() < 1e-12);
        assert!((curve[1].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_curve_empty() {
        let c = AccessCounter::new(3);
        assert_eq!(c.coverage_curve_weighted(&[0.5], |_| 8)[0].1, 0.0);
    }

    #[test]
    fn parallel_recording() {
        let c = std::sync::Arc::new(AccessCounter::new(2));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.record(0);
                    }
                });
            }
        });
        assert_eq!(c.count(0), 4000);
    }
}
