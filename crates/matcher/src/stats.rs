//! Matching statistics: signed match counts plus cost-model inputs.

/// Result of one matching task.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Signed number of matches. For static matching this is the embedding
    /// (or unique-subgraph) count; for incremental matching it is the net
    /// `ΔM` — insertions contribute `+1` per match, deletions `−1`.
    pub matches: i64,
    /// Set-intersection element operations performed (the cost-model's
    /// compute unit; identical formula for every engine).
    pub intersect_ops: u64,
    /// Neighbor-list accesses issued to the [`crate::NeighborSource`].
    pub list_accesses: u64,
}

impl MatchStats {
    /// Accumulate another task's stats.
    pub fn merge(&mut self, other: MatchStats) {
        self.matches += other.matches;
        self.intersect_ops += other.intersect_ops;
        self.list_accesses += other.list_accesses;
    }
}

impl std::ops::Add for MatchStats {
    type Output = MatchStats;
    fn add(mut self, rhs: Self) -> Self {
        self.merge(rhs);
        self
    }
}

impl std::iter::Sum for MatchStats {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(MatchStats::default(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_sum() {
        let a = MatchStats { matches: 3, intersect_ops: 10, list_accesses: 2 };
        let b = MatchStats { matches: -1, intersect_ops: 5, list_accesses: 1 };
        let s: MatchStats = [a, b].into_iter().sum();
        assert_eq!(s.matches, 2);
        assert_eq!(s.intersect_ops, 15);
        assert_eq!(s.list_accesses, 3);
    }
}
