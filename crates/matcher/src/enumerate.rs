//! Recursive WCOJ enumerator.
//!
//! Executes one [`MatchPlan`] from a single seed binding: the data edge
//! `(x0, x1)` is bound to pattern vertices `order[0], order[1]`, then one
//! vertex is bound per level by intersecting the (plan-selected old/new)
//! neighbor views of its already-bound pattern neighbors — the nested loops
//! of the paper's Fig. 2, with injectivity and optional symmetry-breaking
//! checks folded into the candidate filter.

use crate::intersect::{filter_in_place, materialize, CostCounter, IntersectAlgo};
use crate::source::NeighborSource;
use crate::stats::MatchStats;
use gcsm_graph::VertexId;
use gcsm_pattern::MatchPlan;

/// Reusable per-thread buffers (candidate stacks and the binding vector).
#[derive(Default)]
pub struct Scratch {
    bound: Vec<VertexId>,
    bufs: Vec<Vec<VertexId>>,
}

impl Scratch {
    fn prepare(&mut self, depth: usize) {
        self.bound.clear();
        if self.bufs.len() < depth {
            self.bufs.resize_with(depth, Vec::new);
        }
    }
}

/// Enumerate all matches of `plan` rooted at the seed binding
/// `(x0 → order[0], x1 → order[1])`, calling `emit(bindings, sign)` per
/// match. `bindings[k]` is the data vertex bound to `plan.order[k]`.
///
/// Returns the signed match count and cost statistics. The caller is
/// responsible for iterating seeds (all graph edges for static plans; the
/// batch `ΔE`, in both orientations, for delta plans).
#[allow(clippy::too_many_arguments)]
pub fn match_from_seed<S, F>(
    src: &S,
    plan: &MatchPlan,
    x0: VertexId,
    x1: VertexId,
    sign: i64,
    algo: IntersectAlgo,
    scratch: &mut Scratch,
    emit: &mut F,
) -> MatchStats
where
    S: NeighborSource,
    F: FnMut(&[VertexId], i64),
{
    let mut stats = MatchStats::default();
    if !seed_admissible(src, plan, x0, x1) {
        return stats;
    }
    scratch.prepare(plan.levels.len());
    scratch.bound.push(x0);
    scratch.bound.push(x1);
    let mut cost = CostCounter::default();
    descend(
        src,
        plan,
        0,
        sign,
        algo,
        &mut scratch.bound,
        &mut scratch.bufs,
        &mut cost,
        &mut stats,
        emit,
    );
    stats.intersect_ops += cost.ops;
    stats
}

#[allow(clippy::too_many_arguments)]
fn descend<S, F>(
    src: &S,
    plan: &MatchPlan,
    level: usize,
    sign: i64,
    algo: IntersectAlgo,
    bound: &mut Vec<VertexId>,
    bufs: &mut [Vec<VertexId>],
    cost: &mut CostCounter,
    stats: &mut MatchStats,
    emit: &mut F,
) where
    S: NeighborSource,
    F: FnMut(&[VertexId], i64),
{
    if level == plan.levels.len() {
        stats.matches += sign;
        emit(bound, sign);
        return;
    }
    // Split the candidate buffer out of `bufs` so the recursive call can
    // still borrow the deeper buffers. `Scratch::for_plan` sizes `bufs` to
    // `plan.levels.len()`, so a level in range always has a buffer.
    let Some((buf, rest)) = bufs.split_first_mut() else {
        debug_assert!(false, "scratch shallower than plan depth");
        return;
    };
    gen_candidates(src, plan, level, bound, algo, buf, cost, stats);

    let candidates = std::mem::take(buf);
    for &cand in candidates.iter() {
        bound.push(cand);
        descend(src, plan, level + 1, sign, algo, bound, rest, cost, stats, emit);
        bound.pop();
    }
    *buf = candidates; // return the allocation to the scratch pool
}

/// Seed admissibility: distinct endpoints, matching labels for the seed
/// relation `R(u_a, u_b)`, and the seed symmetry-breaking condition.
pub fn seed_admissible<S: NeighborSource>(
    src: &S,
    plan: &MatchPlan,
    x0: VertexId,
    x1: VertexId,
) -> bool {
    if x0 == x1 {
        return false;
    }
    if src.label(x0) != plan.seed_labels.0 || src.label(x1) != plan.seed_labels.1 {
        return false;
    }
    match plan.seed_cond {
        Some(true) => x0 < x1,
        Some(false) => x0 > x1,
        None => true,
    }
}

/// Compute the fully-filtered candidate set for `plan.levels[level]` given
/// the current `bound` prefix: intersect the constraint views (smallest
/// first), then apply label, injectivity, and symmetry-breaking filters.
/// Shared by the recursive and the stack enumerator so they are equivalent
/// by construction.
#[allow(clippy::too_many_arguments)]
pub fn gen_candidates<S: NeighborSource>(
    src: &S,
    plan: &MatchPlan,
    level: usize,
    bound: &[VertexId],
    algo: IntersectAlgo,
    out: &mut Vec<VertexId>,
    cost: &mut CostCounter,
    stats: &mut MatchStats,
) {
    let Some(lvl) = plan.levels.get(level) else {
        debug_assert!(false, "gen_candidates level out of plan range");
        out.clear();
        return;
    };

    // Access every constraint's view once per tree node (the paper's
    // execution-tree access model), pick the smallest as the base set.
    // lint:allow(hot-path-panic) -- c.pos < level == bound.len() by plan construction
    let views: Vec<_> = lvl.constraints.iter().map(|c| src.view(bound[c.pos], c.view)).collect();
    stats.list_accesses += views.len() as u64;

    let Some((base, base_view)) = views.iter().enumerate().min_by_key(|(_, v)| v.raw_len()) else {
        debug_assert!(false, "plan level with no constraints");
        out.clear();
        return;
    };
    materialize(base_view, out, cost);
    for (i, v) in views.iter().enumerate() {
        if i != base {
            filter_in_place(out, v, algo, cost);
            if out.is_empty() {
                break;
            }
        }
    }
    drop(views);

    // Injectivity + label + symmetry-breaking filters.
    out.retain(|&cand| {
        src.label(cand) == lvl.label
            && !bound.contains(&cand)
            // lint:allow(hot-path-panic) -- lt positions are < level == bound.len() by plan construction
            && lvl.lt.iter().all(|&p| cand < bound[p])
            // lint:allow(hot-path-panic) -- gt positions are < level == bound.len() by plan construction
            && lvl.gt.iter().all(|&p| cand > bound[p])
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::CsrSource;
    use gcsm_graph::CsrGraph;
    use gcsm_pattern::{compile_static, queries, PlanOptions};

    fn count_static_seeded(g: &CsrGraph, plan: &MatchPlan, algo: IntersectAlgo) -> i64 {
        let src = CsrSource::new(g);
        let mut scratch = Scratch::default();
        let mut total = 0;
        for (u, v) in g.edges().collect::<Vec<_>>() {
            for (a, b) in [(u, v), (v, u)] {
                let s = match_from_seed(&src, plan, a, b, 1, algo, &mut scratch, &mut |_, _| {});
                total += s.matches;
            }
        }
        total
    }

    #[test]
    fn triangle_embeddings_in_k4() {
        // K4 has 4 triangles; each triangle has 6 embeddings (3! orderings).
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let q = queries::triangle();
        let plan = compile_static(&q, PlanOptions::default());
        assert_eq!(count_static_seeded(&g, &plan, IntersectAlgo::Auto), 24);
        // With symmetry breaking, each triangle counts once.
        let plan_sb = compile_static(&q, PlanOptions { symmetry_break: true });
        assert_eq!(count_static_seeded(&g, &plan_sb, IntersectAlgo::Auto), 4);
    }

    #[test]
    fn kite_in_fig1_initial_graph() {
        // The paper's Fig. 1: G_0 contains exactly one kite subgraph
        // {v1, v2, v3, v5} — the kite has |Aut| = 4 ⇒ 4 embeddings.
        let g = CsrGraph::from_edges(
            7,
            &[(1, 2), (1, 3), (2, 3), (2, 5), (3, 5), (0, 1), (4, 5), (4, 6)],
        );
        let q = queries::fig1_kite();
        let plan = compile_static(&q, PlanOptions::default());
        assert_eq!(count_static_seeded(&g, &plan, IntersectAlgo::Auto), 4);
        let plan_sb = compile_static(&q, PlanOptions { symmetry_break: true });
        assert_eq!(count_static_seeded(&g, &plan_sb, IntersectAlgo::Auto), 1);
    }

    #[test]
    fn emit_receives_bindings_in_order_positions() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        let q = queries::triangle();
        let plan = compile_static(&q, PlanOptions { symmetry_break: true });
        let src = CsrSource::new(&g);
        let mut scratch = Scratch::default();
        let mut seen = Vec::new();
        for (u, v) in [(0u32, 1u32), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)] {
            match_from_seed(
                &src,
                &plan,
                u,
                v,
                1,
                IntersectAlgo::Auto,
                &mut scratch,
                &mut |b, s| {
                    seen.push((b.to_vec(), s));
                },
            );
        }
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].1, 1);
        let mut ids = seen[0].0.clone();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn labels_filter_matches() {
        let mut b = gcsm_graph::CsrBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        b.set_labels(vec![1, 1, 2]);
        let g = b.build();
        // Labeled triangle pattern 1-1-2 matches; 1-1-1 does not.
        let q_match = gcsm_pattern::QueryGraph::with_labels(
            "t112",
            3,
            &[(0, 1), (0, 2), (1, 2)],
            vec![1, 1, 2],
        );
        let q_miss = gcsm_pattern::QueryGraph::with_labels(
            "t111",
            3,
            &[(0, 1), (0, 2), (1, 2)],
            vec![1, 1, 1],
        );
        let plan_match = compile_static(&q_match, PlanOptions::default());
        let plan_miss = compile_static(&q_miss, PlanOptions::default());
        assert!(count_static_seeded(&g, &plan_match, IntersectAlgo::Auto) > 0);
        assert_eq!(count_static_seeded(&g, &plan_miss, IntersectAlgo::Auto), 0);
    }

    #[test]
    fn injectivity_prevents_degenerate_matches() {
        // A single edge "triangle-free" graph can't contain a triangle even
        // though 0's and 1's lists intersect trivially at each other.
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let q = queries::triangle();
        let plan = compile_static(&q, PlanOptions::default());
        assert_eq!(count_static_seeded(&g, &plan, IntersectAlgo::Auto), 0);
    }

    #[test]
    fn negative_sign_propagates() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        let q = queries::triangle();
        let plan = compile_static(&q, PlanOptions { symmetry_break: true });
        let src = CsrSource::new(&g);
        let mut scratch = Scratch::default();
        let mut total = 0i64;
        for (u, v) in [(0u32, 1u32), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)] {
            let s = match_from_seed(
                &src,
                &plan,
                u,
                v,
                -1,
                IntersectAlgo::Auto,
                &mut scratch,
                &mut |_, _| {},
            );
            total += s.matches;
        }
        assert_eq!(total, -1);
    }

    #[test]
    fn stats_count_work() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let q = queries::triangle();
        let plan = compile_static(&q, PlanOptions::default());
        let src = CsrSource::new(&g);
        let mut scratch = Scratch::default();
        let s = match_from_seed(
            &src,
            &plan,
            0,
            1,
            1,
            IntersectAlgo::Auto,
            &mut scratch,
            &mut |_, _| {},
        );
        assert!(s.intersect_ops > 0);
        assert_eq!(s.list_accesses, 2); // one node expansion, two constraint views
        assert_eq!(s.matches, 2); // triangles (0,1,2) and (0,1,3)
    }
}
