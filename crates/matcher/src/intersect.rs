//! Sorted-set intersection kernels.
//!
//! The inner loop of WCOJ matching intersects a sorted candidate buffer
//! against a neighbor view (one or two sorted runs — see
//! [`gcsm_graph::NeighborView`]). Three kernels are provided:
//!
//! * **merge** — classic two-finger merge, `O(|a| + |b|)`;
//! * **gallop** — per-candidate exponential+binary search, `O(|a| log |b|)`,
//!   the right choice when the candidate buffer is much smaller than the
//!   list;
//! * **blocked** — merge with a 4-way unrolled comparison block, mirroring
//!   STMatch's "unrolled set intersection with SIMD parallelism" (Sec. V-C).
//!
//! [`IntersectAlgo::Auto`] picks gallop when `32·|a| < |b|` (the standard
//! crossover) and blocked merge otherwise. All kernels return the same
//! result and charge the same *model* cost metric through [`CostCounter`],
//! so engine comparisons never depend on kernel choice — the kernels exist
//! for the wall-clock ablation bench.

use gcsm_graph::{decode_neighbor, is_tombstone, NeighborRun, NeighborView, VertexId};

/// Intersection kernel selector.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IntersectAlgo {
    Merge,
    Gallop,
    Blocked,
    /// Size-ratio dispatch between `Gallop` and `Blocked`.
    #[default]
    Auto,
}

/// Accumulates the model cost (element operations) of intersections.
#[derive(Debug, Default)]
pub struct CostCounter {
    pub ops: u64,
}

impl CostCounter {
    #[inline]
    fn charge(&mut self, n: u64) {
        self.ops += n;
    }
}

#[inline]
fn log2_ceil(n: usize) -> u64 {
    (usize::BITS - n.max(1).leading_zeros()) as u64
}

/// Materialize a view into `out` as decoded, sorted vertex ids.
/// Model cost: every raw entry is read once.
pub fn materialize(view: &NeighborView<'_>, out: &mut Vec<VertexId>, cost: &mut CostCounter) {
    out.clear();
    cost.charge(view.raw_len() as u64);
    out.extend(view.iter_sorted());
}

/// Filter the sorted candidate buffer `cands` in place, keeping the
/// elements present in `view`. The model cost is the cheaper of the merge
/// and gallop costs (deterministic: depends only on sizes), regardless of
/// the kernel actually run.
pub fn filter_in_place(
    cands: &mut Vec<VertexId>,
    view: &NeighborView<'_>,
    algo: IntersectAlgo,
    cost: &mut CostCounter,
) {
    let merge_cost = cands.len() as u64 + view.raw_len() as u64;
    let gallop_cost = cands.len() as u64 * (log2_ceil(view.raw_len()) + 1);
    cost.charge(merge_cost.min(gallop_cost));

    let algo = match algo {
        IntersectAlgo::Auto => {
            if cands.len() * 32 < view.raw_len() {
                IntersectAlgo::Gallop
            } else {
                IntersectAlgo::Blocked
            }
        }
        a => a,
    };
    match algo {
        IntersectAlgo::Gallop => {
            let tail = view.tail_run();
            cands.retain(|&c| view.prefix.contains(c) || tail.is_some_and(|t| t.contains(c)));
        }
        IntersectAlgo::Merge => {
            let kept = merge_filter(cands, &view.prefix, view.tail_run().as_ref());
            *cands = kept;
        }
        IntersectAlgo::Blocked => {
            let kept = blocked_filter(cands, &view.prefix, view.tail_run().as_ref());
            *cands = kept;
        }
        IntersectAlgo::Auto => unreachable!(),
    }
}

/// Two-finger merge of `cands` against the (up to two) runs of a view.
/// Runs hold disjoint id sets, so a candidate is kept if it matches either.
fn merge_filter(
    cands: &[VertexId],
    prefix: &NeighborRun<'_>,
    tail: Option<&NeighborRun<'_>>,
) -> Vec<VertexId> {
    let mut hits = merge_run(cands, prefix);
    if let Some(t) = tail {
        let tail_hits = merge_run(cands, t);
        hits = merge_union(&hits, &tail_hits);
    }
    hits
}

fn merge_run(cands: &[VertexId], run: &NeighborRun<'_>) -> Vec<VertexId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    let data = run.data;
    while let (Some(&c), Some(&raw)) = (cands.get(i), data.get(j)) {
        if run.skip_tombstones && is_tombstone(raw) {
            j += 1;
            continue;
        }
        let d = decode_neighbor(raw);
        match c.cmp(&d) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(c);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Union of two sorted disjoint hit lists.
fn merge_union(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) => {
                if x < y {
                    out.push(x);
                    i += 1;
                } else {
                    out.push(y);
                    j += 1;
                }
            }
            (Some(&x), None) => {
                out.push(x);
                i += 1;
            }
            (None, Some(&y)) => {
                out.push(y);
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    out
}

/// Merge with a 4-wide unrolled skip block: when the current candidate is
/// far ahead of the run cursor, compare against 4 entries at once and skip
/// whole blocks. This is the scalar analog of STMatch's warp-parallel
/// unrolled intersection.
fn blocked_filter(
    cands: &[VertexId],
    prefix: &NeighborRun<'_>,
    tail: Option<&NeighborRun<'_>>,
) -> Vec<VertexId> {
    let mut hits = blocked_run(cands, prefix);
    if let Some(t) = tail {
        let tail_hits = blocked_run(cands, t);
        hits = merge_union(&hits, &tail_hits);
    }
    hits
}

fn blocked_run(cands: &[VertexId], run: &NeighborRun<'_>) -> Vec<VertexId> {
    let data = run.data;
    let mut out = Vec::new();
    let mut j = 0usize;
    for &c in cands {
        // Skip 4-entry blocks whose last element is still below c.
        while let Some(&block_last) = data.get(j + 3) {
            if decode_neighbor(block_last) < c {
                j += 4;
            } else {
                break;
            }
        }
        while let Some(&raw) = data.get(j) {
            let d = decode_neighbor(raw);
            if d < c {
                j += 1;
            } else {
                if d == c && !(run.skip_tombstones && is_tombstone(raw)) {
                    out.push(c);
                }
                break;
            }
        }
        if j == data.len() {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcsm_graph::encode_tombstone;

    fn view_plain(data: &[u32]) -> NeighborView<'_> {
        NeighborView::plain(data)
    }

    fn run_all_algos(cands: &[u32], view: &NeighborView<'_>) -> Vec<Vec<u32>> {
        [IntersectAlgo::Merge, IntersectAlgo::Gallop, IntersectAlgo::Blocked, IntersectAlgo::Auto]
            .iter()
            .map(|&a| {
                let mut c = cands.to_vec();
                let mut cost = CostCounter::default();
                filter_in_place(&mut c, view, a, &mut cost);
                c
            })
            .collect()
    }

    #[test]
    fn all_kernels_agree_on_plain_lists() {
        let data = vec![1u32, 3, 5, 7, 9, 11, 13];
        let cands = vec![0u32, 3, 4, 7, 13, 20];
        let results = run_all_algos(&cands, &view_plain(&data));
        for r in &results {
            assert_eq!(r, &vec![3, 7, 13]);
        }
    }

    #[test]
    fn kernels_respect_tombstones_and_tails() {
        let prefix = vec![1u32, encode_tombstone(3), 5];
        let tail = vec![2u32, 8];
        let view = NeighborView::new_view(&prefix, &tail);
        let cands = vec![1u32, 2, 3, 5, 8];
        for r in run_all_algos(&cands, &view) {
            assert_eq!(r, vec![1, 2, 5, 8]); // 3 is deleted
        }
    }

    #[test]
    fn old_view_keeps_tombstoned_entries() {
        let prefix = vec![1u32, encode_tombstone(3), 5];
        let view = NeighborView::old(&prefix);
        let cands = vec![3u32];
        for r in run_all_algos(&cands, &view) {
            assert_eq!(r, vec![3]);
        }
    }

    #[test]
    fn empty_operands() {
        let view = view_plain(&[]);
        let mut cands = vec![1u32, 2];
        let mut cost = CostCounter::default();
        filter_in_place(&mut cands, &view, IntersectAlgo::Auto, &mut cost);
        assert!(cands.is_empty());

        let data = vec![1u32, 2];
        let view = view_plain(&data);
        let mut cands: Vec<u32> = vec![];
        filter_in_place(&mut cands, &view, IntersectAlgo::Auto, &mut cost);
        assert!(cands.is_empty());
    }

    #[test]
    fn materialize_decodes_and_merges() {
        let prefix = vec![2u32, encode_tombstone(4), 9];
        let tail = vec![3u32, 10];
        let view = NeighborView::new_view(&prefix, &tail);
        let mut out = Vec::new();
        let mut cost = CostCounter::default();
        materialize(&view, &mut out, &mut cost);
        assert_eq!(out, vec![2, 3, 9, 10]);
        assert_eq!(cost.ops, 5); // 3 prefix + 2 tail raw entries
    }

    #[test]
    fn cost_is_min_of_merge_and_gallop() {
        let data: Vec<u32> = (0..1024).collect();
        let view = view_plain(&data);
        let mut cands = vec![512u32];
        let mut cost = CostCounter::default();
        filter_in_place(&mut cands, &view, IntersectAlgo::Auto, &mut cost);
        // gallop cost = 1 * (log2_ceil(1024)+1) = 12; merge cost = 1025.
        assert_eq!(cost.ops, 12);
    }

    #[test]
    fn randomized_kernel_agreement() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..200 {
            let n = rng.gen_range(0..60);
            let m = rng.gen_range(0..60);
            let mut data: Vec<u32> = (0..n).map(|_| rng.gen_range(0..100)).collect();
            data.sort_unstable();
            data.dedup();
            let mut cands: Vec<u32> = (0..m).map(|_| rng.gen_range(0..100)).collect();
            cands.sort_unstable();
            cands.dedup();
            // Split data into prefix + tail with tombstones in the prefix.
            let split = data.len() / 2;
            let prefix: Vec<u32> = data[..split]
                .iter()
                .map(|&v| if rng.gen_bool(0.3) { encode_tombstone(v) } else { v })
                .collect();
            let tail: Vec<u32> = data[split..].to_vec();
            let view = NeighborView::new_view(&prefix, &tail);
            let expect: Vec<u32> = cands.iter().copied().filter(|&c| view.contains(c)).collect();
            for r in run_all_algos(&cands, &view) {
                assert_eq!(r, expect);
            }
        }
    }
}
