//! # gcsm-matcher — the worst-case-optimal-join matching engine
//!
//! Executes the nested-loop plans compiled by `gcsm-pattern` (the paper's
//! Fig. 2) against any neighbor-list provider:
//!
//! * [`NeighborSource`] — the provider abstraction. Implementations in this
//!   crate read a CSR snapshot or a sealed [`gcsm_graph::DynamicGraph`];
//!   the `gcsm` core crate adds sources that route accesses through the
//!   simulated GPU (device cache / zero-copy / unified memory) so that the
//!   same enumeration code serves every engine of the evaluation.
//! * [`intersect`] — sorted-set intersection kernels (merge, galloping, and
//!   a blocked/unrolled variant mirroring STMatch's SIMD intersection),
//!   with uniform operation counting for the simulated-time model.
//! * [`enumerate`] — the recursive enumerator.
//! * [`stack`] — the STMatch-style iterative enumerator with an explicit
//!   per-level candidate stack (the shape of the paper's GPU kernel).
//!   Produces bit-identical results to the recursive one.
//! * [`driver`] — whole-task entry points: static matching over all graph
//!   edges and incremental matching over a batch `ΔE` (running all `m`
//!   delta plans and summing signed counts, Eq. (1)).
//! * [`access`] — per-vertex access-frequency instrumentation: the *oracle*
//!   the paper's Fig. 15 compares the random-walk estimator against.

//! ```
//! use gcsm_graph::{CsrGraph, DynamicGraph, EdgeUpdate};
//! use gcsm_matcher::{match_incremental, DriverOptions, DynSource};
//! use gcsm_pattern::queries;
//!
//! let g0 = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2)]);
//! let mut g = DynamicGraph::from_csr(&g0);
//! let batch = g.apply_batch(&[EdgeUpdate::insert(1, 3), EdgeUpdate::insert(2, 3)]);
//!
//! let src = DynSource::new(&g);
//! let delta = match_incremental(&src, &queries::triangle(), &batch.applied,
//!                               &DriverOptions::default());
//! assert_eq!(delta.matches, 6); // new triangle {1,2,3} × |Aut| = 6
//! ```

pub mod access;
pub mod driver;
pub mod enumerate;
pub mod intersect;
pub mod limit;
pub mod source;
pub mod stack;
pub mod stats;

pub use access::AccessCounter;
pub use driver::{
    collect_incremental, delta_seeds, match_incremental, match_static, DriverOptions,
    EnumeratorKind,
};
pub use enumerate::{gen_candidates, match_from_seed, seed_admissible, Scratch};
pub use intersect::{CostCounter, IntersectAlgo};
pub use limit::{match_incremental_limited, LimitedResult};
pub use source::{CsrSource, DynSource, NeighborSource, RecordingSource};
pub use stack::{match_from_seed_stack, StackScratch};
pub use stats::MatchStats;
