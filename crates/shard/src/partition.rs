//! Edge partitioner: vertex → owning shard, plus per-shard materialisation.
//!
//! All three policies assign *vertices* to shards; an edge belongs to the
//! partition of each endpoint's owner, so an edge whose endpoints live on
//! different shards is **replicated** on both (boundary replication). The
//! replication factor — per-shard edges summed over shards, divided by the
//! graph's edges — is the storage price of keeping every owned vertex's
//! neighbor list complete on its shard.

use crate::ShardId;
use gcsm_graph::{CsrBuilder, CsrGraph, DynamicGraph, EdgeUpdate, GraphStats, VertexId};

/// How vertices are assigned to shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionPolicy {
    /// `owner(v) = hash(v) mod N` — stateless, spreads hubs uniformly.
    HashSrc,
    /// Contiguous vertex-id ranges of equal vertex count.
    Range,
    /// Contiguous vertex-id ranges balanced by *degree mass* (each shard
    /// gets ≈ `2|E|/N` endpoint slots, computed from [`GraphStats`]), so a
    /// skewed graph does not overload the shard holding its hubs.
    DegreeBalanced,
}

impl PartitionPolicy {
    /// CLI spelling.
    pub fn name(&self) -> &'static str {
        match self {
            PartitionPolicy::HashSrc => "hash",
            PartitionPolicy::Range => "range",
            PartitionPolicy::DegreeBalanced => "degree",
        }
    }

    /// Parse a CLI spelling (`hash`, `range`, `degree`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "hash" => Some(PartitionPolicy::HashSrc),
            "range" => Some(PartitionPolicy::Range),
            "degree" => Some(PartitionPolicy::DegreeBalanced),
            _ => None,
        }
    }
}

/// splitmix64 — cheap stateless mixer for [`PartitionPolicy::HashSrc`].
fn mix(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A computed vertex-to-shard assignment.
#[derive(Clone, Debug)]
pub struct Partitioning {
    owners: Vec<ShardId>,
    num_shards: usize,
    policy: PartitionPolicy,
}

impl Partitioning {
    /// Partition `graph`'s vertices into `num_shards` shards under `policy`.
    /// `num_shards` is clamped to at least 1.
    pub fn compute(graph: &CsrGraph, policy: PartitionPolicy, num_shards: usize) -> Self {
        let n = graph.num_vertices();
        let shards = num_shards.max(1);
        let owners: Vec<ShardId> = match policy {
            PartitionPolicy::HashSrc => {
                (0..n).map(|v| (mix(v as u64) % shards as u64) as ShardId).collect()
            }
            PartitionPolicy::Range => {
                let per = n.div_ceil(shards).max(1);
                (0..n).map(|v| (v / per).min(shards - 1)).collect()
            }
            PartitionPolicy::DegreeBalanced => {
                // Sweep vertex ids in order, cutting a new shard once the
                // running endpoint mass passes the ideal share. GraphStats
                // supplies the total mass (2|E| endpoint slots).
                let stats = DynamicGraph::from_csr(graph).stats();
                let total = (2 * stats.num_edges).max(1) as f64;
                let target = total / shards as f64;
                let mut owners = vec![0 as ShardId; n];
                let mut shard = 0usize;
                let mut mass = 0f64;
                for (v, owner) in owners.iter_mut().enumerate() {
                    *owner = shard;
                    mass += graph.degree(v as VertexId) as f64;
                    if mass >= target * (shard + 1) as f64 && shard + 1 < shards {
                        shard += 1;
                    }
                }
                owners
            }
        };
        Self { owners, num_shards: shards, policy }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The policy this assignment was built under.
    pub fn policy(&self) -> PartitionPolicy {
        self.policy
    }

    /// Owning shard of vertex `v`. Vertices beyond the initial graph (ids
    /// introduced by later updates) fall back to the hash policy so every
    /// vertex always has exactly one owner.
    pub fn owner(&self, v: VertexId) -> ShardId {
        self.owners
            .get(v as usize)
            .copied()
            .unwrap_or_else(|| (mix(v as u64) % self.num_shards as u64) as ShardId)
    }

    /// Whether edge `(a, b)` crosses shards (its owners differ).
    pub fn is_cut(&self, a: VertexId, b: VertexId) -> bool {
        self.owner(a) != self.owner(b)
    }

    /// The shard that *counts* an update's delta seeds: the owner of the
    /// canonical lower endpoint. Exactly one shard per update — the dedup
    /// rule that keeps the summed `ΔM` identical to single-device.
    pub fn counting_shard(&self, u: &EdgeUpdate) -> ShardId {
        self.owner(u.canonical().0)
    }

    /// Materialise the per-shard graphs: shard `s` holds every edge with an
    /// endpoint owned by `s` (boundary replication), over the full vertex-id
    /// space so ids stay stable across shards.
    pub fn materialize(&self, graph: &CsrGraph) -> Vec<DynamicGraph> {
        let mut builders: Vec<CsrBuilder> =
            (0..self.num_shards).map(|_| CsrBuilder::new(graph.num_vertices())).collect();
        for (a, b) in graph.edges() {
            let (oa, ob) = (self.owner(a), self.owner(b));
            builders[oa].add_edge(a, b);
            if ob != oa {
                builders[ob].add_edge(a, b);
            }
        }
        builders.into_iter().map(|b| DynamicGraph::from_csr(&b.build())).collect()
    }

    /// Per-shard [`GraphStats`] of the materialised partitions.
    pub fn shard_stats(&self, graph: &CsrGraph) -> Vec<GraphStats> {
        self.materialize(graph).iter().map(DynamicGraph::stats).collect()
    }

    /// `Σ_s |E_s| / |E|` — storage blow-up from boundary replication
    /// (1.0 = no cut edges; 2.0 = every edge cut).
    pub fn replication_factor(&self, graph: &CsrGraph) -> f64 {
        let total = graph.num_edges().max(1);
        let replicated: usize = graph.edges().filter(|&(a, b)| self.is_cut(a, b)).count();
        (total + replicated) as f64 / total as f64
    }

    /// Endpoint-mass per shard (degree sums over owned vertices) — the load
    /// model the degree-balanced policy equalises.
    pub fn degree_loads(&self, graph: &CsrGraph) -> Vec<u64> {
        let mut loads = vec![0u64; self.num_shards];
        for v in 0..graph.num_vertices() {
            loads[self.owner(v as VertexId)] += graph.degree(v as VertexId) as u64;
        }
        loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> CsrGraph {
        let edges: Vec<(VertexId, VertexId)> = (0..n as VertexId - 1).map(|v| (v, v + 1)).collect();
        CsrGraph::from_edges(n, &edges)
    }

    fn star_graph(leaves: usize) -> CsrGraph {
        let edges: Vec<(VertexId, VertexId)> = (1..=leaves as VertexId).map(|v| (0, v)).collect();
        CsrGraph::from_edges(leaves + 1, &edges)
    }

    #[test]
    fn every_vertex_has_exactly_one_owner() {
        let g = path_graph(100);
        for policy in
            [PartitionPolicy::HashSrc, PartitionPolicy::Range, PartitionPolicy::DegreeBalanced]
        {
            for shards in [1usize, 2, 3, 4] {
                let p = Partitioning::compute(&g, policy, shards);
                for v in 0..100u32 {
                    assert!(p.owner(v) < shards, "{policy:?}/{shards}");
                }
                // Out-of-range vertices (later inserts) still get an owner.
                assert!(p.owner(10_000) < shards);
            }
        }
    }

    #[test]
    fn one_shard_owns_everything_with_no_cuts() {
        let g = path_graph(32);
        for policy in
            [PartitionPolicy::HashSrc, PartitionPolicy::Range, PartitionPolicy::DegreeBalanced]
        {
            let p = Partitioning::compute(&g, policy, 1);
            assert!((p.replication_factor(&g) - 1.0).abs() < 1e-12);
            let parts = p.materialize(&g);
            assert_eq!(parts.len(), 1);
            assert_eq!(parts[0].stats().num_edges, g.num_edges());
        }
    }

    #[test]
    fn materialized_partitions_cover_every_edge() {
        let g = star_graph(20);
        for policy in
            [PartitionPolicy::HashSrc, PartitionPolicy::Range, PartitionPolicy::DegreeBalanced]
        {
            let p = Partitioning::compute(&g, policy, 4);
            let parts = p.materialize(&g);
            // Every original edge appears on the owner of each endpoint.
            for (a, b) in g.edges() {
                let snap_a = parts[p.owner(a)].to_csr();
                let snap_b = parts[p.owner(b)].to_csr();
                assert!(snap_a.has_edge(a, b));
                assert!(snap_b.has_edge(a, b));
            }
            // And shard edge counts sum to |E| + replicated cut edges.
            let total: usize = parts.iter().map(|d| d.stats().num_edges).sum();
            let expect = g.num_edges() + g.edges().filter(|&(a, b)| p.is_cut(a, b)).count();
            assert_eq!(total, expect);
        }
    }

    #[test]
    fn degree_balanced_beats_range_on_skew() {
        // A star plus a long tail: range splits vertices evenly and dumps
        // the hub's whole mass on shard 0; degree-balanced cuts right after
        // the hub.
        let mut edges: Vec<(VertexId, VertexId)> = (1..=64).map(|v| (0, v)).collect();
        edges.extend((65..127).map(|v| (v, v + 1)));
        let g = CsrGraph::from_edges(128, &edges);
        let range = Partitioning::compute(&g, PartitionPolicy::Range, 4);
        let deg = Partitioning::compute(&g, PartitionPolicy::DegreeBalanced, 4);
        let spread = |loads: Vec<u64>| {
            let max = *loads.iter().max().unwrap_or(&0) as f64;
            let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
            max / mean.max(1.0)
        };
        let r = spread(range.degree_loads(&g));
        let d = spread(deg.degree_loads(&g));
        assert!(d < r, "degree-balanced {d:.2} must beat range {r:.2}");
    }

    #[test]
    fn counting_shard_is_deterministic_and_single() {
        let g = path_graph(16);
        let p = Partitioning::compute(&g, PartitionPolicy::HashSrc, 3);
        let u = EdgeUpdate::insert(7, 3);
        let v = EdgeUpdate::delete(3, 7);
        // Same canonical edge → same counting shard regardless of
        // orientation or operation.
        assert_eq!(p.counting_shard(&u), p.counting_shard(&v));
        assert_eq!(p.counting_shard(&u), p.owner(3));
    }

    #[test]
    fn policy_names_round_trip() {
        for p in [PartitionPolicy::HashSrc, PartitionPolicy::Range, PartitionPolicy::DegreeBalanced]
        {
            assert_eq!(PartitionPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(PartitionPolicy::parse("metis"), None);
    }
}
