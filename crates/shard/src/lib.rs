//! # gcsm-shard — multi-device partitioning and cross-shard delta routing
//!
//! The paper evaluates GCSM on one RTX3090 and leaves scale-out open. This
//! crate supplies the graph-side half of the sharding layer:
//!
//! * [`partition`] — assign every vertex an owning shard (hash, range, or
//!   degree-balanced policy) and materialise per-shard [`gcsm_graph::DynamicGraph`]s
//!   with boundary-vertex replication (a shard stores every edge incident to
//!   a vertex it owns, so cut edges exist on both endpoint owners);
//! * [`router`] — split a sealed batch's `ΔE` across shards: every shard
//!   whose partition contains the edge receives it for *graph maintenance*,
//!   while exactly **one** shard (the owner of the canonical lower endpoint)
//!   receives it for *matching*, so the summed per-shard `ΔM` counts every
//!   delta seed exactly once.
//!
//! The exactly-once invariant is what makes sharded `ΔM` bit-identical to
//! the single-device pipeline: incremental matching decomposes into
//! independent seed tasks (delta plan × batch edge × orientation) whose
//! statistics are pure sums, so partitioning the batch partitions the seed
//! set and nothing else (see DESIGN.md §12).

pub mod partition;
pub mod router;

pub use partition::{PartitionPolicy, Partitioning};
pub use router::{route, RoutedBatch, PEER_UPDATE_BYTES};

/// Shard index, dense in `0..num_shards`.
pub type ShardId = usize;
