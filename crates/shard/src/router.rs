//! Cross-shard delta router.
//!
//! A sealed batch's `ΔE` is split along two axes:
//!
//! * **maintenance** — every shard whose partition contains the edge (the
//!   owner of each endpoint) must apply the update to keep its replicated
//!   boundary consistent; a cut update therefore appears in two shards'
//!   maintenance subsets, and the copy shipped to the *non-counting* replica
//!   is charged as peer traffic ([`PEER_UPDATE_BYTES`] per update);
//! * **matching** — exactly **one** shard (the counting shard: owner of the
//!   canonical lower endpoint) enumerates the update's delta seeds, so the
//!   per-shard `ΔM` sum counts each seed exactly once.
//!
//! Batch order is preserved within every subset: each shard sees its
//! updates in the same relative order the single-device pipeline would,
//! which keeps deletion/insertion interleavings semantically identical.

use crate::partition::Partitioning;
use gcsm_graph::EdgeUpdate;

/// Simulated wire size of one replicated update: `src: u32 + dst: u32 +
/// op: u32` — the packed record the owning device DMAs to each replica.
pub const PEER_UPDATE_BYTES: u64 = 12;

/// A batch split across shards. Produced by [`route`].
#[derive(Clone, Debug)]
pub struct RoutedBatch {
    /// Per-shard *maintenance* subsets: every update touching an edge the
    /// shard replicates, in batch order.
    pub per_shard_graph: Vec<Vec<EdgeUpdate>>,
    /// Per-shard *matching* subsets: each update appears in exactly one
    /// shard's list (the counting shard), in batch order.
    pub per_shard_match: Vec<Vec<EdgeUpdate>>,
    /// Updates whose endpoints live on different shards.
    pub cut_updates: usize,
    /// Peer-link bytes charged to each shard for the replica copies it
    /// *receives* (cut updates where it is not the counting shard).
    pub peer_bytes_to: Vec<u64>,
}

impl RoutedBatch {
    /// Number of shards this batch was routed across.
    pub fn num_shards(&self) -> usize {
        self.per_shard_match.len()
    }

    /// Total peer-link bytes for the batch.
    pub fn peer_bytes(&self) -> u64 {
        self.peer_bytes_to.iter().sum()
    }
}

/// Route `batch` across the shards of `part`.
pub fn route(batch: &[EdgeUpdate], part: &Partitioning) -> RoutedBatch {
    let n = part.num_shards();
    let mut per_shard_graph: Vec<Vec<EdgeUpdate>> = vec![Vec::new(); n];
    let mut per_shard_match: Vec<Vec<EdgeUpdate>> = vec![Vec::new(); n];
    let mut peer_bytes_to = vec![0u64; n];
    let mut cut_updates = 0usize;
    for u in batch {
        let counting = part.counting_shard(u);
        per_shard_match[counting].push(*u);
        per_shard_graph[counting].push(*u);
        let other = part.owner(u.canonical().1);
        if other != counting {
            cut_updates += 1;
            per_shard_graph[other].push(*u);
            peer_bytes_to[other] += PEER_UPDATE_BYTES;
        }
    }
    RoutedBatch { per_shard_graph, per_shard_match, cut_updates, peer_bytes_to }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{PartitionPolicy, Partitioning};
    use gcsm_graph::{CsrGraph, VertexId};
    use proptest::prelude::*;

    fn ring(n: usize) -> CsrGraph {
        let edges: Vec<(VertexId, VertexId)> =
            (0..n as VertexId).map(|v| (v, (v + 1) % n as VertexId)).collect();
        CsrGraph::from_edges(n, &edges)
    }

    #[test]
    fn single_shard_routes_everything_locally() {
        let g = ring(8);
        let p = Partitioning::compute(&g, PartitionPolicy::Range, 1);
        let batch =
            vec![EdgeUpdate::insert(0, 4), EdgeUpdate::delete(2, 3), EdgeUpdate::insert(6, 1)];
        let r = route(&batch, &p);
        assert_eq!(r.num_shards(), 1);
        assert_eq!(r.per_shard_match[0], batch);
        assert_eq!(r.per_shard_graph[0], batch);
        assert_eq!(r.cut_updates, 0);
        assert_eq!(r.peer_bytes(), 0);
    }

    #[test]
    fn cut_update_replicates_and_charges_the_replica() {
        // Range over 8 vertices / 2 shards: 0..4 on shard 0, 4..8 on shard 1.
        let g = ring(8);
        let p = Partitioning::compute(&g, PartitionPolicy::Range, 2);
        let cut = EdgeUpdate::insert(2, 6); // canonical (2,6): counts on shard 0
        let local = EdgeUpdate::insert(5, 7); // both on shard 1
        let r = route(&[cut, local], &p);
        assert_eq!(r.per_shard_match[0], vec![cut]);
        assert_eq!(r.per_shard_match[1], vec![local]);
        // Shard 1 still maintains the cut edge (vertex 6 is its boundary).
        assert_eq!(r.per_shard_graph[1], vec![cut, local]);
        assert_eq!(r.cut_updates, 1);
        assert_eq!(r.peer_bytes_to, vec![0, PEER_UPDATE_BYTES]);
    }

    #[test]
    fn batch_order_is_preserved_within_each_shard() {
        let g = ring(16);
        let p = Partitioning::compute(&g, PartitionPolicy::HashSrc, 4);
        let batch: Vec<EdgeUpdate> =
            (0..16u32).map(|i| EdgeUpdate::insert(i, (i * 7 + 1) % 16)).collect();
        let r = route(&batch, &p);
        let pos = |u: &EdgeUpdate| batch.iter().position(|b| b == u).unwrap_or(usize::MAX);
        for subset in r.per_shard_match.iter().chain(r.per_shard_graph.iter()) {
            let order: Vec<usize> = subset.iter().map(pos).collect();
            assert!(order.windows(2).all(|w| w[0] < w[1]), "order broken: {order:?}");
        }
    }

    proptest! {
        /// Exactly-once matching invariant: the per-shard match subsets form
        /// a partition of the batch — concatenating them in any order yields
        /// the same multiset, and each update lands on its counting shard.
        #[test]
        fn match_routing_partitions_the_batch(
            n in 4usize..64,
            shards in 1usize..6,
            policy_idx in 0usize..3,
            raw in proptest::collection::vec((0u32..64, 0u32..64, any::<bool>()), 0..80),
        ) {
            let policy = [
                PartitionPolicy::HashSrc,
                PartitionPolicy::Range,
                PartitionPolicy::DegreeBalanced,
            ][policy_idx];
            let g = ring(n);
            let p = Partitioning::compute(&g, policy, shards);
            let batch: Vec<EdgeUpdate> = raw
                .into_iter()
                .filter(|&(a, b, _)| a != b)
                .map(|(a, b, ins)| {
                    if ins { EdgeUpdate::insert(a, b) } else { EdgeUpdate::delete(a, b) }
                })
                .collect();
            let r = route(&batch, &p);

            // Partition: sizes sum to the batch, every update on its
            // counting shard and nowhere else.
            let total: usize = r.per_shard_match.iter().map(Vec::len).sum();
            prop_assert_eq!(total, batch.len());
            for (s, subset) in r.per_shard_match.iter().enumerate() {
                for u in subset {
                    prop_assert_eq!(p.counting_shard(u), s);
                }
            }

            // Maintenance covers matching, and the overflow is exactly the
            // cut updates — each billed PEER_UPDATE_BYTES to its replica.
            let maint: usize = r.per_shard_graph.iter().map(Vec::len).sum();
            prop_assert_eq!(maint, batch.len() + r.cut_updates);
            prop_assert_eq!(r.peer_bytes(), r.cut_updates as u64 * PEER_UPDATE_BYTES);
        }
    }
}
