//! Per-batch measurement record.

use gcsm_gpusim::{SimBreakdown, TrafficSnapshot};
use gcsm_matcher::MatchStats;

/// Simulated seconds per workflow phase (the five steps of Fig. 3; the
/// paper's Table II reports FE and DC as fractions of the total, Fig. 13
/// splits DC vs Match, Table III isolates reorganisation).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseBreakdown {
    /// Step 1 — appending `ΔE` to the CPU lists.
    pub update: f64,
    /// Step 2 — random-walk frequency estimation ("FE").
    pub freq_est: f64,
    /// Step 3 — packing + DMA of the cache ("DC").
    pub data_copy: f64,
    /// Step 4 — the matching kernel.
    pub matching: f64,
    /// Step 5 — graph reorganisation on the CPU.
    pub reorganize: f64,
}

impl PhaseBreakdown {
    /// Total simulated seconds across phases.
    pub fn total(&self) -> f64 {
        self.update + self.freq_est + self.data_copy + self.matching + self.reorganize
    }

    /// FE overhead fraction (Table II).
    pub fn fe_fraction(&self) -> f64 {
        if self.total() == 0.0 {
            0.0
        } else {
            self.freq_est / self.total()
        }
    }

    /// DC overhead fraction (Table II).
    pub fn dc_fraction(&self) -> f64 {
        if self.total() == 0.0 {
            0.0
        } else {
            self.data_copy / self.total()
        }
    }
}

/// Why the streaming front-end sealed a batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SealReason {
    /// The window reached the size threshold.
    #[default]
    Size,
    /// A logical tick event arrived with a non-empty window.
    Tick,
    /// Session shutdown drained the remaining window.
    Flush,
}

/// Streaming-ingestion metadata attached to a [`BatchResult`] when the
/// batch was sealed by `gcsm::stream` (absent for directly-driven batches).
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamMeta {
    /// Zero-based index of this batch within the session.
    pub batch_index: u64,
    /// Lowest sequence number among the batch's surviving updates.
    pub first_seq: u64,
    /// Highest sequence number among the batch's surviving updates.
    pub last_seq: u64,
    /// Surviving updates handed to the pipeline.
    pub admitted: usize,
    /// Duplicate updates dropped by coalescing in this window.
    pub duplicates_dropped: usize,
    /// Insert/delete pairs annihilated by coalescing in this window.
    pub cancelled_pairs: usize,
    /// Self-loop updates rejected at admission in this window.
    pub self_loops_dropped: usize,
    /// What triggered the seal.
    pub seal_reason: SealReason,
    /// Ingest-queue depth observed when the batch sealed.
    pub queue_depth: usize,
    /// Wall-clock seconds from the window's first admission to seal.
    pub window_open_seconds: f64,
}

/// Everything measured for one batch on one engine.
#[derive(Clone, Debug, Default)]
pub struct BatchResult {
    /// Engine name ("GCSM", "ZP", ...).
    pub engine: String,
    /// Signed incremental match count `ΔM` (identical across engines).
    pub matches: i64,
    /// Simulated time per phase.
    pub phases: PhaseBreakdown,
    /// Traffic generated during the engine's own phases (excludes the
    /// pipeline's update/reorganize, which are host-side).
    pub traffic: TrafficSnapshot,
    /// Cost-model components derived from `traffic`.
    pub sim: SimBreakdown,
    /// Wall-clock seconds actually spent (transparency metric — the
    /// figures use simulated time; see DESIGN.md).
    pub wall_seconds: f64,
    /// Bytes the GPU read from CPU memory (bar labels of Fig. 8–10).
    pub cpu_access_bytes: u64,
    /// Cache hit rate over neighbor-list accesses (GCSM/VSGM/Naive).
    pub cache_hit_rate: f64,
    /// Bytes shipped to the device cache this batch.
    pub cached_bytes: usize,
    /// Raw matcher statistics.
    pub stats: MatchStats,
    /// Engine-specific auxiliary memory (e.g. RapidFlow's candidate index).
    pub aux_bytes: usize,
    /// Streaming-ingestion metadata (set by `gcsm::stream` sessions).
    pub stream: Option<StreamMeta>,
}

impl BatchResult {
    /// Total simulated milliseconds (the unit of the paper's figures).
    pub fn total_ms(&self) -> f64 {
        self.phases.total() * 1e3
    }
}

/// Fold one batch's measurements into the process-wide obs registry
/// (no-op unless observability is enabled).
///
/// Namespace: `matcher.*` mirrors [`MatchStats`] (net `matches` as a
/// gauge, `intersect_ops` / `list_accesses` as counters — these reconcile
/// exactly with engine totals), `gpusim.*` accumulates the engine's
/// interval [`TrafficSnapshot`], `pipeline.*` holds the batch counter and
/// per-batch latency histograms (µs).
pub fn record_batch_metrics(r: &BatchResult) {
    let obs = gcsm_obs::global();
    if !obs.enabled() {
        return;
    }
    let reg = &obs.registry;
    reg.counter("pipeline.batches").inc();
    reg.gauge("matcher.matches").add(r.matches);
    reg.counter("matcher.intersect_ops").add(r.stats.intersect_ops);
    reg.counter("matcher.list_accesses").add(r.stats.list_accesses);
    for (field, v) in r.traffic.named_fields() {
        reg.counter(&format!("gpusim.{field}")).add(v);
    }
    reg.histogram("pipeline.batch_sim_us").observe((r.phases.total() * 1e6) as u64);
    reg.histogram("pipeline.batch_wall_us").observe((r.wall_seconds * 1e6) as u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions() {
        let p = PhaseBreakdown {
            update: 0.0,
            freq_est: 1.0,
            data_copy: 1.0,
            matching: 7.0,
            reorganize: 1.0,
        };
        assert!((p.total() - 10.0).abs() < 1e-12);
        assert!((p.fe_fraction() - 0.1).abs() < 1e-12);
        assert!((p.dc_fraction() - 0.1).abs() < 1e-12);
        assert_eq!(PhaseBreakdown::default().fe_fraction(), 0.0);
    }

    #[test]
    fn total_ms() {
        let r = BatchResult {
            phases: PhaseBreakdown { matching: 0.25, ..Default::default() },
            ..Default::default()
        };
        assert!((r.total_ms() - 250.0).abs() < 1e-9);
    }
}
