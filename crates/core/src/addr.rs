//! Virtual address map for the unified-memory model.
//!
//! The UM page-cache model needs stable byte addresses for the neighbor
//! lists: the paper's implementation allocates all lists in managed memory,
//! so a list access faults in the 4 KiB pages covering it. We reproduce
//! that by laying every vertex's raw list out in one virtual arena (prefix
//! sums of list bytes) — the same layout a `cudaMallocManaged` bulk
//! allocation would produce.

use gcsm_graph::{DynamicGraph, VertexId};

/// Byte base address per vertex list in the simulated managed arena.
#[derive(Clone, Debug, Default)]
pub struct AddrMap {
    base: Vec<u64>,
}

impl AddrMap {
    /// Build from the current raw list lengths.
    pub fn build(graph: &DynamicGraph) -> Self {
        let n = graph.num_vertices();
        let mut base = Vec::with_capacity(n);
        let mut acc = 0u64;
        for v in 0..n as VertexId {
            base.push(acc);
            acc += graph.list_bytes(v) as u64;
        }
        Self { base }
    }

    /// Base address of vertex `v`'s list.
    #[inline]
    pub fn addr(&self, v: VertexId) -> u64 {
        self.base[v as usize]
    }

    /// Total arena size.
    pub fn arena_bytes(&self) -> u64 {
        self.base.last().copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcsm_graph::CsrGraph;

    #[test]
    fn addresses_are_contiguous_prefix_sums() {
        let g0 = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        let mut g = DynamicGraph::from_csr(&g0);
        g.begin_batch();
        g.seal_batch();
        let m = AddrMap::build(&g);
        assert_eq!(m.addr(0), 0);
        assert_eq!(m.addr(1), g.list_bytes(0) as u64);
        assert_eq!(m.addr(2), (g.list_bytes(0) + g.list_bytes(1)) as u64);
    }
}
