//! The shared "GPU kernel": incremental matching over a batch, executed on
//! the simulated grid.
//!
//! Every GPU engine (GCSM, ZP, UM, VSGM, Naive) runs this exact function —
//! the STMatch-adapted kernel of Sec. V-C — against a different
//! [`gcsm_matcher::NeighborSource`]. The seed tasks (plan × batch edge ×
//! orientation) map to thread blocks; rayon's work stealing stands in for
//! STMatch's inter-block stealing. Compute is charged to the device as
//! `gpu_ops`.

use crate::config::EngineConfig;
use gcsm_gpusim::Device;
use gcsm_graph::EdgeUpdate;
use gcsm_matcher::{
    delta_seeds, match_from_seed, match_from_seed_stack, EnumeratorKind, MatchStats,
    NeighborSource, Scratch, StackScratch,
};
use gcsm_pattern::{compile_incremental, QueryGraph};
use rayon::prelude::*;

/// Outcome of one kernel launch: aggregate stats plus the grid's
/// load-imbalance factor (`makespan / ideal` over the configured blocks and
/// scheduling policy — see [`gcsm_gpusim::schedule`]).
pub struct KernelRun {
    pub stats: MatchStats,
    pub imbalance: f64,
}

/// Run the incremental matching kernel. The intersect work is charged to
/// `device` as GPU compute and one kernel launch is recorded; the returned
/// imbalance factor tells the engine how much to stretch the kernel's time
/// for the scheduling policy in effect.
pub fn run_gpu_kernel<S: NeighborSource>(
    device: &Device,
    src: &S,
    q: &QueryGraph,
    batch: &[EdgeUpdate],
    cfg: &EngineConfig,
) -> KernelRun {
    let plans = compile_incremental(q, cfg.plan);
    run_gpu_kernel_with_plans(device, src, &plans, batch, cfg)
}

/// Like [`run_gpu_kernel`], but with caller-supplied delta plans (used by
/// the optimized-ordering mode, which compiles cardinality-scored plans).
pub fn run_gpu_kernel_with_plans<S: NeighborSource>(
    device: &Device,
    src: &S,
    plans: &[gcsm_pattern::MatchPlan],
    batch: &[EdgeUpdate],
    cfg: &EngineConfig,
) -> KernelRun {
    device.traffic().add_kernel_launches(1);

    // Per-task cost vector (intersect ops + list accesses as a proxy for
    // the task's memory time) for the load-balance model.
    let tasks = delta_seeds(plans, batch);
    let run_task =
        |rs: &mut Scratch, ss: &mut StackScratch, pi: usize, a, b, sign| match cfg.enumerator {
            EnumeratorKind::Recursive => {
                match_from_seed(src, &plans[pi], a, b, sign, cfg.algo, rs, &mut |_, _| {})
            }
            EnumeratorKind::Stack => {
                match_from_seed_stack(src, &plans[pi], a, b, sign, cfg.algo, ss, &mut |_, _| {})
            }
        };
    let run_slice = |slice: &[(usize, gcsm_graph::VertexId, gcsm_graph::VertexId, i64)]| -> Vec<(MatchStats, u64)> {
        if cfg.parallel_kernel {
            slice
                .par_iter()
                .map_init(
                    || (Scratch::default(), StackScratch::default()),
                    |(rs, ss), &(pi, a, b, sign)| {
                        let s = run_task(rs, ss, pi, a, b, sign);
                        let cost = s.intersect_ops + s.list_accesses;
                        (s, cost)
                    },
                )
                .collect()
        } else {
            let mut rs = Scratch::default();
            let mut ss = StackScratch::default();
            slice
                .iter()
                .map(|&(pi, a, b, sign)| {
                    let s = run_task(&mut rs, &mut ss, pi, a, b, sign);
                    let cost = s.intersect_ops + s.list_accesses;
                    (s, cost)
                })
                .collect()
        }
    };
    // `delta_seeds` is plan-major: plan `i`'s tasks are one contiguous
    // chunk of `batch.len() * 2` seeds, so with tracing on each ΔM_i level
    // runs under its own `dm_i` span. The chunks partition the same task
    // list in the same order, so the per-task cost vector (and therefore
    // the imbalance factor) is identical either way.
    let stride = batch.len() * 2;
    let per_task: Vec<(MatchStats, u64)> = if gcsm_obs::enabled() && stride > 0 {
        let mut out = Vec::with_capacity(tasks.len());
        for (level, chunk) in tasks.chunks(stride).enumerate() {
            let mut span = gcsm_obs::span("dm_i", gcsm_obs::cat::MATCHER);
            span.set_level(level as u32);
            span.set_count(chunk.len() as u64);
            out.extend(run_slice(chunk));
        }
        out
    } else {
        run_slice(&tasks)
    };
    let mut merge_span = gcsm_obs::span("merge", gcsm_obs::cat::MATCHER);
    merge_span.set_count(per_task.len() as u64);
    let costs: Vec<u64> = per_task.iter().map(|(_, c)| *c).collect();
    let imbalance = gcsm_gpusim::imbalance_factor(&costs, cfg.gpu.num_blocks, cfg.scheduling);
    let stats = per_task.into_iter().map(|(s, _)| s).sum::<MatchStats>();
    drop(merge_span);
    device.gpu_ops(stats.intersect_ops);
    KernelRun { stats, imbalance }
}

/// Static (from-scratch) matching on the simulated GPU: seed the static
/// plan on every graph edge. The paper's focus is incremental matching
/// (prior work already mapped Fig. 2a onto GPUs \[8\]\[9\]\[19\]); this
/// entry point computes the initial result `M(G_0)` under the same traffic
/// model, so a deployment can bootstrap counts before streaming.
pub fn run_gpu_kernel_static<S: NeighborSource>(
    device: &Device,
    src: &S,
    q: &QueryGraph,
    edges: &[(gcsm_graph::VertexId, gcsm_graph::VertexId)],
    cfg: &EngineConfig,
) -> KernelRun {
    let plan = gcsm_pattern::compile_static(q, cfg.plan);
    device.traffic().add_kernel_launches(1);
    let per_task: Vec<(MatchStats, u64)> = edges
        .par_iter()
        .map_init(
            || (Scratch::default(), StackScratch::default()),
            |(rs, ss), &(u, v)| {
                let mut acc = MatchStats::default();
                for (a, b) in [(u, v), (v, u)] {
                    let s = match cfg.enumerator {
                        EnumeratorKind::Recursive => {
                            match_from_seed(src, &plan, a, b, 1, cfg.algo, rs, &mut |_, _| {})
                        }
                        EnumeratorKind::Stack => {
                            match_from_seed_stack(src, &plan, a, b, 1, cfg.algo, ss, &mut |_, _| {})
                        }
                    };
                    acc.merge(s);
                }
                let cost = acc.intersect_ops + acc.list_accesses;
                (acc, cost)
            },
        )
        .collect();
    let costs: Vec<u64> = per_task.iter().map(|(_, c)| *c).collect();
    let imbalance = gcsm_gpusim::imbalance_factor(&costs, cfg.gpu.num_blocks, cfg.scheduling);
    let stats = per_task.into_iter().map(|(s, _)| s).sum::<MatchStats>();
    device.gpu_ops(stats.intersect_ops);
    KernelRun { stats, imbalance }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::ZeroCopySource;
    use gcsm_gpusim::GpuConfig;
    use gcsm_graph::{CsrGraph, DynamicGraph};
    use gcsm_pattern::queries;

    #[test]
    fn kernel_counts_and_charges() {
        let g0 = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let mut g = DynamicGraph::from_csr(&g0);
        let batch = vec![EdgeUpdate::insert(1, 3)];
        let summary = g.apply_batch(&batch);
        let device = Device::new(GpuConfig::default());
        let src = ZeroCopySource { graph: &g, device: &device };
        let cfg = EngineConfig::default();
        let run = run_gpu_kernel(&device, &src, &queries::triangle(), &summary.applied, &cfg);
        assert_eq!(run.stats.matches, 6); // one new triangle (1,2,3) × |Aut|=6
        assert!(run.imbalance >= 1.0);
        let t = device.snapshot();
        assert_eq!(t.gpu_ops, run.stats.intersect_ops);
        assert_eq!(t.kernel_launches, 1);
        assert!(t.zerocopy_bytes > 0);
    }

    #[test]
    fn static_kernel_counts_whole_graph() {
        // K4: 4 triangles × 6 embeddings = 24.
        let g0 = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let mut g = DynamicGraph::from_csr(&g0);
        g.begin_batch();
        g.seal_batch();
        let device = Device::new(GpuConfig::default());
        let src = ZeroCopySource { graph: &g, device: &device };
        let edges: Vec<_> = g0.edges().collect();
        let run = run_gpu_kernel_static(
            &device,
            &src,
            &queries::triangle(),
            &edges,
            &EngineConfig::default(),
        );
        assert_eq!(run.stats.matches, 24);
        assert!(run.imbalance >= 1.0);
        assert!(device.snapshot().zerocopy_bytes > 0);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let g0 = CsrGraph::from_edges(8, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (5, 6)]);
        let mut g = DynamicGraph::from_csr(&g0);
        let batch = vec![EdgeUpdate::insert(2, 4), EdgeUpdate::delete(0, 1)];
        let summary = g.apply_batch(&batch);
        let dev_a = Device::new(GpuConfig::default());
        let dev_b = Device::new(GpuConfig::default());
        let q = queries::triangle();
        let sa = {
            let src = ZeroCopySource { graph: &g, device: &dev_a };
            run_gpu_kernel(&dev_a, &src, &q, &summary.applied, &EngineConfig::default())
        };
        let sb = {
            let src = ZeroCopySource { graph: &g, device: &dev_b };
            let cfg = EngineConfig { parallel_kernel: false, ..EngineConfig::default() };
            run_gpu_kernel(&dev_b, &src, &q, &summary.applied, &cfg)
        };
        assert_eq!(sa.stats.matches, sb.stats.matches);
        assert_eq!(sa.stats.intersect_ops, sb.stats.intersect_ops);
        assert!((sa.imbalance - sb.imbalance).abs() < 1e-9);
        assert_eq!(dev_a.snapshot().zerocopy_bytes, dev_b.snapshot().zerocopy_bytes);
    }
}
