//! Multi-query processing: register several patterns over one stream.
//!
//! Production CSM deployments monitor many patterns at once (the paper's
//! motivating scenarios — rumor shapes, laundering patterns — are query
//! *sets*). Re-running the whole pipeline per query would repeat the graph
//! update and reorganisation work; [`MultiPipeline`] shares steps 1 and 5
//! of Fig. 3 across all registered queries and invokes each query's engine
//! on the same sealed batch.

use crate::engines::Engine;
use crate::result::BatchResult;
use gcsm_graph::{CsrGraph, DynamicGraph, EdgeUpdate};
use gcsm_pattern::QueryGraph;

/// A registered query with its engine.
struct Registered {
    query: QueryGraph,
    engine: Box<dyn Engine>,
}

/// Pipeline over one dynamic graph and many (query, engine) pairs.
pub struct MultiPipeline {
    graph: DynamicGraph,
    queries: Vec<Registered>,
}

/// Per-query outcome of one batch.
pub struct MultiBatchResult {
    /// Query name → result, in registration order.
    pub per_query: Vec<(String, BatchResult)>,
}

impl MultiBatchResult {
    /// Net `ΔM` summed over all queries (rarely meaningful; per-query
    /// results are the point).
    pub fn total_matches(&self) -> i64 {
        self.per_query.iter().map(|(_, r)| r.matches).sum()
    }

    /// Result for a named query.
    pub fn get(&self, name: &str) -> Option<&BatchResult> {
        self.per_query.iter().find(|(n, _)| n == name).map(|(_, r)| r)
    }
}

impl MultiPipeline {
    /// Pipeline over an initial snapshot.
    pub fn new(initial: CsrGraph) -> Self {
        Self { graph: DynamicGraph::from_csr(&initial), queries: Vec::new() }
    }

    /// Register a query with its own engine. Returns `self` for chaining.
    pub fn register(mut self, query: QueryGraph, engine: Box<dyn Engine>) -> Self {
        self.queries.push(Registered { query, engine });
        self
    }

    /// Number of registered queries.
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// The current graph.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// Process one batch for every registered query: one update, one
    /// reorganisation, `k` matching invocations.
    pub fn process_batch(&mut self, updates: &[EdgeUpdate]) -> MultiBatchResult {
        let mut batch_span = gcsm_obs::span("batch", gcsm_obs::cat::PIPELINE);
        batch_span.set_count(updates.len() as u64);
        // Step 1 (shared).
        {
            let _span = gcsm_obs::span("ingest", gcsm_obs::cat::PIPELINE);
            self.graph.begin_batch();
            for &u in updates {
                self.graph.apply(u);
            }
        }
        let summary = {
            let _span = gcsm_obs::span("seal", gcsm_obs::cat::PIPELINE);
            self.graph.seal_batch()
        };
        let cpu_bw =
            self.queries.first().map(|r| r.engine.config().gpu.cpu_mem_bandwidth).unwrap_or(25.0e9);
        let touched_bytes: usize =
            self.graph.updated_vertices().iter().map(|&v| self.graph.list_bytes(v)).sum();
        let update_sim = touched_bytes as f64 / cpu_bw;

        // Steps 2–4 per query.
        let mut per_query = Vec::with_capacity(self.queries.len());
        for reg in &mut self.queries {
            let mut r = reg.engine.match_sealed(&self.graph, &summary.applied, &reg.query);
            // The shared update cost is attributed once, to the first query.
            if per_query.is_empty() {
                r.phases.update += update_sim;
            }
            per_query.push((reg.query.name().to_string(), r));
        }

        // Step 5 (shared).
        let reorg_bytes: usize =
            self.graph.updated_vertices().iter().map(|&v| self.graph.list_bytes(v)).sum();
        self.graph.reorganize();
        if let Some((_, first)) = per_query.first_mut() {
            first.phases.reorganize += 2.0 * reorg_bytes as f64 / cpu_bw;
        }
        drop(batch_span);
        for (_, r) in &per_query {
            crate::result::record_batch_metrics(r);
        }
        MultiBatchResult { per_query }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::engines::{CpuWcojEngine, GcsmEngine, ZeroCopyEngine};
    use crate::pipeline::Pipeline;
    use gcsm_pattern::queries;

    fn setup() -> (CsrGraph, Vec<EdgeUpdate>) {
        let g0 = CsrGraph::from_edges(7, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5)]);
        let batch =
            vec![EdgeUpdate::insert(2, 4), EdgeUpdate::insert(3, 5), EdgeUpdate::delete(0, 1)];
        (g0, batch)
    }

    #[test]
    fn multi_matches_individual_pipelines() {
        let (g0, batch) = setup();
        let cfg = EngineConfig::default();
        let mut multi = MultiPipeline::new(g0.clone())
            .register(queries::triangle(), Box::new(GcsmEngine::new(cfg.clone())))
            .register(queries::fig1_kite(), Box::new(ZeroCopyEngine::new(cfg.clone())))
            .register(queries::q1(), Box::new(CpuWcojEngine::new(cfg.clone())));
        assert_eq!(multi.num_queries(), 3);
        let res = multi.process_batch(&batch);

        for q in [queries::triangle(), queries::fig1_kite(), queries::q1()] {
            let mut single = Pipeline::new(g0.clone(), q.clone());
            let mut e = ZeroCopyEngine::new(cfg.clone());
            let expect = single.process_batch(&mut e, &batch).matches;
            assert_eq!(
                res.get(q.name()).expect("registered").matches,
                expect,
                "{} diverges",
                q.name()
            );
        }
        assert!(multi.graph().updated_vertices().is_empty(), "reorganized once");
    }

    #[test]
    fn streaming_multiple_batches() {
        let (g0, batch) = setup();
        let cfg = EngineConfig::default();
        let mut multi = MultiPipeline::new(g0)
            .register(queries::triangle(), Box::new(GcsmEngine::new(cfg.clone())));
        let r1 = multi.process_batch(&batch);
        let r2 = multi.process_batch(&[EdgeUpdate::insert(0, 1)]);
        // Batch 2 restores triangle {0,1,2}.
        assert_eq!(r2.per_query[0].1.matches, 6);
        assert!(r1.total_matches() != 0 || r2.total_matches() != 0);
    }

    #[test]
    fn empty_registration_is_fine() {
        let (g0, batch) = setup();
        let mut multi = MultiPipeline::new(g0);
        let r = multi.process_batch(&batch);
        assert!(r.per_query.is_empty());
        assert_eq!(r.total_matches(), 0);
    }
}
