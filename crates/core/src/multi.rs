//! Multi-query processing: register several patterns over one stream.
//!
//! Production CSM deployments monitor many patterns at once (the paper's
//! motivating scenarios — rumor shapes, laundering patterns — are query
//! *sets*). Re-running the whole pipeline per query would repeat the graph
//! update and reorganisation work; [`MultiPipeline`] shares steps 1 and 5
//! of Fig. 3 across all registered queries and invokes each query's engine
//! on the same sealed batch.
//!
//! The pipeline-level mechanisms of [`crate::Pipeline`] apply here too:
//! [`MultiPipeline::set_overlap`] detaches the shared Step-5 reorganisation
//! onto a worker thread while the next batch is ingested (charging only the
//! exposed remainder), and each engine's own `EngineConfig` — including
//! `delta_cache` — governs its matching invocation unchanged. Each query's
//! invocation is traced as a `query` span (`level` = registration index).

use crate::engines::Engine;
use crate::result::BatchResult;
use gcsm_graph::{CsrGraph, DynamicGraph, EdgeUpdate, ReorgResult};
use gcsm_pattern::QueryGraph;

/// A registered query with its engine.
struct Registered {
    query: QueryGraph,
    engine: Box<dyn Engine>,
}

/// An in-flight overlapped reorganization of the previous batch.
struct PendingReorg {
    handle: std::thread::JoinHandle<ReorgResult>,
    /// Modeled CPU seconds of the detached merge work; charged as the
    /// exposed remainder once the next batch's ingest window is known.
    sim_seconds: f64,
}

/// Pipeline over one dynamic graph and many (query, engine) pairs.
pub struct MultiPipeline {
    graph: DynamicGraph,
    queries: Vec<Registered>,
    /// Batches processed so far; labels the `batch` spans in traces.
    batches: u64,
    /// Double-buffered mode: reorganize batch *k* while ingesting *k+1*.
    overlap: bool,
    pending: Option<PendingReorg>,
}

/// Per-query outcome of one batch.
pub struct MultiBatchResult {
    /// Query name → result, in registration order.
    pub per_query: Vec<(String, BatchResult)>,
}

impl MultiBatchResult {
    /// Net `ΔM` summed over all queries (rarely meaningful; per-query
    /// results are the point).
    pub fn total_matches(&self) -> i64 {
        self.per_query.iter().map(|(_, r)| r.matches).sum()
    }

    /// Result for a named query.
    pub fn get(&self, name: &str) -> Option<&BatchResult> {
        self.per_query.iter().find(|(n, _)| n == name).map(|(_, r)| r)
    }
}

impl MultiPipeline {
    /// Pipeline over an initial snapshot.
    pub fn new(initial: CsrGraph) -> Self {
        Self {
            graph: DynamicGraph::from_csr(&initial),
            queries: Vec::new(),
            batches: 0,
            overlap: false,
            pending: None,
        }
    }

    /// Enable/disable overlapped reorganization for subsequent batches. An
    /// already in-flight reorganization (if any) still joins normally on
    /// the next batch or [`Self::flush`].
    pub fn set_overlap(&mut self, on: bool) {
        self.overlap = on;
    }

    /// Whether overlapped reorganization is enabled.
    pub fn overlap(&self) -> bool {
        self.overlap
    }

    /// Join and install an in-flight overlapped reorganization, if any.
    /// Returns the modeled CPU seconds of the joined work that no later
    /// batch will hide (0.0 when nothing was pending).
    pub fn flush(&mut self) -> f64 {
        match self.pending.take() {
            Some(p) => {
                let res = p.handle.join().expect("reorganize worker panicked");
                self.graph.install_reorg(res);
                p.sim_seconds
            }
            None => 0.0,
        }
    }

    /// Register a query with its own engine. Returns `self` for chaining.
    pub fn register(mut self, query: QueryGraph, engine: Box<dyn Engine>) -> Self {
        self.queries.push(Registered { query, engine });
        self
    }

    /// Number of registered queries.
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// The current graph.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// Process one batch for every registered query: one update, one
    /// reorganisation, `k` matching invocations.
    pub fn process_batch(&mut self, updates: &[EdgeUpdate]) -> MultiBatchResult {
        let mut batch_span = gcsm_obs::span("batch", gcsm_obs::cat::PIPELINE);
        batch_span.set_batch(self.batches);
        batch_span.set_count(updates.len() as u64);
        self.batches += 1;
        // Step 1 (shared). With an overlapped reorganization in flight the
        // updates are journaled (staged batch) and replay inside
        // `seal_batch` after the merge result lands, as in `Pipeline`.
        {
            let _span = gcsm_obs::span("ingest", gcsm_obs::cat::PIPELINE);
            if self.pending.is_some() {
                self.graph.begin_staged_batch();
            } else {
                self.graph.begin_batch();
            }
            for &u in updates {
                self.graph.apply(u);
            }
        }
        let carried_sim = self.flush();
        let summary = {
            let _span = gcsm_obs::span("seal", gcsm_obs::cat::PIPELINE);
            self.graph.seal_batch()
        };
        let cpu_bw =
            self.queries.first().map(|r| r.engine.config().gpu.cpu_mem_bandwidth).unwrap_or(25.0e9);
        let touched_bytes: usize =
            self.graph.updated_vertices().iter().map(|&v| self.graph.list_bytes(v)).sum();
        let update_sim = touched_bytes as f64 / cpu_bw;
        // Exposed remainder of the joined overlapped work: only what its
        // modeled cost exceeds the ingest window it hid behind.
        let exposed_sim = (carried_sim - update_sim).max(0.0);

        // Steps 2–4 per query.
        let mut per_query = Vec::with_capacity(self.queries.len());
        for (idx, reg) in self.queries.iter_mut().enumerate() {
            let mut q_span = gcsm_obs::span("query", gcsm_obs::cat::ENGINE);
            q_span.set_batch(self.batches - 1);
            q_span.set_level(idx as u32);
            let mut r = reg.engine.match_sealed(&self.graph, &summary.applied, &reg.query);
            // The shared update cost is attributed once, to the first query.
            if per_query.is_empty() {
                r.phases.update += update_sim;
            }
            per_query.push((reg.query.name().to_string(), r));
        }

        // Step 5 (shared).
        let reorg_bytes: usize =
            self.graph.updated_vertices().iter().map(|&v| self.graph.list_bytes(v)).sum();
        let reorg_sim = 2.0 * reorg_bytes as f64 / cpu_bw;
        let deferred = if self.overlap {
            let task = self.graph.take_reorg_task();
            if task.is_trivial() {
                self.graph.install_reorg(task.compute());
                false
            } else {
                let handle = std::thread::spawn(move || {
                    let mut span = gcsm_obs::span("reorg_overlap", gcsm_obs::cat::GRAPH);
                    let res = task.compute();
                    span.set_count(res.len() as u64);
                    res
                });
                self.pending = Some(PendingReorg { handle, sim_seconds: reorg_sim });
                true
            }
        } else {
            self.graph.reorganize();
            false
        };
        if let Some((_, first)) = per_query.first_mut() {
            first.phases.reorganize += exposed_sim + if deferred { 0.0 } else { reorg_sim };
        }
        drop(batch_span);
        for (_, r) in &per_query {
            crate::result::record_batch_metrics(r);
        }
        MultiBatchResult { per_query }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::engines::{CpuWcojEngine, GcsmEngine, ZeroCopyEngine};
    use crate::pipeline::Pipeline;
    use gcsm_pattern::queries;

    fn setup() -> (CsrGraph, Vec<EdgeUpdate>) {
        let g0 = CsrGraph::from_edges(7, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5)]);
        let batch =
            vec![EdgeUpdate::insert(2, 4), EdgeUpdate::insert(3, 5), EdgeUpdate::delete(0, 1)];
        (g0, batch)
    }

    #[test]
    fn multi_matches_individual_pipelines() {
        let (g0, batch) = setup();
        let cfg = EngineConfig::default();
        let mut multi = MultiPipeline::new(g0.clone())
            .register(queries::triangle(), Box::new(GcsmEngine::new(cfg.clone())))
            .register(queries::fig1_kite(), Box::new(ZeroCopyEngine::new(cfg.clone())))
            .register(queries::q1(), Box::new(CpuWcojEngine::new(cfg.clone())));
        assert_eq!(multi.num_queries(), 3);
        let res = multi.process_batch(&batch);

        for q in [queries::triangle(), queries::fig1_kite(), queries::q1()] {
            let mut single = Pipeline::new(g0.clone(), q.clone());
            let mut e = ZeroCopyEngine::new(cfg.clone());
            let expect = single.process_batch(&mut e, &batch).matches;
            assert_eq!(
                res.get(q.name()).expect("registered").matches,
                expect,
                "{} diverges",
                q.name()
            );
        }
        assert!(multi.graph().updated_vertices().is_empty(), "reorganized once");
    }

    #[test]
    fn streaming_multiple_batches() {
        let (g0, batch) = setup();
        let cfg = EngineConfig::default();
        let mut multi = MultiPipeline::new(g0)
            .register(queries::triangle(), Box::new(GcsmEngine::new(cfg.clone())));
        let r1 = multi.process_batch(&batch);
        let r2 = multi.process_batch(&[EdgeUpdate::insert(0, 1)]);
        // Batch 2 restores triangle {0,1,2}.
        assert_eq!(r2.per_query[0].1.matches, 6);
        assert!(r1.total_matches() != 0 || r2.total_matches() != 0);
    }

    #[test]
    fn overlapped_multi_matches_serial() {
        let (g0, batch) = setup();
        let cfg = EngineConfig::default();
        let batches: Vec<Vec<EdgeUpdate>> = vec![
            batch,
            vec![EdgeUpdate::insert(0, 1), EdgeUpdate::insert(1, 5)],
            vec![EdgeUpdate::delete(2, 4), EdgeUpdate::insert(0, 6)],
        ];
        let build = |overlap: bool| {
            let mut m = MultiPipeline::new(g0.clone())
                .register(queries::triangle(), Box::new(GcsmEngine::new(cfg.clone())))
                .register(queries::q1(), Box::new(ZeroCopyEngine::new(cfg.clone())));
            m.set_overlap(overlap);
            m
        };
        let mut serial = build(false);
        let mut overlapped = build(true);
        for b in &batches {
            let rs = serial.process_batch(b);
            let ro = overlapped.process_batch(b);
            for ((n1, r1), (n2, r2)) in rs.per_query.iter().zip(ro.per_query.iter()) {
                assert_eq!(n1, n2);
                assert_eq!(r1.matches, r2.matches, "{n1} diverged under overlap");
            }
        }
        overlapped.flush();
        assert!(overlapped.graph().updated_vertices().is_empty());
        let a = serial.graph().to_csr().edges().collect::<Vec<_>>();
        let b = overlapped.graph().to_csr().edges().collect::<Vec<_>>();
        assert_eq!(a, b, "final graphs must agree");
    }

    #[test]
    fn delta_cache_config_flows_through_registered_engines() {
        let (g0, batch) = setup();
        let cached = EngineConfig { delta_cache: true, ..Default::default() };
        let plain = EngineConfig::default();
        let mut with_cache = MultiPipeline::new(g0.clone())
            .register(queries::triangle(), Box::new(GcsmEngine::new(cached)));
        let mut without =
            MultiPipeline::new(g0).register(queries::triangle(), Box::new(GcsmEngine::new(plain)));
        let batches = [batch, vec![EdgeUpdate::insert(0, 4), EdgeUpdate::insert(1, 6)]];
        let mut dma_cached = 0u64;
        let mut dma_plain = 0u64;
        for b in &batches {
            let rc = with_cache.process_batch(b);
            let rp = without.process_batch(b);
            assert_eq!(
                rc.per_query[0].1.matches, rp.per_query[0].1.matches,
                "delta shipping must not change counts"
            );
            dma_cached += rc.per_query[0].1.traffic.dma_bytes;
            dma_plain += rp.per_query[0].1.traffic.dma_bytes;
        }
        // After warm-up, delta shipping can only reduce DMA volume.
        assert!(dma_cached <= dma_plain, "delta {dma_cached} vs full {dma_plain}");
    }

    #[test]
    fn empty_registration_is_fine() {
        let (g0, batch) = setup();
        let mut multi = MultiPipeline::new(g0);
        let r = multi.process_batch(&batch);
        assert!(r.per_query.is_empty());
        assert_eq!(r.total_matches(), 0);
    }
}
