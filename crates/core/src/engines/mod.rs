//! The evaluated systems.
//!
//! | Engine | Paper role | Data policy |
//! |---|---|---|
//! | [`GcsmEngine`] | the contribution | random-walk-selected DCSR cache, zero-copy fallback |
//! | [`ZeroCopyEngine`] | naive GPU (ZP) | everything zero-copy from CPU |
//! | [`UnifiedMemEngine`] | naive GPU (UM) | everything through unified memory |
//! | [`VsgmEngine`] | prior work \[20\] | copy all k-hop lists, then device-only |
//! | [`NaiveDegreeEngine`] | naive cache | GCSM's cache with degree ranking |
//! | [`CpuWcojEngine`] | CPU baseline | host memory, 32-thread WCOJ |
//! | [`RapidFlowEngine`] | prior work \[15\] | host memory + candidate index |
//!
//! All engines produce identical `ΔM` on identical sealed batches (enforced
//! by the integration suite); they differ only in traffic and therefore in
//! simulated time.

mod cpu;
mod gcsm_engine;
mod naive;
mod rapidflow;
mod recompute;
mod unified;
mod vsgm;
mod zerocopy;

pub use cpu::CpuWcojEngine;
pub use gcsm_engine::GcsmEngine;
pub use naive::NaiveDegreeEngine;
pub use rapidflow::RapidFlowEngine;
pub use recompute::RecomputeEngine;
pub use unified::UnifiedMemEngine;
pub use vsgm::VsgmEngine;
pub use zerocopy::ZeroCopyEngine;

use crate::config::EngineConfig;
use crate::result::BatchResult;
use gcsm_gpusim::Device;
use gcsm_graph::{DynamicGraph, EdgeUpdate};
use gcsm_pattern::QueryGraph;

/// A continuous-subgraph-matching system under evaluation.
///
/// The pipeline owns the dynamic graph and the batch lifecycle; engines see
/// the *sealed* graph (old and new views live) plus the applied updates and
/// return the measured [`BatchResult`]. Reorganisation happens after the
/// engine returns, matching the paper's ordering ("the graph reorganization
/// on CPU is conducted after the matching is completed on the GPU").
///
/// `Send` so sessions (`crate::stream`) can move engines onto the worker
/// thread; engines hold only plain data and seeded RNG state.
pub trait Engine: Send {
    /// Display name used in figures ("GCSM", "ZP", ...).
    fn name(&self) -> &'static str;

    /// The engine's configuration (the pipeline uses its cost constants).
    fn config(&self) -> &EngineConfig;

    /// Match one sealed batch.
    fn match_sealed(
        &mut self,
        graph: &DynamicGraph,
        batch: &[EdgeUpdate],
        query: &QueryGraph,
    ) -> BatchResult;
}

/// Shared scaffolding: snapshot bracketing and result assembly.
pub(crate) struct Measurer<'a> {
    device: &'a Device,
    cfg: &'a EngineConfig,
    start: gcsm_gpusim::TrafficSnapshot,
    wall_start: gcsm_obs::Stopwatch,
}

impl<'a> Measurer<'a> {
    pub(crate) fn begin(device: &'a Device, cfg: &'a EngineConfig) -> Self {
        Self { device, cfg, start: device.snapshot(), wall_start: gcsm_obs::Stopwatch::start() }
    }

    /// Simulated seconds of the traffic accumulated since the last call
    /// (also re-arms the snapshot).
    pub(crate) fn lap(&mut self) -> f64 {
        let now = self.device.snapshot();
        let interval = now - self.start;
        self.start = now;
        gcsm_gpusim::SimBreakdown::from_traffic(&interval, &self.cfg.gpu).total()
    }

    /// Assemble the result from the overall interval.
    pub(crate) fn finish(
        self,
        name: &str,
        stats: gcsm_matcher::MatchStats,
        phases: crate::result::PhaseBreakdown,
        cached_bytes: usize,
        aux_bytes: usize,
        overall_start: gcsm_gpusim::TrafficSnapshot,
    ) -> BatchResult {
        let traffic = self.device.snapshot() - overall_start;
        let sim = gcsm_gpusim::SimBreakdown::from_traffic(&traffic, &self.cfg.gpu);
        BatchResult {
            engine: name.to_string(),
            matches: stats.matches,
            phases,
            cpu_access_bytes: traffic.cpu_access_bytes(self.cfg.gpu.um_page),
            cache_hit_rate: traffic.cache_hit_rate(),
            traffic,
            sim,
            wall_seconds: self.wall_start.elapsed_seconds(),
            cached_bytes,
            stats,
            aux_bytes,
            stream: None,
        }
    }
}
