//! GCSM — the paper's system.
//!
//! Per sealed batch (steps 2–4 of Fig. 3):
//!
//! 1. **FE** — merged random walks estimate per-vertex access frequency
//!    (`M = |ΔE|·D^{n−2}/32^n` walks per delta plan by default);
//! 2. **DC** — the top-frequency vertices that fit the GPU buffer are
//!    packed into DCSR and shipped with a single DMA;
//! 3. **Match** — the incremental kernel runs with cache-hit reads from
//!    device memory and zero-copy fallback for misses.
//!
//! FE and host-side packing are CPU work, charged at CPU compute/bandwidth
//! cost; everything else comes out of the recorded traffic.

use super::{Engine, Measurer};
use crate::config::EngineConfig;
use crate::kernel::run_gpu_kernel_with_plans;
use crate::result::{BatchResult, PhaseBreakdown};
use crate::sources::CachedSource;
use gcsm_cache::{Dcsr, DeltaPlan, DeltaPlanner};
use gcsm_freq::{
    estimate_merged, recommended_walks, select_top_frequency, FreqEstimate, WalkParams,
};
use gcsm_gpusim::Device;
use gcsm_graph::{DynamicGraph, EdgeUpdate};
use gcsm_matcher::DynSource;
use gcsm_pattern::{compile_incremental, compile_incremental_scored, QueryGraph};

/// The GCSM engine.
pub struct GcsmEngine {
    cfg: EngineConfig,
    device: Device,
    /// Last batch's estimate (inspection/Fig. 15b coverage eval).
    last_estimate: Option<FreqEstimate>,
    /// Last batch's cached vertex set.
    last_selection: Vec<gcsm_graph::VertexId>,
    /// Walks used by the most recent estimation (after adaptation).
    last_walks: u64,
    /// Incremental-cache state (used when `cfg.delta_cache` is on).
    planner: DeltaPlanner,
    /// Transfer plan of the most recent delta-cached batch.
    last_plan: Option<DeltaPlan>,
}

impl GcsmEngine {
    pub fn new(cfg: EngineConfig) -> Self {
        let device = Device::new(cfg.gpu);
        Self {
            cfg,
            device,
            last_estimate: None,
            last_selection: Vec::new(),
            last_walks: 0,
            planner: DeltaPlanner::new(),
            last_plan: None,
        }
    }

    /// The delta transfer plan of the most recent batch (None until a
    /// batch runs with `delta_cache` enabled).
    pub fn last_plan(&self) -> Option<&DeltaPlan> {
        self.last_plan.as_ref()
    }

    /// Rows currently resident on the device under delta caching.
    pub fn resident(&self) -> &[gcsm_graph::VertexId] {
        self.planner.resident()
    }

    /// Number of walks the last estimation actually used (post-adaptation).
    pub fn last_walks(&self) -> u64 {
        self.last_walks
    }

    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The frequency estimate of the most recent batch.
    pub fn last_estimate(&self) -> Option<&FreqEstimate> {
        self.last_estimate.as_ref()
    }

    /// The cached vertex set of the most recent batch (`T` in the coverage
    /// metric of Sec. VI-D).
    pub fn last_selection(&self) -> &[gcsm_graph::VertexId] {
        &self.last_selection
    }

    fn walks(&self, query: &QueryGraph, batch_len: usize, max_degree: usize) -> u64 {
        self.cfg
            .walks_override
            .unwrap_or_else(|| recommended_walks(query.num_vertices(), batch_len, max_degree))
    }
}

impl Engine for GcsmEngine {
    fn name(&self) -> &'static str {
        "GCSM"
    }

    fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    fn match_sealed(
        &mut self,
        graph: &DynamicGraph,
        batch: &[EdgeUpdate],
        query: &QueryGraph,
    ) -> BatchResult {
        let overall = self.device.snapshot();
        let mut m = Measurer::begin(&self.device, &self.cfg);
        let mut phases = PhaseBreakdown::default();
        let mut delta_span = gcsm_obs::span("delta_build", gcsm_obs::cat::ENGINE);
        delta_span.set_count(batch.len() as u64);
        let fe_span = gcsm_obs::span("freq_est", gcsm_obs::cat::ENGINE);

        // ---- Step 2: frequency estimation (host) ----
        let plans = if self.cfg.optimized_order {
            // The paper's future-work integration: order pattern vertices
            // by ascending global candidate count (label + degree filter),
            // the cheap proxy for RapidFlow's index cardinalities.
            let scores: Vec<f64> = (0..query.num_vertices())
                .map(|u| {
                    let (lu, du) = (query.label(u), query.degree(u));
                    (0..graph.num_vertices() as gcsm_graph::VertexId)
                        .filter(|&v| graph.label(v) == lu && graph.new_degree(v) >= du)
                        .count() as f64
                })
                .collect();
            (0..query.num_edges())
                .map(|i| compile_incremental_scored(query, i, self.cfg.plan, &scores))
                .collect()
        } else {
            compile_incremental(query, self.cfg.plan)
        };
        let d = graph.max_degree_bound();
        let recommended = self.walks(query, batch.len(), d);
        let host_src = DynSource::new(graph);
        let est = if self.cfg.adaptive_walks {
            // Sec. IV-A's adaptive loop: start small, check Eq. (5)
            // against the smallest estimated frequency, resample if the
            // confidence target is unmet.
            let mut walks = (recommended / 4).max(64);
            let mut round = 0;
            loop {
                let est = estimate_merged(
                    &host_src,
                    &plans,
                    batch,
                    d,
                    &WalkParams { walks, seed: self.cfg.walk_seed + round as u64 },
                );
                self.last_walks = walks;
                round += 1;
                if round >= EngineConfig::ADAPTIVE_MAX_ROUNDS {
                    break est;
                }
                let Some(min_freq) = est.min_nonzero() else { break est };
                match gcsm_freq::adaptive_walk_target(
                    query.num_vertices(),
                    EngineConfig::ADAPTIVE_ALPHA,
                    batch.len().max(1),
                    d,
                    EngineConfig::ADAPTIVE_CONFIDENCE,
                    min_freq,
                    walks,
                ) {
                    Ok(()) => break est,
                    Err(need) => {
                        let capped = need.min(recommended * 4);
                        if capped <= walks {
                            break est;
                        }
                        phases.freq_est += est.walk_ops as f64 * self.cfg.gpu.walk_op_cost;
                        walks = capped;
                    }
                }
            }
        } else {
            self.last_walks = recommended;
            estimate_merged(
                &host_src,
                &plans,
                batch,
                d,
                &WalkParams { walks: recommended, seed: self.cfg.walk_seed },
            )
        };
        phases.freq_est += est.walk_ops as f64 * self.cfg.gpu.walk_op_cost;
        drop(fe_span);
        let dc_span = gcsm_obs::span("data_copy", gcsm_obs::cat::ENGINE);

        // ---- Step 3: select, pack, DMA (host + link) ----
        let budget = self.cfg.gpu.cache_budget();
        let selection = select_top_frequency(&est, budget, |v| graph.list_bytes(v));
        let (dcsr, shipped_bytes) = if self.cfg.delta_cache {
            // Extension: the cache is a persistent device resident — diff
            // against it and ship only new or changed rows (plus the
            // always-refreshed index arrays), evicting under the device
            // budget. The updated set is the seal-time snapshot derived
            // from the batch itself, never the live graph (which an
            // overlapped reorganize may already have cleaned).
            let mut span = gcsm_obs::span("cache_delta", gcsm_obs::cat::ENGINE);
            let updated = gcsm_cache::updated_set(batch);
            let (dcsr, plan) =
                self.planner.update_bounded(graph, &selection.vertices, &updated, budget);
            let meta = dcsr.bytes() - dcsr.colidx.len() * std::mem::size_of::<u32>();
            let shipped = plan.transfer_bytes(graph) + meta;
            // What a full repack of the (pre-eviction) selection would ship.
            let n = selection.vertices.len();
            let full = selection.vertices.iter().map(|&v| graph.list_bytes(v)).sum::<usize>()
                + n * Dcsr::ROW_META_BYTES
                + std::mem::size_of::<(i64, i64)>();
            span.set_count(plan.keep.len() as u64);
            self.device.dma_delta(shipped, full.saturating_sub(shipped));
            self.last_plan = Some(plan);
            drop(span);
            (dcsr, shipped)
        } else {
            let dcsr = Dcsr::pack(graph, &selection.vertices);
            let bytes = dcsr.bytes();
            self.device.dma(bytes);
            (dcsr, bytes)
        };
        let cached_bytes = dcsr.bytes();
        // Host-side packing streams the shipped lists once.
        phases.data_copy = m.lap() + shipped_bytes as f64 / self.cfg.gpu.cpu_mem_bandwidth;
        drop(dc_span);
        drop(delta_span);

        // ---- Step 4: the matching kernel (same plans the walks sampled) ----
        let src = CachedSource { graph, device: &self.device, dcsr: &dcsr };
        let run = {
            let _span = gcsm_obs::span("matching", gcsm_obs::cat::ENGINE);
            run_gpu_kernel_with_plans(&self.device, &src, &plans, batch, &self.cfg)
        };
        // Stretch the kernel's time by the grid load-imbalance factor of
        // the configured scheduling policy (1.0 under perfect balance).
        phases.matching = m.lap() * run.imbalance;
        let stats = run.stats;

        self.last_estimate = Some(est);
        // The rows actually cached (post-eviction under delta mode).
        self.last_selection = dcsr.rowidx.clone();
        m.finish(self.name(), stats, phases, cached_bytes, 0, overall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::ZeroCopyEngine;
    use gcsm_graph::CsrGraph;
    use gcsm_pattern::queries;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn skewed_graph(n: usize, seed: u64) -> CsrGraph {
        // Preferential-attachment-ish: early vertices become hubs.
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = gcsm_graph::CsrBuilder::new(n);
        for v in 1..n as u32 {
            for _ in 0..3 {
                let target = rng.gen_range(0..v.max(1));
                b.add_edge(v, target);
            }
        }
        b.build()
    }

    fn batch_for(g: &CsrGraph, k: usize, seed: u64) -> Vec<EdgeUpdate> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut batch = Vec::new();
        let mut used = std::collections::HashSet::new();
        while batch.len() < k {
            let a = rng.gen_range(0..g.num_vertices() as u32);
            let b2 = rng.gen_range(0..g.num_vertices() as u32);
            let (a, b2) = (a.min(b2), a.max(b2));
            if a != b2 && !g.has_edge(a, b2) && used.insert((a, b2)) {
                batch.push(EdgeUpdate::insert(a, b2));
            }
        }
        batch
    }

    #[test]
    fn gcsm_matches_zero_copy_count_with_less_cpu_traffic() {
        let g0 = skewed_graph(400, 3);
        let batch = batch_for(&g0, 40, 17);

        let mut g1 = DynamicGraph::from_csr(&g0);
        let s1 = g1.apply_batch(&batch);
        let mut zp = ZeroCopyEngine::new(EngineConfig::default());
        let rz = zp.match_sealed(&g1, &s1.applied, &queries::triangle());

        let mut g2 = DynamicGraph::from_csr(&g0);
        let s2 = g2.apply_batch(&batch);
        let mut gcsm = GcsmEngine::new(EngineConfig::default());
        let rg = gcsm.match_sealed(&g2, &s2.applied, &queries::triangle());

        assert_eq!(rz.matches, rg.matches, "engines must agree on ΔM");
        assert!(
            rg.cpu_access_bytes < rz.cpu_access_bytes,
            "cache must cut CPU traffic: {} vs {}",
            rg.cpu_access_bytes,
            rz.cpu_access_bytes
        );
        assert!(rg.cache_hit_rate > 0.5, "hit rate {}", rg.cache_hit_rate);
        assert!(rg.cached_bytes > 0);
        assert!(rg.phases.freq_est > 0.0);
        assert!(rg.phases.data_copy > 0.0);
    }

    #[test]
    fn walks_override_is_honored() {
        let g0 = skewed_graph(100, 5);
        let batch = batch_for(&g0, 8, 2);
        let mut g = DynamicGraph::from_csr(&g0);
        let s = g.apply_batch(&batch);
        let cfg = EngineConfig { walks_override: Some(16), ..Default::default() };
        let mut e = GcsmEngine::new(cfg);
        let r = e.match_sealed(&g, &s.applied, &queries::triangle());
        let _ = r.matches; // any count is fine — the point is it ran without panic
        assert!(e.last_estimate().is_some());
    }

    #[test]
    fn adaptive_walks_run_and_agree_on_counts() {
        let g0 = skewed_graph(300, 11);
        let batch = batch_for(&g0, 24, 8);

        let mut g1 = DynamicGraph::from_csr(&g0);
        let s1 = g1.apply_batch(&batch);
        let mut fixed = GcsmEngine::new(EngineConfig::default());
        let rf = fixed.match_sealed(&g1, &s1.applied, &queries::triangle());

        let mut g2 = DynamicGraph::from_csr(&g0);
        let s2 = g2.apply_batch(&batch);
        let cfg = EngineConfig { adaptive_walks: true, ..Default::default() };
        let mut adaptive = GcsmEngine::new(cfg);
        let ra = adaptive.match_sealed(&g2, &s2.applied, &queries::triangle());

        assert_eq!(rf.matches, ra.matches, "adaptation must not change counts");
        assert!(adaptive.last_walks() > 0);
        assert!(ra.phases.freq_est > 0.0);
    }

    #[test]
    fn optimized_order_preserves_counts() {
        let g0 = skewed_graph(300, 17);
        let batch = batch_for(&g0, 24, 9);
        let mut counts = Vec::new();
        for opt in [false, true] {
            let mut g = DynamicGraph::from_csr(&g0);
            let s = g.apply_batch(&batch);
            let cfg = EngineConfig { optimized_order: opt, ..Default::default() };
            let mut e = GcsmEngine::new(cfg);
            counts.push(e.match_sealed(&g, &s.applied, &queries::q1()).matches);
        }
        assert_eq!(counts[0], counts[1], "ordering must not change ΔM");
    }

    #[test]
    fn delta_cache_cuts_dma_on_stable_selection() {
        // Batches oscillate over the same edge set, so consecutive
        // selections overlap heavily — the case delta shipping targets.
        let g0 = skewed_graph(300, 21);
        let edges = batch_for(&g0, 12, 55);
        let deletes: Vec<EdgeUpdate> =
            edges.iter().map(|u| EdgeUpdate::delete(u.src, u.dst)).collect();
        let rounds: Vec<&[EdgeUpdate]> = vec![&edges, &deletes, &edges, &deletes];

        let mut dma = [0u64; 2];
        let mut counts = [0i64; 2];
        for (i, delta) in [false, true].into_iter().enumerate() {
            let cfg = EngineConfig { delta_cache: delta, ..Default::default() };
            let mut engine = GcsmEngine::new(cfg);
            // A deeper pattern (the kite) accesses neighbors beyond the
            // batch endpoints; those rows are the keepable ones.
            let mut pipeline = crate::Pipeline::new(g0.clone(), queries::fig1_kite());
            for batch in &rounds {
                let r = pipeline.process_batch(&mut engine, batch);
                dma[i] += r.traffic.dma_bytes;
                counts[i] += r.matches;
            }
        }
        assert_eq!(counts[0], counts[1], "delta cache must not change counts");
        assert!(dma[1] < dma[0], "delta cache must reduce DMA: {} vs {}", dma[1], dma[0]);
    }

    #[test]
    fn zero_budget_degrades_to_zero_copy_behavior() {
        let g0 = skewed_graph(150, 9);
        let batch = batch_for(&g0, 10, 4);
        let mut g = DynamicGraph::from_csr(&g0);
        let s = g.apply_batch(&batch);
        let mut e = GcsmEngine::new(EngineConfig::with_cache_budget(0));
        let r = e.match_sealed(&g, &s.applied, &queries::triangle());
        assert_eq!(r.cache_hit_rate, 0.0);
        assert!(e.last_selection().is_empty());
    }
}
