//! RF — the RapidFlow-like CPU comparator (Fig. 14).
//!
//! Wraps `gcsm_baselines::RapidFlow`: a per-pattern-vertex candidate index
//! plus cardinality-optimized matching orders. Index construction (first
//! batch) and per-batch maintenance are charged as CPU work; the index's
//! memory footprint is reported via `aux_bytes` — the quantity that makes
//! the real RapidFlow crash on the paper's billion-edge graphs.

use super::{Engine, Measurer};
use crate::config::EngineConfig;
use crate::result::{BatchResult, PhaseBreakdown};
use gcsm_baselines::RapidFlow;
use gcsm_gpusim::Device;
use gcsm_graph::{DynamicGraph, EdgeUpdate};
use gcsm_pattern::QueryGraph;

/// The RapidFlow-like engine.
pub struct RapidFlowEngine {
    cfg: EngineConfig,
    device: Device,
    inner: Option<RapidFlow>,
}

impl RapidFlowEngine {
    pub fn new(cfg: EngineConfig) -> Self {
        let device = Device::new(cfg.gpu);
        Self { cfg, device, inner: None }
    }

    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Candidate-index footprint after the last batch, bytes.
    pub fn index_bytes(&self) -> usize {
        self.inner.as_ref().map_or(0, RapidFlow::index_bytes)
    }
}

impl Engine for RapidFlowEngine {
    fn name(&self) -> &'static str {
        "RF"
    }

    fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    fn match_sealed(
        &mut self,
        graph: &DynamicGraph,
        batch: &[EdgeUpdate],
        query: &QueryGraph,
    ) -> BatchResult {
        let overall = self.device.snapshot();
        let mut m = Measurer::begin(&self.device, &self.cfg);
        let mut phases = PhaseBreakdown::default();

        // Index construction / maintenance, charged as CPU streaming work
        // over the index bytes plus one filter op per (vertex, qvertex).
        let delta_span = gcsm_obs::span("delta_build", gcsm_obs::cat::ENGINE);
        let maintenance_items;
        let rf = match &mut self.inner {
            slot @ None => {
                maintenance_items = graph.num_vertices() * query.num_vertices();
                slot.insert(RapidFlow::new(query.clone(), graph, self.cfg.plan))
            }
            Some(rf) => {
                rf.update_index(graph);
                maintenance_items = graph.updated_vertices().len() * query.num_vertices();
                rf
            }
        };
        phases.update = maintenance_items as f64 * self.cfg.gpu.cpu_op_cost
            + rf.index_bytes() as f64 / self.cfg.gpu.cpu_mem_bandwidth / 8.0;

        drop(delta_span);
        let stats = {
            let _span = gcsm_obs::span("matching", gcsm_obs::cat::ENGINE);
            rf.match_batch(graph, batch)
        };
        self.device.cpu_ops(stats.intersect_ops);
        phases.matching = m.lap();

        let index_bytes = rf.index_bytes();
        m.finish(self.name(), stats, phases, 0, index_bytes, overall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::CpuWcojEngine;
    use gcsm_graph::CsrGraph;
    use gcsm_pattern::queries;

    #[test]
    fn rf_agrees_with_cpu_and_reports_index_memory() {
        let g0 = CsrGraph::from_edges(
            10,
            &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 8), (8, 9)],
        );
        let batch = vec![EdgeUpdate::insert(3, 5), EdgeUpdate::delete(0, 1)];

        let mut g1 = DynamicGraph::from_csr(&g0);
        let s1 = g1.apply_batch(&batch);
        let mut rf = RapidFlowEngine::new(EngineConfig::default());
        let rr = rf.match_sealed(&g1, &s1.applied, &queries::triangle());

        let mut g2 = DynamicGraph::from_csr(&g0);
        let s2 = g2.apply_batch(&batch);
        let mut cpu = CpuWcojEngine::new(EngineConfig::default());
        let rc = cpu.match_sealed(&g2, &s2.applied, &queries::triangle());

        assert_eq!(rr.matches, rc.matches);
        assert!(rr.aux_bytes > 0, "index memory must be reported");
        assert_eq!(rf.index_bytes(), rr.aux_bytes);
    }

    #[test]
    fn index_persists_across_batches() {
        let g0 = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let mut g = DynamicGraph::from_csr(&g0);
        let mut rf = RapidFlowEngine::new(EngineConfig::default());
        let q = queries::triangle();
        for round in 0..3u32 {
            let s = g.apply_batch(&[EdgeUpdate::insert(round, round + 2)]);
            let r = rf.match_sealed(&g, &s.applied, &q);
            g.reorganize();
            assert!(r.matches >= 0);
        }
    }
}
