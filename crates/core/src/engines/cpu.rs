//! CPU — the paper's own CPU baseline.
//!
//! "We implement a CPU system based on the nested loops in Fig. 2, which
//! always starts the matching process from the updated edges. … our CPU
//! code uses the same stack-based implementation and the same matching
//! order as our GPU code", parallelized over the updated edges (32
//! threads). No PCIe traffic; everything is CPU compute, charged at the
//! CPU element-op cost.

use super::{Engine, Measurer};
use crate::config::EngineConfig;
use crate::result::{BatchResult, PhaseBreakdown};
use gcsm_gpusim::Device;
use gcsm_graph::{DynamicGraph, EdgeUpdate};
use gcsm_matcher::{match_incremental, DriverOptions, DynSource};
use gcsm_pattern::QueryGraph;

/// The CPU WCOJ engine.
pub struct CpuWcojEngine {
    cfg: EngineConfig,
    device: Device,
}

impl CpuWcojEngine {
    pub fn new(cfg: EngineConfig) -> Self {
        let device = Device::new(cfg.gpu);
        Self { cfg, device }
    }

    pub fn device(&self) -> &Device {
        &self.device
    }
}

impl Engine for CpuWcojEngine {
    fn name(&self) -> &'static str {
        "CPU"
    }

    fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    fn match_sealed(
        &mut self,
        graph: &DynamicGraph,
        batch: &[EdgeUpdate],
        query: &QueryGraph,
    ) -> BatchResult {
        let overall = self.device.snapshot();
        let mut m = Measurer::begin(&self.device, &self.cfg);
        let src = DynSource::new(graph);
        let opts = DriverOptions {
            algo: self.cfg.algo,
            enumerator: self.cfg.enumerator,
            plan: self.cfg.plan,
            parallel: self.cfg.parallel_kernel,
        };
        let stats = {
            let _span = gcsm_obs::span("matching", gcsm_obs::cat::ENGINE);
            match_incremental(&src, query, batch, &opts)
        };
        self.device.cpu_ops(stats.intersect_ops);
        let phases = PhaseBreakdown { matching: m.lap(), ..Default::default() };
        m.finish(self.name(), stats, phases, 0, 0, overall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::ZeroCopyEngine;
    use gcsm_graph::CsrGraph;
    use gcsm_pattern::queries;

    #[test]
    fn cpu_agrees_with_gpu_and_is_slower_per_op() {
        let g0 = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5)]);
        let batch = vec![EdgeUpdate::insert(2, 4), EdgeUpdate::insert(3, 5)];

        let mut g1 = DynamicGraph::from_csr(&g0);
        let s1 = g1.apply_batch(&batch);
        let mut cpu = CpuWcojEngine::new(EngineConfig::default());
        let rc = cpu.match_sealed(&g1, &s1.applied, &queries::triangle());

        let mut g2 = DynamicGraph::from_csr(&g0);
        let s2 = g2.apply_batch(&batch);
        let mut zp = ZeroCopyEngine::new(EngineConfig::default());
        let rz = zp.match_sealed(&g2, &s2.applied, &queries::triangle());

        assert_eq!(rc.matches, rz.matches);
        assert_eq!(rc.traffic.zerocopy_bytes, 0, "CPU engine never touches PCIe");
        assert_eq!(rc.traffic.cpu_ops, rc.stats.intersect_ops);
        assert!(rc.sim.cpu_compute > 0.0);
    }
}
