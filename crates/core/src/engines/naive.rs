//! Naive — GCSM's cache architecture with degree-based selection.
//!
//! "The fourth GPU baseline (Naive) adopts a similar configuration to our
//! system … However, it uses node degree as an estimate of access
//! frequency." The paper finds it performs like plain zero-copy: high
//! degree does not mean the batch will touch the vertex, and hub lists are
//! huge, so a byte budget buys very few of them.

use super::{Engine, Measurer};
use crate::config::EngineConfig;
use crate::kernel::run_gpu_kernel;
use crate::result::{BatchResult, PhaseBreakdown};
use crate::sources::CachedSource;
use gcsm_cache::{Dcsr, DeltaPlanner};
use gcsm_freq::select_by_degree;
use gcsm_gpusim::Device;
use gcsm_graph::{DynamicGraph, EdgeUpdate, VertexId};
use gcsm_pattern::QueryGraph;

/// The degree-ranked-cache engine.
pub struct NaiveDegreeEngine {
    cfg: EngineConfig,
    device: Device,
    last_selection: Vec<VertexId>,
    /// Incremental-cache state (used when `cfg.delta_cache` is on).
    planner: DeltaPlanner,
}

impl NaiveDegreeEngine {
    pub fn new(cfg: EngineConfig) -> Self {
        let device = Device::new(cfg.gpu);
        Self { cfg, device, last_selection: Vec::new(), planner: DeltaPlanner::new() }
    }

    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The cached vertex set of the most recent batch.
    pub fn last_selection(&self) -> &[VertexId] {
        &self.last_selection
    }
}

impl Engine for NaiveDegreeEngine {
    fn name(&self) -> &'static str {
        "Naive"
    }

    fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    fn match_sealed(
        &mut self,
        graph: &DynamicGraph,
        batch: &[EdgeUpdate],
        query: &QueryGraph,
    ) -> BatchResult {
        let overall = self.device.snapshot();
        let mut m = Measurer::begin(&self.device, &self.cfg);
        let mut phases = PhaseBreakdown::default();

        // ---- DC: rank every vertex by degree, pack under the budget ----
        let mut delta_span = gcsm_obs::span("delta_build", gcsm_obs::cat::ENGINE);
        let dc_span = gcsm_obs::span("data_copy", gcsm_obs::cat::ENGINE);
        let candidates: Vec<(VertexId, usize)> = (0..graph.num_vertices() as VertexId)
            .map(|v| (v, graph.new_degree(v)))
            .filter(|&(_, d)| d > 0)
            .collect();
        let budget = self.cfg.gpu.cache_budget();
        let selection = select_by_degree(candidates, budget, |v| graph.list_bytes(v));
        let (dcsr, shipped_bytes) = if self.cfg.delta_cache {
            // Same persistent-resident extension as GcsmEngine: ship only
            // rows the resident cache is missing or that this batch
            // changed, using the seal-time updated snapshot.
            let mut span = gcsm_obs::span("cache_delta", gcsm_obs::cat::ENGINE);
            let updated = gcsm_cache::updated_set(batch);
            let (dcsr, plan) =
                self.planner.update_bounded(graph, &selection.vertices, &updated, budget);
            let meta = dcsr.bytes() - dcsr.colidx.len() * std::mem::size_of::<u32>();
            let shipped = plan.transfer_bytes(graph) + meta;
            let n = selection.vertices.len();
            let full = selection.vertices.iter().map(|&v| graph.list_bytes(v)).sum::<usize>()
                + n * Dcsr::ROW_META_BYTES
                + std::mem::size_of::<(i64, i64)>();
            span.set_count(plan.keep.len() as u64);
            self.device.dma_delta(shipped, full.saturating_sub(shipped));
            (dcsr, shipped)
        } else {
            let dcsr = Dcsr::pack(graph, &selection.vertices);
            let bytes = dcsr.bytes();
            self.device.dma(bytes);
            (dcsr, bytes)
        };
        let cached_bytes = dcsr.bytes();
        phases.data_copy = m.lap() + shipped_bytes as f64 / self.cfg.gpu.cpu_mem_bandwidth;
        drop(dc_span);
        delta_span.set_count(dcsr.len() as u64);
        drop(delta_span);

        // ---- Match ----
        let src = CachedSource { graph, device: &self.device, dcsr: &dcsr };
        let run = {
            let _span = gcsm_obs::span("matching", gcsm_obs::cat::ENGINE);
            run_gpu_kernel(&self.device, &src, query, batch, &self.cfg)
        };
        // Stretch the kernel's time by the grid load-imbalance factor of
        // the configured scheduling policy (1.0 under perfect balance).
        phases.matching = m.lap() * run.imbalance;
        let stats = run.stats;

        // The rows actually cached (post-eviction under delta mode).
        self.last_selection = dcsr.rowidx.clone();
        m.finish(self.name(), stats, phases, cached_bytes, 0, overall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcsm_graph::CsrGraph;
    use gcsm_pattern::queries;

    #[test]
    fn naive_selects_hubs_and_counts_correctly() {
        // Star + triangle far from the hub: degree ranking caches the hub,
        // which the triangle batch never touches.
        let mut edges = vec![(10u32, 11u32), (11, 12), (10, 12)];
        for leaf in 1..10u32 {
            edges.push((0, leaf));
        }
        let g0 = CsrGraph::from_edges(13, &edges);
        let mut g = DynamicGraph::from_csr(&g0);
        // Insert an edge touching the triangle component (away from the hub).
        let s = g.apply_batch(&[EdgeUpdate::insert(9, 10)]);
        // budget for exactly the hub's list
        let budget = g.list_bytes(0);
        let mut e = NaiveDegreeEngine::new(EngineConfig::with_cache_budget(budget));
        let r = e.match_sealed(&g, &s.applied, &queries::triangle());
        assert!(e.last_selection().contains(&0), "hub cached");
        // The batch is in the triangle component: cache useless.
        assert_eq!(r.traffic.cache_hits, 0);
        assert!(r.cpu_access_bytes > 0);
    }
}
