//! Recompute — the IncIsoMatch-style baseline \[12\].
//!
//! The earliest CSM approach: re-run static matching after every batch and
//! diff against the previous count. We run both snapshots from scratch on
//! the CPU (32 threads), which is the honest cost of the strategy without
//! IncIsoMatch's affected-region narrowing. Exists to complete the paper's
//! related-work lineage and as a live, painfully-slow contrast for the
//! incremental engines — only the small-scale ablation uses it.

use super::{Engine, Measurer};
use crate::config::EngineConfig;
use crate::result::{BatchResult, PhaseBreakdown};
use gcsm_gpusim::Device;
use gcsm_graph::{DynamicGraph, EdgeUpdate};
use gcsm_matcher::{match_static, CsrSource, DriverOptions};
use gcsm_pattern::QueryGraph;

/// The recompute-from-scratch engine.
pub struct RecomputeEngine {
    cfg: EngineConfig,
    device: Device,
}

impl RecomputeEngine {
    pub fn new(cfg: EngineConfig) -> Self {
        let device = Device::new(cfg.gpu);
        Self { cfg, device }
    }

    pub fn device(&self) -> &Device {
        &self.device
    }
}

impl Engine for RecomputeEngine {
    fn name(&self) -> &'static str {
        "Recompute"
    }

    fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    fn match_sealed(
        &mut self,
        graph: &DynamicGraph,
        _batch: &[EdgeUpdate],
        query: &QueryGraph,
    ) -> BatchResult {
        let overall = self.device.snapshot();
        let mut m = Measurer::begin(&self.device, &self.cfg);
        let opts = DriverOptions {
            algo: self.cfg.algo,
            enumerator: self.cfg.enumerator,
            plan: self.cfg.plan,
            parallel: self.cfg.parallel_kernel,
        };
        let _span = gcsm_obs::span("matching", gcsm_obs::cat::ENGINE);
        // Snapshot materialization is CPU streaming work over the graph.
        let before = graph.old_to_csr();
        let after = graph.to_csr();
        let snapshot_bytes = before.adjacency_bytes() + after.adjacency_bytes();

        let b = {
            let src = CsrSource::new(&before);
            match_static(&src, query, &before.edges().collect::<Vec<_>>(), &opts)
        };
        let a = {
            let src = CsrSource::new(&after);
            match_static(&src, query, &after.edges().collect::<Vec<_>>(), &opts)
        };
        let mut stats = a;
        let b_matches = b.matches;
        stats.intersect_ops += b.intersect_ops;
        stats.list_accesses += b.list_accesses;
        stats.matches -= b_matches;
        self.device.cpu_ops(stats.intersect_ops);

        let mut phases = PhaseBreakdown { matching: m.lap(), ..Default::default() };
        phases.update += snapshot_bytes as f64 / self.cfg.gpu.cpu_mem_bandwidth;
        m.finish(self.name(), stats, phases, 0, 0, overall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::CpuWcojEngine;
    use gcsm_graph::CsrGraph;
    use gcsm_pattern::queries;

    #[test]
    fn recompute_agrees_with_incremental_and_costs_more() {
        let g0 = CsrGraph::from_edges(
            12,
            &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 8), (8, 9)],
        );
        let batch = vec![EdgeUpdate::insert(3, 5), EdgeUpdate::delete(0, 1)];

        let mut g1 = DynamicGraph::from_csr(&g0);
        let s1 = g1.apply_batch(&batch);
        let mut rec = RecomputeEngine::new(EngineConfig::default());
        let rr = rec.match_sealed(&g1, &s1.applied, &queries::triangle());

        let mut g2 = DynamicGraph::from_csr(&g0);
        let s2 = g2.apply_batch(&batch);
        let mut inc = CpuWcojEngine::new(EngineConfig::default());
        let ri = inc.match_sealed(&g2, &s2.applied, &queries::triangle());

        assert_eq!(rr.matches, ri.matches);
        // Recompute scans both full snapshots; the incremental engine only
        // the batch neighborhoods.
        assert!(
            rr.stats.intersect_ops > ri.stats.intersect_ops,
            "recompute {} ops vs incremental {}",
            rr.stats.intersect_ops,
            ri.stats.intersect_ops
        );
    }
}
