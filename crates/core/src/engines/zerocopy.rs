//! ZP — the zero-copy naive GPU baseline (Sec. VI-A, "Baselines").
//!
//! All neighbor lists stay pinned on the CPU and are mapped into the GPU
//! address space; the kernel reads every list over PCIe in 128 B lines. No
//! preparation phase at all — the strongest naive baseline in the paper
//! (UM is 69–210× slower, VSGM pays giant copies).

use super::{Engine, Measurer};
use crate::config::EngineConfig;
use crate::kernel::run_gpu_kernel;
use crate::result::{BatchResult, PhaseBreakdown};
use crate::sources::ZeroCopySource;
use gcsm_gpusim::Device;
use gcsm_graph::{DynamicGraph, EdgeUpdate};
use gcsm_pattern::QueryGraph;

/// The ZP engine.
pub struct ZeroCopyEngine {
    cfg: EngineConfig,
    device: Device,
}

impl ZeroCopyEngine {
    pub fn new(cfg: EngineConfig) -> Self {
        let device = Device::new(cfg.gpu);
        Self { cfg, device }
    }

    /// Shared device (tests inspect counters).
    pub fn device(&self) -> &Device {
        &self.device
    }
}

impl Engine for ZeroCopyEngine {
    fn name(&self) -> &'static str {
        "ZP"
    }

    fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    fn match_sealed(
        &mut self,
        graph: &DynamicGraph,
        batch: &[EdgeUpdate],
        query: &QueryGraph,
    ) -> BatchResult {
        let overall = self.device.snapshot();
        let mut m = Measurer::begin(&self.device, &self.cfg);
        let src = ZeroCopySource { graph, device: &self.device };
        let run = {
            let _span = gcsm_obs::span("matching", gcsm_obs::cat::ENGINE);
            run_gpu_kernel(&self.device, &src, query, batch, &self.cfg)
        };
        let phases = PhaseBreakdown { matching: m.lap() * run.imbalance, ..Default::default() };
        let stats = run.stats;
        m.finish(self.name(), stats, phases, 0, 0, overall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcsm_graph::CsrGraph;
    use gcsm_pattern::queries;

    #[test]
    fn zp_counts_and_attributes_all_time_to_matching() {
        let g0 = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let mut g = DynamicGraph::from_csr(&g0);
        let summary = g.apply_batch(&[EdgeUpdate::insert(1, 3)]);
        let mut e = ZeroCopyEngine::new(EngineConfig::default());
        let r = e.match_sealed(&g, &summary.applied, &queries::triangle());
        assert_eq!(r.matches, 6);
        assert_eq!(r.phases.freq_est, 0.0);
        assert_eq!(r.phases.data_copy, 0.0);
        assert!(r.phases.matching > 0.0);
        assert!(r.cpu_access_bytes > 0);
        assert_eq!(r.cached_bytes, 0);
    }
}
