//! UM — the unified-memory naive GPU baseline.
//!
//! All neighbor lists are allocated as managed memory; the kernel's reads
//! fault 4 KiB pages into the device page cache. The paper measures UM at
//! 69–210× slower than ZP because fine-grained neighbor-list reads waste
//! almost a full page of PCIe bandwidth per access and pay the fault
//! service latency.

use super::{Engine, Measurer};
use crate::addr::AddrMap;
use crate::config::EngineConfig;
use crate::kernel::run_gpu_kernel;
use crate::result::{BatchResult, PhaseBreakdown};
use crate::sources::UnifiedSource;
use gcsm_gpusim::Device;
use gcsm_graph::{DynamicGraph, EdgeUpdate};
use gcsm_pattern::QueryGraph;

/// The UM engine.
pub struct UnifiedMemEngine {
    cfg: EngineConfig,
    device: Device,
}

impl UnifiedMemEngine {
    pub fn new(cfg: EngineConfig) -> Self {
        let device = Device::new(cfg.gpu);
        Self { cfg, device }
    }

    pub fn device(&self) -> &Device {
        &self.device
    }
}

impl Engine for UnifiedMemEngine {
    fn name(&self) -> &'static str {
        "UM"
    }

    fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    fn match_sealed(
        &mut self,
        graph: &DynamicGraph,
        batch: &[EdgeUpdate],
        query: &QueryGraph,
    ) -> BatchResult {
        let overall = self.device.snapshot();
        let mut m = Measurer::begin(&self.device, &self.cfg);
        // The managed arena layout shifts as lists grow; rebuild the
        // address map per batch (host-side, cheap).
        let addr = {
            let _span = gcsm_obs::span("delta_build", gcsm_obs::cat::ENGINE);
            AddrMap::build(graph)
        };
        let src = UnifiedSource { graph, device: &self.device, addr: &addr };
        let run = {
            let _span = gcsm_obs::span("matching", gcsm_obs::cat::ENGINE);
            run_gpu_kernel(&self.device, &src, query, batch, &self.cfg)
        };
        let phases = PhaseBreakdown { matching: m.lap() * run.imbalance, ..Default::default() };
        let stats = run.stats;
        m.finish(self.name(), stats, phases, 0, 0, overall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcsm_graph::CsrGraph;
    use gcsm_pattern::queries;

    #[test]
    fn um_faults_pages_and_counts_correctly() {
        let g0 = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let mut g = DynamicGraph::from_csr(&g0);
        let summary = g.apply_batch(&[EdgeUpdate::insert(1, 3)]);
        let mut e = UnifiedMemEngine::new(EngineConfig::default());
        let r = e.match_sealed(&g, &summary.applied, &queries::triangle());
        assert_eq!(r.matches, 6);
        assert!(r.traffic.um_faults > 0);
        assert_eq!(r.traffic.zerocopy_bytes, 0);
    }
}
