//! VSGM — the k-hop pre-copy baseline [20].
//!
//! Before matching, copy the neighbor lists of **all** vertices within
//! `k = diameter(Q)` hops of the batch onto the GPU; the kernel then never
//! reads CPU memory. The paper shows the match kernel time is then the same
//! as GCSM's, but the copy volume dwarfs GCSM's frequency-selected cache —
//! for the large graphs it only fits the GPU at tiny batch sizes (128/64 in
//! Fig. 13).

use super::{Engine, Measurer};
use crate::config::EngineConfig;
use crate::kernel::run_gpu_kernel;
use crate::khop::khop_vertices;
use crate::result::{BatchResult, PhaseBreakdown};
use crate::sources::CachedSource;
use gcsm_cache::Dcsr;
use gcsm_gpusim::Device;
use gcsm_graph::{DynamicGraph, EdgeUpdate};
use gcsm_pattern::QueryGraph;

/// The VSGM engine.
pub struct VsgmEngine {
    cfg: EngineConfig,
    device: Device,
    /// Whether the last batch's k-hop data exceeded the device capacity
    /// (the paper handles this by shrinking the batch; we record it).
    last_overflow: bool,
}

impl VsgmEngine {
    pub fn new(cfg: EngineConfig) -> Self {
        let device = Device::new(cfg.gpu);
        Self { cfg, device, last_overflow: false }
    }

    pub fn device(&self) -> &Device {
        &self.device
    }

    /// True if the last batch's copy set did not fit the modeled device.
    pub fn last_overflow(&self) -> bool {
        self.last_overflow
    }
}

impl Engine for VsgmEngine {
    fn name(&self) -> &'static str {
        "VSGM"
    }

    fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    fn match_sealed(
        &mut self,
        graph: &DynamicGraph,
        batch: &[EdgeUpdate],
        query: &QueryGraph,
    ) -> BatchResult {
        let overall = self.device.snapshot();
        let mut m = Measurer::begin(&self.device, &self.cfg);
        let mut phases = PhaseBreakdown::default();

        // ---- DC: gather the k-hop neighborhood and ship everything ----
        let mut delta_span = gcsm_obs::span("delta_build", gcsm_obs::cat::ENGINE);
        let dc_span = gcsm_obs::span("data_copy", gcsm_obs::cat::ENGINE);
        let k = query.diameter();
        let vertices = khop_vertices(graph, batch, k);
        let dcsr = Dcsr::pack(graph, &vertices);
        let cached_bytes = dcsr.bytes();
        self.last_overflow = cached_bytes > self.cfg.gpu.device_capacity;
        self.device.dma(cached_bytes);
        // Host side: the BFS walks every copied list once, then packs it.
        phases.data_copy = m.lap() + 2.0 * cached_bytes as f64 / self.cfg.gpu.cpu_mem_bandwidth;
        drop(dc_span);
        delta_span.set_count(vertices.len() as u64);
        drop(delta_span);

        // ---- Match: all accesses should now hit device memory ----
        let src = CachedSource { graph, device: &self.device, dcsr: &dcsr };
        let run = {
            let _span = gcsm_obs::span("matching", gcsm_obs::cat::ENGINE);
            run_gpu_kernel(&self.device, &src, query, batch, &self.cfg)
        };
        // Stretch the kernel's time by the grid load-imbalance factor of
        // the configured scheduling policy (1.0 under perfect balance).
        phases.matching = m.lap() * run.imbalance;
        let stats = run.stats;

        m.finish(self.name(), stats, phases, cached_bytes, 0, overall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::ZeroCopyEngine;
    use gcsm_graph::CsrGraph;
    use gcsm_pattern::queries;

    #[test]
    fn vsgm_matches_count_and_avoids_cpu_reads() {
        let g0 = CsrGraph::from_edges(
            8,
            &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (4, 6)],
        );
        let batch = vec![EdgeUpdate::insert(2, 4), EdgeUpdate::insert(5, 7)];

        let mut g1 = DynamicGraph::from_csr(&g0);
        let s1 = g1.apply_batch(&batch);
        let mut zp = ZeroCopyEngine::new(EngineConfig::default());
        let rz = zp.match_sealed(&g1, &s1.applied, &queries::triangle());

        let mut g2 = DynamicGraph::from_csr(&g0);
        let s2 = g2.apply_batch(&batch);
        let mut vs = VsgmEngine::new(EngineConfig::default());
        let rv = vs.match_sealed(&g2, &s2.applied, &queries::triangle());

        assert_eq!(rz.matches, rv.matches);
        // k-hop coverage ⇒ no zero-copy fallback during matching.
        assert_eq!(rv.traffic.cache_misses, 0, "k-hop must cover all accesses");
        assert_eq!(rv.traffic.zerocopy_bytes, 0);
        assert!(rv.traffic.dma_bytes > 0);
        assert!(rv.phases.data_copy > 0.0);
    }

    #[test]
    fn overflow_flag_reflects_capacity() {
        let g0 = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut g = DynamicGraph::from_csr(&g0);
        let s = g.apply_batch(&[EdgeUpdate::insert(0, 2)]);
        let mut cfg = EngineConfig::default();
        cfg.gpu.device_capacity = 1; // absurdly small device
        let mut vs = VsgmEngine::new(cfg);
        vs.match_sealed(&g, &s.applied, &queries::triangle());
        assert!(vs.last_overflow());
    }
}
