//! # gcsm — GPU-accelerated continuous subgraph matching (reproduction)
//!
//! End-to-end implementation of **GCSM** (Wei & Jiang, IPDPS 2024) and every
//! system it is evaluated against, on top of a simulated CPU–GPU memory
//! system (`gcsm-gpusim`; see DESIGN.md for the substitution argument).
//!
//! The per-batch workflow is the paper's Fig. 3:
//!
//! 1. append the edge updates `ΔE_k` to the CPU-side neighbor lists;
//! 2. run random walks from the updated edges to estimate access
//!    frequencies;
//! 3. pack the neighbor lists of the most frequent vertices into DCSR and
//!    ship them to GPU memory in one DMA;
//! 4. run the exact incremental matching kernel on the GPU (cache hits read
//!    device memory, misses fall back to zero-copy reads of CPU memory);
//! 5. reorganize the updated neighbor lists on the CPU.
//!
//! [`engines`] implements GCSM plus the paper's baselines — naive GPU
//! variants (**UM** unified memory, **ZP** zero-copy, **VSGM** k-hop
//! pre-copy, **Naive** degree-ranked cache) and CPU systems (the WCOJ CPU
//! baseline and a RapidFlow-like candidate-index matcher). All engines
//! return identical match counts and differ only in data movement — which
//! is precisely what the evaluation measures.
//!
//! ## Quickstart
//!
//! ```
//! use gcsm::prelude::*;
//!
//! // A small dynamic graph and a triangle query.
//! let g0 = gcsm_graph::CsrGraph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
//! let query = gcsm_pattern::queries::triangle();
//!
//! let config = EngineConfig::default();
//! let mut engine = GcsmEngine::new(config.clone());
//! let mut pipeline = Pipeline::new(g0, query);
//!
//! // Stream a batch: one insertion closing a second triangle.
//! let batch = vec![gcsm_graph::EdgeUpdate::insert(1, 3)];
//! let result = pipeline.process_batch(&mut engine, &batch);
//! assert_eq!(result.matches, 6); // 6 new embeddings (|Aut(triangle)| = 6)
//! ```

pub mod addr;
pub mod config;
pub mod engines;
pub mod kernel;
pub mod khop;
pub mod multi;
pub mod pipeline;
pub mod result;
pub mod sharded;
pub mod sources;
pub mod stream;

pub use config::EngineConfig;
pub use engines::{
    CpuWcojEngine, Engine, GcsmEngine, NaiveDegreeEngine, RapidFlowEngine, RecomputeEngine,
    UnifiedMemEngine, VsgmEngine, ZeroCopyEngine,
};
pub use multi::{MultiBatchResult, MultiPipeline};
pub use pipeline::Pipeline;
pub use result::{record_batch_metrics, BatchResult, PhaseBreakdown, SealReason, StreamMeta};
pub use sharded::{shard_config, ShardedBatchResult, ShardedPipeline};
pub use stream::{
    Backpressure, SealPolicy, SequenceMode, StreamConfig, StreamProducer, StreamSession,
};

/// Convenient glob imports for examples and benches.
pub mod prelude {
    pub use crate::config::EngineConfig;
    pub use crate::engines::{
        CpuWcojEngine, Engine, GcsmEngine, NaiveDegreeEngine, RapidFlowEngine, RecomputeEngine,
        UnifiedMemEngine, VsgmEngine, ZeroCopyEngine,
    };
    pub use crate::multi::{MultiBatchResult, MultiPipeline};
    pub use crate::pipeline::Pipeline;
    pub use crate::result::{BatchResult, PhaseBreakdown, SealReason, StreamMeta};
    pub use crate::sharded::{shard_config, ShardedBatchResult, ShardedPipeline};
    pub use crate::stream::{
        Backpressure, SealPolicy, SequenceMode, StreamBatch, StreamConfig, StreamSession,
    };
}
