//! k-hop neighborhood extraction for the VSGM baseline.
//!
//! VSGM \[20\] copies the neighbor lists of *all* vertices within `k` hops of
//! the updated edges onto the GPU before matching, where `k` is the query
//! diameter — the guarantee that the kernel never touches CPU memory. We
//! traverse the union of the old and new views so deletion-side matches
//! (which live in the pre-batch graph) are covered too.

use gcsm_graph::{DynamicGraph, EdgeUpdate, VertexId};

/// All vertices within `k` hops of the batch's endpoints, sorted ascending
/// (ready to be a DCSR `rowidx`).
pub fn khop_vertices(graph: &DynamicGraph, batch: &[EdgeUpdate], k: usize) -> Vec<VertexId> {
    let n = graph.num_vertices();
    let mut seen = vec![false; n];
    let mut frontier: Vec<VertexId> = Vec::new();
    for u in batch {
        for v in [u.src, u.dst] {
            if (v as usize) < n && !seen[v as usize] {
                seen[v as usize] = true;
                frontier.push(v);
            }
        }
    }
    for _ in 0..k {
        let mut next = Vec::new();
        for &v in &frontier {
            for w in graph.old_view(v).iter_sorted().chain(graph.new_view(v).iter_sorted()) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    next.push(w);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    let mut out: Vec<VertexId> =
        seen.iter().enumerate().filter(|(_, &s)| s).map(|(i, _)| i as VertexId).collect();
    out.sort_unstable();
    out
}

/// Total raw bytes the k-hop lists occupy (the VSGM copy volume).
pub fn khop_bytes(graph: &DynamicGraph, vertices: &[VertexId]) -> usize {
    vertices.iter().map(|&v| graph.list_bytes(v)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcsm_graph::CsrGraph;

    fn path_graph() -> DynamicGraph {
        // 0-1-2-3-4-5 path.
        let g0 = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let mut g = DynamicGraph::from_csr(&g0);
        g.begin_batch();
        g.seal_batch();
        g
    }

    #[test]
    fn hop_zero_is_endpoints_only() {
        let g = path_graph();
        let batch = vec![EdgeUpdate::insert(2, 3)];
        assert_eq!(khop_vertices(&g, &batch, 0), vec![2, 3]);
    }

    #[test]
    fn hops_expand_breadth_first() {
        let g = path_graph();
        let batch = vec![EdgeUpdate::insert(2, 3)];
        assert_eq!(khop_vertices(&g, &batch, 1), vec![1, 2, 3, 4]);
        assert_eq!(khop_vertices(&g, &batch, 2), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(khop_vertices(&g, &batch, 5), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn deleted_edges_still_traversed() {
        let g0 = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut g = DynamicGraph::from_csr(&g0);
        g.begin_batch();
        g.apply(EdgeUpdate::delete(1, 2));
        let summary = g.seal_batch();
        // Vertex 2 is only reachable over the deleted edge; the old view
        // must carry the BFS there.
        let hops = khop_vertices(&g, &summary.applied, 1);
        assert!(hops.contains(&2));
        assert!(hops.contains(&0));
    }

    #[test]
    fn bytes_sum_lists() {
        let g = path_graph();
        let vs = vec![1u32, 2];
        assert_eq!(khop_bytes(&g, &vs), g.list_bytes(1) + g.list_bytes(2));
    }
}
