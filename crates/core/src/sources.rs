//! Traffic-recording neighbor sources — one per GPU access policy.
//!
//! The enumerator is identical for every engine; these sources decide where
//! each neighbor list is read from and charge the simulated device
//! accordingly:
//!
//! * [`ZeroCopySource`] — the ZP baseline: every list is read from CPU
//!   pinned memory in 128 B lines;
//! * [`UnifiedSource`] — the UM baseline: lists live in managed memory,
//!   reads fault 4 KiB pages through the device page cache;
//! * [`CachedSource`] — GCSM (and VSGM/Naive, which differ only in *what*
//!   is cached): binary-search the DCSR `rowidx`; hits read device memory,
//!   misses fall back to zero-copy (Sec. V-C).

use crate::addr::AddrMap;
use gcsm_cache::Dcsr;
use gcsm_gpusim::{AccessPath, Device};
use gcsm_graph::{DynamicGraph, Label, NeighborView, VertexId};
use gcsm_matcher::NeighborSource;
use gcsm_pattern::ViewSel;

const W: usize = std::mem::size_of::<u32>();

/// Payload bytes of a view read: the old view reads the original prefix,
/// the new view reads the whole raw list (prefix + appended tail).
#[inline]
fn view_bytes(graph: &DynamicGraph, v: VertexId, sel: ViewSel) -> usize {
    match sel {
        ViewSel::Old => graph.old_degree(v) * W,
        ViewSel::New => graph.raw_list(v).0.len() * W,
    }
}

#[inline]
fn dyn_view(graph: &DynamicGraph, v: VertexId, sel: ViewSel) -> NeighborView<'_> {
    match sel {
        ViewSel::Old => graph.old_view(v),
        ViewSel::New => graph.new_view(v),
    }
}

/// ZP: all neighbor lists read over PCIe with zero-copy.
pub struct ZeroCopySource<'a> {
    pub graph: &'a DynamicGraph,
    pub device: &'a Device,
}

impl NeighborSource for ZeroCopySource<'_> {
    #[inline]
    fn view(&self, v: VertexId, sel: ViewSel) -> NeighborView<'_> {
        self.device.read_list(AccessPath::ZeroCopy, 0, view_bytes(self.graph, v, sel));
        dyn_view(self.graph, v, sel)
    }

    #[inline]
    fn label(&self, v: VertexId) -> Label {
        self.graph.label(v)
    }

    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    fn max_degree(&self) -> usize {
        self.graph.max_degree_bound()
    }
}

/// UM: neighbor lists live in managed memory; accesses fault pages.
pub struct UnifiedSource<'a> {
    pub graph: &'a DynamicGraph,
    pub device: &'a Device,
    pub addr: &'a AddrMap,
}

impl NeighborSource for UnifiedSource<'_> {
    #[inline]
    fn view(&self, v: VertexId, sel: ViewSel) -> NeighborView<'_> {
        self.device.read_list(
            AccessPath::UnifiedMemory,
            self.addr.addr(v),
            view_bytes(self.graph, v, sel),
        );
        dyn_view(self.graph, v, sel)
    }

    #[inline]
    fn label(&self, v: VertexId) -> Label {
        self.graph.label(v)
    }

    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    fn max_degree(&self) -> usize {
        self.graph.max_degree_bound()
    }
}

/// GCSM/VSGM/Naive: DCSR cache in device memory with zero-copy fallback.
pub struct CachedSource<'a> {
    pub graph: &'a DynamicGraph,
    pub device: &'a Device,
    pub dcsr: &'a Dcsr,
}

impl NeighborSource for CachedSource<'_> {
    #[inline]
    fn view(&self, v: VertexId, sel: ViewSel) -> NeighborView<'_> {
        // The per-access rowidx binary search the kernel performs
        // (Sec. V-C); charged as device compute.
        let lookup_ops = (usize::BITS - self.dcsr.len().max(1).leading_zeros()) as u64;
        self.device.gpu_ops(lookup_ops);
        match self.dcsr.find(v) {
            Some(row) => {
                self.device.record_cache_lookup(true);
                let bytes = match sel {
                    ViewSel::Old => {
                        let (prefix, _) = self.dcsr.segments(row);
                        prefix.len() * W
                    }
                    ViewSel::New => self.dcsr.row_bytes(row),
                };
                self.device.read_list(AccessPath::DeviceCache, 0, bytes);
                self.dcsr.view(row, matches!(sel, ViewSel::Old))
            }
            None => {
                self.device.record_cache_lookup(false);
                self.device.read_list(AccessPath::ZeroCopy, 0, view_bytes(self.graph, v, sel));
                dyn_view(self.graph, v, sel)
            }
        }
    }

    #[inline]
    fn label(&self, v: VertexId) -> Label {
        self.graph.label(v)
    }

    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    fn max_degree(&self) -> usize {
        self.graph.max_degree_bound()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcsm_gpusim::GpuConfig;
    use gcsm_graph::{CsrGraph, EdgeUpdate};

    fn sealed_graph() -> DynamicGraph {
        let g0 = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 3)]);
        let mut g = DynamicGraph::from_csr(&g0);
        g.begin_batch();
        g.apply(EdgeUpdate::insert(3, 4));
        g.apply(EdgeUpdate::delete(0, 2));
        g.seal_batch();
        g
    }

    #[test]
    fn zero_copy_source_charges_pcie() {
        let g = sealed_graph();
        let d = Device::new(GpuConfig::default());
        let s = ZeroCopySource { graph: &g, device: &d };
        let view = s.view(2, ViewSel::New);
        assert_eq!(view.to_vec(), vec![1, 3]);
        let t = d.snapshot();
        assert_eq!(t.zerocopy_bytes, 3 * 4); // raw list of 2: [0(ts),1,3]
        assert_eq!(t.zerocopy_transactions, 1);
    }

    #[test]
    fn unified_source_faults_pages() {
        let g = sealed_graph();
        let d = Device::new(GpuConfig::default());
        let addr = AddrMap::build(&g);
        let s = UnifiedSource { graph: &g, device: &d, addr: &addr };
        s.view(0, ViewSel::Old);
        s.view(0, ViewSel::Old); // second access hits the page cache
        let t = d.snapshot();
        assert_eq!(t.um_faults, 1);
        assert_eq!(t.um_hits, 1);
    }

    #[test]
    fn cached_source_hits_device_and_misses_fall_back() {
        let g = sealed_graph();
        let d = Device::new(GpuConfig::default());
        let dcsr = Dcsr::pack(&g, &[2, 3]);
        d.dma(dcsr.bytes());
        let s = CachedSource { graph: &g, device: &d, dcsr: &dcsr };

        let hit = s.view(2, ViewSel::New);
        assert_eq!(hit.to_vec(), vec![1, 3]);
        let miss = s.view(0, ViewSel::New);
        assert_eq!(miss.to_vec(), vec![1]);

        let t = d.snapshot();
        assert_eq!(t.cache_hits, 1);
        assert_eq!(t.cache_misses, 1);
        assert!(t.device_bytes > 0);
        assert!(t.zerocopy_bytes > 0);
    }

    #[test]
    fn cached_views_equal_direct_views() {
        let g = sealed_graph();
        let d = Device::new(GpuConfig::default());
        let all: Vec<u32> = (0..g.num_vertices() as u32).collect();
        let dcsr = Dcsr::pack(&g, &all);
        let s = CachedSource { graph: &g, device: &d, dcsr: &dcsr };
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(s.view(v, ViewSel::Old).to_vec(), g.old_view(v).to_vec());
            assert_eq!(s.view(v, ViewSel::New).to_vec(), g.new_view(v).to_vec());
        }
        assert_eq!(d.snapshot().cache_misses, 0);
    }
}
