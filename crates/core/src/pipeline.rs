//! The per-batch pipeline (Fig. 3): update → engine → reorganize.
//!
//! [`Pipeline`] owns the dynamic graph and the query, drives the batch
//! lifecycle, and accounts the host-side steps (1 and 5) that are common
//! to every engine: appending updates and reorganizing the updated lists.
//!
//! ## Overlap mode
//!
//! With [`Pipeline::set_overlap`] the Step-5 reorganization of batch *k*
//! is detached ([`DynamicGraph::take_reorg_task`]) and computed on a worker
//! thread while batch *k+1* is ingested (its updates journaled via the
//! graph's staged-batch mode). The result is joined and installed just
//! before batch *k+1* seals, so matching always sees fully merged lists.
//! The simulated cost model charges only the *exposed remainder* of the
//! overlapped work — `max(0, reorg_sim_k − update_sim_{k+1})` — at batch
//! *k+1*; the rest hides behind the ingest window, which is the latency win
//! the `cache_delta` bench measures.

use crate::engines::Engine;
use crate::result::BatchResult;
use gcsm_graph::{CsrGraph, DynamicGraph, EdgeUpdate, ReorgResult};
use gcsm_pattern::QueryGraph;

/// An in-flight overlapped reorganization of the previous batch.
struct PendingReorg {
    handle: std::thread::JoinHandle<ReorgResult>,
    /// Modeled CPU seconds of the detached merge work; charged as the
    /// exposed remainder once the next batch's ingest window is known.
    sim_seconds: f64,
}

/// Concrete signed matches: data-vertex bindings in plan order, with the
/// +1/−1 sign of the delta edge that produced each.
pub type CollectedMatches = Vec<(Vec<gcsm_graph::VertexId>, i64)>;

/// Drives one engine over a stream of batches.
pub struct Pipeline {
    graph: DynamicGraph,
    query: QueryGraph,
    /// Batches processed so far; labels the `batch` spans in traces.
    batches: u64,
    /// Double-buffered mode: reorganize batch *k* while ingesting *k+1*.
    overlap: bool,
    pending: Option<PendingReorg>,
}

impl Pipeline {
    /// Pipeline over an initial snapshot `G_0`.
    pub fn new(initial: CsrGraph, query: QueryGraph) -> Self {
        Self {
            graph: DynamicGraph::from_csr(&initial),
            query,
            batches: 0,
            overlap: false,
            pending: None,
        }
    }

    /// Enable/disable overlapped reorganization for subsequent batches. An
    /// already in-flight reorganization (if any) still joins normally on
    /// the next batch or [`Self::flush`].
    pub fn set_overlap(&mut self, on: bool) {
        self.overlap = on;
    }

    /// Whether overlapped reorganization is enabled.
    pub fn overlap(&self) -> bool {
        self.overlap
    }

    /// The current graph state.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// Join and install an in-flight overlapped reorganization, if any.
    /// Returns the modeled CPU seconds of the joined work that no later
    /// batch will hide (0.0 when nothing was pending). Call at stream end
    /// (or before inspecting `updated_vertices`) to settle the graph.
    pub fn flush(&mut self) -> f64 {
        match self.pending.take() {
            Some(p) => {
                let res = p.handle.join().expect("reorganize worker panicked");
                self.graph.install_reorg(res);
                p.sim_seconds
            }
            None => 0.0,
        }
    }

    /// The query.
    pub fn query(&self) -> &QueryGraph {
        &self.query
    }

    /// Count the query's matches on the *current* graph from scratch
    /// (parallel CPU WCOJ). Together with the streamed deltas this gives a
    /// consistent running total: `count(G_k) = count(G_0) + Σ ΔM`.
    pub fn static_count(&self, symmetry_break: bool) -> i64 {
        let snapshot = self.graph.to_csr();
        let src = gcsm_matcher::CsrSource::new(&snapshot);
        let opts = gcsm_matcher::DriverOptions {
            plan: gcsm_pattern::PlanOptions { symmetry_break },
            parallel: true,
            ..Default::default()
        };
        gcsm_matcher::match_static(&src, &self.query, &snapshot.edges().collect::<Vec<_>>(), &opts)
            .matches
    }

    /// Single-edge update mode (the paper's Sec. II-A "single-edge
    /// setting"): one matching invocation per update.
    pub fn process_update(&mut self, engine: &mut dyn Engine, update: EdgeUpdate) -> BatchResult {
        self.process_batch(engine, std::slice::from_ref(&update))
    }

    /// Like [`Self::process_batch`], but also returns the concrete signed
    /// matches (data-vertex bindings in plan order). The collection pass
    /// runs on the host against the sealed views, so the engine's traffic
    /// measurements are unaffected.
    pub fn process_batch_collect(
        &mut self,
        engine: &mut dyn Engine,
        updates: &[EdgeUpdate],
    ) -> (BatchResult, CollectedMatches) {
        let (result, collected) = self.run_batch(engine, updates, true);
        (result, collected.unwrap_or_default())
    }

    /// Process one batch end to end. Returns the engine's measurements
    /// with the pipeline-side phases (update, reorganize) filled in.
    pub fn process_batch(
        &mut self,
        engine: &mut dyn Engine,
        updates: &[EdgeUpdate],
    ) -> BatchResult {
        self.run_batch(engine, updates, false).0
    }

    /// The shared batch core behind [`Self::process_batch`] and
    /// [`Self::process_batch_collect`]: both paths account identical
    /// simulated phases *and* identical wall-clock steps.
    fn run_batch(
        &mut self,
        engine: &mut dyn Engine,
        updates: &[EdgeUpdate],
        collect: bool,
    ) -> (BatchResult, Option<CollectedMatches>) {
        let cpu_bw = engine.config().gpu.cpu_mem_bandwidth;
        let mut batch_span = gcsm_obs::span("batch", gcsm_obs::cat::PIPELINE);
        batch_span.set_batch(self.batches);
        batch_span.set_count(updates.len() as u64);
        self.batches += 1;

        // ---- Step 1: append ΔE to the CPU lists ----
        // With an overlapped reorganization in flight the updates are
        // journaled (staged batch); they replay inside `seal_batch` after
        // the merge result lands.
        let wall0 = gcsm_obs::Stopwatch::start();
        {
            let _span = gcsm_obs::span("ingest", gcsm_obs::cat::PIPELINE);
            if self.pending.is_some() {
                self.graph.begin_staged_batch();
            } else {
                self.graph.begin_batch();
            }
            for &u in updates {
                self.graph.apply(u);
            }
        }
        // Join the previous batch's overlapped reorganize before sealing so
        // the journal replays against fully merged lists.
        let carried_sim = self.flush();
        let summary = {
            let _span = gcsm_obs::span("seal", gcsm_obs::cat::PIPELINE);
            self.graph.seal_batch()
        };
        // Model: one binary search + append per update endpoint; dominated
        // by touching each updated list once.
        let touched_bytes: usize =
            self.graph.updated_vertices().iter().map(|&v| self.graph.list_bytes(v)).sum();
        let update_sim = touched_bytes as f64 / cpu_bw;
        // Exposed remainder of the joined overlapped work: only what its
        // modeled cost exceeds the ingest window it hid behind.
        let exposed_sim = (carried_sim - update_sim).max(0.0);
        let update_wall = wall0.elapsed_seconds();

        // ---- Steps 2–4: the engine ----
        let mut result = engine.match_sealed(&self.graph, &summary.applied, &self.query);

        let collected = if collect {
            let src = gcsm_matcher::DynSource::new(&self.graph);
            let opts =
                gcsm_matcher::DriverOptions { plan: engine.config().plan, ..Default::default() };
            let collected =
                gcsm_matcher::collect_incremental(&src, &self.query, &summary.applied, &opts);
            debug_assert_eq!(
                collected.iter().map(|(_, s)| s).sum::<i64>(),
                result.matches,
                "collection pass must agree with the engine"
            );
            Some(collected)
        } else {
            None
        };

        // ---- Step 5: reorganize (after matching, per the paper) ----
        let wall1 = gcsm_obs::Stopwatch::start();
        let reorg_bytes: usize =
            self.graph.updated_vertices().iter().map(|&v| self.graph.list_bytes(v)).sum();
        // Merge-sort + tombstone removal streams each updated list ~twice.
        let reorg_sim = 2.0 * reorg_bytes as f64 / cpu_bw;
        let deferred = if self.overlap {
            let task = self.graph.take_reorg_task();
            if task.is_trivial() {
                // Nothing to merge (resurrection-only batch): settle inline.
                self.graph.install_reorg(task.compute());
                false
            } else {
                let handle = std::thread::spawn(move || {
                    let mut span = gcsm_obs::span("reorg_overlap", gcsm_obs::cat::GRAPH);
                    let res = task.compute();
                    span.set_count(res.len() as u64);
                    res
                });
                self.pending = Some(PendingReorg { handle, sim_seconds: reorg_sim });
                true
            }
        } else {
            self.graph.reorganize();
            false
        };
        let reorg_wall = wall1.elapsed_seconds();

        result.phases.update += update_sim;
        result.phases.reorganize += exposed_sim + if deferred { 0.0 } else { reorg_sim };
        result.wall_seconds += update_wall + reorg_wall;
        drop(batch_span);
        crate::result::record_batch_metrics(&result);
        (result, collected)
    }

    /// Process a whole stream of batches, returning per-batch results. Any
    /// overlapped reorganization left in flight after the last batch is
    /// joined, and its unhidden cost is charged to that batch's
    /// `reorganize` phase so the stream total stays conservative.
    pub fn process_stream<'a>(
        &mut self,
        engine: &mut dyn Engine,
        batches: impl Iterator<Item = &'a [EdgeUpdate]>,
    ) -> Vec<BatchResult> {
        let mut out: Vec<BatchResult> = batches.map(|b| self.process_batch(engine, b)).collect();
        let exposed = self.flush();
        if let Some(last) = out.last_mut() {
            last.phases.reorganize += exposed;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::engines::{GcsmEngine, ZeroCopyEngine};
    use gcsm_pattern::queries;

    fn setup() -> (CsrGraph, Vec<EdgeUpdate>) {
        let g0 = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        let batch = vec![EdgeUpdate::insert(2, 4), EdgeUpdate::delete(0, 1)];
        (g0, batch)
    }

    #[test]
    fn pipeline_runs_full_cycle_and_reorganizes() {
        let (g0, batch) = setup();
        let mut p = Pipeline::new(g0, queries::triangle());
        let mut e = ZeroCopyEngine::new(EngineConfig::default());
        let r = p.process_batch(&mut e, &batch);
        // Triangle (0,1,2) destroyed (−6 embeddings), (2,3,4) created (+6).
        assert_eq!(r.matches, 0);
        assert!(r.phases.update > 0.0);
        assert!(r.phases.reorganize > 0.0);
        // Graph is clean again (reorganized).
        assert!(p.graph().updated_vertices().is_empty());
    }

    #[test]
    fn running_total_stays_consistent() {
        let (g0, batch) = setup();
        let mut p = Pipeline::new(g0, queries::triangle());
        let initial = p.static_count(false);
        let mut e = GcsmEngine::new(EngineConfig::default());
        let mut total = initial;
        total += p.process_batch(&mut e, &batch).matches;
        total += p.process_batch(&mut e, &[EdgeUpdate::insert(0, 4)]).matches;
        assert_eq!(total, p.static_count(false));
    }

    #[test]
    fn single_update_mode() {
        let (g0, _) = setup();
        let mut p = Pipeline::new(g0, queries::triangle());
        let mut e = ZeroCopyEngine::new(EngineConfig::default());
        let r = p.process_update(&mut e, EdgeUpdate::insert(2, 4));
        assert_eq!(r.matches, 6); // triangle (2,3,4)
        let r = p.process_update(&mut e, EdgeUpdate::delete(2, 4));
        assert_eq!(r.matches, -6);
    }

    #[test]
    fn collect_returns_concrete_matches() {
        let (g0, batch) = setup();
        let mut p = Pipeline::new(g0, queries::triangle());
        let mut e = GcsmEngine::new(EngineConfig::default());
        let (r, matches) = p.process_batch_collect(&mut e, &batch);
        assert_eq!(matches.iter().map(|(_, s)| s).sum::<i64>(), r.matches);
        // The destroyed triangle {0,1,2} and the created one {2,3,4} both
        // appear with the right signs.
        assert!(matches.iter().any(|(m, s)| {
            let mut v = m.clone();
            v.sort_unstable();
            v == vec![0, 1, 2] && *s == -1
        }));
        assert!(matches.iter().any(|(m, s)| {
            let mut v = m.clone();
            v.sort_unstable();
            v == vec![2, 3, 4] && *s == 1
        }));
        // Graph reorganized afterwards.
        assert!(p.graph().updated_vertices().is_empty());
    }

    #[test]
    fn collect_and_plain_paths_account_identically() {
        // Regression: process_batch_collect used to drop the pipeline-side
        // wall time (update/reorganize steps) that process_batch accounted,
        // so identical work reported inconsistent timings. Both now run the
        // same shared core: simulated phases match exactly and both walls
        // include the host steps.
        let (g0, batch) = setup();
        let mut p1 = Pipeline::new(g0.clone(), queries::triangle());
        let mut p2 = Pipeline::new(g0, queries::triangle());
        let mut e1 = GcsmEngine::new(EngineConfig::default());
        let mut e2 = GcsmEngine::new(EngineConfig::default());
        let r_plain = p1.process_batch(&mut e1, &batch);
        let (r_collect, _) = p2.process_batch_collect(&mut e2, &batch);
        assert_eq!(r_plain.matches, r_collect.matches);
        assert_eq!(r_plain.phases.update, r_collect.phases.update);
        assert_eq!(r_plain.phases.reorganize, r_collect.phases.reorganize);
        // The collect path must also accumulate pipeline wall time on top
        // of the engine's own measurement, like the plain path does.
        assert!(r_plain.wall_seconds > 0.0);
        assert!(r_collect.wall_seconds > 0.0);
    }

    #[test]
    fn overlapped_pipeline_matches_serial() {
        let (g0, _) = setup();
        let batches: Vec<Vec<EdgeUpdate>> = vec![
            vec![EdgeUpdate::insert(2, 4), EdgeUpdate::delete(0, 1)],
            vec![EdgeUpdate::insert(0, 4), EdgeUpdate::insert(0, 1)],
            vec![EdgeUpdate::delete(2, 4), EdgeUpdate::insert(1, 4)],
            vec![EdgeUpdate::insert(2, 4)],
        ];
        let mut serial = Pipeline::new(g0.clone(), queries::triangle());
        let mut overlapped = Pipeline::new(g0, queries::triangle());
        overlapped.set_overlap(true);
        let mut es = GcsmEngine::new(EngineConfig::default());
        let mut eo = GcsmEngine::new(EngineConfig::default());
        for b in &batches {
            let rs = serial.process_batch(&mut es, b);
            let ro = overlapped.process_batch(&mut eo, b);
            assert_eq!(rs.matches, ro.matches, "per-batch ΔM must be identical");
        }
        overlapped.flush();
        assert!(overlapped.graph().updated_vertices().is_empty());
        let a = serial.graph().to_csr();
        let b = overlapped.graph().to_csr();
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
        assert_eq!(serial.static_count(false), overlapped.static_count(false));
    }

    #[test]
    fn overlap_defers_reorganize_cost_to_exposed_remainder() {
        let (g0, _) = setup();
        let batches: Vec<Vec<EdgeUpdate>> = vec![
            vec![EdgeUpdate::insert(2, 4), EdgeUpdate::delete(0, 1)],
            vec![EdgeUpdate::insert(0, 4)],
            vec![EdgeUpdate::delete(0, 4), EdgeUpdate::insert(0, 1)],
        ];
        let run = |overlap: bool| {
            let mut p = Pipeline::new(g0.clone(), queries::triangle());
            p.set_overlap(overlap);
            let mut e = GcsmEngine::new(EngineConfig::default());
            let results = p.process_stream(&mut e, batches.iter().map(|b| b.as_slice()));
            results.iter().map(|r| r.phases.reorganize).sum::<f64>()
        };
        let serial_reorg = run(false);
        let overlap_reorg = run(true);
        assert!(serial_reorg > 0.0);
        // Overlap can only hide reorganize time behind ingest, never add to
        // the modeled cost.
        assert!(
            overlap_reorg <= serial_reorg + 1e-12,
            "overlap {overlap_reorg} must not exceed serial {serial_reorg}"
        );
    }

    #[test]
    fn flush_without_pending_is_noop() {
        let (g0, batch) = setup();
        let mut p = Pipeline::new(g0, queries::triangle());
        assert_eq!(p.flush(), 0.0);
        let mut e = ZeroCopyEngine::new(EngineConfig::default());
        p.process_batch(&mut e, &batch);
        assert_eq!(p.flush(), 0.0, "serial mode leaves nothing in flight");
    }

    #[test]
    fn multi_batch_stream_stays_consistent() {
        let (g0, _) = setup();
        let mut p = Pipeline::new(g0.clone(), queries::triangle());
        let mut e = GcsmEngine::new(EngineConfig::default());
        let batches: Vec<Vec<EdgeUpdate>> = vec![
            vec![EdgeUpdate::insert(2, 4)],
            vec![EdgeUpdate::insert(0, 4)],
            vec![EdgeUpdate::delete(2, 4)],
        ];
        let mut cumulative = 0i64;
        for b in &batches {
            cumulative += p.process_batch(&mut e, b).matches;
        }
        // Net state: +edge (0,4). Triangles: (0,1,2) intact, (0,2,4)?
        // 0-4 and 2-4? (2,4) was deleted again. Recompute ground truth:
        let final_graph = p.graph().to_csr();
        let src = gcsm_matcher::CsrSource::new(&final_graph);
        let total_after = gcsm_matcher::match_static(
            &src,
            &queries::triangle(),
            &final_graph.edges().collect::<Vec<_>>(),
            &gcsm_matcher::DriverOptions::default(),
        )
        .matches;
        let src0 = gcsm_matcher::CsrSource::new(&g0);
        let total_before = gcsm_matcher::match_static(
            &src0,
            &queries::triangle(),
            &g0.edges().collect::<Vec<_>>(),
            &gcsm_matcher::DriverOptions::default(),
        )
        .matches;
        assert_eq!(cumulative, total_after - total_before);
    }
}
