//! The per-batch pipeline (Fig. 3): update → engine → reorganize.
//!
//! [`Pipeline`] owns the dynamic graph and the query, drives the batch
//! lifecycle, and accounts the host-side steps (1 and 5) that are common
//! to every engine: appending updates and reorganizing the updated lists.

use crate::engines::Engine;
use crate::result::BatchResult;
use gcsm_graph::{CsrGraph, DynamicGraph, EdgeUpdate};
use gcsm_pattern::QueryGraph;

/// Drives one engine over a stream of batches.
pub struct Pipeline {
    graph: DynamicGraph,
    query: QueryGraph,
    /// Batches processed so far; labels the `batch` spans in traces.
    batches: u64,
}

impl Pipeline {
    /// Pipeline over an initial snapshot `G_0`.
    pub fn new(initial: CsrGraph, query: QueryGraph) -> Self {
        Self { graph: DynamicGraph::from_csr(&initial), query, batches: 0 }
    }

    /// The current graph state.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// The query.
    pub fn query(&self) -> &QueryGraph {
        &self.query
    }

    /// Count the query's matches on the *current* graph from scratch
    /// (parallel CPU WCOJ). Together with the streamed deltas this gives a
    /// consistent running total: `count(G_k) = count(G_0) + Σ ΔM`.
    pub fn static_count(&self, symmetry_break: bool) -> i64 {
        let snapshot = self.graph.to_csr();
        let src = gcsm_matcher::CsrSource::new(&snapshot);
        let opts = gcsm_matcher::DriverOptions {
            plan: gcsm_pattern::PlanOptions { symmetry_break },
            parallel: true,
            ..Default::default()
        };
        gcsm_matcher::match_static(&src, &self.query, &snapshot.edges().collect::<Vec<_>>(), &opts)
            .matches
    }

    /// Single-edge update mode (the paper's Sec. II-A "single-edge
    /// setting"): one matching invocation per update.
    pub fn process_update(&mut self, engine: &mut dyn Engine, update: EdgeUpdate) -> BatchResult {
        self.process_batch(engine, std::slice::from_ref(&update))
    }

    /// Like [`Self::process_batch`], but also returns the concrete signed
    /// matches (data-vertex bindings in plan order). The collection pass
    /// runs on the host against the sealed views, so the engine's traffic
    /// measurements are unaffected.
    pub fn process_batch_collect(
        &mut self,
        engine: &mut dyn Engine,
        updates: &[EdgeUpdate],
    ) -> (BatchResult, Vec<(Vec<gcsm_graph::VertexId>, i64)>) {
        let cpu_bw = engine.config().gpu.cpu_mem_bandwidth;
        let mut batch_span = gcsm_obs::span("batch", gcsm_obs::cat::PIPELINE);
        batch_span.set_batch(self.batches);
        batch_span.set_count(updates.len() as u64);
        self.batches += 1;
        {
            let _span = gcsm_obs::span("ingest", gcsm_obs::cat::PIPELINE);
            self.graph.begin_batch();
            for &u in updates {
                self.graph.apply(u);
            }
        }
        let summary = {
            let _span = gcsm_obs::span("seal", gcsm_obs::cat::PIPELINE);
            self.graph.seal_batch()
        };
        let touched_bytes: usize =
            self.graph.updated_vertices().iter().map(|&v| self.graph.list_bytes(v)).sum();

        let mut result = engine.match_sealed(&self.graph, &summary.applied, &self.query);
        let collected = {
            let src = gcsm_matcher::DynSource::new(&self.graph);
            let opts =
                gcsm_matcher::DriverOptions { plan: engine.config().plan, ..Default::default() };
            gcsm_matcher::collect_incremental(&src, &self.query, &summary.applied, &opts)
        };
        debug_assert_eq!(
            collected.iter().map(|(_, s)| s).sum::<i64>(),
            result.matches,
            "collection pass must agree with the engine"
        );

        let reorg_bytes: usize =
            self.graph.updated_vertices().iter().map(|&v| self.graph.list_bytes(v)).sum();
        self.graph.reorganize();
        result.phases.update += touched_bytes as f64 / cpu_bw;
        result.phases.reorganize += 2.0 * reorg_bytes as f64 / cpu_bw;
        drop(batch_span);
        crate::result::record_batch_metrics(&result);
        (result, collected)
    }

    /// Process one batch end to end. Returns the engine's measurements
    /// with the pipeline-side phases (update, reorganize) filled in.
    pub fn process_batch(
        &mut self,
        engine: &mut dyn Engine,
        updates: &[EdgeUpdate],
    ) -> BatchResult {
        let cpu_bw = engine.config().gpu.cpu_mem_bandwidth;
        let mut batch_span = gcsm_obs::span("batch", gcsm_obs::cat::PIPELINE);
        batch_span.set_batch(self.batches);
        batch_span.set_count(updates.len() as u64);
        self.batches += 1;

        // ---- Step 1: append ΔE to the CPU lists ----
        let wall0 = gcsm_obs::Stopwatch::start();
        {
            let _span = gcsm_obs::span("ingest", gcsm_obs::cat::PIPELINE);
            self.graph.begin_batch();
            for &u in updates {
                self.graph.apply(u);
            }
        }
        let summary = {
            let _span = gcsm_obs::span("seal", gcsm_obs::cat::PIPELINE);
            self.graph.seal_batch()
        };
        // Model: one binary search + append per update endpoint; dominated
        // by touching each updated list once.
        let touched_bytes: usize =
            self.graph.updated_vertices().iter().map(|&v| self.graph.list_bytes(v)).sum();
        let update_sim = touched_bytes as f64 / cpu_bw;
        let update_wall = wall0.elapsed_seconds();

        // ---- Steps 2–4: the engine ----
        let mut result = engine.match_sealed(&self.graph, &summary.applied, &self.query);

        // ---- Step 5: reorganize (after matching, per the paper) ----
        let wall1 = gcsm_obs::Stopwatch::start();
        let reorg_bytes: usize =
            self.graph.updated_vertices().iter().map(|&v| self.graph.list_bytes(v)).sum();
        self.graph.reorganize();
        let reorg_wall = wall1.elapsed_seconds();
        // Merge-sort + tombstone removal streams each updated list ~twice.
        let reorg_sim = 2.0 * reorg_bytes as f64 / cpu_bw;

        result.phases.update += update_sim;
        result.phases.reorganize += reorg_sim;
        result.wall_seconds += update_wall + reorg_wall;
        drop(batch_span);
        crate::result::record_batch_metrics(&result);
        result
    }

    /// Process a whole stream of batches, returning per-batch results.
    pub fn process_stream<'a>(
        &mut self,
        engine: &mut dyn Engine,
        batches: impl Iterator<Item = &'a [EdgeUpdate]>,
    ) -> Vec<BatchResult> {
        batches.map(|b| self.process_batch(engine, b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::engines::{GcsmEngine, ZeroCopyEngine};
    use gcsm_pattern::queries;

    fn setup() -> (CsrGraph, Vec<EdgeUpdate>) {
        let g0 = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        let batch = vec![EdgeUpdate::insert(2, 4), EdgeUpdate::delete(0, 1)];
        (g0, batch)
    }

    #[test]
    fn pipeline_runs_full_cycle_and_reorganizes() {
        let (g0, batch) = setup();
        let mut p = Pipeline::new(g0, queries::triangle());
        let mut e = ZeroCopyEngine::new(EngineConfig::default());
        let r = p.process_batch(&mut e, &batch);
        // Triangle (0,1,2) destroyed (−6 embeddings), (2,3,4) created (+6).
        assert_eq!(r.matches, 0);
        assert!(r.phases.update > 0.0);
        assert!(r.phases.reorganize > 0.0);
        // Graph is clean again (reorganized).
        assert!(p.graph().updated_vertices().is_empty());
    }

    #[test]
    fn running_total_stays_consistent() {
        let (g0, batch) = setup();
        let mut p = Pipeline::new(g0, queries::triangle());
        let initial = p.static_count(false);
        let mut e = GcsmEngine::new(EngineConfig::default());
        let mut total = initial;
        total += p.process_batch(&mut e, &batch).matches;
        total += p.process_batch(&mut e, &[EdgeUpdate::insert(0, 4)]).matches;
        assert_eq!(total, p.static_count(false));
    }

    #[test]
    fn single_update_mode() {
        let (g0, _) = setup();
        let mut p = Pipeline::new(g0, queries::triangle());
        let mut e = ZeroCopyEngine::new(EngineConfig::default());
        let r = p.process_update(&mut e, EdgeUpdate::insert(2, 4));
        assert_eq!(r.matches, 6); // triangle (2,3,4)
        let r = p.process_update(&mut e, EdgeUpdate::delete(2, 4));
        assert_eq!(r.matches, -6);
    }

    #[test]
    fn collect_returns_concrete_matches() {
        let (g0, batch) = setup();
        let mut p = Pipeline::new(g0, queries::triangle());
        let mut e = GcsmEngine::new(EngineConfig::default());
        let (r, matches) = p.process_batch_collect(&mut e, &batch);
        assert_eq!(matches.iter().map(|(_, s)| s).sum::<i64>(), r.matches);
        // The destroyed triangle {0,1,2} and the created one {2,3,4} both
        // appear with the right signs.
        assert!(matches.iter().any(|(m, s)| {
            let mut v = m.clone();
            v.sort_unstable();
            v == vec![0, 1, 2] && *s == -1
        }));
        assert!(matches.iter().any(|(m, s)| {
            let mut v = m.clone();
            v.sort_unstable();
            v == vec![2, 3, 4] && *s == 1
        }));
        // Graph reorganized afterwards.
        assert!(p.graph().updated_vertices().is_empty());
    }

    #[test]
    fn multi_batch_stream_stays_consistent() {
        let (g0, _) = setup();
        let mut p = Pipeline::new(g0.clone(), queries::triangle());
        let mut e = GcsmEngine::new(EngineConfig::default());
        let batches: Vec<Vec<EdgeUpdate>> = vec![
            vec![EdgeUpdate::insert(2, 4)],
            vec![EdgeUpdate::insert(0, 4)],
            vec![EdgeUpdate::delete(2, 4)],
        ];
        let mut cumulative = 0i64;
        for b in &batches {
            cumulative += p.process_batch(&mut e, b).matches;
        }
        // Net state: +edge (0,4). Triangles: (0,1,2) intact, (0,2,4)?
        // 0-4 and 2-4? (2,4) was deleted again. Recompute ground truth:
        let final_graph = p.graph().to_csr();
        let src = gcsm_matcher::CsrSource::new(&final_graph);
        let total_after = gcsm_matcher::match_static(
            &src,
            &queries::triangle(),
            &final_graph.edges().collect::<Vec<_>>(),
            &gcsm_matcher::DriverOptions::default(),
        )
        .matches;
        let src0 = gcsm_matcher::CsrSource::new(&g0);
        let total_before = gcsm_matcher::match_static(
            &src0,
            &queries::triangle(),
            &g0.edges().collect::<Vec<_>>(),
            &gcsm_matcher::DriverOptions::default(),
        )
        .matches;
        assert_eq!(cumulative, total_after - total_before);
    }
}
