//! Multi-device sharded execution.
//!
//! [`ShardedPipeline`] generalizes [`crate::Pipeline`] to `N` simulated
//! devices. The host still owns the single ground-truth [`DynamicGraph`]
//! (steps 1 and 5 of Fig. 3 are CPU work and happen once — the paper's
//! zero-copy story puts the sealed lists in pinned host memory, which every
//! device can read). What is sharded is the *matching work*: the batch's
//! `ΔE` is routed by `gcsm-shard` so each update's delta seeds are
//! enumerated by exactly one shard — the owner of the update's canonical
//! lower endpoint — making the summed per-shard `ΔM` bit-identical to the
//! single-device pipeline (DESIGN.md §12).
//!
//! Cut updates (endpoint owners differ) are additionally mirrored to the
//! non-counting owner so its replicated boundary lists stay current; each
//! mirrored update is charged to that shard's peer link
//! ([`gcsm_shard::PEER_UPDATE_BYTES`] per update via
//! [`gcsm_gpusim::Device::peer_copy`]) and lands in the shard's `data_copy`
//! phase, so partition quality is visible in simulated time, not just in
//! counters.
//!
//! ## Merge semantics
//!
//! Counts (`ΔM`, matcher stats, traffic, bytes) are **sums** — the shards
//! partition the work. Engine phases (`freq_est`, `data_copy`, `matching`)
//! are **maxima** — the devices run concurrently, so the batch finishes
//! when the slowest shard does. Host phases (`update`, `reorganize`) are
//! charged once, exactly as in the single-device pipeline.

use crate::config::EngineConfig;
use crate::engines::Engine;
use crate::result::BatchResult;
use gcsm_gpusim::{imbalance_factor, makespan, Device, Scheduling, SimBreakdown};
use gcsm_graph::{CsrGraph, DynamicGraph, EdgeUpdate};
use gcsm_pattern::QueryGraph;
use gcsm_shard::{route, PartitionPolicy, Partitioning};
use rayon::prelude::*;

/// One shard: an engine bound to its device's peer link.
struct Shard {
    engine: Box<dyn Engine>,
    /// Models the inter-device link; replica mirrors are charged here.
    link: Device,
}

/// Outcome of one batch across all shards.
#[derive(Clone, Debug)]
pub struct ShardedBatchResult {
    /// The merged, single-device-equivalent record (see module docs for
    /// sum-vs-max semantics). `merged.matches` is the exact `ΔM`.
    pub merged: BatchResult,
    /// Each shard's own measurement, in shard order.
    pub per_shard: Vec<BatchResult>,
    /// Bytes mirrored over peer links for cut updates this batch.
    pub peer_bytes: u64,
    /// Updates whose endpoints live on different shards.
    pub cut_updates: usize,
    /// Achieved parallel engine time: the slowest shard's engine phases.
    pub makespan_seconds: f64,
    /// Modeled makespan of this batch's per-update costs re-assigned
    /// across the shards under the configured [`Scheduling`] policy.
    pub assignment_makespan_seconds: f64,
    /// `assignment makespan / ideal` (≥ 1): how far the shard assignment
    /// is from perfect balance.
    pub imbalance: f64,
}

/// Derive a per-shard engine config from a total budget: each device gets
/// `1/N` of the cache budget (and proportionally scaled capacity), keeping
/// every link/compute constant of the base config.
pub fn shard_config(base: &EngineConfig, num_shards: usize) -> EngineConfig {
    let n = num_shards.max(1);
    let mut gpu = base.gpu;
    gpu.um_cache_bytes /= n;
    gpu.device_capacity /= n;
    gpu.kernel_reserved /= n;
    EngineConfig { gpu, ..base.clone() }
}

/// Drives `N` engines, one per shard, over a stream of batches.
pub struct ShardedPipeline {
    graph: DynamicGraph,
    query: QueryGraph,
    part: Partitioning,
    shards: Vec<Shard>,
    batches: u64,
}

impl ShardedPipeline {
    /// Pipeline over an initial snapshot, partitioned under `policy` into
    /// one shard per engine. Panics if `engines` is empty.
    pub fn new(
        initial: CsrGraph,
        query: QueryGraph,
        policy: PartitionPolicy,
        engines: Vec<Box<dyn Engine>>,
    ) -> Self {
        assert!(!engines.is_empty(), "sharded pipeline needs at least one engine");
        let part = Partitioning::compute(&initial, policy, engines.len());
        let shards = engines
            .into_iter()
            .map(|engine| {
                let link = Device::new(engine.config().gpu);
                Shard { engine, link }
            })
            .collect();
        Self { graph: DynamicGraph::from_csr(&initial), query, part, shards, batches: 0 }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The vertex partitioning in effect.
    pub fn partitioning(&self) -> &Partitioning {
        &self.part
    }

    /// The current graph state.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// The query.
    pub fn query(&self) -> &QueryGraph {
        &self.query
    }

    /// Count the query's matches on the *current* graph from scratch (same
    /// ground truth as [`crate::Pipeline::static_count`]).
    pub fn static_count(&self, symmetry_break: bool) -> i64 {
        let snapshot = self.graph.to_csr();
        let src = gcsm_matcher::CsrSource::new(&snapshot);
        let opts = gcsm_matcher::DriverOptions {
            plan: gcsm_pattern::PlanOptions { symmetry_break },
            parallel: true,
            ..Default::default()
        };
        gcsm_matcher::match_static(&src, &self.query, &snapshot.edges().collect::<Vec<_>>(), &opts)
            .matches
    }

    /// Process one batch end to end across all shards.
    pub fn process_batch(&mut self, updates: &[EdgeUpdate]) -> ShardedBatchResult {
        let wall = gcsm_obs::Stopwatch::start();
        let cpu_bw = self.shards[0].engine.config().gpu.cpu_mem_bandwidth;
        let scheduling = self.shards[0].engine.config().scheduling;
        let mut batch_span = gcsm_obs::span("batch", gcsm_obs::cat::PIPELINE);
        batch_span.set_batch(self.batches);
        batch_span.set_count(updates.len() as u64);
        let batch_idx = self.batches;
        self.batches += 1;

        // ---- Step 1 (host, once): append ΔE to the CPU lists ----
        {
            let _span = gcsm_obs::span("ingest", gcsm_obs::cat::PIPELINE);
            self.graph.begin_batch();
            for &u in updates {
                self.graph.apply(u);
            }
        }
        let summary = {
            let _span = gcsm_obs::span("seal", gcsm_obs::cat::PIPELINE);
            self.graph.seal_batch()
        };
        let touched_bytes: usize =
            self.graph.updated_vertices().iter().map(|&v| self.graph.list_bytes(v)).sum();
        let update_sim = touched_bytes as f64 / cpu_bw;

        // ---- Route ΔE to its counting shards ----
        let routed = {
            let _span = gcsm_obs::span("route", gcsm_obs::cat::PIPELINE);
            route(&summary.applied, &self.part)
        };

        // ---- Steps 2–4: every shard matches its subset, in parallel ----
        let graph = &self.graph;
        let query = &self.query;
        let jobs: Vec<(usize, &[EdgeUpdate], u64)> = routed
            .per_shard_match
            .iter()
            .enumerate()
            .map(|(i, a)| (i, a.as_slice(), routed.peer_bytes_to[i]))
            .collect();
        let per_shard: Vec<BatchResult> = self
            .shards
            .par_iter_mut()
            .zip(jobs.into_par_iter())
            .map(|(shard, (idx, assigned, peer_in))| {
                let mut span = gcsm_obs::span("shard_match", gcsm_obs::cat::ENGINE);
                span.set_batch(batch_idx);
                span.set_shard(idx as u32);
                span.set_count(assigned.len() as u64);
                let mut r = shard.engine.match_sealed(graph, assigned, query);
                // Mirror the cut updates this shard replicates but does not
                // count: one batched peer transfer over its link, charged to
                // the shard's data-copy phase like any other inbound bytes.
                if peer_in > 0 {
                    let before = shard.link.snapshot();
                    shard.link.peer_copy(peer_in as usize);
                    let interval = shard.link.snapshot() - before;
                    let peer = SimBreakdown::from_traffic(&interval, &shard.engine.config().gpu);
                    r.phases.data_copy += peer.peer;
                    r.sim = r.sim + peer;
                    r.traffic = r.traffic + interval;
                }
                r
            })
            .collect();

        // ---- Merge ----
        let engine_seconds =
            |r: &BatchResult| r.phases.freq_est + r.phases.data_copy + r.phases.matching;
        let makespan_seconds = per_shard.iter().map(engine_seconds).fold(0.0, f64::max);
        let mut merged = BatchResult {
            engine: format!("{}x{}", self.shards.len(), per_shard[0].engine),
            ..Default::default()
        };
        for r in &per_shard {
            merged.matches += r.matches;
            merged.stats.merge(r.stats);
            merged.traffic = merged.traffic + r.traffic;
            merged.sim = merged.sim + r.sim;
            merged.cpu_access_bytes += r.cpu_access_bytes;
            merged.cached_bytes += r.cached_bytes;
            merged.aux_bytes += r.aux_bytes;
            merged.phases.freq_est = merged.phases.freq_est.max(r.phases.freq_est);
            merged.phases.data_copy = merged.phases.data_copy.max(r.phases.data_copy);
            merged.phases.matching = merged.phases.matching.max(r.phases.matching);
        }
        merged.cache_hit_rate = merged.traffic.cache_hit_rate();

        // ---- Load-balance model: re-assign this batch's per-update costs
        // across the shards under the configured scheduling policy ----
        let (assignment_makespan_seconds, imbalance) =
            self.assignment_makespan(&summary.applied, &per_shard, scheduling);

        // ---- Step 5 (host, once): reorganize ----
        let reorg_bytes: usize =
            self.graph.updated_vertices().iter().map(|&v| self.graph.list_bytes(v)).sum();
        let reorg_sim = 2.0 * reorg_bytes as f64 / cpu_bw;
        self.graph.reorganize();

        merged.phases.update += update_sim;
        merged.phases.reorganize += reorg_sim;
        merged.wall_seconds = wall.elapsed_seconds();
        drop(batch_span);
        crate::result::record_batch_metrics(&merged);

        ShardedBatchResult {
            merged,
            per_shard,
            peer_bytes: routed.peer_bytes(),
            cut_updates: routed.cut_updates,
            makespan_seconds,
            assignment_makespan_seconds,
            imbalance,
        }
    }

    /// Model the batch's per-update costs as schedulable tasks: each
    /// shard's engine seconds spread uniformly over its assigned updates,
    /// tasks listed in batch order, then scheduled onto `N` "blocks"
    /// (devices) under `policy`. Returns `(makespan_seconds, imbalance)`.
    fn assignment_makespan(
        &self,
        applied: &[EdgeUpdate],
        per_shard: &[BatchResult],
        policy: Scheduling,
    ) -> (f64, f64) {
        let engine_seconds =
            |r: &BatchResult| r.phases.freq_est + r.phases.data_copy + r.phases.matching;
        let counts: Vec<usize> = {
            let mut c = vec![0usize; self.shards.len()];
            for u in applied {
                c[self.part.counting_shard(u)] += 1;
            }
            c
        };
        let per_update_ns: Vec<u64> = per_shard
            .iter()
            .zip(&counts)
            .map(|(r, &c)| if c == 0 { 0 } else { (engine_seconds(r) * 1e9 / c as f64) as u64 })
            .collect();
        let task_costs: Vec<u64> =
            applied.iter().map(|u| per_update_ns[self.part.counting_shard(u)]).collect();
        let blocks = self.shards.len();
        let ms = makespan(&task_costs, blocks, policy) as f64 * 1e-9;
        let imb = imbalance_factor(&task_costs, blocks, policy);
        (ms, imb)
    }

    /// Process a whole stream of batches, returning per-batch results.
    pub fn process_stream<'a>(
        &mut self,
        batches: impl Iterator<Item = &'a [EdgeUpdate]>,
    ) -> Vec<ShardedBatchResult> {
        batches.map(|b| self.process_batch(b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::{GcsmEngine, ZeroCopyEngine};
    use crate::pipeline::Pipeline;
    use gcsm_pattern::queries;

    fn setup() -> (CsrGraph, Vec<Vec<EdgeUpdate>>) {
        let g0 = CsrGraph::from_edges(8, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (5, 6)]);
        let batches = vec![
            vec![EdgeUpdate::insert(2, 4), EdgeUpdate::delete(0, 1)],
            vec![EdgeUpdate::insert(4, 6), EdgeUpdate::insert(5, 7)],
            vec![EdgeUpdate::insert(0, 1), EdgeUpdate::delete(2, 4), EdgeUpdate::insert(6, 7)],
        ];
        (g0, batches)
    }

    fn engines(n: usize) -> Vec<Box<dyn Engine>> {
        let base = EngineConfig::default();
        (0..n)
            .map(|_| Box::new(GcsmEngine::new(shard_config(&base, n))) as Box<dyn Engine>)
            .collect()
    }

    #[test]
    fn one_shard_reproduces_the_single_device_pipeline() {
        let (g0, batches) = setup();
        let mut single = Pipeline::new(g0.clone(), queries::triangle());
        let mut e = GcsmEngine::new(EngineConfig::default());
        let mut sharded =
            ShardedPipeline::new(g0, queries::triangle(), PartitionPolicy::Range, engines(1));
        for b in &batches {
            let r1 = single.process_batch(&mut e, b);
            let rn = sharded.process_batch(b);
            assert_eq!(rn.merged.matches, r1.matches);
            assert_eq!(rn.peer_bytes, 0, "one shard has no peer traffic");
            assert_eq!(rn.cut_updates, 0);
            // Host phases are charged identically.
            assert!((rn.merged.phases.update - r1.phases.update).abs() < 1e-15);
            assert!((rn.merged.phases.reorganize - r1.phases.reorganize).abs() < 1e-15);
        }
        assert_eq!(sharded.static_count(false), single.static_count(false));
    }

    #[test]
    fn sharded_delta_counts_match_single_device() {
        let (g0, batches) = setup();
        for policy in
            [PartitionPolicy::HashSrc, PartitionPolicy::Range, PartitionPolicy::DegreeBalanced]
        {
            for n in [2usize, 3, 4] {
                let mut single = Pipeline::new(g0.clone(), queries::triangle());
                let mut e = ZeroCopyEngine::new(EngineConfig::default());
                let mut sharded =
                    ShardedPipeline::new(g0.clone(), queries::triangle(), policy, engines(n));
                for b in &batches {
                    let expect = single.process_batch(&mut e, b).matches;
                    let got = sharded.process_batch(b);
                    assert_eq!(got.merged.matches, expect, "{policy:?}/{n} shards diverged");
                    assert_eq!(
                        got.per_shard.iter().map(|r| r.matches).sum::<i64>(),
                        got.merged.matches
                    );
                }
                assert_eq!(sharded.static_count(false), single.static_count(false));
            }
        }
    }

    #[test]
    fn cut_updates_generate_peer_traffic() {
        let (g0, _) = setup();
        // Range over 8 vertices / 2 shards: {0..4} vs {4..8}; (3,4) and
        // (2,5) are cut, (0,1) is local.
        let mut sharded =
            ShardedPipeline::new(g0, queries::triangle(), PartitionPolicy::Range, engines(2));
        let r = sharded.process_batch(&[
            EdgeUpdate::insert(3, 5),
            EdgeUpdate::insert(1, 3),
            EdgeUpdate::delete(0, 1),
        ]);
        assert_eq!(r.cut_updates, 1);
        assert_eq!(r.peer_bytes, gcsm_shard::PEER_UPDATE_BYTES);
        assert_eq!(r.merged.traffic.peer_bytes, gcsm_shard::PEER_UPDATE_BYTES);
        assert!(r.merged.traffic.peer_copies >= 1);
        // The mirrored bytes cost simulated data-copy time on the replica.
        assert!(r.merged.sim.peer > 0.0);
    }

    #[test]
    fn makespan_and_imbalance_are_reported() {
        let (g0, batches) = setup();
        let mut sharded =
            ShardedPipeline::new(g0, queries::triangle(), PartitionPolicy::HashSrc, engines(2));
        for b in &batches {
            let r = sharded.process_batch(b);
            assert!(r.makespan_seconds >= 0.0);
            assert!(r.assignment_makespan_seconds >= 0.0);
            assert!(r.imbalance >= 1.0);
            // The merged engine phases are maxima over shards, so the
            // achieved makespan is exactly their sum.
            let merged_engine =
                r.merged.phases.freq_est + r.merged.phases.data_copy + r.merged.phases.matching;
            assert!(r.makespan_seconds <= merged_engine + 1e-12);
        }
    }

    #[test]
    fn shard_config_splits_the_budget() {
        let base = EngineConfig::with_cache_budget(1 << 20);
        let per = shard_config(&base, 4);
        assert_eq!(per.gpu.cache_budget(), (1 << 20) / 4);
        assert_eq!(per.gpu.dma_bandwidth, base.gpu.dma_bandwidth);
        let degenerate = shard_config(&base, 0);
        assert_eq!(degenerate.gpu.cache_budget(), 1 << 20);
    }
}
