//! Engine configuration shared by all evaluated systems.

use gcsm_gpusim::{GpuConfig, Scheduling};
use gcsm_matcher::{EnumeratorKind, IntersectAlgo};
use gcsm_pattern::PlanOptions;

/// Configuration for one engine instance.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// The simulated hardware model (device capacity doubles as the cache
    /// budget knob, like the paper's 14 GB GPU buffer).
    pub gpu: GpuConfig,
    /// Plan options (symmetry breaking for unique-subgraph counting).
    pub plan: PlanOptions,
    /// Set-intersection kernel selection.
    pub algo: IntersectAlgo,
    /// Enumerator implementation (stack = the GPU kernel shape).
    pub enumerator: EnumeratorKind,
    /// Override the number of random walks per delta plan; `None` uses the
    /// paper's rule `M = |ΔE|·D^{n−2}/32^n` (Sec. VI-A).
    pub walks_override: Option<u64>,
    /// Enable the adaptive sample-size loop of Sec. IV-A: start with a
    /// quarter of the recommended `M`, check the Eq. (5) requirement
    /// against the smallest estimated frequency, and collect more samples
    /// if the confidence target is not met (at most [`Self::ADAPTIVE_MAX_ROUNDS`]
    /// rounds, capped at 4× the recommended `M`).
    pub adaptive_walks: bool,
    /// Ship only the cache *delta* between consecutive batches instead of
    /// re-sending the whole DCSR (extension beyond the paper; see
    /// `gcsm_cache::delta`). Counts are unaffected; only DMA volume drops.
    pub delta_cache: bool,
    /// Grid scheduling policy: `WorkStealing` models STMatch's inter-block
    /// stealing (the paper's kernel); `Static` is the ablation.
    pub scheduling: Scheduling,
    /// Compile cardinality-scored matching orders (RapidFlow's strategy)
    /// instead of the structural greedy order — the integration the paper
    /// names as future work ("incorporate its matching order optimization
    /// into our system"). Scores come from cheap global candidate counts
    /// (label + degree filters), no candidate index needed.
    pub optimized_order: bool,
    /// RNG seed for the walk estimator.
    pub walk_seed: u64,
    /// Run the matching kernel in parallel (deterministic counters; UM page
    /// hit rates may vary run to run). Serial runs are fully deterministic.
    pub parallel_kernel: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            gpu: GpuConfig::default(),
            plan: PlanOptions::default(),
            algo: IntersectAlgo::Auto,
            enumerator: EnumeratorKind::Stack,
            walks_override: None,
            adaptive_walks: false,
            delta_cache: false,
            scheduling: Scheduling::WorkStealing,
            optimized_order: false,
            walk_seed: 0x5eed,
            parallel_kernel: true,
        }
    }
}

impl EngineConfig {
    /// Ranking-gap parameter `α` for the adaptive loop (Theorem 1).
    pub const ADAPTIVE_ALPHA: f64 = 1.0;
    /// Target ranking confidence `δ` for the adaptive loop.
    pub const ADAPTIVE_CONFIDENCE: f64 = 0.9;
    /// Maximum resampling rounds.
    pub const ADAPTIVE_MAX_ROUNDS: usize = 3;
}

impl EngineConfig {
    /// Config with an explicit device cache budget in bytes.
    pub fn with_cache_budget(budget: usize) -> Self {
        Self { gpu: GpuConfig::rtx3090_scaled(budget), ..Self::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_constructor() {
        let c = EngineConfig::with_cache_budget(1 << 20);
        assert_eq!(c.gpu.cache_budget(), 1 << 20);
    }
}
