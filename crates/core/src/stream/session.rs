//! Concurrent streaming sessions: bounded ingestion, a sequencing worker,
//! and pipeline-driving batch processors with a running-count ledger.
//!
//! Threading model: any number of [`StreamProducer`] clones feed one
//! bounded crossbeam channel; a single worker thread re-establishes the
//! sequence order (explicit mode) or assigns it (arrival mode), drives the
//! shared [`BatchBuilder`], and hands each sealed batch to the session's
//! [`BatchProcessor`] — which owns the `Pipeline`/`MultiPipeline` and is
//! therefore free of locks. Results fan out to subscribers and accumulate
//! in the final [`SessionReport`].

use super::builder::{BatchBuilder, SealPolicy, SealedBatch, StreamEvent};
use crate::engines::Engine;
use crate::multi::MultiPipeline;
use crate::pipeline::Pipeline;
use crate::result::BatchResult;
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use gcsm_graph::EdgeUpdate;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// How sequence numbers are established.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SequenceMode {
    /// Producers supply the total order via [`StreamProducer::ingest_at`];
    /// a reorder buffer releases events in `seq` order. Batch boundaries
    /// are then independent of thread interleaving — the determinism
    /// guarantee the tests rely on. Sequence numbers should be dense
    /// overall (producers striping disjoint ranges is the usual scheme);
    /// gaps stall release until session shutdown.
    Explicit,
    /// The worker assigns sequence numbers in arrival order
    /// ([`StreamProducer::ingest`]). Replayable via the recorded order,
    /// but boundaries are only reproducible up front with one producer.
    Arrival,
}

/// What `ingest` does when the bounded queue is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backpressure {
    /// Block the producer until space frees up. Lossless; the default.
    Block,
    /// Drop the offered update and count it ([`SessionReport::dropped`]).
    /// Only allowed in [`SequenceMode::Arrival`] — dropping an explicit
    /// sequence number would leave a permanent hole in the total order.
    DropNewest,
}

/// Session configuration.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    pub seal_policy: SealPolicy,
    /// Capacity of the bounded ingest queue.
    pub capacity: usize,
    pub backpressure: Backpressure,
    pub mode: SequenceMode,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            seal_policy: SealPolicy::Size(1024),
            capacity: 4096,
            backpressure: Backpressure::Block,
            mode: SequenceMode::Arrival,
        }
    }
}

struct Envelope {
    /// `Some` in explicit mode, `None` in arrival mode.
    seq: Option<u64>,
    event: StreamEvent,
}

/// Consumes sealed batches; owns the pipeline state. `Out` is what
/// subscribers and the report receive per batch.
pub trait BatchProcessor: Send {
    type Out: Clone + Send + 'static;
    fn process(&mut self, sealed: &SealedBatch) -> Self::Out;
}

/// Per-batch output of a single-query session.
#[derive(Clone, Debug)]
pub struct StreamBatch {
    /// The surviving updates this batch applied, in sequence order.
    pub updates: Vec<EdgeUpdate>,
    /// Engine measurements; `result.stream` carries the ingestion metadata.
    pub result: BatchResult,
    /// Ledger after this batch: `base + Σ ΔM` over all batches so far.
    pub running_total: i64,
}

/// Drives a [`Pipeline`] + engine and maintains the running-count ledger
/// `count(G_k) = count(G_0) + Σ ΔM`.
pub struct PipelineProcessor {
    pipeline: Pipeline,
    engine: Box<dyn Engine>,
    ledger: i64,
}

impl PipelineProcessor {
    /// `base` is `count(G_0)` — pass `pipeline.static_count(..)` for a true
    /// ledger, or 0 to track `Σ ΔM` alone.
    pub fn new(pipeline: Pipeline, engine: Box<dyn Engine>, base: i64) -> Self {
        Self { pipeline, engine, ledger: base }
    }

    /// The pipeline back, e.g. to `static_count` after the session. Any
    /// overlapped reorganization still in flight is joined first so the
    /// returned graph state is settled.
    pub fn into_pipeline(mut self) -> Pipeline {
        self.pipeline.flush();
        self.pipeline
    }
}

impl BatchProcessor for PipelineProcessor {
    type Out = StreamBatch;

    fn process(&mut self, sealed: &SealedBatch) -> StreamBatch {
        let mut result = self.pipeline.process_batch(self.engine.as_mut(), &sealed.updates);
        result.stream = Some(sealed.meta);
        self.ledger += result.matches;
        StreamBatch { updates: sealed.updates.clone(), result, running_total: self.ledger }
    }
}

/// Per-batch output of a multi-query session.
#[derive(Clone, Debug)]
pub struct MultiStreamBatch {
    pub updates: Vec<EdgeUpdate>,
    /// Query name → result, in registration order; each `result.stream`
    /// carries the (shared) ingestion metadata.
    pub per_query: Vec<(String, BatchResult)>,
    /// Query name → ledger after this batch.
    pub running_totals: Vec<(String, i64)>,
}

/// Drives a [`MultiPipeline`] with one ledger per registered query.
pub struct MultiProcessor {
    multi: MultiPipeline,
    ledgers: Vec<i64>,
}

impl MultiProcessor {
    /// `bases` must have one entry per registered query (or be empty to
    /// track `Σ ΔM` from zero).
    pub fn new(multi: MultiPipeline, bases: Vec<i64>) -> Self {
        assert!(
            bases.is_empty() || bases.len() == multi.num_queries(),
            "one ledger base per registered query"
        );
        let ledgers = if bases.is_empty() { vec![0; multi.num_queries()] } else { bases };
        Self { multi, ledgers }
    }
}

impl BatchProcessor for MultiProcessor {
    type Out = MultiStreamBatch;

    fn process(&mut self, sealed: &SealedBatch) -> MultiStreamBatch {
        let mut res = self.multi.process_batch(&sealed.updates);
        let mut running_totals = Vec::with_capacity(res.per_query.len());
        for (i, (name, r)) in res.per_query.iter_mut().enumerate() {
            r.stream = Some(sealed.meta);
            self.ledgers[i] += r.matches;
            running_totals.push((name.clone(), self.ledgers[i]));
        }
        MultiStreamBatch {
            updates: sealed.updates.clone(),
            per_query: res.per_query,
            running_totals,
        }
    }
}

/// Final accounting for a finished session.
#[derive(Clone, Debug)]
pub struct SessionReport<Out> {
    /// Every sealed batch's output, in seal order.
    pub batches: Vec<Out>,
    /// Update events the worker received (before coalescing).
    pub updates_received: u64,
    /// Tick events the worker received.
    pub ticks_received: u64,
    /// Updates dropped at the producers under [`Backpressure::DropNewest`].
    pub dropped: u64,
}

/// Multi-producer handle. Cheap to clone; drop all clones (and call
/// [`StreamSession::finish`]) to end the session.
pub struct StreamProducer {
    tx: Sender<Envelope>,
    depth: Arc<AtomicUsize>,
    dropped: Arc<AtomicU64>,
    blocked: Arc<AtomicUsize>,
    mode: SequenceMode,
    backpressure: Backpressure,
}

impl Clone for StreamProducer {
    fn clone(&self) -> Self {
        Self {
            tx: self.tx.clone(),
            depth: Arc::clone(&self.depth),
            dropped: Arc::clone(&self.dropped),
            blocked: Arc::clone(&self.blocked),
            mode: self.mode,
            backpressure: self.backpressure,
        }
    }
}

impl StreamProducer {
    fn push(&self, env: Envelope) -> bool {
        match self.backpressure {
            Backpressure::Block => {
                // Relaxed: depth is an advisory gauge read by monitors; the
                // channel itself orders the envelopes, so no acquire/release
                // pairing is needed on the counter.
                self.depth.fetch_add(1, Ordering::Relaxed);
                match self.tx.try_send(env) {
                    Ok(()) => true,
                    Err(TrySendError::Disconnected(_)) => {
                        // Relaxed: undo of the advisory gauge above.
                        self.depth.fetch_sub(1, Ordering::Relaxed);
                        false
                    }
                    Err(TrySendError::Full(env)) => {
                        // Queue full: this producer is about to stall on a
                        // blocking send. Count the stall (and mirror it into
                        // the obs gauge) so backpressure is observable.
                        // Relaxed: advisory gauge, same as depth above.
                        self.blocked.fetch_add(1, Ordering::Relaxed);
                        let obs_on = gcsm_obs::enabled();
                        if obs_on {
                            gcsm_obs::global().registry.gauge("stream.blocked_producers").inc();
                        }
                        let ok = self.tx.send(env).is_ok();
                        // Relaxed: undo of the advisory gauge above.
                        self.blocked.fetch_sub(1, Ordering::Relaxed);
                        if obs_on {
                            gcsm_obs::global().registry.gauge("stream.blocked_producers").dec();
                        }
                        if !ok {
                            // Relaxed: undo of the advisory depth gauge.
                            self.depth.fetch_sub(1, Ordering::Relaxed);
                        }
                        ok
                    }
                }
            }
            Backpressure::DropNewest => {
                // Relaxed: same advisory gauge as the Block arm.
                self.depth.fetch_add(1, Ordering::Relaxed);
                match self.tx.try_send(env) {
                    Ok(()) => true,
                    Err(e) => {
                        // Relaxed: undo of the advisory gauge above.
                        self.depth.fetch_sub(1, Ordering::Relaxed);
                        if matches!(e, TrySendError::Full(_)) {
                            // Relaxed: monotonic statistics counter; readers
                            // only need an eventually-consistent total.
                            self.dropped.fetch_add(1, Ordering::Relaxed);
                        }
                        false
                    }
                }
            }
        }
    }

    /// Arrival-mode ingestion; the worker assigns the sequence number.
    /// Returns `false` if the update was dropped (full queue under
    /// `DropNewest`) or the session is gone.
    pub fn ingest(&self, update: EdgeUpdate) -> bool {
        assert_eq!(
            self.mode,
            SequenceMode::Arrival,
            "session is in explicit-sequence mode; use ingest_at(seq, update)"
        );
        self.push(Envelope { seq: None, event: StreamEvent::Update(update) })
    }

    /// Explicit-mode ingestion at a caller-chosen position in the total
    /// order. Sequence numbers must be globally distinct.
    pub fn ingest_at(&self, seq: u64, update: EdgeUpdate) -> bool {
        assert_eq!(
            self.mode,
            SequenceMode::Explicit,
            "session is in arrival-sequence mode; use ingest(update)"
        );
        self.push(Envelope { seq: Some(seq), event: StreamEvent::Update(update) })
    }

    /// Arrival-mode logical tick.
    pub fn tick(&self) -> bool {
        assert_eq!(self.mode, SequenceMode::Arrival, "use tick_at(seq) in explicit mode");
        self.push(Envelope { seq: None, event: StreamEvent::Tick })
    }

    /// Explicit-mode logical tick occupying position `seq`.
    pub fn tick_at(&self, seq: u64) -> bool {
        assert_eq!(self.mode, SequenceMode::Explicit, "use tick() in arrival mode");
        self.push(Envelope { seq: Some(seq), event: StreamEvent::Tick })
    }
}

/// A live streaming session; see the module docs for the threading model.
pub struct StreamSession<P: BatchProcessor> {
    tx: Option<Sender<Envelope>>,
    worker: Option<JoinHandle<(SessionReport<P::Out>, P)>>,
    subscribers: Arc<Mutex<Vec<Sender<P::Out>>>>,
    depth: Arc<AtomicUsize>,
    dropped: Arc<AtomicU64>,
    blocked: Arc<AtomicUsize>,
    mode: SequenceMode,
    backpressure: Backpressure,
}

impl<P: BatchProcessor + 'static> StreamSession<P> {
    /// Start the worker thread. Panics on invalid configurations
    /// (`DropNewest` with explicit sequencing).
    pub fn spawn(processor: P, config: StreamConfig) -> Self {
        assert!(
            !(config.backpressure == Backpressure::DropNewest
                && config.mode == SequenceMode::Explicit),
            "DropNewest would leave holes in an explicit sequence; use Block"
        );
        let (tx, rx) = channel::bounded::<Envelope>(config.capacity.max(1));
        let depth = Arc::new(AtomicUsize::new(0));
        let dropped = Arc::new(AtomicU64::new(0));
        let blocked = Arc::new(AtomicUsize::new(0));
        let subscribers: Arc<Mutex<Vec<Sender<P::Out>>>> = Arc::new(Mutex::new(Vec::new()));
        let worker = {
            let depth = Arc::clone(&depth);
            let dropped = Arc::clone(&dropped);
            let subscribers = Arc::clone(&subscribers);
            std::thread::spawn(move || {
                run_worker(processor, rx, config, depth, dropped, subscribers)
            })
        };
        Self {
            tx: Some(tx),
            worker: Some(worker),
            subscribers,
            depth,
            dropped,
            blocked,
            mode: config.mode,
            backpressure: config.backpressure,
        }
    }

    /// A new producer handle.
    pub fn producer(&self) -> StreamProducer {
        StreamProducer {
            tx: self.tx.as_ref().expect("session not finished").clone(),
            depth: Arc::clone(&self.depth),
            dropped: Arc::clone(&self.dropped),
            blocked: Arc::clone(&self.blocked),
            mode: self.mode,
            backpressure: self.backpressure,
        }
    }

    /// Current ingest-queue depth (advisory point-in-time value).
    pub fn queue_depth(&self) -> usize {
        // Relaxed: advisory gauge; see the producer-side comments.
        self.depth.load(Ordering::Relaxed)
    }

    /// Producers currently stalled on a full queue under
    /// [`Backpressure::Block`] (advisory point-in-time value).
    pub fn blocked_producers(&self) -> usize {
        // Relaxed: advisory gauge; see the producer-side comments.
        self.blocked.load(Ordering::Relaxed)
    }

    /// Updates dropped so far under [`Backpressure::DropNewest`].
    pub fn dropped_updates(&self) -> u64 {
        // Relaxed: monotonic statistics counter; an eventually-consistent
        // total is all callers need mid-session.
        self.dropped.load(Ordering::Relaxed)
    }

    /// Subscribe to per-batch outputs. Batches sealed before subscribing
    /// are not replayed (the final report contains all of them).
    pub fn subscribe(&self) -> Receiver<P::Out> {
        let (tx, rx) = channel::unbounded();
        self.subscribers.lock().push(tx);
        rx
    }

    /// Graceful shutdown: stop accepting new producers, wait for all
    /// outstanding producer handles to drop, drain in-flight events, seal
    /// the remaining window, and return the report plus the processor
    /// (with its pipeline state).
    pub fn finish(mut self) -> (SessionReport<P::Out>, P) {
        drop(self.tx.take());
        let (mut report, processor) =
            self.worker.take().expect("finish called once").join().expect("stream worker panicked");
        // Relaxed: all producers have dropped and the worker has joined, so
        // the thread join already synchronizes; this read sees the final
        // value regardless of ordering.
        report.dropped = self.dropped.load(Ordering::Relaxed);
        (report, processor)
    }
}

/// Single-query convenience wrapper around
/// [`StreamSession::spawn`]`(`[`PipelineProcessor`]`, ..)`.
pub fn spawn_pipeline(
    pipeline: Pipeline,
    engine: Box<dyn Engine>,
    ledger_base: i64,
    config: StreamConfig,
) -> StreamSession<PipelineProcessor> {
    StreamSession::spawn(PipelineProcessor::new(pipeline, engine, ledger_base), config)
}

/// Multi-query convenience wrapper around
/// [`StreamSession::spawn`]`(`[`MultiProcessor`]`, ..)`.
pub fn spawn_multi(
    multi: MultiPipeline,
    ledger_bases: Vec<i64>,
    config: StreamConfig,
) -> StreamSession<MultiProcessor> {
    StreamSession::spawn(MultiProcessor::new(multi, ledger_bases), config)
}

/// Fold one sealed batch's ingestion stats into the obs layer (no-op when
/// observability is disabled): `stream.*` gauges/counters plus a closed
/// `window` span spanning first-admission → seal on the worker's timeline.
fn record_sealed_obs(sealed: &SealedBatch, dropped: &AtomicU64) {
    let obs = gcsm_obs::global();
    if !obs.enabled() {
        return;
    }
    let open_us = (sealed.meta.window_open_seconds * 1e6) as u64;
    let now_us = gcsm_obs::monotonic_micros();
    obs.tracer.record_closed(
        "window",
        gcsm_obs::cat::STREAM,
        now_us.saturating_sub(open_us),
        open_us,
        gcsm_obs::SpanArgs {
            batch: Some(sealed.meta.batch_index),
            count: Some(sealed.meta.admitted as u64),
            ..Default::default()
        },
    );
    obs.registry.gauge("stream.queue_depth").set(sealed.meta.queue_depth as i64);
    obs.registry.counter("stream.batches_sealed").inc();
    obs.registry.counter("stream.updates_admitted").add(sealed.meta.admitted as u64);
    // Relaxed: monotonic statistics counter mirrored into a gauge; readers
    // only need an eventually-consistent total.
    obs.registry.gauge("stream.dropped_updates").set(dropped.load(Ordering::Relaxed) as i64);
}

fn run_worker<P: BatchProcessor>(
    mut processor: P,
    rx: Receiver<Envelope>,
    config: StreamConfig,
    depth: Arc<AtomicUsize>,
    dropped: Arc<AtomicU64>,
    subscribers: Arc<Mutex<Vec<Sender<P::Out>>>>,
) -> (SessionReport<P::Out>, P) {
    let mut builder = BatchBuilder::new(config.seal_policy);
    let mut report =
        SessionReport { batches: Vec::new(), updates_received: 0, ticks_received: 0, dropped: 0 };
    // Explicit mode: events parked here until their predecessors arrive.
    let mut reorder: BTreeMap<u64, StreamEvent> = BTreeMap::new();
    let mut next_seq: u64 = 0;

    let handle = |seq: u64,
                  event: StreamEvent,
                  builder: &mut BatchBuilder,
                  report: &mut SessionReport<P::Out>,
                  processor: &mut P| {
        let sealed = match event {
            StreamEvent::Update(u) => {
                report.updates_received += 1;
                builder.offer(seq, u)
            }
            StreamEvent::Tick => {
                report.ticks_received += 1;
                builder.tick(seq)
            }
        };
        if let Some(mut sealed) = sealed {
            // Relaxed: advisory point-in-time gauge recorded in batch
            // metadata; exactness is not part of the determinism contract.
            sealed.meta.queue_depth = depth.load(Ordering::Relaxed);
            record_sealed_obs(&sealed, &dropped);
            let out = processor.process(&sealed);
            subscribers.lock().retain(|tx| tx.send(out.clone()).is_ok());
            report.batches.push(out);
        }
    };

    while let Ok(env) = rx.recv() {
        // Relaxed: advisory gauge decrement; the channel recv ordered the
        // envelope itself.
        depth.fetch_sub(1, Ordering::Relaxed);
        match env.seq {
            Some(seq) => {
                debug_assert_eq!(config.mode, SequenceMode::Explicit);
                reorder.insert(seq, env.event);
                while let Some(event) = reorder.remove(&next_seq) {
                    handle(next_seq, event, &mut builder, &mut report, &mut processor);
                    next_seq += 1;
                }
            }
            None => {
                debug_assert_eq!(config.mode, SequenceMode::Arrival);
                handle(next_seq, env.event, &mut builder, &mut report, &mut processor);
                next_seq += 1;
            }
        }
    }
    // Disconnected: release anything still parked (sequence gaps are
    // tolerated at shutdown — order stays by seq), then flush the window.
    for (seq, event) in std::mem::take(&mut reorder) {
        handle(seq, event, &mut builder, &mut report, &mut processor);
    }
    if let Some(mut sealed) = builder.flush() {
        sealed.meta.queue_depth = 0;
        record_sealed_obs(&sealed, &dropped);
        let out = processor.process(&sealed);
        subscribers.lock().retain(|tx| tx.send(out.clone()).is_ok());
        report.batches.push(out);
    }
    (report, processor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::engines::ZeroCopyEngine;
    use gcsm_graph::CsrGraph;
    use gcsm_pattern::queries;

    fn small_pipeline() -> Pipeline {
        let g0 = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        Pipeline::new(g0, queries::triangle())
    }

    fn engine() -> Box<dyn Engine> {
        Box::new(ZeroCopyEngine::new(EngineConfig::default()))
    }

    #[test]
    fn session_processes_and_ledger_tracks() {
        let pipeline = small_pipeline();
        let base = pipeline.static_count(false);
        let session = spawn_pipeline(
            pipeline,
            engine(),
            base,
            StreamConfig { seal_policy: SealPolicy::Size(2), ..Default::default() },
        );
        let rx = session.subscribe();
        let p = session.producer();
        assert!(p.ingest(EdgeUpdate::insert(2, 4)));
        assert!(p.ingest(EdgeUpdate::insert(0, 3)));
        assert!(p.ingest(EdgeUpdate::delete(0, 1)));
        drop(p);
        let (report, processor) = session.finish();
        assert_eq!(report.batches.len(), 2, "2-seal + 1-flush");
        assert_eq!(report.updates_received, 3);
        assert_eq!(report.dropped, 0);
        let last = report.batches.last().unwrap();
        assert_eq!(last.result.stream.unwrap().seal_reason, crate::result::SealReason::Flush);
        // Ledger invariant against a from-scratch recount.
        let final_count = processor.into_pipeline().static_count(false);
        assert_eq!(last.running_total, final_count);
        // Subscriber saw the same batches.
        let seen: Vec<_> = rx.try_iter().collect();
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[1].running_total, final_count);
    }

    #[test]
    fn explicit_sequencing_reorders() {
        let session = spawn_pipeline(
            small_pipeline(),
            engine(),
            0,
            StreamConfig {
                seal_policy: SealPolicy::Size(2),
                mode: SequenceMode::Explicit,
                ..Default::default()
            },
        );
        let p = session.producer();
        // Send out of order; worker must release 0,1,2.
        assert!(p.ingest_at(2, EdgeUpdate::insert(0, 4)));
        assert!(p.ingest_at(0, EdgeUpdate::insert(2, 4)));
        assert!(p.ingest_at(1, EdgeUpdate::insert(1, 4)));
        drop(p);
        let (report, _) = session.finish();
        assert_eq!(report.batches.len(), 2);
        assert_eq!(
            report.batches[0].updates,
            vec![EdgeUpdate::insert(2, 4), EdgeUpdate::insert(1, 4)]
        );
        assert_eq!(report.batches[1].updates, vec![EdgeUpdate::insert(0, 4)]);
    }

    #[test]
    #[should_panic(expected = "explicit-sequence mode")]
    fn mode_misuse_panics() {
        let session = spawn_pipeline(
            small_pipeline(),
            engine(),
            0,
            StreamConfig { mode: SequenceMode::Explicit, ..Default::default() },
        );
        let p = session.producer();
        let _ = p.ingest(EdgeUpdate::insert(0, 1));
    }

    #[test]
    #[should_panic(expected = "DropNewest")]
    fn drop_newest_with_explicit_rejected() {
        let _ = spawn_pipeline(
            small_pipeline(),
            engine(),
            0,
            StreamConfig {
                mode: SequenceMode::Explicit,
                backpressure: Backpressure::DropNewest,
                ..Default::default()
            },
        );
    }

    #[test]
    fn drop_newest_counts_losses() {
        // Capacity-1 queue, worker held back by nothing — racing is fine:
        // we only assert ingested + dropped == offered.
        let session = spawn_pipeline(
            small_pipeline(),
            engine(),
            0,
            StreamConfig {
                seal_policy: SealPolicy::Size(64),
                capacity: 1,
                backpressure: Backpressure::DropNewest,
                mode: SequenceMode::Arrival,
            },
        );
        let p = session.producer();
        let offered = 200u64;
        let mut accepted = 0u64;
        for i in 0..offered {
            if p.ingest(EdgeUpdate::insert(i as u32 % 5, 5 + (i as u32 % 3))) {
                accepted += 1;
            }
        }
        drop(p);
        let (report, _) = session.finish();
        assert_eq!(report.updates_received, accepted);
        assert_eq!(report.dropped, offered - accepted);
    }
}
