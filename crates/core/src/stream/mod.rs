//! Concurrent streaming ingestion for continuous subgraph matching.
//!
//! The batch pipeline ([`crate::Pipeline`]) answers "given this batch,
//! what changed?"; this module answers "given this firehose of updates,
//! *make* the batches" — the part a deployed CSM system sits behind:
//!
//! ```text
//!  producer ─┐                       ┌────────────────────────────────┐
//!  producer ─┼─▶ bounded channel ──▶ │ worker: sequencer → coalescing │──▶ subscribers
//!  producer ─┘   (backpressure)      │   window → seal → Pipeline     │    + final report
//!                                    └────────────────────────────────┘
//! ```
//!
//! * **Admission & coalescing** — updates enter a window where duplicates
//!   collapse and insert/delete pairs annihilate
//!   ([`gcsm_graph::admission`]); self-loops are rejected.
//! * **Seal policies** — [`SealPolicy::Size`], [`SealPolicy::OnTick`], or
//!   both. Ticks are *logical* events in the sequenced stream, so
//!   tick-based boundaries replay exactly.
//! * **Determinism** — with [`SequenceMode::Explicit`], batch boundaries
//!   and the ΔM sequence are a pure function of (initial graph, sequenced
//!   events, seal policy): any producer interleaving matches the serial
//!   reference ([`replay_serial`]).
//! * **Backpressure** — the ingest queue is bounded;
//!   [`Backpressure::Block`] is lossless, [`Backpressure::DropNewest`]
//!   sheds load and counts every loss.
//! * **Ledger** — each batch carries `running_total = count(G_0) + Σ ΔM`,
//!   checkable against [`crate::Pipeline::static_count`] at any seal.
//!
//! See DESIGN.md § "Streaming ingestion" for the semantics argument and
//! `tests/tests/stream_*.rs` for the determinism/property suites.

mod builder;
mod session;

pub use builder::{replay_serial, BatchBuilder, SealPolicy, SealedBatch, StreamEvent};
pub use session::{
    spawn_multi, spawn_pipeline, Backpressure, BatchProcessor, MultiProcessor, MultiStreamBatch,
    PipelineProcessor, SequenceMode, SessionReport, StreamBatch, StreamConfig, StreamProducer,
    StreamSession,
};
