//! Deterministic batch building: seal policies and the coalescing window.
//!
//! [`BatchBuilder`] is the single place where batch boundaries are decided.
//! Both the concurrent session worker (`super::session`) and the serial
//! reference ([`replay_serial`]) drive the same builder, so "replaying the
//! same sequenced events through the same policy yields the same batches"
//! holds by construction — the tests in `tests/tests/stream_determinism.rs`
//! verify it end to end anyway.

use crate::result::{SealReason, StreamMeta};
use gcsm_graph::{CoalesceWindow, EdgeUpdate};

/// One element of a sequenced stream: an edge update or a logical tick.
///
/// Ticks are ordinary events *inside* the sequenced total order — a
/// wall-clock timer can be the thing that injects them, but the builder
/// only ever sees their position in the sequence, which is what keeps
/// tick-based sealing replayable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamEvent {
    Update(EdgeUpdate),
    Tick,
}

/// When the open window is sealed into a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SealPolicy {
    /// Seal as soon as the window holds `n` surviving updates.
    Size(usize),
    /// Seal only on logical tick events.
    OnTick,
    /// Seal at `n` survivors or on a tick, whichever comes first.
    SizeOrTick(usize),
}

impl SealPolicy {
    fn size_threshold(&self) -> Option<usize> {
        match *self {
            SealPolicy::Size(n) | SealPolicy::SizeOrTick(n) => Some(n),
            SealPolicy::OnTick => None,
        }
    }

    fn seals_on_tick(&self) -> bool {
        matches!(self, SealPolicy::OnTick | SealPolicy::SizeOrTick(_))
    }
}

/// A sealed batch: the surviving updates (in sequence order) plus the
/// metadata that will ride on the [`crate::BatchResult`].
#[derive(Clone, Debug)]
pub struct SealedBatch {
    pub updates: Vec<EdgeUpdate>,
    pub meta: StreamMeta,
}

/// Accumulates sequenced events into a coalescing window and seals batches
/// per the policy. Events **must** be offered in increasing `seq` order —
/// the sequencer (or `replay_serial`'s sort) guarantees that.
pub struct BatchBuilder {
    policy: SealPolicy,
    window: CoalesceWindow,
    batch_index: u64,
    /// Sequence span of events routed into the open window (including
    /// duplicates, cancellations and rejected self-loops).
    span: Option<(u64, u64)>,
    /// Process-clock microseconds when the window opened (obs timeline, so
    /// the session worker can place `window` spans on the shared trace).
    opened_at_us: Option<u64>,
}

impl BatchBuilder {
    pub fn new(policy: SealPolicy) -> Self {
        if let Some(n) = policy.size_threshold() {
            assert!(n >= 1, "SealPolicy size threshold must be at least 1");
        }
        Self {
            policy,
            window: CoalesceWindow::new(),
            batch_index: 0,
            span: None,
            opened_at_us: None,
        }
    }

    pub fn policy(&self) -> SealPolicy {
        self.policy
    }

    /// Surviving updates currently pending.
    pub fn pending(&self) -> usize {
        self.window.len()
    }

    fn note_seq(&mut self, seq: u64) {
        self.span = Some(match self.span {
            None => (seq, seq),
            Some((lo, hi)) => (lo.min(seq), hi.max(seq)),
        });
        if self.opened_at_us.is_none() {
            self.opened_at_us = Some(gcsm_obs::monotonic_micros());
        }
    }

    fn seal(&mut self, reason: SealReason) -> SealedBatch {
        let (updates, stats) = self.window.drain();
        let (first_seq, last_seq) = self.span.take().unwrap_or((0, 0));
        let meta = StreamMeta {
            batch_index: self.batch_index,
            first_seq,
            last_seq,
            admitted: updates.len(),
            duplicates_dropped: stats.duplicates,
            cancelled_pairs: stats.cancelled_pairs,
            self_loops_dropped: stats.self_loops,
            seal_reason: reason,
            queue_depth: 0, // filled by the session worker
            window_open_seconds: self
                .opened_at_us
                .take()
                .map(|t| gcsm_obs::monotonic_micros().saturating_sub(t) as f64 * 1e-6)
                .unwrap_or(0.0),
        };
        self.batch_index += 1;
        SealedBatch { updates, meta }
    }

    /// Offer one sequenced update. Returns the sealed batch if this update
    /// brought the window to a size threshold.
    pub fn offer(&mut self, seq: u64, update: EdgeUpdate) -> Option<SealedBatch> {
        self.note_seq(seq);
        self.window.admit(seq, update);
        match self.policy.size_threshold() {
            Some(n) if self.window.len() >= n => Some(self.seal(SealReason::Size)),
            _ => None,
        }
    }

    /// A logical tick at sequence `seq`. Seals the window under tick-based
    /// policies — unless it holds no survivors, in which case nothing is
    /// emitted and the window's counters/span carry into the next batch.
    pub fn tick(&mut self, seq: u64) -> Option<SealedBatch> {
        self.note_seq(seq);
        if self.policy.seals_on_tick() && !self.window.is_empty() {
            Some(self.seal(SealReason::Tick))
        } else {
            None
        }
    }

    /// Session shutdown: seal whatever survives in the window.
    pub fn flush(&mut self) -> Option<SealedBatch> {
        if self.window.is_empty() {
            None
        } else {
            Some(self.seal(SealReason::Flush))
        }
    }
}

/// Serial reference semantics: sort the events by sequence number and run
/// them through a fresh [`BatchBuilder`], processing each sealed batch with
/// `process`. A concurrent session over the same events, policy, and
/// initial pipeline state must produce exactly this batch sequence.
pub fn replay_serial<T>(
    events: &[(u64, StreamEvent)],
    policy: SealPolicy,
    mut process: impl FnMut(&SealedBatch) -> T,
) -> Vec<T> {
    let mut sorted = events.to_vec();
    sorted.sort_unstable_by_key(|&(seq, _)| seq);
    debug_assert!(sorted.windows(2).all(|w| w[0].0 != w[1].0), "sequence numbers must be distinct");
    let mut builder = BatchBuilder::new(policy);
    let mut out = Vec::new();
    for &(seq, event) in &sorted {
        let sealed = match event {
            StreamEvent::Update(u) => builder.offer(seq, u),
            StreamEvent::Tick => builder.tick(seq),
        };
        if let Some(sealed) = sealed {
            out.push(process(&sealed));
        }
    }
    if let Some(sealed) = builder.flush() {
        out.push(process(&sealed));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcsm_graph::EdgeUpdate;

    fn ins(s: u32, d: u32) -> EdgeUpdate {
        EdgeUpdate::insert(s, d)
    }

    #[test]
    fn size_policy_seals_at_threshold() {
        let mut b = BatchBuilder::new(SealPolicy::Size(2));
        assert!(b.offer(0, ins(0, 1)).is_none());
        let sealed = b.offer(1, ins(1, 2)).expect("threshold reached");
        assert_eq!(sealed.updates, vec![ins(0, 1), ins(1, 2)]);
        assert_eq!(sealed.meta.seal_reason, crate::result::SealReason::Size);
        assert_eq!(sealed.meta.batch_index, 0);
        assert_eq!((sealed.meta.first_seq, sealed.meta.last_seq), (0, 1));
        assert!(b.offer(2, ins(2, 3)).is_none());
        let sealed = b.flush().expect("flush remainder");
        assert_eq!(sealed.meta.batch_index, 1);
        assert_eq!(sealed.meta.seal_reason, crate::result::SealReason::Flush);
    }

    #[test]
    fn cancellation_keeps_window_open() {
        let mut b = BatchBuilder::new(SealPolicy::Size(2));
        assert!(b.offer(0, ins(0, 1)).is_none());
        // Cancel it: the window is back to zero survivors, no seal.
        assert!(b.offer(1, EdgeUpdate::delete(0, 1)).is_none());
        assert_eq!(b.pending(), 0);
        assert!(b.offer(2, ins(5, 6)).is_none());
        let sealed = b.offer(3, ins(6, 7)).expect("two survivors now");
        assert_eq!(sealed.meta.cancelled_pairs, 1);
        // Span covers the cancelled prefix too.
        assert_eq!((sealed.meta.first_seq, sealed.meta.last_seq), (0, 3));
    }

    #[test]
    fn tick_policy_and_empty_tick() {
        let mut b = BatchBuilder::new(SealPolicy::OnTick);
        assert!(b.tick(0).is_none(), "empty window: tick emits nothing");
        for s in 1..5u64 {
            assert!(b.offer(s, ins(s as u32, s as u32 + 1)).is_none());
        }
        let sealed = b.tick(5).expect("tick seals");
        assert_eq!(sealed.meta.admitted, 4);
        assert_eq!(sealed.meta.seal_reason, crate::result::SealReason::Tick);
        assert!(b.flush().is_none(), "nothing pending after tick seal");
    }

    #[test]
    fn size_or_tick_takes_whichever_first() {
        let mut b = BatchBuilder::new(SealPolicy::SizeOrTick(3));
        b.offer(0, ins(0, 1));
        let sealed = b.tick(1).expect("tick before size");
        assert_eq!(sealed.meta.admitted, 1);
        b.offer(2, ins(1, 2));
        b.offer(3, ins(2, 3));
        let sealed = b.offer(4, ins(3, 4)).expect("size before tick");
        assert_eq!(sealed.meta.seal_reason, crate::result::SealReason::Size);
    }

    #[test]
    fn replay_serial_sorts_by_seq() {
        let events: Vec<(u64, StreamEvent)> = vec![
            (3, StreamEvent::Update(ins(2, 3))),
            (0, StreamEvent::Update(ins(0, 1))),
            (1, StreamEvent::Update(ins(1, 2))),
        ];
        let batches = replay_serial(&events, SealPolicy::Size(2), |s| s.updates.clone());
        assert_eq!(batches, vec![vec![ins(0, 1), ins(1, 2)], vec![ins(2, 3)]]);
    }
}
