//! Fig. 13 / Fig. 14 benches: VSGM's copy-heavy baseline and the
//! RapidFlow-like CPU comparator against GCSM.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcsm::Pipeline;
use gcsm_bench::{make_engine, EngineKind, RunConfig, Workload};
use gcsm_datagen::Preset;
use gcsm_pattern::queries;

/// Fig. 13: VSGM (k-hop pre-copy) vs GCSM at a small batch size.
fn bench_vsgm(c: &mut Criterion) {
    let rc = RunConfig { scale: 0.0625, max_batches: 1, ..Default::default() };
    let w = Workload::build(Preset::Sf3k, rc.scale, 128, 1);
    let q = queries::q1();
    let mut group = c.benchmark_group("fig13_sf3k_batch128");
    group.sample_size(10);
    for kind in [EngineKind::Vsgm, EngineKind::Gcsm] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            b.iter(|| {
                let mut engine = make_engine(kind, rc.engine_config(&w));
                let mut p = Pipeline::new(w.initial.clone(), q.clone());
                p.process_batch(engine.as_mut(), &w.batches[0]).matches
            });
        });
    }
    group.finish();
}

/// Fig. 14: RapidFlow-like vs plain CPU vs GCSM on the Amazon-class graph.
fn bench_rapidflow(c: &mut Criterion) {
    let rc = RunConfig { scale: 0.25, max_batches: 1, ..Default::default() };
    let w = Workload::build(Preset::Amazon, rc.scale, 512, 1);
    let q = queries::q2();
    let mut group = c.benchmark_group("fig14_az_batch512");
    group.sample_size(10);
    for kind in [EngineKind::RapidFlow, EngineKind::Cpu, EngineKind::Gcsm] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            b.iter(|| {
                let mut engine = make_engine(kind, rc.engine_config(&w));
                let mut p = Pipeline::new(w.initial.clone(), q.clone());
                p.process_batch(engine.as_mut(), &w.batches[0]).matches
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vsgm, bench_rapidflow);
criterion_main!(benches);
