//! Fig. 11 bench: motif counting on the road networks (flat degrees).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcsm::Pipeline;
use gcsm_bench::{make_engine, EngineKind, RunConfig, Workload};
use gcsm_datagen::Preset;
use gcsm_pattern::connected_motifs;

fn bench_motifs(c: &mut Criterion) {
    let rc = RunConfig { scale: 0.25, max_batches: 1, symmetry_break: true, ..Default::default() };
    let w = Workload::build(Preset::RoadNetPA, rc.scale, 1024, 1);
    let mut group = c.benchmark_group("fig11_pa_motifs");
    group.sample_size(10);
    for size in [3usize, 4] {
        let motifs = connected_motifs(size);
        for kind in [EngineKind::ZeroCopy, EngineKind::Gcsm] {
            group.bench_with_input(
                BenchmarkId::new(format!("size{size}"), kind.name()),
                &kind,
                |b, &kind| {
                    b.iter(|| {
                        let mut total = 0i64;
                        for m in &motifs {
                            let mut engine = make_engine(kind, rc.engine_config(&w));
                            let mut p = Pipeline::new(w.initial.clone(), m.clone());
                            total += p.process_batch(engine.as_mut(), &w.batches[0]).matches;
                        }
                        total
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_motifs);
criterion_main!(benches);
