//! Criterion benches for the per-query figures (Fig. 8 / 9 / 10 shape):
//! wall-clock time of each engine processing one batch, per query.
//!
//! The `repro` binary reports the simulated times the figures are built
//! from; these benches measure the real wall cost of the same cells at a
//! reduced scale so `cargo bench` stays minutes, not hours.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcsm::Pipeline;
use gcsm_bench::{make_engine, EngineKind, RunConfig, Workload};
use gcsm_datagen::Preset;
use gcsm_pattern::queries;

fn bench_per_query(c: &mut Criterion) {
    let rc = RunConfig { scale: 0.0625, max_batches: 1, ..Default::default() };
    let w = Workload::build(Preset::Friendster, rc.scale, 512, 1);
    let mut group = c.benchmark_group("fig8_fr_batch512");
    group.sample_size(10);
    for q in [queries::q1(), queries::q2(), queries::q3()] {
        for kind in
            [EngineKind::ZeroCopy, EngineKind::NaiveDegree, EngineKind::Cpu, EngineKind::Gcsm]
        {
            group.bench_with_input(BenchmarkId::new(q.name(), kind.name()), &kind, |b, &kind| {
                b.iter(|| {
                    let mut engine = make_engine(kind, rc.engine_config(&w));
                    let mut p = Pipeline::new(w.initial.clone(), q.clone());
                    p.process_batch(engine.as_mut(), &w.batches[0]).matches
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_per_query);
criterion_main!(benches);
