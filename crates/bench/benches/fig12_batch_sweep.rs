//! Fig. 12 bench: batch-size sweep of ZP vs GCSM.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gcsm::Pipeline;
use gcsm_bench::{make_engine, EngineKind, RunConfig, Workload};
use gcsm_datagen::Preset;
use gcsm_pattern::queries;

fn bench_batch_sweep(c: &mut Criterion) {
    let rc = RunConfig { scale: 0.0625, max_batches: 1, ..Default::default() };
    let q = queries::q6();
    let mut group = c.benchmark_group("fig12_sf3k_q6");
    group.sample_size(10);
    for batch in [64usize, 256, 1024] {
        let w = Workload::build(Preset::Sf3k, rc.scale, batch, 1);
        group.throughput(Throughput::Elements(batch as u64));
        for kind in [EngineKind::ZeroCopy, EngineKind::Gcsm] {
            group.bench_with_input(BenchmarkId::new(kind.name(), batch), &kind, |b, &kind| {
                b.iter(|| {
                    let mut engine = make_engine(kind, rc.engine_config(&w));
                    let mut p = Pipeline::new(w.initial.clone(), q.clone());
                    p.process_batch(engine.as_mut(), &w.batches[0]).matches
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_batch_sweep);
criterion_main!(benches);
