//! Design-choice ablations (beyond the paper's figures; DESIGN.md §4):
//!
//! * set-intersection kernels (merge / gallop / blocked / auto);
//! * recursive vs stack enumerator;
//! * merged-binomial vs naive independent random walks (Sec. IV-B);
//! * estimator walk budget `M` (Eq. (5) trade-off);
//! * graph reorganisation (Table III's wall-clock counterpart).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcsm_bench::{RunConfig, Workload};
use gcsm_datagen::Preset;
use gcsm_freq::{estimate_merged, estimate_naive, WalkParams};
use gcsm_graph::DynamicGraph;
use gcsm_matcher::{match_incremental, DriverOptions, DynSource, EnumeratorKind, IntersectAlgo};
use gcsm_pattern::{compile_incremental, queries, PlanOptions};

fn setup() -> (DynamicGraph, Vec<gcsm_graph::EdgeUpdate>) {
    let rc = RunConfig { scale: 0.0625, max_batches: 1, ..Default::default() };
    let w = Workload::build(Preset::Friendster, rc.scale, 512, 1);
    let mut g = DynamicGraph::from_csr(&w.initial);
    let summary = g.apply_batch(&w.batches[0]);
    (g, summary.applied)
}

fn bench_intersect_kernels(c: &mut Criterion) {
    let (g, batch) = setup();
    let q = queries::q2();
    let mut group = c.benchmark_group("ablation_intersect_kernel");
    group.sample_size(10);
    for (name, algo) in [
        ("merge", IntersectAlgo::Merge),
        ("gallop", IntersectAlgo::Gallop),
        ("blocked", IntersectAlgo::Blocked),
        ("auto", IntersectAlgo::Auto),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &algo, |b, &algo| {
            let src = DynSource::new(&g);
            let opts = DriverOptions { algo, parallel: true, ..Default::default() };
            b.iter(|| match_incremental(&src, &q, &batch, &opts).matches);
        });
    }
    group.finish();
}

fn bench_enumerators(c: &mut Criterion) {
    let (g, batch) = setup();
    let q = queries::q1();
    let mut group = c.benchmark_group("ablation_enumerator");
    group.sample_size(10);
    for (name, e) in [("recursive", EnumeratorKind::Recursive), ("stack", EnumeratorKind::Stack)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &e, |b, &e| {
            let src = DynSource::new(&g);
            let opts = DriverOptions { enumerator: e, parallel: true, ..Default::default() };
            b.iter(|| match_incremental(&src, &q, &batch, &opts).matches);
        });
    }
    group.finish();
}

fn bench_walk_strategies(c: &mut Criterion) {
    let (g, batch) = setup();
    let plans = compile_incremental(&queries::triangle(), PlanOptions::default());
    let d = g.max_degree_bound();
    let mut group = c.benchmark_group("ablation_walks");
    group.sample_size(10);
    let params = WalkParams { walks: 8192, seed: 3 };
    group.bench_function("merged_8k", |b| {
        let src = DynSource::new(&g);
        b.iter(|| estimate_merged(&src, &plans, &batch, d, &params).walk_ops);
    });
    group.bench_function("naive_8k", |b| {
        let src = DynSource::new(&g);
        b.iter(|| estimate_naive(&src, &plans, &batch, d, &params).walk_ops);
    });
    for m in [1024u64, 65_536] {
        group.bench_with_input(BenchmarkId::new("merged_sweep", m), &m, |b, &m| {
            let src = DynSource::new(&g);
            let p = WalkParams { walks: m, seed: 3 };
            b.iter(|| estimate_merged(&src, &plans, &batch, d, &p).walk_ops);
        });
    }
    group.finish();
}

fn bench_reorganize(c: &mut Criterion) {
    let rc = RunConfig { scale: 0.25, max_batches: 1, ..Default::default() };
    let mut group = c.benchmark_group("table3_reorganize_wall");
    group.sample_size(10);
    for (preset, batch_size) in [(Preset::Friendster, 4096usize), (Preset::Sf10k, 8192)] {
        let w = Workload::build(preset, rc.scale, batch_size, 1);
        group.bench_with_input(BenchmarkId::new(preset.name(), batch_size), &w, |b, w| {
            b.iter_batched(
                || {
                    let mut g = DynamicGraph::from_csr(&w.initial);
                    g.apply_batch(&w.batches[0]);
                    g
                },
                |mut g| g.reorganize(),
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(
            BenchmarkId::new(format!("{}_parallel", preset.name()), batch_size),
            &w,
            |b, w| {
                b.iter_batched(
                    || {
                        let mut g = DynamicGraph::from_csr(&w.initial);
                        g.apply_batch(&w.batches[0]);
                        g
                    },
                    |mut g| g.reorganize_parallel(),
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_intersect_kernels,
    bench_enumerators,
    bench_walk_strategies,
    bench_reorganize
);
criterion_main!(benches);
