//! Wall-clock counterpart of the `repro cache_delta` experiment: the
//! {full,delta} × {serial,overlap} grid on a dense ER graph with a stable
//! hot set. The repro table reports the *simulated* DMA and latency win;
//! this measures the host-side cost of the same four configurations —
//! delta planning + packing vs. full repack, and the overlapped
//! reorganize (which moves merge work off the critical path at the price
//! of a thread spawn per batch).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcsm::prelude::*;
use gcsm_datagen::temporal::{temporal_stream, TemporalConfig};
use gcsm_graph::EdgeUpdate;
use gcsm_pattern::queries;

fn workload() -> (gcsm_graph::CsrGraph, Vec<Vec<EdgeUpdate>>) {
    let n = 512usize;
    let initial = gcsm_datagen::er::gnm(n, 32 * n, 42);
    let stream = temporal_stream(
        &initial,
        &TemporalConfig {
            updates: 256 * 6,
            locality: 1.0,
            region: 32,
            drift_every: usize::MAX,
            seed: 9,
        },
    );
    let batches = stream.chunks(256).map(<[EdgeUpdate]>::to_vec).collect();
    (initial, batches)
}

fn bench_cache_delta(c: &mut Criterion) {
    let (initial, batches) = workload();
    let budget = initial.adjacency_bytes() * 2;
    let base =
        EngineConfig { walks_override: Some(4_000), ..EngineConfig::with_cache_budget(budget) };
    let delta = EngineConfig { delta_cache: true, ..base.clone() };
    let mut group = c.benchmark_group("cache_delta_stream");
    group.sample_size(10);
    for (name, cfg, overlap) in [
        ("full_serial", &base, false),
        ("full_overlap", &base, true),
        ("delta_serial", &delta, false),
        ("delta_overlap", &delta, true),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &(cfg, overlap),
            |b, &(cfg, overlap)| {
                b.iter(|| {
                    let mut engine = GcsmEngine::new(cfg.clone());
                    let mut pipeline = Pipeline::new(initial.clone(), queries::fig1_kite());
                    pipeline.set_overlap(overlap);
                    let mut dm = 0i64;
                    for batch in &batches {
                        dm += pipeline.process_batch(&mut engine, batch).matches;
                    }
                    pipeline.flush();
                    dm
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cache_delta);
criterion_main!(benches);
