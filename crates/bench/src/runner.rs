//! Cell runner: (engine × dataset × query × batch size) → aggregated
//! measurements.

use crate::workload::Workload;
use gcsm::prelude::*;
use gcsm_pattern::QueryGraph;

/// Engine selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    Gcsm,
    ZeroCopy,
    UnifiedMem,
    Vsgm,
    NaiveDegree,
    Cpu,
    RapidFlow,
    /// IncIsoMatch-style recompute-from-scratch \[12\] — small scales only.
    Recompute,
}

impl EngineKind {
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::Gcsm => "GCSM",
            EngineKind::ZeroCopy => "ZP",
            EngineKind::UnifiedMem => "UM",
            EngineKind::Vsgm => "VSGM",
            EngineKind::NaiveDegree => "Naive",
            EngineKind::Cpu => "CPU",
            EngineKind::RapidFlow => "RF",
            EngineKind::Recompute => "Recompute",
        }
    }
}

/// Instantiate an engine.
pub fn make_engine(kind: EngineKind, cfg: EngineConfig) -> Box<dyn Engine> {
    match kind {
        EngineKind::Gcsm => Box::new(GcsmEngine::new(cfg)),
        EngineKind::ZeroCopy => Box::new(ZeroCopyEngine::new(cfg)),
        EngineKind::UnifiedMem => Box::new(UnifiedMemEngine::new(cfg)),
        EngineKind::Vsgm => Box::new(VsgmEngine::new(cfg)),
        EngineKind::NaiveDegree => Box::new(NaiveDegreeEngine::new(cfg)),
        EngineKind::Cpu => Box::new(CpuWcojEngine::new(cfg)),
        EngineKind::RapidFlow => Box::new(RapidFlowEngine::new(cfg)),
        EngineKind::Recompute => Box::new(RecomputeEngine::new(cfg)),
    }
}

/// Global run configuration.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Dataset scale multiplier.
    pub scale: f64,
    /// Batches measured per cell.
    pub max_batches: usize,
    /// GPU cache budget as a fraction of the graph's adjacency bytes
    /// (the paper's regime: buffer ≪ graph, but big enough for the
    /// walk-sampled working set of one batch).
    pub budget_fraction: f64,
    /// Symmetry-break (unique-subgraph counting) — used for motif counts.
    pub symmetry_break: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self { scale: 1.0, max_batches: 2, budget_fraction: 1.0 / 8.0, symmetry_break: false }
    }
}

impl RunConfig {
    /// Engine config for a given workload (budget scaled to the graph).
    pub fn engine_config(&self, w: &Workload) -> EngineConfig {
        let budget =
            ((w.initial.adjacency_bytes() as f64 * self.budget_fraction) as usize).max(64 << 10);
        let mut cfg = EngineConfig::with_cache_budget(budget);
        cfg.plan.symmetry_break = self.symmetry_break;
        cfg
    }
}

/// Aggregated per-batch averages for one cell.
#[derive(Clone, Debug, Default)]
pub struct CellResult {
    pub engine: String,
    /// Average simulated milliseconds per batch (total across phases).
    pub ms: f64,
    /// Phase averages (simulated ms).
    pub fe_ms: f64,
    pub dc_ms: f64,
    pub match_ms: f64,
    pub reorg_ms: f64,
    pub update_ms: f64,
    /// Average bytes read from CPU memory per batch.
    pub cpu_bytes: f64,
    /// Average cache hit rate.
    pub hit_rate: f64,
    /// Net matches over all measured batches (identical across engines).
    pub matches: i64,
    /// Average wall seconds per batch.
    pub wall_s: f64,
    /// Auxiliary memory (RF index bytes), max over batches.
    pub aux_bytes: usize,
    /// Average bytes shipped to the device cache per batch.
    pub cached_bytes: f64,
    /// Total set-intersection element operations across batches.
    pub ops: u64,
}

/// Run one engine over the workload's batches.
pub fn run_cell(kind: EngineKind, w: &Workload, q: &QueryGraph, rc: &RunConfig) -> CellResult {
    let cfg = rc.engine_config(w);
    let mut engine = make_engine(kind, cfg);
    let mut pipeline = Pipeline::new(w.initial.clone(), q.clone());
    let mut agg = CellResult { engine: kind.name().to_string(), ..Default::default() };
    let n = w.batches.len().max(1) as f64;
    for batch in &w.batches {
        let r = pipeline.process_batch(engine.as_mut(), batch);
        agg.ms += r.total_ms() / n;
        agg.fe_ms += r.phases.freq_est * 1e3 / n;
        agg.dc_ms += r.phases.data_copy * 1e3 / n;
        agg.match_ms += r.phases.matching * 1e3 / n;
        agg.reorg_ms += r.phases.reorganize * 1e3 / n;
        agg.update_ms += r.phases.update * 1e3 / n;
        agg.cpu_bytes += r.cpu_access_bytes as f64 / n;
        agg.hit_rate += r.cache_hit_rate / n;
        agg.matches += r.matches;
        agg.wall_s += r.wall_seconds / n;
        agg.aux_bytes = agg.aux_bytes.max(r.aux_bytes);
        agg.cached_bytes += r.cached_bytes as f64 / n;
        agg.ops += r.stats.intersect_ops;
    }
    agg
}

/// Outcome of one multi-producer streaming-ingestion run, with the two
/// checks the stream subsystem guarantees.
#[derive(Clone, Debug)]
pub struct StreamCellResult {
    /// Every sealed batch (metadata rides in `result.stream`).
    pub batches: Vec<gcsm::stream::StreamBatch>,
    /// `count(G_0)` used as the ledger base.
    pub base: i64,
    /// Ledger after the last batch (`base + Σ ΔM`).
    pub final_total: i64,
    /// From-scratch count of the final graph (ledger check: must equal
    /// `final_total`).
    pub static_total: i64,
    /// Whether the concurrent run matched the serial reference batch by
    /// batch (same update sequences, same ΔM).
    pub matches_serial: bool,
}

/// Stream the workload's updates through a concurrent session with
/// `producers` threads striping explicit sequence numbers, then verify the
/// result against the serial reference and a from-scratch recount.
pub fn run_stream_cell(
    kind: EngineKind,
    w: &Workload,
    q: &QueryGraph,
    rc: &RunConfig,
    producers: usize,
    policy: gcsm::SealPolicy,
) -> StreamCellResult {
    use gcsm::stream::{replay_serial, StreamEvent};

    let producers = producers.max(1);
    let cfg = rc.engine_config(w);
    let updates: Vec<gcsm_graph::EdgeUpdate> =
        w.batches.iter().flat_map(|b| b.iter().copied()).collect();

    let pipeline = Pipeline::new(w.initial.clone(), q.clone());
    let base = pipeline.static_count(rc.symmetry_break);
    let session = gcsm::stream::spawn_pipeline(
        pipeline,
        make_engine(kind, cfg.clone()),
        base,
        StreamConfig {
            seal_policy: policy,
            capacity: 1024,
            backpressure: Backpressure::Block,
            mode: SequenceMode::Explicit,
        },
    );
    std::thread::scope(|s| {
        for p in 0..producers {
            let producer = session.producer();
            let updates = &updates;
            s.spawn(move || {
                let mut i = p;
                while i < updates.len() {
                    producer.ingest_at(i as u64, updates[i]);
                    i += producers;
                }
            });
        }
    });
    let (report, processor) = session.finish();
    let static_total = processor.into_pipeline().static_count(rc.symmetry_break);
    let final_total = report.batches.last().map(|b| b.running_total).unwrap_or(base);

    // Serial reference: same events, same policy, fresh pipeline + engine.
    let events: Vec<(u64, StreamEvent)> =
        updates.iter().enumerate().map(|(i, &u)| (i as u64, StreamEvent::Update(u))).collect();
    let mut serial_pipeline = Pipeline::new(w.initial.clone(), q.clone());
    let mut serial_engine = make_engine(kind, cfg);
    let serial: Vec<(Vec<gcsm_graph::EdgeUpdate>, i64)> =
        replay_serial(&events, policy, |sealed| {
            let r = serial_pipeline.process_batch(serial_engine.as_mut(), &sealed.updates);
            (sealed.updates.clone(), r.matches)
        });
    let matches_serial = serial.len() == report.batches.len()
        && serial
            .iter()
            .zip(&report.batches)
            .all(|((u, dm), b)| *u == b.updates && *dm == b.result.matches);

    StreamCellResult { batches: report.batches, base, final_total, static_total, matches_serial }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcsm_datagen::Preset;
    use gcsm_pattern::queries;

    #[test]
    fn all_engines_agree_on_matches() {
        let rc = RunConfig { scale: 0.0625, max_batches: 2, ..Default::default() };
        let w = Workload::build(Preset::Amazon, rc.scale, 32, rc.max_batches);
        let q = queries::triangle();
        let kinds = [
            EngineKind::Gcsm,
            EngineKind::ZeroCopy,
            EngineKind::UnifiedMem,
            EngineKind::Vsgm,
            EngineKind::NaiveDegree,
            EngineKind::Cpu,
            EngineKind::RapidFlow,
        ];
        let results: Vec<CellResult> = kinds.iter().map(|&k| run_cell(k, &w, &q, &rc)).collect();
        let expect = results[0].matches;
        for r in &results {
            assert_eq!(r.matches, expect, "{} disagrees", r.engine);
            assert!(r.ms > 0.0, "{} has zero time", r.engine);
        }
    }

    #[test]
    fn stream_cell_verifies_itself() {
        let rc = RunConfig { scale: 0.0625, max_batches: 2, ..Default::default() };
        let w = Workload::build(Preset::Amazon, rc.scale, 32, rc.max_batches);
        let cell = run_stream_cell(
            EngineKind::ZeroCopy,
            &w,
            &queries::triangle(),
            &rc,
            4,
            gcsm::SealPolicy::Size(32),
        );
        assert!(cell.matches_serial, "concurrent run diverged from serial reference");
        assert_eq!(cell.final_total, cell.static_total, "ledger drifted");
        assert!(!cell.batches.is_empty());
        assert!(cell.batches.iter().all(|b| b.result.stream.is_some()));
    }
}
