//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p gcsm-bench --release --bin repro -- all
//! cargo run -p gcsm-bench --release --bin repro -- fig8 fig12 --scale 0.5
//! ```
//!
//! Experiments: table1 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15a
//! fig15b table2 table3 um labeled stream ablations cache_delta shard all.
//! Options: `--scale S` (dataset scale, default 0.25), `--batches N`
//! (measured batches per cell, default 2).

use gcsm::prelude::*;
use gcsm_bench::{
    fmt_bytes, run_cell, run_stream_cell, CellResult, EngineKind, RunConfig, Table, Workload,
};
use gcsm_datagen::{all_presets, Preset};
use gcsm_graph::DynamicGraph;
use gcsm_matcher::{match_incremental, AccessCounter, DriverOptions, DynSource, RecordingSource};
use gcsm_pattern::{connected_motifs, queries, QueryGraph};

/// The value following flag `args[i]`, or exit 2 naming the flag.
fn flag_value(args: &[String], i: usize) -> &str {
    args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
        eprintln!("repro: {} needs a value", args[i]);
        std::process::exit(2);
    })
}

/// Parse the value following flag `args[i]`, or exit 2 naming flag + value.
fn flag_parse<T: std::str::FromStr>(args: &[String], i: usize) -> T
where
    T::Err: std::fmt::Display,
{
    let v = flag_value(args, i);
    v.parse().unwrap_or_else(|e| {
        eprintln!("repro: {} {v}: {e}", args[i]);
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiments: Vec<String> = Vec::new();
    let mut rc = RunConfig { scale: 0.25, max_batches: 2, ..Default::default() };
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                rc.scale = flag_parse(&args, i);
                i += 1;
            }
            "--batches" => {
                rc.max_batches = flag_parse(&args, i);
                i += 1;
            }
            "--json" => {
                json_path = Some(flag_value(&args, i).to_string());
                i += 1;
            }
            e => experiments.push(e.to_string()),
        }
        i += 1;
    }
    if experiments.is_empty() {
        experiments.push("all".to_string());
    }
    // Collect metrics for the whole run; `--json` embeds the snapshot.
    gcsm_obs::global().enable();
    let all = experiments.iter().any(|e| e == "all");
    let want = |name: &str| all || experiments.iter().any(|e| e == name);

    println!("# GCSM reproduction harness (scale={}, batches/cell={})", rc.scale, rc.max_batches);
    println!("# times are simulated ms from the gpusim cost model; see DESIGN.md");

    let mut tables: Vec<Table> = Vec::new();
    if want("table1") {
        tables.push(table1(&rc));
    }
    if want("fig8") {
        tables.push(per_query_figure("Fig. 8: FR, batch 4096", Preset::Friendster, 4096, &rc));
    }
    if want("fig9") {
        tables.push(per_query_figure("Fig. 9: SF3K, batch 4096", Preset::Sf3k, 4096, &rc));
    }
    if want("fig10") {
        tables.push(per_query_figure("Fig. 10: SF10K, batch 8192", Preset::Sf10k, 8192, &rc));
    }
    if want("fig11") {
        tables.push(fig11(&rc));
    }
    if want("fig12") {
        tables.push(fig12(&rc));
    }
    if want("fig13") {
        tables.push(fig13(&rc));
    }
    if want("fig14") {
        tables.push(fig14(&rc));
    }
    if want("fig15a") {
        tables.push(fig15a(&rc));
    }
    if want("fig15b") {
        tables.push(fig15b(&rc));
    }
    if want("table2") {
        tables.push(table2(&rc));
    }
    if want("table3") {
        tables.push(table3(&rc));
    }
    if want("um") {
        tables.push(um_slowdown(&rc));
    }
    if want("labeled") {
        tables.push(labeled_experiment(&rc));
    }
    if want("stream") {
        tables.push(stream_demo(&rc));
    }
    if want("ablations") {
        tables.push(ablation_budget(&rc));
        tables.push(ablation_extensions(&rc));
        tables.push(ablation_scheduling(&rc));
        tables.push(ablation_incremental(&rc));
    }
    if want("cache_delta") {
        tables.push(cache_delta(&rc));
    }
    if want("shard") {
        tables.push(shard_experiment(&rc));
    }
    for t in &tables {
        t.print();
    }
    if let Some(path) = json_path {
        gcsm_bench::report::write_json_with_obs(&tables, &path).unwrap_or_else(|e| {
            eprintln!("repro: --json {path}: {e}");
            std::process::exit(2);
        });
        println!("\n# wrote JSON report to {path}");
    }
}

/// Extra: labeled matching at scale. The paper's evaluation graphs are
/// unlabeled; the problem definition (Sec. II-A) includes labels, so this
/// exercises the label filters end-to-end: a labeled kite on a labeled FR
/// stand-in, GCSM vs ZP.
fn labeled_experiment(rc: &RunConfig) -> Table {
    use gcsm_graph::CsrBuilder;
    let mut t = Table::new(
        "Extra: labeled matching (FR with 4 labels, labeled kite, batch 2048)",
        &["Engine", "ms/batch", "cpu-read", "hit%", "ΔM"],
    );
    let w = Workload::build(Preset::Friendster, rc.scale, 2048, rc.max_batches);
    // Relabel deterministically with 4 labels.
    let mut b = CsrBuilder::new(w.initial.num_vertices());
    for (x, y) in w.initial.edges() {
        b.add_edge(x, y);
    }
    b.set_labels((0..w.initial.num_vertices()).map(|v| (v % 4) as u16).collect());
    let labeled = Workload {
        preset: w.preset,
        initial: b.build(),
        batches: w.batches.clone(),
        batch_size: w.batch_size,
    };
    let q = QueryGraph::with_labels(
        "kiteL",
        4,
        &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)],
        vec![0, 1, 2, 3],
    );
    let mut expect = None;
    for kind in [EngineKind::ZeroCopy, EngineKind::Gcsm, EngineKind::Cpu] {
        let c = run_cell(kind, &labeled, &q, rc);
        if let Some(e) = expect {
            assert_eq!(c.matches, e, "labeled count diverges for {}", c.engine);
        } else {
            expect = Some(c.matches);
        }
        t.row(vec![
            c.engine.clone(),
            format!("{:.3}", c.ms),
            fmt_bytes(c.cpu_bytes),
            format!("{:.0}", c.hit_rate * 100.0),
            format!("{}", c.matches),
        ]);
    }
    t
}

/// Extra: the concurrent streaming-ingestion subsystem (`gcsm::stream`).
/// Four producer threads stripe the update stream into a session per
/// engine × seal policy; every cell asserts batch-by-batch equality with
/// the serial reference and checks the running ledger against a
/// from-scratch recount of the final graph.
fn stream_demo(rc: &RunConfig) -> Table {
    let mut t = Table::new(
        "Extra: streaming ingestion (AZ, triangle, 4 producers)",
        &["Engine", "seal policy", "batches", "coalesced", "ΔM total", "ledger", "vs serial"],
    );
    let w = Workload::build(Preset::Amazon, rc.scale, 512, rc.max_batches.max(2));
    let q = queries::triangle();
    let policies =
        [("size 256", gcsm::SealPolicy::Size(256)), ("size 64", gcsm::SealPolicy::Size(64))];
    for kind in [EngineKind::ZeroCopy, EngineKind::Gcsm, EngineKind::Cpu] {
        for (pname, policy) in policies {
            let c = run_stream_cell(kind, &w, &q, rc, 4, policy);
            let coalesced: usize = c
                .batches
                .iter()
                .filter_map(|b| b.result.stream)
                .map(|m| m.duplicates_dropped + 2 * m.cancelled_pairs + m.self_loops_dropped)
                .sum();
            assert!(c.matches_serial, "{} diverged from serial reference", kind.name());
            assert_eq!(c.final_total, c.static_total, "{} ledger drifted", kind.name());
            t.row(vec![
                kind.name().into(),
                pname.into(),
                format!("{}", c.batches.len()),
                format!("{coalesced}"),
                format!("{:+}", c.final_total - c.base),
                format!("{} = recount", c.final_total),
                "identical".into(),
            ]);
        }
    }
    t
}

/// Ablation: cache-budget sweep — how GCSM's advantage depends on the
/// fraction of the graph the device buffer can hold (the paper fixes
/// 14 GB; this sweeps the knob).
fn ablation_budget(rc: &RunConfig) -> Table {
    let mut t = Table::new(
        "Ablation: cache budget sweep (FR, Q2, batch 4096)",
        &["budget (frac of graph)", "GCSM ms", "hit%", "cpu-read", "speedup vs ZP"],
    );
    let w = Workload::build(Preset::Friendster, rc.scale, 4096, rc.max_batches);
    let zp = run_cell(EngineKind::ZeroCopy, &w, &queries::q2(), rc);
    for denom in [64usize, 32, 16, 8, 4, 2] {
        let mut rc2 = rc.clone();
        rc2.budget_fraction = 1.0 / denom as f64;
        let gc = run_cell(EngineKind::Gcsm, &w, &queries::q2(), &rc2);
        assert_eq!(gc.matches, zp.matches);
        t.row(vec![
            format!("1/{denom}"),
            format!("{:.3}", gc.ms),
            format!("{:.0}", gc.hit_rate * 100.0),
            fmt_bytes(gc.cpu_bytes),
            format!("{:.2}x", zp.ms / gc.ms),
        ]);
    }
    t
}

/// Ablation: the engine extensions beyond the paper — adaptive walk
/// budgeting (Sec. IV-A's loop) and delta cache shipping (run on both the
/// paper's uniform stream and a temporally-correlated stream, where
/// consecutive working sets overlap and incremental shipping pays off).
fn ablation_extensions(rc: &RunConfig) -> Table {
    use gcsm_datagen::temporal::{temporal_stream, TemporalConfig};
    let mut t = Table::new(
        "Ablation: GCSM extensions (FR, Q2, batch 1024, 4 batches)",
        &["stream", "variant", "ms/batch", "FE ms", "DC ms", "DMA bytes/batch", "ΔM"],
    );
    let w = Workload::build(Preset::Friendster, rc.scale, 1024, 4);
    // A temporal variant of the same workload: 4 batches biased into a
    // drifting focus region.
    let tstream = temporal_stream(
        &w.initial,
        &TemporalConfig { updates: 4096, locality: 0.85, region: 512, drift_every: 2048, seed: 5 },
    );
    let tbatches: Vec<Vec<gcsm_graph::EdgeUpdate>> =
        tstream.chunks(1024).map(<[gcsm_graph::EdgeUpdate]>::to_vec).collect();

    let base_cfg = rc.engine_config(&w);
    let variants: Vec<(&str, gcsm::EngineConfig)> = vec![
        ("baseline", base_cfg.clone()),
        ("adaptive-walks", gcsm::EngineConfig { adaptive_walks: true, ..base_cfg.clone() }),
        ("delta-cache", gcsm::EngineConfig { delta_cache: true, ..base_cfg.clone() }),
    ];
    for (stream_name, batches) in [("uniform", &w.batches), ("temporal", &tbatches)] {
        for (name, cfg) in &variants {
            let mut engine = gcsm::GcsmEngine::new(cfg.clone());
            let mut pipeline = gcsm::Pipeline::new(w.initial.clone(), queries::q2());
            let n = batches.len() as f64;
            let (mut ms, mut fe, mut dc, mut dma, mut dm) = (0.0, 0.0, 0.0, 0u64, 0i64);
            for b in batches.iter() {
                let r = pipeline.process_batch(&mut engine, b);
                ms += r.total_ms() / n;
                fe += r.phases.freq_est * 1e3 / n;
                dc += r.phases.data_copy * 1e3 / n;
                dma += r.traffic.dma_bytes / batches.len() as u64;
                dm += r.matches;
            }
            t.row(vec![
                stream_name.into(),
                (*name).into(),
                format!("{ms:.3}"),
                format!("{fe:.3}"),
                format!("{dc:.3}"),
                format!("{dma}"),
                format!("{dm}"),
            ]);
        }
    }
    t
}

/// Tentpole: cross-batch cache residency + overlapped reorganize, the
/// {full,delta} × {serial,overlap} grid on an ER graph with a *stable*
/// hot set (the focus region never drifts, so after batch 0 warms the
/// resident cache the delta planner ships only add+refresh rows). Reports
/// warm PCIe traffic (batch 0 excluded), the bytes the resident cache
/// kept off the bus, and per-batch simulated latency; every cell must
/// produce identical match deltas.
fn cache_delta(rc: &RunConfig) -> Table {
    use gcsm_datagen::temporal::{temporal_stream, TemporalConfig};
    let mut t = Table::new(
        "Cache residency: {full,delta} x {serial,overlap} (dense ER, kite, batch 256)",
        &[
            "variant",
            "DMA/batch (warm)",
            "saved/batch",
            "DMA vs full-serial",
            "ms/batch",
            "reorg ms/batch",
            "ΔM",
        ],
    );
    // A dense-enough ER graph that the kite's walks extend past the batch
    // endpoints: the common-neighbor rows they read are the keepable ones.
    let n = ((4096.0 * rc.scale.max(0.05)) as usize).max(512);
    let initial = gcsm_datagen::er::gnm(n, 32 * n, 42);
    let batch = 256usize;
    let n_batches = 8usize;
    // `drift_every: usize::MAX` pins the focus region for the whole
    // stream: the stable-hot-set regime the resident cache is built for.
    let stream = temporal_stream(
        &initial,
        &TemporalConfig {
            updates: batch * n_batches,
            locality: 1.0,
            region: (n / 16).max(32),
            drift_every: usize::MAX,
            seed: 9,
        },
    );
    let batches: Vec<Vec<gcsm_graph::EdgeUpdate>> =
        stream.chunks(batch).map(<[gcsm_graph::EdgeUpdate]>::to_vec).collect();

    // Generous budget: the headline compares shipping policy, not
    // eviction (tests cover that), so the whole selection fits.
    let budget = initial.adjacency_bytes() * 2;
    let base_cfg = gcsm::EngineConfig {
        // Enough walks that the frequency estimate covers the hot
        // region's neighborhood every batch; selection churn from walk
        // sampling noise would otherwise masquerade as `add` traffic.
        walks_override: Some(40_000),
        ..gcsm::EngineConfig::with_cache_budget(budget)
    };
    let delta_cfg = gcsm::EngineConfig { delta_cache: true, ..base_cfg.clone() };
    let variants: Vec<(&str, gcsm::EngineConfig, bool)> = vec![
        ("full / serial", base_cfg.clone(), false),
        ("full / overlap", base_cfg, true),
        ("delta / serial", delta_cfg.clone(), false),
        ("delta / overlap", delta_cfg, true),
    ];

    let mut full_serial_dma: Option<f64> = None;
    let mut expect: Option<i64> = None;
    for (name, cfg, overlap) in variants {
        let mut engine = GcsmEngine::new(cfg);
        let mut pipeline = Pipeline::new(initial.clone(), queries::fig1_kite());
        pipeline.set_overlap(overlap);
        let (mut ms, mut reorg, mut dm) = (0.0f64, 0.0f64, 0i64);
        let (mut warm_dma, mut warm_saved) = (0u64, 0u64);
        for (bi, b) in batches.iter().enumerate() {
            let r = pipeline.process_batch(&mut engine, b);
            ms += r.total_ms();
            reorg += r.phases.reorganize * 1e3;
            dm += r.matches;
            if bi > 0 {
                warm_dma += r.traffic.dma_bytes;
                warm_saved += r.traffic.dma_saved_bytes;
            }
        }
        // Drain the deferred reorganize so overlap pays its full bill.
        let trailing = pipeline.flush() * 1e3;
        ms += trailing;
        reorg += trailing;
        let warm_n = (batches.len() - 1).max(1) as f64;
        let dma_per = warm_dma as f64 / warm_n;
        let cut = match full_serial_dma {
            None => {
                full_serial_dma = Some(dma_per);
                "1.00x (ref)".to_string()
            }
            Some(reference) => format!("{:.2}x ({:+.0}%)", dma_per / reference, {
                100.0 * (dma_per - reference) / reference
            }),
        };
        match expect {
            None => expect = Some(dm),
            Some(e) => assert_eq!(dm, e, "match counts diverge for {name}"),
        }
        t.row(vec![
            name.into(),
            fmt_bytes(dma_per),
            fmt_bytes(warm_saved as f64 / warm_n),
            cut,
            format!("{:.3}", ms / batches.len() as f64),
            format!("{:.3}", reorg / batches.len() as f64),
            format!("{dm}"),
        ]);
    }
    t
}

/// Tentpole (PR 5): multi-device sharded execution on a skewed RMAT
/// stream — shards {1,2,4} × partition policies, every update routed to
/// the owner of its canonical min endpoint, cut updates replicated to the
/// other endpoint's shard over the peer link. Every cell must report the
/// same ΔM as the single-device baseline (exactly-once routing), and the
/// best 4-shard cell must cut the achieved makespan by ≥ 2×.
fn shard_experiment(rc: &RunConfig) -> Table {
    use gcsm_datagen::{rmat, StreamConfig, UpdateStream};
    use gcsm_shard::PartitionPolicy;

    let mut t = Table::new(
        "Sharding: multi-device scaling on skewed RMAT (triangle, batch 1024)",
        &[
            "shards",
            "partition",
            "ΔM",
            "engine ms/b",
            "makespan ms/b",
            "speedup",
            "assign ms/b",
            "imb",
            "cut/b",
            "peer/b",
        ],
    );
    // RMAT's preferential attachment piles degree mass onto low vertex
    // ids — exactly the skew a contiguous range partition mishandles and
    // the degree-aware sweep is built for.
    let scale_log = if rc.scale >= 0.9 { 12 } else { 11 };
    let base = rmat::generate(&rmat::RmatConfig::new(scale_log, 16, 7));
    let stream = UpdateStream::generate(&base, StreamConfig::Fraction(0.25), 9);
    let batch = 1024usize;
    let batches: Vec<&[gcsm_graph::EdgeUpdate]> = stream.updates.chunks(batch).collect();
    // Full budget: this experiment measures work partitioning, not
    // eviction (the cache sweeps cover that).
    let cfg = gcsm::EngineConfig::with_cache_budget(stream.initial.adjacency_bytes());

    let cells: [(usize, PartitionPolicy); 5] = [
        (1, PartitionPolicy::HashSrc),
        (2, PartitionPolicy::HashSrc),
        (4, PartitionPolicy::HashSrc),
        (4, PartitionPolicy::Range),
        (4, PartitionPolicy::DegreeBalanced),
    ];
    let mut expect: Option<i64> = None;
    let mut base_makespan: Option<f64> = None;
    let mut best4 = f64::INFINITY;
    for (n, policy) in cells {
        let per_cfg = gcsm::shard_config(&cfg, n);
        let engines: Vec<Box<dyn gcsm::Engine>> = (0..n)
            .map(|_| Box::new(GcsmEngine::new(per_cfg.clone())) as Box<dyn gcsm::Engine>)
            .collect();
        let mut p =
            ShardedPipeline::new(stream.initial.clone(), queries::triangle(), policy, engines);
        let (mut dm, mut ms, mut mk, mut assign, mut imb) = (0i64, 0.0f64, 0.0f64, 0.0f64, 0.0f64);
        let (mut cut, mut peer) = (0usize, 0u64);
        for b in &batches {
            let r = p.process_batch(b);
            dm += r.merged.matches;
            ms += r.merged.total_ms();
            mk += r.makespan_seconds * 1e3;
            assign += r.assignment_makespan_seconds * 1e3;
            imb += r.imbalance;
            cut += r.cut_updates;
            peer += r.peer_bytes;
        }
        let nb = batches.len() as f64;
        match expect {
            None => expect = Some(dm),
            Some(e) => assert_eq!(dm, e, "ΔM diverges at {n} shards ({})", policy.name()),
        }
        let speedup = match base_makespan {
            None => {
                base_makespan = Some(mk);
                "1.00x (ref)".to_string()
            }
            Some(reference) => {
                if n == 4 {
                    best4 = best4.min(mk);
                }
                format!("{:.2}x", reference / mk)
            }
        };
        t.row(vec![
            format!("{n}"),
            policy.name().into(),
            format!("{dm:+}"),
            format!("{:.3}", ms / nb),
            format!("{:.3}", mk / nb),
            speedup,
            format!("{:.3}", assign / nb),
            format!("{:.2}", imb / nb),
            format!("{:.0}", cut as f64 / nb),
            fmt_bytes(peer as f64 / nb),
        ]);
    }
    let reference = base_makespan.expect("baseline row ran");
    assert!(
        best4 * 2.0 <= reference,
        "4-shard makespan {best4:.3} ms not >= 2x below 1-shard {reference:.3} ms"
    );
    t
}

/// Ablation: STMatch-style work stealing vs static block assignment — the
/// load-balance mechanism the paper's kernel inherits from STMatch \[9\].
fn ablation_scheduling(rc: &RunConfig) -> Table {
    let mut t = Table::new(
        "Ablation: grid scheduling (ZP kernel, batch 4096)",
        &["Graph", "Query", "work-stealing ms", "static ms", "stealing speedup"],
    );
    for (preset, q) in [(Preset::Friendster, queries::q1()), (Preset::Sf3k, queries::q4())] {
        let w = Workload::build(preset, rc.scale, 4096, rc.max_batches);
        let mut times = Vec::new();
        for policy in [gcsm_gpusim::Scheduling::WorkStealing, gcsm_gpusim::Scheduling::Static] {
            let mut cfg = rc.engine_config(&w);
            cfg.scheduling = policy;
            let mut engine = gcsm::ZeroCopyEngine::new(cfg);
            let mut pipeline = gcsm::Pipeline::new(w.initial.clone(), q.clone());
            let ms: f64 = w
                .batches
                .iter()
                .map(|b| pipeline.process_batch(&mut engine, b).total_ms())
                .sum::<f64>()
                / w.batches.len() as f64;
            times.push(ms);
        }
        t.row(vec![
            preset.name().into(),
            q.name().into(),
            format!("{:.3}", times[0]),
            format!("{:.3}", times[1]),
            format!("{:.2}x", times[1] / times[0]),
        ]);
    }
    t
}

/// Ablation: why incremental at all — the IncIsoMatch-style
/// recompute-from-scratch strategy \[12\] vs the incremental engines, on a
/// deliberately small instance (recompute does not survive larger ones).
fn ablation_incremental(rc: &RunConfig) -> Table {
    let mut t = Table::new(
        "Ablation: incremental vs recompute-from-scratch (AZ at 1/4 scale, batch 256)",
        &["Engine", "ms/batch", "intersect ops", "ΔM"],
    );
    let mut rc2 = rc.clone();
    rc2.scale = (rc.scale * 0.25).max(0.01);
    let w = Workload::build(Preset::Amazon, rc2.scale, 256, rc2.max_batches);
    for kind in [EngineKind::Recompute, EngineKind::Cpu, EngineKind::Gcsm] {
        let c = run_cell(kind, &w, &queries::triangle(), &rc2);
        t.row(vec![
            c.engine.clone(),
            format!("{:.3}", c.ms),
            format!("{:.2e}", c.ops as f64),
            format!("{}", c.matches),
        ]);
    }
    t
}

/// Table I: dataset statistics (synthetic stand-ins vs the paper's).
fn table1(rc: &RunConfig) -> Table {
    let mut t = Table::new(
        "Table I: data graphs (ours vs paper)",
        &["Graph", "|V|", "|E|", "MaxDeg", "Size", "paper |V|", "paper |E|", "paper MaxDeg"],
    );
    for p in all_presets() {
        let ds = p.build_scaled(rc.scale);
        let row = p.paper_row();
        t.row(vec![
            p.name().into(),
            format!("{}", ds.graph.num_vertices()),
            format!("{}", ds.graph.num_edges()),
            format!("{}", ds.graph.max_degree()),
            fmt_bytes(ds.graph.adjacency_bytes() as f64),
            format!("{:.1}M", row.vertices / 1e6),
            format!("{:.0}M", row.edges / 1e6),
            format!("{}", row.max_degree),
        ]);
    }
    t
}

/// Fig. 8/9/10 shape: per-query execution time for GCSM vs naive GPU and
/// CPU baselines, with CPU-access byte labels.
fn per_query_figure(title: &str, preset: Preset, batch_size: usize, rc: &RunConfig) -> Table {
    let w = Workload::build(preset, rc.scale, batch_size, rc.max_batches);
    let engines =
        [EngineKind::ZeroCopy, EngineKind::NaiveDegree, EngineKind::Cpu, EngineKind::Gcsm];
    let mut t = Table::new(
        title,
        &["Query", "Engine", "ms/batch", "match ms", "cpu-read", "hit%", "ΔM", "speedup vs ZP"],
    );
    for q in queries::all() {
        let cells: Vec<CellResult> = engines.iter().map(|&k| run_cell(k, &w, &q, rc)).collect();
        let zp_ms = cells[0].ms;
        let expect = cells[0].matches;
        for c in &cells {
            assert_eq!(c.matches, expect, "engine disagreement on {}", q.name());
            t.row(vec![
                q.name().into(),
                c.engine.clone(),
                format!("{:.3}", c.ms),
                format!("{:.3}", c.match_ms),
                fmt_bytes(c.cpu_bytes),
                format!("{:.0}", c.hit_rate * 100.0),
                format!("{}", c.matches),
                format!("{:.2}x", zp_ms / c.ms),
            ]);
        }
    }
    t
}

/// Fig. 11: all size-3/4/5 motifs on the road networks.
fn fig11(rc: &RunConfig) -> Table {
    let mut t = Table::new(
        "Fig. 11: motif counting on road networks (batch 4096)",
        &["Graph", "Motifs", "Engine", "ms/batch", "cpu-read", "speedup vs ZP"],
    );
    let mut rc = rc.clone();
    rc.symmetry_break = true; // motif counting = unique subgraphs
    for preset in [Preset::RoadNetPA, Preset::RoadNetCA] {
        let w = Workload::build(preset, rc.scale, 4096, rc.max_batches);
        for size in [3usize, 4, 5] {
            let motifs = connected_motifs(size);
            // Sum times across the whole motif set per engine.
            let engines = [EngineKind::ZeroCopy, EngineKind::NaiveDegree, EngineKind::Gcsm];
            let mut sums = vec![CellResult::default(); engines.len()];
            for m in &motifs {
                for (si, &k) in engines.iter().enumerate() {
                    let c = run_cell(k, &w, m, &rc);
                    sums[si].ms += c.ms;
                    sums[si].cpu_bytes += c.cpu_bytes;
                    sums[si].matches += c.matches;
                }
            }
            let zp_ms = sums[0].ms;
            for (si, &k) in engines.iter().enumerate() {
                t.row(vec![
                    preset.name().into(),
                    format!("size-{size} (all {})", motifs.len()),
                    k.name().into(),
                    format!("{:.3}", sums[si].ms),
                    fmt_bytes(sums[si].cpu_bytes),
                    format!("{:.2}x", zp_ms / sums[si].ms),
                ]);
            }
        }
    }
    t
}

/// Fig. 12: batch-size sweep (Q6 on SF3K, Q5 on SF10K).
fn fig12(rc: &RunConfig) -> Table {
    let mut t = Table::new(
        "Fig. 12: batch-size sweep",
        &["Graph", "Query", "|ΔE|", "ZP ms", "Naive ms", "GCSM ms", "speedup vs ZP", "vs Naive"],
    );
    for (preset, q) in [(Preset::Sf3k, queries::q6()), (Preset::Sf10k, queries::q5())] {
        for shift in 0..8 {
            let batch = 64usize << shift; // 64 .. 8192
            let w = Workload::build(preset, rc.scale, batch, rc.max_batches);
            let zp = run_cell(EngineKind::ZeroCopy, &w, &q, rc);
            let nv = run_cell(EngineKind::NaiveDegree, &w, &q, rc);
            let gc = run_cell(EngineKind::Gcsm, &w, &q, rc);
            assert_eq!(zp.matches, gc.matches);
            t.row(vec![
                preset.name().into(),
                q.name().into(),
                format!("{batch}"),
                format!("{:.3}", zp.ms),
                format!("{:.3}", nv.ms),
                format!("{:.3}", gc.ms),
                format!("{:.2}x", zp.ms / gc.ms),
                format!("{:.2}x", nv.ms / gc.ms),
            ]);
        }
    }
    t
}

/// Fig. 13: VSGM vs GCSM execution-time breakdown at small batch sizes.
fn fig13(rc: &RunConfig) -> Table {
    let mut t = Table::new(
        "Fig. 13: VSGM vs GCSM breakdown (DC = identify+copy, Match = kernel)",
        &["Graph", "|ΔE|", "Query", "Engine", "DC ms", "Match ms", "total ms", "copied"],
    );
    for (preset, batch) in [(Preset::Sf3k, 128usize), (Preset::Sf10k, 64)] {
        let w = Workload::build(preset, rc.scale, batch, rc.max_batches);
        for q in queries::all() {
            for kind in [EngineKind::Vsgm, EngineKind::Gcsm] {
                let c = run_cell(kind, &w, &q, rc);
                t.row(vec![
                    preset.name().into(),
                    format!("{batch}"),
                    q.name().into(),
                    kind.name().into(),
                    format!("{:.3}", c.dc_ms + c.fe_ms),
                    format!("{:.3}", c.match_ms),
                    format!("{:.3}", c.ms),
                    fmt_bytes(c.cached_bytes),
                ]);
            }
        }
    }
    t
}

/// Fig. 14: RapidFlow vs our CPU baseline vs GCSM on the small graphs.
fn fig14(rc: &RunConfig) -> Table {
    let mut t = Table::new(
        "Fig. 14: comparison with RapidFlow (AZ, LJ)",
        &["Graph", "Query", "RF ms", "CPU ms", "GCSM ms", "GCSM vs RF", "RF index"],
    );
    for preset in [Preset::Amazon, Preset::LiveJournal] {
        let w = Workload::build(preset, rc.scale, 4096, rc.max_batches);
        for q in queries::all() {
            let rf = run_cell(EngineKind::RapidFlow, &w, &q, rc);
            let cpu = run_cell(EngineKind::Cpu, &w, &q, rc);
            let gc = run_cell(EngineKind::Gcsm, &w, &q, rc);
            assert_eq!(rf.matches, gc.matches);
            t.row(vec![
                preset.name().into(),
                q.name().into(),
                format!("{:.3}", rf.ms),
                format!("{:.3}", cpu.ms),
                format!("{:.3}", gc.ms),
                format!("{:.2}x", rf.ms / gc.ms),
                fmt_bytes(rf.aux_bytes as f64),
            ]);
        }
    }
    t
}

/// Fig. 15a: memory-access distribution — share of accesses covered by the
/// top-x% most-accessed vertices.
fn fig15a(rc: &RunConfig) -> Table {
    let fracs = [0.01, 0.02, 0.05, 0.10, 0.20, 0.50, 1.00];
    let mut header: Vec<String> = vec!["Graph".into(), "Query".into()];
    header.extend(fracs.iter().map(|f| format!("top {:.0}%", f * 100.0)));
    let mut t = Table::new(
        "Fig. 15a: % of memory accesses to top-x% most accessed vertices",
        &header.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for preset in [Preset::Friendster, Preset::Sf3k, Preset::Sf10k] {
        let w = Workload::build(preset, rc.scale, 4096, 1);
        let q = queries::q2();
        let (counter, g) = oracle_counts(&w, &q);
        // "% of the memory access": traffic volume, so each access is
        // weighted by the list bytes it reads.
        let curve = counter.coverage_curve_weighted(&fracs, |v| g.list_bytes(v) as u64);
        let mut row = vec![preset.name().to_string(), q.name().to_string()];
        row.extend(curve.iter().map(|(_, c)| format!("{:.1}%", c * 100.0)));
        t.row(row);
    }
    t
}

/// Exact access counts over the first batch of a workload, plus the sealed
/// graph they were measured on.
fn oracle_counts(w: &Workload, q: &QueryGraph) -> (AccessCounter, DynamicGraph) {
    let mut g = DynamicGraph::from_csr(&w.initial);
    let summary = g.apply_batch(&w.batches[0]);
    let counter = AccessCounter::new(g.num_vertices());
    {
        let src = DynSource::new(&g);
        let rec = RecordingSource::new(&src, &counter);
        match_incremental(
            &rec,
            q,
            &summary.applied,
            &DriverOptions { parallel: true, ..Default::default() },
        );
    }
    (counter, g)
}

/// Fig. 15b: cache coverage |S ∩ T| / |S| for the top 1–5% hottest
/// vertices, GCSM's estimate vs the oracle.
fn fig15b(rc: &RunConfig) -> Table {
    let fracs = [0.01, 0.02, 0.03, 0.04, 0.05];
    let mut header: Vec<String> = vec!["Graph".into(), "Query".into()];
    header.extend(fracs.iter().map(|f| format!("top {:.0}%", f * 100.0)));
    let mut t = Table::new(
        "Fig. 15b: cache coverage of top-x% most accessed vertices",
        &header.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for preset in [Preset::Friendster, Preset::Sf3k, Preset::Sf10k] {
        let w = Workload::build(preset, rc.scale, 4096, 1);
        let q = queries::q2();
        let (counter, _) = oracle_counts(&w, &q);

        // Run GCSM on the same batch and grab its cached set T.
        let cfg = rc.engine_config(&w);
        let mut engine = GcsmEngine::new(cfg);
        let mut g = DynamicGraph::from_csr(&w.initial);
        let summary = g.apply_batch(&w.batches[0]);
        engine.match_sealed(&g, &summary.applied, &q);
        let cached: std::collections::HashSet<u32> =
            engine.last_selection().iter().copied().collect();

        let mut row = vec![preset.name().to_string(), q.name().to_string()];
        for &f in &fracs {
            let s = counter.top_fraction(f);
            let hit = s.iter().filter(|v| cached.contains(v)).count();
            let cov = if s.is_empty() { 1.0 } else { hit as f64 / s.len() as f64 };
            row.push(format!("{:.1}%", cov * 100.0));
        }
        t.row(row);
    }
    t
}

/// Table II: FE and DC overhead as a percentage of GCSM's total time.
fn table2(rc: &RunConfig) -> Table {
    let mut t = Table::new(
        "Table II: overhead of frequency estimation (FE) and data copying (DC), % of total",
        &["Query", "FR FE", "FR DC", "SF3K FE", "SF3K DC", "SF10K FE", "SF10K DC"],
    );
    let presets = [(Preset::Friendster, 4096), (Preset::Sf3k, 4096), (Preset::Sf10k, 8192)];
    let cells: Vec<Vec<CellResult>> = presets
        .iter()
        .map(|&(p, b)| {
            let w = Workload::build(p, rc.scale, b, rc.max_batches);
            queries::all().iter().map(|q| run_cell(EngineKind::Gcsm, &w, q, rc)).collect()
        })
        .collect();
    for (qi, q) in queries::all().iter().enumerate() {
        let mut row = vec![q.name().to_string()];
        for c in &cells {
            let cell = &c[qi];
            row.push(format!("{:.1}%", 100.0 * cell.fe_ms / cell.ms));
            row.push(format!("{:.1}%", 100.0 * cell.dc_ms / cell.ms));
        }
        t.row(row);
    }
    t
}

/// Table III: graph reorganization time per batch.
fn table3(rc: &RunConfig) -> Table {
    let mut t = Table::new(
        "Table III: graph reorganization time (simulated ms per batch)",
        &["Graph", "|ΔE|=4096", "|ΔE|=8192"],
    );
    for p in all_presets() {
        let mut cells = Vec::new();
        for batch in [4096usize, 8192] {
            let w = Workload::build(p, rc.scale, batch, rc.max_batches);
            // Reorg cost is engine independent; ZP is the cheapest to run.
            let c = run_cell(EngineKind::ZeroCopy, &w, &queries::q1(), rc);
            cells.push(format!("{:.3}", c.reorg_ms));
        }
        t.row(vec![p.name().into(), cells[0].clone(), cells[1].clone()]);
    }
    t
}

/// Sec. VI-B text: UM is 69–210× slower than ZP.
fn um_slowdown(rc: &RunConfig) -> Table {
    let mut t = Table::new(
        "UM vs ZP (Sec. VI-B: paper reports 69-210x)",
        &["Graph", "Query", "ZP ms", "UM ms", "UM/ZP"],
    );
    let w = Workload::build(Preset::Friendster, rc.scale, 512, 1);
    for q in [queries::q1(), queries::q2()] {
        let zp = run_cell(EngineKind::ZeroCopy, &w, &q, rc);
        let um = run_cell(EngineKind::UnifiedMem, &w, &q, rc);
        assert_eq!(zp.matches, um.matches);
        t.row(vec![
            "FR".into(),
            q.name().into(),
            format!("{:.3}", zp.ms),
            format!("{:.3}", um.ms),
            format!("{:.1}x", um.ms / zp.ms),
        ]);
    }
    t
}
