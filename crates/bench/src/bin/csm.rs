//! `csm` — run continuous subgraph matching on your own data.
//!
//! ```text
//! # count triangles incrementally over a SNAP edge list + update stream
//! csm --graph web.el --updates stream.upd --query "0-1,1-2,0-2" \
//!     --engine gcsm --batch-size 512
//!
//! # no data handy? --demo generates a synthetic social graph + stream
//! csm --demo --query Q2 --engine zp
//! ```
//!
//! Formats: the graph is a whitespace edge list (`src dst` per line, `#`
//! comments); the update stream is `+ src dst` / `- src dst` lines. The
//! query is either a preset name (`Q1..Q6`, `triangle`) or a compact edge
//! list (`"0-1,1-2,0-2"`). Engines: `gcsm zp um vsgm naive cpu rf`.

use gcsm::prelude::*;
use gcsm_gpusim::Scheduling;
use gcsm_graph::{io, CsrGraph, EdgeUpdate};
use gcsm_pattern::{queries, QueryGraph};
use gcsm_shard::PartitionPolicy;

struct Args {
    graph: Option<String>,
    updates: Option<String>,
    query: String,
    engine: String,
    batch_size: usize,
    budget_frac: f64,
    unique: bool,
    demo: bool,
    collect: usize,
    stream: bool,
    producers: usize,
    preset: String,
    metrics: Option<String>,
    trace: Option<String>,
    cache_delta: bool,
    overlap: bool,
    shards: usize,
    partition: PartitionPolicy,
    schedule: Scheduling,
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        graph: None,
        updates: None,
        query: "triangle".into(),
        engine: "gcsm".into(),
        batch_size: 512,
        budget_frac: 0.125,
        unique: false,
        demo: false,
        collect: 0,
        stream: false,
        producers: 4,
        preset: "social".into(),
        metrics: None,
        trace: None,
        cache_delta: false,
        overlap: false,
        shards: 1,
        partition: PartitionPolicy::HashSrc,
        schedule: Scheduling::WorkStealing,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| -> Result<&String, String> {
            argv.get(i + 1).ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--graph" => {
                a.graph = Some(need(i)?.clone());
                i += 1;
            }
            "--updates" => {
                a.updates = Some(need(i)?.clone());
                i += 1;
            }
            "--query" => {
                a.query = need(i)?.clone();
                i += 1;
            }
            "--engine" => {
                a.engine = need(i)?.to_lowercase();
                i += 1;
            }
            "--batch-size" => {
                a.batch_size = need(i)?.parse().map_err(|e| format!("--batch-size: {e}"))?;
                i += 1;
            }
            "--budget" => {
                a.budget_frac = need(i)?.parse().map_err(|e| format!("--budget: {e}"))?;
                i += 1;
            }
            "--unique" => a.unique = true,
            "--demo" => a.demo = true,
            "--stream" => a.stream = true,
            "--cache-delta" => a.cache_delta = true,
            "--overlap" => a.overlap = true,
            "--producers" => {
                a.producers = need(i)?.parse().map_err(|e| format!("--producers: {e}"))?;
                i += 1;
            }
            "--collect" => {
                a.collect = need(i)?.parse().map_err(|e| format!("--collect: {e}"))?;
                i += 1;
            }
            "--preset" => {
                a.preset = need(i)?.to_lowercase();
                if !matches!(a.preset.as_str(), "social" | "er") {
                    return Err(format!("--preset: unknown preset '{}' (social|er)", a.preset));
                }
                i += 1;
            }
            "--shards" => {
                a.shards = need(i)?.parse().map_err(|e| format!("--shards: {e}"))?;
                if a.shards == 0 {
                    return Err("--shards: must be at least 1".into());
                }
                i += 1;
            }
            "--partition" => {
                let v = need(i)?;
                a.partition = PartitionPolicy::parse(v).ok_or_else(|| {
                    format!("--partition: unknown policy '{v}' (hash|range|degree)")
                })?;
                i += 1;
            }
            "--schedule" => {
                let v = need(i)?;
                a.schedule = Scheduling::parse(v).ok_or_else(|| {
                    format!("--schedule: unknown policy '{v}' (static|chunked|stealing)")
                })?;
                i += 1;
            }
            "--metrics" => {
                a.metrics = Some(need(i)?.clone());
                i += 1;
            }
            "--trace" => {
                a.trace = Some(need(i)?.clone());
                i += 1;
            }
            "--help" | "-h" => {
                println!(
                    "usage: csm [--graph FILE --updates FILE | --demo [--preset social|er]] \
                     [--query NAME|SPEC] [--engine gcsm|zp|um|vsgm|naive|cpu|rf] \
                     [--batch-size N] [--budget FRAC] [--unique] [--collect K] \
                     [--cache-delta] [--overlap] [--stream [--producers N]] \
                     [--shards N [--partition hash|range|degree]] \
                     [--schedule static|chunked|stealing] \
                     [--metrics FILE.json] [--trace FILE.trace.json]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    if !a.demo && (a.graph.is_none() || a.updates.is_none()) {
        return Err("need --graph and --updates, or --demo".into());
    }
    if a.shards > 1 && a.stream {
        return Err("--shards: sharded execution drives pre-chunked batches; drop --stream".into());
    }
    if a.shards > 1 && a.collect > 0 {
        return Err("--shards: --collect is only available single-device".into());
    }
    Ok(a)
}

fn resolve_query(spec: &str) -> Result<QueryGraph, String> {
    if spec.eq_ignore_ascii_case("triangle") {
        return Ok(queries::triangle());
    }
    if let Some(q) = queries::by_name(&spec.to_uppercase()) {
        return Ok(q);
    }
    QueryGraph::parse("custom", spec)
}

fn make_engine(name: &str, cfg: EngineConfig) -> Result<Box<dyn Engine>, String> {
    Ok(match name {
        "gcsm" => Box::new(GcsmEngine::new(cfg)),
        "zp" => Box::new(ZeroCopyEngine::new(cfg)),
        "um" => Box::new(UnifiedMemEngine::new(cfg)),
        "vsgm" => Box::new(VsgmEngine::new(cfg)),
        "naive" => Box::new(NaiveDegreeEngine::new(cfg)),
        "cpu" => Box::new(CpuWcojEngine::new(cfg)),
        "rf" => Box::new(RapidFlowEngine::new(cfg)),
        other => return Err(format!("unknown engine '{other}'")),
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("csm: {e}\ntry --help");
            std::process::exit(2);
        }
    };

    // Observability: flip the process-wide obs layer on *before* any batch
    // runs so every span and counter of the run lands in the export.
    let obs_requested = args.metrics.is_some() || args.trace.is_some();
    if obs_requested {
        gcsm_obs::global().enable();
    }

    let (graph, updates): (CsrGraph, Vec<EdgeUpdate>) = if args.demo {
        let g = match args.preset.as_str() {
            "er" => gcsm_datagen::er::gnm(1 << 12, 1 << 14, 42),
            _ => gcsm_datagen::social::generate_social(&gcsm_datagen::social::SocialConfig::new(
                15, 6, 42,
            )),
        };
        let stream =
            gcsm_datagen::UpdateStream::generate(&g, gcsm_datagen::StreamConfig::Fraction(0.1), 7);
        (stream.initial, stream.updates)
    } else {
        let graph_path = args.graph.as_deref().unwrap_or_else(|| {
            eprintln!("csm: --graph is required without --demo (try --help)");
            std::process::exit(2);
        });
        let updates_path = args.updates.as_deref().unwrap_or_else(|| {
            eprintln!("csm: --updates is required without --demo (try --help)");
            std::process::exit(2);
        });
        let g = io::load_edge_list(graph_path).unwrap_or_else(|e| {
            eprintln!("csm: --graph {graph_path}: {e}");
            std::process::exit(2);
        });
        let u = io::load_updates(updates_path).unwrap_or_else(|e| {
            eprintln!("csm: --updates {updates_path}: {e}");
            std::process::exit(2);
        });
        (g, u)
    };
    let query = resolve_query(&args.query).unwrap_or_else(|e| {
        eprintln!("csm: --query {}: {e}", args.query);
        std::process::exit(2);
    });

    let budget = ((graph.adjacency_bytes() as f64 * args.budget_frac) as usize).max(64 << 10);
    let mut cfg = EngineConfig::with_cache_budget(budget);
    cfg.plan.symmetry_break = args.unique;
    cfg.delta_cache = args.cache_delta;
    cfg.scheduling = args.schedule;

    if args.shards > 1 {
        run_sharded_mode(graph, query, cfg, &updates, &args);
        return;
    }

    let mut engine = make_engine(&args.engine, cfg).unwrap_or_else(|e| {
        eprintln!("csm: --engine {}: {e}", args.engine);
        std::process::exit(2);
    });

    println!(
        "graph: {} vertices, {} edges | query {} (n={}, m={}) | engine {} | {} updates in batches of {}",
        graph.num_vertices(),
        graph.num_edges(),
        query.name(),
        query.num_vertices(),
        query.num_edges(),
        engine.name(),
        updates.len(),
        args.batch_size
    );

    if args.stream {
        run_stream_mode(graph, query, engine, &updates, &args);
        return;
    }

    let mut pipeline = Pipeline::new(graph, query);
    pipeline.set_overlap(args.overlap);
    let mut cumulative = 0i64;
    let mut total_ms = 0.0;
    let unit = if args.unique { "subgraphs" } else { "embeddings" };
    let batches: Vec<&[EdgeUpdate]> = updates.chunks(args.batch_size).collect();
    for (i, batch) in batches.iter().enumerate() {
        if args.collect > 0 {
            let (r, matches) = pipeline.process_batch_collect(engine.as_mut(), batch);
            cumulative += r.matches;
            total_ms += r.total_ms();
            println!(
                "batch {i:>4}: ΔM {:+8}  (cumulative {cumulative:+})  {:.3} ms sim  hit {:>3.0}%",
                r.matches,
                r.total_ms(),
                r.cache_hit_rate * 100.0
            );
            for (m, sign) in matches.iter().take(args.collect) {
                println!("          {} {:?}", if *sign > 0 { "+" } else { "-" }, m);
            }
        } else {
            let r = pipeline.process_batch(engine.as_mut(), batch);
            cumulative += r.matches;
            total_ms += r.total_ms();
            println!(
                "batch {i:>4}: ΔM {:+8}  (cumulative {cumulative:+})  {:.3} ms sim  hit {:>3.0}%",
                r.matches,
                r.total_ms(),
                r.cache_hit_rate * 100.0
            );
        }
    }
    pipeline.flush();
    println!(
        "done: {} batches, net {cumulative:+} {unit}, {:.3} ms total simulated time",
        batches.len(),
        total_ms
    );
    write_obs_outputs(&args);
}

/// `--shards N`: partition the vertex set under `--partition`, give every
/// shard an engine with `1/N` of the cache budget, and drive the batches
/// through [`ShardedPipeline`]. `ΔM` is bit-identical to single-device;
/// the extra columns show what sharding costs (peer bytes) and buys
/// (makespan below the single-device engine time).
fn run_sharded_mode(
    graph: CsrGraph,
    query: QueryGraph,
    cfg: EngineConfig,
    updates: &[EdgeUpdate],
    args: &Args,
) {
    let per_shard_cfg = shard_config(&cfg, args.shards);
    let engines: Vec<Box<dyn Engine>> = (0..args.shards)
        .map(|_| {
            make_engine(&args.engine, per_shard_cfg.clone()).unwrap_or_else(|e| {
                eprintln!("csm: --engine {}: {e}", args.engine);
                std::process::exit(2);
            })
        })
        .collect();
    println!(
        "sharded mode: {} shards, {} partition, {} scheduling",
        args.shards,
        args.partition.name(),
        args.schedule.name()
    );
    let mut pipeline = ShardedPipeline::new(graph, query, args.partition, engines);
    let mut cumulative = 0i64;
    let mut total_ms = 0.0;
    let mut total_peer = 0u64;
    let batches: Vec<&[EdgeUpdate]> = updates.chunks(args.batch_size).collect();
    for (i, batch) in batches.iter().enumerate() {
        let r = pipeline.process_batch(batch);
        cumulative += r.merged.matches;
        total_ms += r.merged.total_ms();
        total_peer += r.peer_bytes;
        println!(
            "batch {i:>4}: ΔM {:+8}  (cumulative {cumulative:+})  {:.3} ms sim  \
             makespan {:.3} ms  imbalance {:.2}  cut {:>4}  peer {}",
            r.merged.matches,
            r.merged.total_ms(),
            r.makespan_seconds * 1e3,
            r.imbalance,
            r.cut_updates,
            gcsm_bench::fmt_bytes(r.peer_bytes as f64),
        );
    }
    let unit = if args.unique { "subgraphs" } else { "embeddings" };
    println!(
        "done: {} batches, net {cumulative:+} {unit}, {:.3} ms total simulated time, {} peer traffic",
        batches.len(),
        total_ms,
        gcsm_bench::fmt_bytes(total_peer as f64),
    );
    write_obs_outputs(args);
}

/// Export the run's metrics snapshot and Chrome trace if requested.
fn write_obs_outputs(args: &Args) {
    let obs = gcsm_obs::global();
    if let Some(path) = &args.metrics {
        if let Err(e) = std::fs::write(path, obs.registry.snapshot().to_json()) {
            eprintln!("csm: --metrics {path}: {e}");
            std::process::exit(2);
        }
        println!("metrics written to {path}");
    }
    if let Some(path) = &args.trace {
        if let Err(e) = std::fs::write(path, obs.tracer.to_chrome_json()) {
            eprintln!("csm: --trace {path}: {e}");
            std::process::exit(2);
        }
        println!("trace written to {path} (load in chrome://tracing or ui.perfetto.dev)");
    }
}

/// `--stream`: feed the updates through the concurrent ingestion subsystem
/// (`gcsm::stream`) instead of pre-chunked batches. N producer threads
/// stripe explicit sequence numbers over a bounded queue; the session
/// coalesces, seals at `--batch-size` survivors, and keeps the running
/// ledger. The run finishes with the ledger check against a from-scratch
/// recount.
fn run_stream_mode(
    graph: CsrGraph,
    query: QueryGraph,
    engine: Box<dyn Engine>,
    updates: &[EdgeUpdate],
    args: &Args,
) {
    let producers = args.producers.max(1);
    let mut pipeline = Pipeline::new(graph, query);
    pipeline.set_overlap(args.overlap);
    let base = pipeline.static_count(args.unique);
    println!(
        "stream mode: {} producers, seal at {} survivors, count(G_0) = {base}",
        producers, args.batch_size
    );

    let session = gcsm::stream::spawn_pipeline(
        pipeline,
        engine,
        base,
        StreamConfig {
            seal_policy: SealPolicy::Size(args.batch_size),
            capacity: 1024,
            backpressure: Backpressure::Block,
            mode: SequenceMode::Explicit,
        },
    );
    let rx = session.subscribe();
    // The subscriber stream stays open until the session is dropped, so the
    // printer must live on its own thread and be joined *after* finish().
    let printer = std::thread::spawn(move || {
        for b in rx.iter() {
            let m = b.result.stream.expect("stream meta");
            println!(
                "batch {:>4}: ΔM {:+8}  (total {})  {:>4} updates  seal {:?}  \
                 coalesced -{}  queue {:>3}  {:.3} ms sim",
                m.batch_index,
                b.result.matches,
                b.running_total,
                m.admitted,
                m.seal_reason,
                m.duplicates_dropped + 2 * m.cancelled_pairs,
                m.queue_depth,
                b.result.total_ms(),
            );
        }
    });
    std::thread::scope(|s| {
        for p in 0..producers {
            let producer = session.producer();
            s.spawn(move || {
                let mut i = p;
                while i < updates.len() {
                    producer.ingest_at(i as u64, updates[i]);
                    i += producers;
                }
            });
        }
    });
    let (report, processor) = session.finish();
    printer.join().expect("printer thread panicked");
    write_obs_outputs(args);
    let final_total = report.batches.last().map(|b| b.running_total).unwrap_or(base);
    let recount = processor.into_pipeline().static_count(args.unique);
    println!(
        "done: {} batches from {} updates ({} dropped), ledger {} vs recount {} — {}",
        report.batches.len(),
        report.updates_received,
        report.dropped,
        final_total,
        recount,
        if final_total == recount { "consistent" } else { "MISMATCH" },
    );
    if final_total != recount {
        std::process::exit(1);
    }
}
