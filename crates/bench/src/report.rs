//! Plain-text table rendering for the repro harness.

use serde::Serialize;

/// A simple aligned text table (also JSON-serializable for `--json`).
#[derive(Clone, Debug, Serialize)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            title: title.to_string(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Render to a string (also used by EXPERIMENTS.md generation).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n=== {} ===\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// The experiment title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Rows (for programmatic consumers and tests).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }
}

/// Write a set of tables as a JSON report.
pub fn write_json(tables: &[Table], path: &str) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(tables).expect("tables serialize");
    std::fs::write(path, json)
}

/// Human-readable byte count.
pub fn fmt_bytes(b: f64) -> String {
    if b >= 1e9 {
        format!("{:.2}GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.1}MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.1}KB", b / 1e3)
    } else {
        format!("{:.0}B", b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("=== demo ==="));
        assert!(s.contains("333"));
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn wrong_arity_panics() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(512.0), "512B");
        assert_eq!(fmt_bytes(2048.0), "2.0KB");
        assert_eq!(fmt_bytes(3.5e6), "3.5MB");
        assert_eq!(fmt_bytes(2.25e9), "2.25GB");
    }
}
