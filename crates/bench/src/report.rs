//! Plain-text table rendering for the repro harness.

/// A simple aligned text table (also JSON-serializable for `--json`).
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            title: title.to_string(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Render to a string (also used by EXPERIMENTS.md generation).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n=== {} ===\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// The experiment title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Rows (for programmatic consumers and tests).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }
}

/// Escape a string for a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_string_array(items: &[String], out: &mut String) {
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('"');
        out.push_str(&json_escape(item));
        out.push('"');
    }
    out.push(']');
}

/// Serialize tables to pretty-printed JSON (hand-rolled: the table model is
/// three string fields, which does not warrant a serialization dependency).
pub fn tables_to_json(tables: &[Table]) -> String {
    let mut out = String::from("[\n");
    for (t_idx, t) in tables.iter().enumerate() {
        out.push_str("  {\n");
        out.push_str(&format!("    \"title\": \"{}\",\n", json_escape(&t.title)));
        out.push_str("    \"header\": ");
        json_string_array(&t.header, &mut out);
        out.push_str(",\n    \"rows\": [\n");
        for (r_idx, row) in t.rows.iter().enumerate() {
            out.push_str("      ");
            json_string_array(row, &mut out);
            out.push_str(if r_idx + 1 < t.rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("    ]\n  }");
        out.push_str(if t_idx + 1 < tables.len() { ",\n" } else { "\n" });
    }
    out.push(']');
    out
}

/// Write a set of tables as a JSON report.
pub fn write_json(tables: &[Table], path: &str) -> std::io::Result<()> {
    std::fs::write(path, tables_to_json(tables))
}

/// Like [`write_json`], but when the process-wide obs layer is enabled the
/// report becomes `{"tables": [...], "obs": {...}}` with the metrics
/// snapshot embedded — the run's counters travel with its tables.
pub fn write_json_with_obs(tables: &[Table], path: &str) -> std::io::Result<()> {
    let obs = gcsm_obs::global();
    if !obs.enabled() {
        return write_json(tables, path);
    }
    let out = format!(
        "{{\n\"tables\": {},\n\"obs\": {}\n}}",
        tables_to_json(tables),
        obs.registry.snapshot().to_json()
    );
    std::fs::write(path, out)
}

/// Human-readable byte count.
pub fn fmt_bytes(b: f64) -> String {
    if b >= 1e9 {
        format!("{:.2}GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.1}MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.1}KB", b / 1e3)
    } else {
        format!("{:.0}B", b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("=== demo ==="));
        assert!(s.contains("333"));
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn wrong_arity_panics() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn json_output_is_valid_and_escaped() {
        let mut t = Table::new("q\"uote", &["col\\1", "col2"]);
        t.row(vec!["a\nb".into(), "plain".into()]);
        let json = tables_to_json(&[t]);
        assert!(json.contains(r#""title": "q\"uote""#));
        assert!(json.contains(r#""col\\1""#));
        assert!(json.contains(r#""a\nb""#));
        assert!(json.starts_with('[') && json.ends_with(']'));
        // Balanced braces/brackets as a cheap well-formedness check.
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(512.0), "512B");
        assert_eq!(fmt_bytes(2048.0), "2.0KB");
        assert_eq!(fmt_bytes(3.5e6), "3.5MB");
        assert_eq!(fmt_bytes(2.25e9), "2.25GB");
    }
}
