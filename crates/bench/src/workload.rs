//! Workload construction: dataset preset → initial graph + update batches.

use gcsm_datagen::{Preset, StreamConfig, UpdateStream};
use gcsm_graph::{CsrGraph, EdgeUpdate};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Built (initial graph, full update stream) pairs, memoized per
/// (preset, scale): `repro -- all` revisits the same dataset for several
/// figures and regeneration dominates harness time otherwise.
type StreamCache = Mutex<HashMap<(Preset, u64), Arc<(CsrGraph, Vec<EdgeUpdate>)>>>;

fn cache() -> &'static StreamCache {
    static CACHE: OnceLock<StreamCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// A ready-to-run dynamic-graph workload.
pub struct Workload {
    pub preset: Preset,
    pub initial: CsrGraph,
    pub batches: Vec<Vec<EdgeUpdate>>,
    pub batch_size: usize,
}

impl Workload {
    /// Build the paper's workload for `preset` at `scale`:
    /// 10% of edges become updates for AZ/LJ/PA/CA, a fixed pool for the
    /// large graphs (Sec. VI-A), chopped into `batch_size` batches and
    /// truncated to at most `max_batches` (benchmark-time control).
    pub fn build(preset: Preset, scale: f64, batch_size: usize, max_batches: usize) -> Self {
        let key = (preset, scale.to_bits());
        let entry = {
            let mut c = cache().lock().expect("workload cache poisoned");
            if let Some(e) = c.get(&key) {
                Arc::clone(e)
            } else {
                let ds = preset.build_scaled(scale);
                let stream_cfg = match preset {
                    Preset::Friendster | Preset::Sf3k | Preset::Sf10k => {
                        // Paper: 12×8192 selected edges; keep proportional
                        // headroom for several batches at any batch size.
                        StreamConfig::Count((12 * 8192).min(ds.graph.num_edges() / 4))
                    }
                    _ => StreamConfig::Fraction(0.1),
                };
                let stream = UpdateStream::generate(
                    &ds.graph,
                    stream_cfg,
                    0xBA7C4 ^ preset.name().len() as u64,
                );
                let e = Arc::new((stream.initial, stream.updates));
                c.insert(key, Arc::clone(&e));
                e
            }
        };
        let (initial, updates) = (&entry.0, &entry.1);
        let batches: Vec<Vec<EdgeUpdate>> =
            updates.chunks(batch_size).take(max_batches).map(<[EdgeUpdate]>::to_vec).collect();
        Self { preset, initial: initial.clone(), batches, batch_size }
    }

    /// Total updates across the retained batches.
    pub fn total_updates(&self) -> usize {
        self.batches.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_has_requested_batches() {
        let w = Workload::build(Preset::Amazon, 0.25, 64, 3);
        assert_eq!(w.batches.len(), 3);
        assert!(w.batches.iter().all(|b| b.len() == 64));
        assert!(w.initial.num_edges() > 0);
    }

    #[test]
    fn large_graph_presets_use_fixed_pool() {
        let w = Workload::build(Preset::Friendster, 0.25, 128, 2);
        assert_eq!(w.batch_size, 128);
        assert_eq!(w.total_updates(), 256);
    }
}
