//! # gcsm-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's Sec. VI (see the
//! experiment index in DESIGN.md §4) on the synthetic stand-in datasets.
//! The `repro` binary prints paper-shaped tables; the criterion benches
//! under `benches/` measure wall-clock time of the same cells.
//!
//! Times in the tables are **simulated milliseconds** from the
//! `gcsm-gpusim` cost model (the quantity that reproduces the paper's
//! data-movement story); wall-clock seconds are printed alongside for
//! transparency.

pub mod report;
pub mod runner;
pub mod workload;

pub use report::{fmt_bytes, Table};
pub use runner::{
    make_engine, run_cell, run_stream_cell, CellResult, EngineKind, RunConfig, StreamCellResult,
};
pub use workload::Workload;
