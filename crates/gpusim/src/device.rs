//! The simulated device: traffic recording plus the kernel executor.

use crate::config::GpuConfig;
use crate::counters::{Traffic, TrafficSnapshot};
use crate::pagecache::PageCache;
use crate::trace::{TraceEvent, TraceRing};
use std::sync::Arc;

/// Which path a neighbor-list access took. The matching engines decide the
/// path (cache lookup result, engine policy); the device records its cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessPath {
    /// Served from the DCSR cache in device global memory.
    DeviceCache,
    /// Zero-copy read from CPU pinned memory (128 B lines).
    ZeroCopy,
    /// Unified-memory access (page faults on cache misses).
    UnifiedMemory,
    /// Host-resident access by the CPU baselines (no PCIe traffic; costed
    /// with `cpu_op` compute only).
    HostCpu,
}

/// The simulated GPU. Cheap to clone via `Arc`; all counters are shared.
pub struct Device {
    config: GpuConfig,
    traffic: Arc<Traffic>,
    um_cache: Arc<PageCache>,
    trace: Arc<TraceRing>,
}

impl Device {
    /// New device with the given hardware model (tracing disabled).
    pub fn new(config: GpuConfig) -> Self {
        Self::with_trace(config, 0)
    }

    /// New device recording the last `trace_capacity` memory events (see
    /// [`crate::trace`]).
    pub fn with_trace(config: GpuConfig, trace_capacity: usize) -> Self {
        let pages = config.um_cache_bytes / config.um_page;
        Self {
            config,
            traffic: Arc::new(Traffic::default()),
            um_cache: Arc::new(PageCache::new(pages)),
            trace: Arc::new(TraceRing::new(trace_capacity)),
        }
    }

    /// The transfer trace (empty ring when tracing is disabled).
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    /// The hardware model in effect.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Shared traffic counters.
    pub fn traffic(&self) -> &Traffic {
        &self.traffic
    }

    /// Snapshot current counters.
    pub fn snapshot(&self) -> TrafficSnapshot {
        self.traffic.snapshot()
    }

    /// Reset counters and the UM page cache.
    pub fn reset(&self) {
        self.traffic.reset();
        self.um_cache.clear();
    }

    // ------------------------------------------------------------------
    // Transfers
    // ------------------------------------------------------------------

    /// One bulk DMA transfer of `bytes` (host→device or back).
    pub fn dma(&self, bytes: usize) {
        self.traffic.add_dma_transactions(1);
        self.traffic.add_dma_bytes(bytes as u64);
        self.trace.record(TraceEvent::Dma { bytes });
    }

    /// One bulk DMA transfer under a delta plan: only `shipped` bytes cross
    /// PCIe, while `saved` bytes of the full repack stayed device resident.
    /// Charged like [`Self::dma`] (one transaction of `shipped` bytes);
    /// `saved` lands in the `dma_saved_bytes` counter for accounting.
    pub fn dma_delta(&self, shipped: usize, saved: usize) {
        self.traffic.add_dma_transactions(1);
        self.traffic.add_dma_bytes(shipped as u64);
        self.traffic.add_dma_saved_bytes(saved as u64);
        self.trace.record(TraceEvent::Dma { bytes: shipped });
    }

    /// One inter-device transfer of `bytes` over the peer link (sharded
    /// execution mirrors boundary updates to the replicating shard's
    /// device). Charged like a DMA transaction but accounted separately so
    /// the sharding layer's communication volume stays visible.
    pub fn peer_copy(&self, bytes: usize) {
        self.traffic.add_peer_copies(1);
        self.traffic.add_peer_bytes(bytes as u64);
        self.trace.record(TraceEvent::Peer { bytes });
    }

    /// Record a neighbor-list read of `bytes` through `path`.
    ///
    /// `addr` is the list's virtual base address in the unified address
    /// space; it is only used for the UM page model. Returns nothing — costs
    /// are derived from the counters afterwards.
    #[inline]
    pub fn read_list(&self, path: AccessPath, addr: u64, bytes: usize) {
        match path {
            AccessPath::DeviceCache => {
                self.traffic.add_device_bytes(bytes as u64);
                self.trace.record(TraceEvent::DeviceRead { bytes });
            }
            AccessPath::ZeroCopy => {
                self.traffic.add_zerocopy_bytes(bytes as u64);
                self.traffic.add_zerocopy_transactions(self.config.zerocopy_transactions(bytes));
                self.trace.record(TraceEvent::ZeroCopy { bytes });
            }
            AccessPath::UnifiedMemory => {
                if bytes == 0 {
                    return;
                }
                let page = self.config.um_page as u64;
                let first = addr / page;
                let last = (addr + bytes as u64 - 1) / page;
                let faults = self.um_cache.access_range(first, last);
                self.traffic.add_um_faults(faults);
                self.traffic.add_um_hits(last - first + 1 - faults);
                self.trace.record(TraceEvent::Unified { faults, hits: last - first + 1 - faults });
            }
            AccessPath::HostCpu => {}
        }
    }

    /// Record a cache lookup outcome (for hit-rate reporting).
    #[inline]
    pub fn record_cache_lookup(&self, hit: bool) {
        if hit {
            self.traffic.add_cache_hits(1);
        } else {
            self.traffic.add_cache_misses(1);
        }
    }

    /// Record `n` set-intersection element operations on the GPU.
    #[inline]
    pub fn gpu_ops(&self, n: u64) {
        self.traffic.add_gpu_ops(n);
    }

    /// Record `n` set-intersection element operations on the CPU.
    #[inline]
    pub fn cpu_ops(&self, n: u64) {
        self.traffic.add_cpu_ops(n);
    }

    // ------------------------------------------------------------------
    // Kernel execution
    // ------------------------------------------------------------------

    /// Launch a "kernel": run `f(i)` for every `i in 0..items` on the rayon
    /// pool. Work items map to thread blocks; rayon's work stealing stands
    /// in for STMatch's inter-block stealing. Charges one launch overhead.
    pub fn launch<F>(&self, items: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        use rayon::prelude::*;
        self.traffic.add_kernel_launches(1);
        #[allow(clippy::redundant_closure)] // by-ref: F need not be Send
        (0..items).into_par_iter().for_each(|i| f(i));
    }

    /// Sequential launch (deterministic; used by tests and by runs where
    /// reproducible access ordering matters, e.g. the UM page-cache model).
    pub fn launch_seq<F>(&self, items: usize, mut f: F)
    where
        F: FnMut(usize),
    {
        self.traffic.add_kernel_launches(1);
        for i in 0..items {
            f(i);
        }
    }
}

impl Clone for Device {
    fn clone(&self) -> Self {
        Self {
            config: self.config,
            traffic: Arc::clone(&self.traffic),
            um_cache: Arc::clone(&self.um_cache),
            trace: Arc::clone(&self.trace),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Device {
        Device::new(GpuConfig::default())
    }

    #[test]
    fn dma_counts() {
        let d = dev();
        d.dma(1000);
        d.dma(24);
        let s = d.snapshot();
        assert_eq!(s.dma_transactions, 2);
        assert_eq!(s.dma_bytes, 1024);
    }

    #[test]
    fn zero_copy_line_granularity() {
        let d = dev();
        d.read_list(AccessPath::ZeroCopy, 0, 200);
        let s = d.snapshot();
        assert_eq!(s.zerocopy_bytes, 200);
        assert_eq!(s.zerocopy_transactions, 2); // ceil(200/128)
    }

    #[test]
    fn um_faults_then_hits() {
        let d = dev();
        d.read_list(AccessPath::UnifiedMemory, 0, 8192); // 2 pages, both faults
        d.read_list(AccessPath::UnifiedMemory, 100, 100); // page 0 resident
        let s = d.snapshot();
        assert_eq!(s.um_faults, 2);
        assert_eq!(s.um_hits, 1);
    }

    #[test]
    fn um_zero_bytes_is_free() {
        let d = dev();
        d.read_list(AccessPath::UnifiedMemory, 4096, 0);
        assert_eq!(d.snapshot().um_faults, 0);
    }

    #[test]
    fn device_and_host_paths() {
        let d = dev();
        d.read_list(AccessPath::DeviceCache, 0, 64);
        d.read_list(AccessPath::HostCpu, 0, 64);
        let s = d.snapshot();
        assert_eq!(s.device_bytes, 64);
        assert_eq!(s.zerocopy_bytes, 0);
    }

    #[test]
    fn launch_runs_every_item_in_parallel() {
        let d = dev();
        let hits = std::sync::atomic::AtomicU64::new(0);
        d.launch(1000, |_| {
            hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 1000);
        assert_eq!(d.snapshot().kernel_launches, 1);
    }

    #[test]
    fn peer_copy_counts_bytes_and_transactions() {
        let d = Device::with_trace(GpuConfig::default(), 8);
        d.peer_copy(512);
        d.peer_copy(64);
        let s = d.snapshot();
        assert_eq!(s.peer_copies, 2);
        assert_eq!(s.peer_bytes, 576);
        assert_eq!(s.dma_bytes, 0, "peer traffic must not pollute DMA");
        assert_eq!(
            d.trace().drain(),
            vec![
                crate::trace::TraceEvent::Peer { bytes: 512 },
                crate::trace::TraceEvent::Peer { bytes: 64 },
            ]
        );
    }

    #[test]
    fn dma_delta_charges_shipped_and_records_saved() {
        let d = Device::with_trace(GpuConfig::default(), 8);
        d.dma_delta(100, 300);
        let s = d.snapshot();
        assert_eq!(s.dma_bytes, 100);
        assert_eq!(s.dma_transactions, 1);
        assert_eq!(s.dma_saved_bytes, 300);
        assert_eq!(d.trace().drain(), vec![crate::trace::TraceEvent::Dma { bytes: 100 }]);
    }

    #[test]
    fn reset_clears_traffic_and_page_cache() {
        let d = dev();
        d.read_list(AccessPath::UnifiedMemory, 0, 10);
        d.reset();
        assert_eq!(d.snapshot(), TrafficSnapshot::default());
        d.read_list(AccessPath::UnifiedMemory, 0, 10);
        assert_eq!(d.snapshot().um_faults, 1); // faulted again: cache was cleared
    }

    #[test]
    fn trace_records_transfers_when_enabled() {
        let d = Device::with_trace(GpuConfig::default(), 8);
        d.dma(100);
        d.read_list(AccessPath::ZeroCopy, 0, 64);
        d.read_list(AccessPath::DeviceCache, 0, 32);
        let ev = d.trace().drain();
        assert_eq!(
            ev,
            vec![
                crate::trace::TraceEvent::Dma { bytes: 100 },
                crate::trace::TraceEvent::ZeroCopy { bytes: 64 },
                crate::trace::TraceEvent::DeviceRead { bytes: 32 },
            ]
        );
    }

    #[test]
    fn clone_shares_counters() {
        let d = dev();
        let d2 = d.clone();
        d2.gpu_ops(5);
        assert_eq!(d.snapshot().gpu_ops, 5);
    }
}
