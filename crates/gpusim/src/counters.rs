//! Atomic traffic counters shared by all simulated execution units.

use std::sync::atomic::{AtomicU64, Ordering};

/// Relaxed-ordering accumulators for every cost source in the model. The
/// counters are only aggregates (no inter-counter invariants are read
/// mid-run), so `Relaxed` is sufficient and keeps the hot path to a single
/// `lock xadd`.
#[derive(Debug, Default)]
pub struct Traffic {
    /// Bytes moved host→device (or device→host) by DMA.
    pub dma_bytes: AtomicU64,
    /// Number of DMA transactions (each pays the setup cost).
    pub dma_transactions: AtomicU64,
    /// Bytes a delta transfer plan avoided shipping relative to a full
    /// cache repack (device-resident rows reused in place).
    pub dma_saved_bytes: AtomicU64,
    /// Payload bytes read from CPU pinned memory via zero-copy.
    pub zerocopy_bytes: AtomicU64,
    /// Zero-copy line transactions (128 B each): actual PCIe traffic.
    pub zerocopy_transactions: AtomicU64,
    /// Unified-memory page faults (page cache misses).
    pub um_faults: AtomicU64,
    /// Unified-memory page-cache hits.
    pub um_hits: AtomicU64,
    /// Bytes read from device global memory (cache hits / VSGM reads).
    pub device_bytes: AtomicU64,
    /// Set-intersection element operations executed by the GPU kernel.
    pub gpu_ops: AtomicU64,
    /// Set-intersection element operations executed on the CPU baseline.
    pub cpu_ops: AtomicU64,
    /// Kernel launches.
    pub kernel_launches: AtomicU64,
    /// Neighbor-list accesses served from the device-side cache.
    pub cache_hits: AtomicU64,
    /// Neighbor-list accesses that fell through to the CPU.
    pub cache_misses: AtomicU64,
    /// Bytes shipped over the inter-device link (replica maintenance for
    /// boundary updates in sharded execution).
    pub peer_bytes: AtomicU64,
    /// Inter-device transfer transactions (each pays the DMA setup cost).
    pub peer_copies: AtomicU64,
}

macro_rules! add_methods {
    ($($field:ident => $method:ident),* $(,)?) => {
        impl Traffic {
            $(
                #[doc = concat!("Add to `", stringify!($field), "`.")]
                #[inline]
                pub fn $method(&self, n: u64) {
                    self.$field.fetch_add(n, Ordering::Relaxed);
                }
            )*
        }
    };
}

add_methods! {
    dma_bytes => add_dma_bytes,
    dma_transactions => add_dma_transactions,
    dma_saved_bytes => add_dma_saved_bytes,
    zerocopy_bytes => add_zerocopy_bytes,
    zerocopy_transactions => add_zerocopy_transactions,
    um_faults => add_um_faults,
    um_hits => add_um_hits,
    device_bytes => add_device_bytes,
    gpu_ops => add_gpu_ops,
    cpu_ops => add_cpu_ops,
    kernel_launches => add_kernel_launches,
    cache_hits => add_cache_hits,
    cache_misses => add_cache_misses,
    peer_bytes => add_peer_bytes,
    peer_copies => add_peer_copies,
}

impl Traffic {
    /// Capture a plain-value snapshot.
    pub fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            dma_bytes: self.dma_bytes.load(Ordering::Relaxed),
            dma_transactions: self.dma_transactions.load(Ordering::Relaxed),
            dma_saved_bytes: self.dma_saved_bytes.load(Ordering::Relaxed),
            zerocopy_bytes: self.zerocopy_bytes.load(Ordering::Relaxed),
            zerocopy_transactions: self.zerocopy_transactions.load(Ordering::Relaxed),
            um_faults: self.um_faults.load(Ordering::Relaxed),
            um_hits: self.um_hits.load(Ordering::Relaxed),
            device_bytes: self.device_bytes.load(Ordering::Relaxed),
            gpu_ops: self.gpu_ops.load(Ordering::Relaxed),
            cpu_ops: self.cpu_ops.load(Ordering::Relaxed),
            kernel_launches: self.kernel_launches.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            peer_bytes: self.peer_bytes.load(Ordering::Relaxed),
            peer_copies: self.peer_copies.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter.
    pub fn reset(&self) {
        for a in [
            &self.dma_bytes,
            &self.dma_transactions,
            &self.dma_saved_bytes,
            &self.zerocopy_bytes,
            &self.zerocopy_transactions,
            &self.um_faults,
            &self.um_hits,
            &self.device_bytes,
            &self.gpu_ops,
            &self.cpu_ops,
            &self.kernel_launches,
            &self.cache_hits,
            &self.cache_misses,
            &self.peer_bytes,
            &self.peer_copies,
        ] {
            a.store(0, Ordering::Relaxed);
        }
    }
}

/// Plain-value snapshot of [`Traffic`]. Subtraction yields interval traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficSnapshot {
    pub dma_bytes: u64,
    pub dma_transactions: u64,
    pub dma_saved_bytes: u64,
    pub zerocopy_bytes: u64,
    pub zerocopy_transactions: u64,
    pub um_faults: u64,
    pub um_hits: u64,
    pub device_bytes: u64,
    pub gpu_ops: u64,
    pub cpu_ops: u64,
    pub kernel_launches: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub peer_bytes: u64,
    pub peer_copies: u64,
}

impl TrafficSnapshot {
    /// Bytes read from CPU memory by the GPU (the quantity the paper labels
    /// on the bars of Fig. 8–10): zero-copy payload + faulted UM pages.
    pub fn cpu_access_bytes(&self, page_size: usize) -> u64 {
        self.zerocopy_bytes + self.um_faults * page_size as u64
    }

    /// `(field, value)` pairs in declaration order, for data-driven export
    /// (e.g. folding interval traffic into an observability registry).
    pub fn named_fields(&self) -> [(&'static str, u64); 15] {
        [
            ("dma_bytes", self.dma_bytes),
            ("dma_transactions", self.dma_transactions),
            ("dma_saved_bytes", self.dma_saved_bytes),
            ("zerocopy_bytes", self.zerocopy_bytes),
            ("zerocopy_transactions", self.zerocopy_transactions),
            ("um_faults", self.um_faults),
            ("um_hits", self.um_hits),
            ("device_bytes", self.device_bytes),
            ("gpu_ops", self.gpu_ops),
            ("cpu_ops", self.cpu_ops),
            ("kernel_launches", self.kernel_launches),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("peer_bytes", self.peer_bytes),
            ("peer_copies", self.peer_copies),
        ]
    }

    /// Cache hit rate over neighbor-list accesses.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

impl std::ops::Sub for TrafficSnapshot {
    type Output = TrafficSnapshot;
    fn sub(self, rhs: Self) -> Self {
        Self {
            dma_bytes: self.dma_bytes - rhs.dma_bytes,
            dma_transactions: self.dma_transactions - rhs.dma_transactions,
            dma_saved_bytes: self.dma_saved_bytes - rhs.dma_saved_bytes,
            zerocopy_bytes: self.zerocopy_bytes - rhs.zerocopy_bytes,
            zerocopy_transactions: self.zerocopy_transactions - rhs.zerocopy_transactions,
            um_faults: self.um_faults - rhs.um_faults,
            um_hits: self.um_hits - rhs.um_hits,
            device_bytes: self.device_bytes - rhs.device_bytes,
            gpu_ops: self.gpu_ops - rhs.gpu_ops,
            cpu_ops: self.cpu_ops - rhs.cpu_ops,
            kernel_launches: self.kernel_launches - rhs.kernel_launches,
            cache_hits: self.cache_hits - rhs.cache_hits,
            cache_misses: self.cache_misses - rhs.cache_misses,
            peer_bytes: self.peer_bytes - rhs.peer_bytes,
            peer_copies: self.peer_copies - rhs.peer_copies,
        }
    }
}

impl std::ops::Add for TrafficSnapshot {
    type Output = TrafficSnapshot;
    /// Merge interval traffic from several devices (sharded execution sums
    /// its per-shard snapshots into one merged record).
    fn add(self, rhs: Self) -> Self {
        Self {
            dma_bytes: self.dma_bytes + rhs.dma_bytes,
            dma_transactions: self.dma_transactions + rhs.dma_transactions,
            dma_saved_bytes: self.dma_saved_bytes + rhs.dma_saved_bytes,
            zerocopy_bytes: self.zerocopy_bytes + rhs.zerocopy_bytes,
            zerocopy_transactions: self.zerocopy_transactions + rhs.zerocopy_transactions,
            um_faults: self.um_faults + rhs.um_faults,
            um_hits: self.um_hits + rhs.um_hits,
            device_bytes: self.device_bytes + rhs.device_bytes,
            gpu_ops: self.gpu_ops + rhs.gpu_ops,
            cpu_ops: self.cpu_ops + rhs.cpu_ops,
            kernel_launches: self.kernel_launches + rhs.kernel_launches,
            cache_hits: self.cache_hits + rhs.cache_hits,
            cache_misses: self.cache_misses + rhs.cache_misses,
            peer_bytes: self.peer_bytes + rhs.peer_bytes,
            peer_copies: self.peer_copies + rhs.peer_copies,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_snapshot_reset() {
        let t = Traffic::default();
        t.add_zerocopy_bytes(100);
        t.add_zerocopy_transactions(1);
        t.add_gpu_ops(42);
        let s = t.snapshot();
        assert_eq!(s.zerocopy_bytes, 100);
        assert_eq!(s.gpu_ops, 42);
        t.reset();
        assert_eq!(t.snapshot(), TrafficSnapshot::default());
    }

    #[test]
    fn interval_subtraction() {
        let t = Traffic::default();
        t.add_dma_bytes(10);
        let a = t.snapshot();
        t.add_dma_bytes(5);
        t.add_um_faults(2);
        let b = t.snapshot();
        let d = b - a;
        assert_eq!(d.dma_bytes, 5);
        assert_eq!(d.um_faults, 2);
    }

    #[test]
    fn cpu_access_bytes_combines_paths() {
        let s = TrafficSnapshot { zerocopy_bytes: 1000, um_faults: 2, ..Default::default() };
        assert_eq!(s.cpu_access_bytes(4096), 1000 + 8192);
    }

    #[test]
    fn hit_rate() {
        let s = TrafficSnapshot { cache_hits: 3, cache_misses: 1, ..Default::default() };
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(TrafficSnapshot::default().cache_hit_rate(), 0.0);
    }

    #[test]
    fn named_fields_cover_every_counter() {
        let s = TrafficSnapshot {
            dma_bytes: 1,
            dma_transactions: 2,
            dma_saved_bytes: 3,
            zerocopy_bytes: 4,
            zerocopy_transactions: 5,
            um_faults: 6,
            um_hits: 7,
            device_bytes: 8,
            gpu_ops: 9,
            cpu_ops: 10,
            kernel_launches: 11,
            cache_hits: 12,
            cache_misses: 13,
            peer_bytes: 14,
            peer_copies: 15,
        };
        let fields = s.named_fields();
        let values: Vec<u64> = fields.iter().map(|&(_, v)| v).collect();
        assert_eq!(values, (1..=15).collect::<Vec<u64>>());
        let mut names: Vec<&str> = fields.iter().map(|&(n, _)| n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 15, "field names must be distinct");
    }

    #[test]
    fn snapshot_addition_merges_componentwise() {
        let a = TrafficSnapshot { dma_bytes: 10, peer_bytes: 3, ..Default::default() };
        let b = TrafficSnapshot { dma_bytes: 5, peer_copies: 2, ..Default::default() };
        let s = a + b;
        assert_eq!(s.dma_bytes, 15);
        assert_eq!(s.peer_bytes, 3);
        assert_eq!(s.peer_copies, 2);
        assert_eq!(s - b, a);
    }

    #[test]
    fn parallel_accumulation_is_lossless() {
        let t = std::sync::Arc::new(Traffic::default());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let t = t.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        t.add_gpu_ops(1);
                    }
                });
            }
        });
        assert_eq!(t.snapshot().gpu_ops, 80_000);
    }
}
