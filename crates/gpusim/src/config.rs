//! Hardware model constants.
//!
//! Defaults approximate the paper's platform (Sec. VI-A): dual Xeon Gold
//! 6226R (32 cores) + RTX3090 (24 GB) over PCIe 3.0 x16. The absolute values
//! only anchor the time unit; the *ratios* between paths are what reproduce
//! the paper's figures, and those ratios are hardware facts (PCIe line vs
//! page granularity, HBM vs PCIe bandwidth, DMA setup vs streaming).

/// Calibrated cost model for the simulated CPU–GPU system.
#[derive(Clone, Copy, Debug)]
pub struct GpuConfig {
    // ---- link ----
    /// Effective PCIe bandwidth for large DMA transfers, bytes/second.
    pub dma_bandwidth: f64,
    /// Per-DMA-transaction setup cost, seconds (driver + copy-engine setup).
    pub dma_setup: f64,
    /// Effective PCIe bandwidth for zero-copy (fine-grained) traffic,
    /// bytes/second. Lower than DMA because each access is a read
    /// round-trip that cannot be pipelined as deeply.
    pub zerocopy_bandwidth: f64,
    /// Zero-copy transaction granularity, bytes (CUDA moves pinned-memory
    /// loads in 128 B cache lines — Sec. II-C).
    pub zerocopy_line: usize,
    /// Amortised per-transaction stall for zero-copy, seconds. With tens of
    /// thousands of threads in flight most latency is hidden; this is the
    /// residual per-line cost beyond bandwidth.
    pub zerocopy_stall: f64,
    /// Effective device-to-device (peer) bandwidth for sharded execution,
    /// bytes/second. PCIe peer transfers route through the host bridge, so
    /// the default matches the DMA link; NVLink-class fabrics raise it.
    pub peer_bandwidth: f64,

    // ---- unified memory ----
    /// Page size, bytes (4 KiB).
    pub um_page: usize,
    /// GPU page-fault service time, seconds (fault + driver round trip).
    pub um_fault_latency: f64,
    /// Fraction of device memory available for the UM page cache, bytes.
    pub um_cache_bytes: usize,

    // ---- device ----
    /// Device global-memory bandwidth, bytes/second.
    pub device_bandwidth: f64,
    /// Device global memory capacity, bytes.
    pub device_capacity: usize,
    /// Memory reserved by the matching kernel (STMatch uses ~10 GB for its
    /// stacks — Sec. VI-A); the remainder bounds the neighbor-list cache.
    pub kernel_reserved: usize,

    // ---- compute ----
    /// Effective cost of one set-intersection element operation on the GPU,
    /// seconds (already amortised over the grid's parallelism).
    pub gpu_op_cost: f64,
    /// Same, for the 32-thread CPU baseline. The gap reflects the paper's
    /// observed GPU-over-CPU advantage for the pure compute part.
    pub cpu_op_cost: f64,
    /// Cost of one element operation in the merged random-walk estimator,
    /// seconds. Cheaper than `cpu_op_cost`: the merged walk streams each
    /// touched list once with no output materialization (the locality
    /// argument of Sec. IV-B), where general matching pays for candidate
    /// buffers and result handling.
    pub walk_op_cost: f64,
    /// Fixed kernel-launch overhead, seconds.
    pub kernel_launch: f64,
    /// Effective CPU memory bandwidth for host-side streaming work
    /// (graph reorganisation, cache packing), bytes/second.
    pub cpu_mem_bandwidth: f64,

    // ---- grid shape (used by the executor) ----
    /// Thread blocks per launch (the paper launches 82 blocks).
    pub num_blocks: usize,
    /// Threads per block (1024 in the paper). Only documentary in the
    /// simulator; parallel execution maps blocks to rayon tasks.
    pub threads_per_block: usize,
}

impl GpuConfig {
    /// The paper's platform, scaled so that the device is small relative to
    /// the scaled-down datasets (the "graph exceeds GPU memory" regime).
    /// `device_capacity` here is the *cache budget* knob; engines treat
    /// `device_capacity - kernel_reserved` as the neighbor-list buffer, the
    /// analog of the paper's 14 GB buffer on the 24 GB card.
    pub fn rtx3090_scaled(cache_budget_bytes: usize) -> Self {
        Self {
            dma_bandwidth: 12.0e9,
            dma_setup: 10.0e-6,
            zerocopy_bandwidth: 3.0e9,
            zerocopy_line: 128,
            zerocopy_stall: 2.0e-9,
            peer_bandwidth: 12.0e9,
            um_page: 4096,
            um_fault_latency: 20.0e-6,
            um_cache_bytes: cache_budget_bytes,
            device_bandwidth: 760.0e9,
            device_capacity: cache_budget_bytes.saturating_mul(12) / 7, // 24GB:14GB ratio
            kernel_reserved: cache_budget_bytes.saturating_mul(5) / 7,
            gpu_op_cost: 0.55e-9,
            cpu_op_cost: 4.0e-9,
            walk_op_cost: 0.5e-9,
            kernel_launch: 5.0e-6,
            cpu_mem_bandwidth: 25.0e9,
            num_blocks: 82,
            threads_per_block: 1024,
        }
    }

    /// Unscaled RTX3090 defaults with the paper's 14 GB cache buffer.
    pub fn rtx3090() -> Self {
        Self::rtx3090_scaled(14 * (1 << 30))
    }

    /// PCIe 4.0 x16 variant: double the link bandwidth of the paper's
    /// platform, same latencies. (What-if analysis; the paper notes the GPU
    /// "is connected to the CPUs through PCIe".)
    pub fn pcie4_scaled(cache_budget_bytes: usize) -> Self {
        let mut c = Self::rtx3090_scaled(cache_budget_bytes);
        c.dma_bandwidth = 24.0e9;
        c.zerocopy_bandwidth = 6.0e9;
        c.peer_bandwidth = 24.0e9;
        c
    }

    /// NVLink-class interconnect: ~4× PCIe 3.0 bandwidth and lower
    /// fine-grained access cost. The paper mentions NVLink as the
    /// alternative attachment; this preset quantifies how much of GCSM's
    /// advantage a faster link erodes.
    pub fn nvlink_scaled(cache_budget_bytes: usize) -> Self {
        let mut c = Self::rtx3090_scaled(cache_budget_bytes);
        c.dma_bandwidth = 50.0e9;
        c.zerocopy_bandwidth = 20.0e9;
        c.zerocopy_stall = 0.5e-9;
        c.um_fault_latency = 10.0e-6;
        c.peer_bandwidth = 50.0e9;
        c
    }

    /// The neighbor-list cache budget in bytes (paper: 14 GB of the 24 GB).
    pub fn cache_budget(&self) -> usize {
        self.um_cache_bytes
    }

    /// Number of zero-copy transactions needed for `bytes` of payload.
    #[inline]
    pub fn zerocopy_transactions(&self, bytes: usize) -> u64 {
        (bytes as u64).div_ceil(self.zerocopy_line as u64)
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        // Default cache budget for laptop-scale repro runs: 8 MiB.
        Self::rtx3090_scaled(8 << 20)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transaction_rounding() {
        let c = GpuConfig::default();
        assert_eq!(c.zerocopy_transactions(0), 0);
        assert_eq!(c.zerocopy_transactions(1), 1);
        assert_eq!(c.zerocopy_transactions(128), 1);
        assert_eq!(c.zerocopy_transactions(129), 2);
    }

    #[test]
    fn path_cost_ordering_holds() {
        // The hardware facts that drive every figure: device ≪ zero-copy per
        // byte, and a UM page fault is far more expensive than a zero-copy
        // line.
        let c = GpuConfig::default();
        assert!(1.0 / c.device_bandwidth < 1.0 / c.zerocopy_bandwidth);
        let zc_line_cost = c.zerocopy_line as f64 / c.zerocopy_bandwidth + c.zerocopy_stall;
        let um_fault_cost = c.um_fault_latency + c.um_page as f64 / c.dma_bandwidth;
        assert!(um_fault_cost > 100.0 * zc_line_cost);
        assert!(c.cpu_op_cost > c.gpu_op_cost);
    }

    #[test]
    fn link_presets_order_by_bandwidth() {
        let pcie3 = GpuConfig::rtx3090_scaled(1 << 20);
        let pcie4 = GpuConfig::pcie4_scaled(1 << 20);
        let nvlink = GpuConfig::nvlink_scaled(1 << 20);
        assert!(pcie3.zerocopy_bandwidth < pcie4.zerocopy_bandwidth);
        assert!(pcie4.zerocopy_bandwidth < nvlink.zerocopy_bandwidth);
        assert!(nvlink.um_fault_latency < pcie3.um_fault_latency);
    }

    #[test]
    fn full_card_preset() {
        let c = GpuConfig::rtx3090();
        assert_eq!(c.cache_budget(), 14 * (1 << 30));
        assert!(c.device_capacity > c.cache_budget());
    }
}
