//! Optional transfer trace: a bounded ring buffer of recent memory events.
//!
//! Debugging a caching policy means asking "what exactly crossed PCIe for
//! this batch?". When enabled, the device appends one [`TraceEvent`] per
//! transfer into a fixed-capacity ring (old events overwritten), which
//! tests and tools can drain and assert on. Disabled (capacity 0) the cost
//! is a single branch per access.

use parking_lot::Mutex;

/// One recorded memory event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// Bulk DMA transfer of `bytes`.
    Dma { bytes: usize },
    /// Zero-copy read of `bytes` payload.
    ZeroCopy { bytes: usize },
    /// Unified-memory access: `faults` pages missed, `hits` pages resident.
    Unified { faults: u64, hits: u64 },
    /// Device-memory read of `bytes` (cache hit).
    DeviceRead { bytes: usize },
    /// Inter-device peer transfer of `bytes` (sharded replica maintenance).
    Peer { bytes: usize },
}

/// Fixed-capacity ring of events.
pub struct TraceRing {
    inner: Mutex<RingInner>,
}

struct RingInner {
    buf: Vec<TraceEvent>,
    head: usize,
    len: usize,
    total: u64,
}

impl TraceRing {
    /// Ring holding the last `capacity` events (0 = tracing disabled).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(RingInner {
                buf: Vec::with_capacity(capacity),
                head: 0,
                len: 0,
                total: 0,
            }),
        }
    }

    /// True if events are being recorded.
    pub fn enabled(&self) -> bool {
        self.inner.lock().buf.capacity() > 0
    }

    /// Record an event (no-op when disabled).
    pub fn record(&self, e: TraceEvent) {
        let mut r = self.inner.lock();
        let cap = r.buf.capacity();
        if cap == 0 {
            return;
        }
        r.total += 1;
        if r.buf.len() < cap {
            r.buf.push(e);
            r.len += 1;
        } else {
            let head = r.head;
            r.buf[head] = e;
            r.head = (head + 1) % cap;
        }
    }

    /// Drain the buffered events in arrival order and reset the ring.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut r = self.inner.lock();
        let cap = r.buf.capacity();
        if cap == 0 || r.buf.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(r.buf.len());
        let start = if r.buf.len() < cap { 0 } else { r.head };
        for i in 0..r.buf.len() {
            out.push(r.buf[(start + i) % r.buf.len()]);
        }
        r.buf.clear();
        r.head = 0;
        r.len = 0;
        out
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.inner.lock().total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_ring_records_nothing() {
        let r = TraceRing::new(0);
        assert!(!r.enabled());
        r.record(TraceEvent::Dma { bytes: 8 });
        assert!(r.drain().is_empty());
        assert_eq!(r.total_recorded(), 0);
    }

    #[test]
    fn fifo_order_within_capacity() {
        let r = TraceRing::new(4);
        for b in 1..=3usize {
            r.record(TraceEvent::ZeroCopy { bytes: b });
        }
        let ev = r.drain();
        assert_eq!(
            ev,
            vec![
                TraceEvent::ZeroCopy { bytes: 1 },
                TraceEvent::ZeroCopy { bytes: 2 },
                TraceEvent::ZeroCopy { bytes: 3 },
            ]
        );
        // Drain resets.
        assert!(r.drain().is_empty());
    }

    #[test]
    fn overflow_keeps_most_recent() {
        let r = TraceRing::new(3);
        for b in 1..=5usize {
            r.record(TraceEvent::DeviceRead { bytes: b });
        }
        let ev = r.drain();
        assert_eq!(ev.len(), 3);
        assert_eq!(
            ev,
            vec![
                TraceEvent::DeviceRead { bytes: 3 },
                TraceEvent::DeviceRead { bytes: 4 },
                TraceEvent::DeviceRead { bytes: 5 },
            ]
        );
        assert_eq!(r.total_recorded(), 5);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let r = std::sync::Arc::new(TraceRing::new(128));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = r.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        r.record(TraceEvent::Dma { bytes: 1 });
                    }
                });
            }
        });
        assert_eq!(r.total_recorded(), 4000);
        assert_eq!(r.drain().len(), 128);
    }
}
