//! Device-side page cache for the unified-memory model.
//!
//! CUDA unified memory migrates 4 KiB pages on demand and keeps them
//! resident on the device until evicted. We model that with a sharded CLOCK
//! cache (second-chance eviction): cheap, concurrent, and a close stand-in
//! for the driver's LRU-ish behaviour. Each `access` reports hit/miss; the
//! caller charges a page fault for each miss.

use parking_lot::Mutex;
use std::collections::HashMap;

const SHARDS: usize = 64;

struct Shard {
    /// page id → slot index
    map: HashMap<u64, usize>,
    /// (page id, referenced bit) per slot
    slots: Vec<(u64, bool)>,
    capacity: usize,
    hand: usize,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            capacity,
            hand: 0,
        }
    }

    fn access(&mut self, page: u64) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if let Some(&slot) = self.map.get(&page) {
            self.slots[slot].1 = true;
            return true;
        }
        // Miss: insert, evicting with CLOCK if full.
        if self.slots.len() < self.capacity {
            self.slots.push((page, true));
            self.map.insert(page, self.slots.len() - 1);
        } else {
            loop {
                let (victim, referenced) = self.slots[self.hand];
                if referenced {
                    self.slots[self.hand].1 = false;
                    self.hand = (self.hand + 1) % self.capacity;
                } else {
                    self.map.remove(&victim);
                    self.slots[self.hand] = (page, true);
                    self.map.insert(page, self.hand);
                    self.hand = (self.hand + 1) % self.capacity;
                    break;
                }
            }
        }
        false
    }
}

/// Concurrent fixed-capacity page cache.
pub struct PageCache {
    shards: Vec<Mutex<Shard>>,
}

impl PageCache {
    /// Cache holding at most `capacity_pages` pages in total.
    pub fn new(capacity_pages: usize) -> Self {
        let per_shard = capacity_pages.div_ceil(SHARDS);
        let shards = (0..SHARDS).map(|_| Mutex::new(Shard::new(per_shard))).collect();
        Self { shards }
    }

    /// Touch `page`; returns `true` on a hit, `false` on a fault.
    pub fn access(&self, page: u64) -> bool {
        let shard = (page as usize) % SHARDS;
        self.shards[shard].lock().access(page)
    }

    /// Touch every page in `[first, last]`; returns the number of faults.
    pub fn access_range(&self, first: u64, last: u64) -> u64 {
        let mut faults = 0;
        for p in first..=last {
            if !self.access(p) {
                faults += 1;
            }
        }
        faults
    }

    /// Drop all resident pages.
    pub fn clear(&self) {
        for s in &self.shards {
            let mut s = s.lock();
            s.map.clear();
            s.slots.clear();
            s.hand = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let c = PageCache::new(SHARDS * 4);
        assert!(!c.access(7));
        assert!(c.access(7));
    }

    #[test]
    fn zero_capacity_never_hits() {
        let c = PageCache::new(0);
        assert!(!c.access(1));
        assert!(!c.access(1));
    }

    #[test]
    fn eviction_under_pressure() {
        // One page per shard: two distinct pages hashing to the same shard
        // must evict each other.
        let c = PageCache::new(SHARDS);
        let a = 0u64;
        let b = SHARDS as u64; // same shard as `a`
        assert!(!c.access(a));
        assert!(!c.access(b)); // evicts nothing yet? clock: a referenced → second chance, then evict a
        assert!(c.access(b) || c.access(a)); // exactly one of them is resident
    }

    #[test]
    fn range_fault_count() {
        let c = PageCache::new(SHARDS * 16);
        assert_eq!(c.access_range(0, 9), 10);
        assert_eq!(c.access_range(0, 9), 0);
        assert_eq!(c.access_range(5, 14), 5);
    }

    #[test]
    fn clear_empties_cache() {
        let c = PageCache::new(SHARDS * 2);
        c.access(3);
        assert!(c.access(3));
        c.clear();
        assert!(!c.access(3));
    }

    #[test]
    fn working_set_within_capacity_stays_resident() {
        let c = PageCache::new(SHARDS * 8);
        for p in 0..(SHARDS as u64 * 4) {
            c.access(p);
        }
        // Second pass: everything should hit (capacity is double the set).
        let faults = c.access_range(0, SHARDS as u64 * 4 - 1);
        assert_eq!(faults, 0);
    }
}
