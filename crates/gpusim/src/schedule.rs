//! Grid load-balance model.
//!
//! STMatch — the kernel the paper builds on — keeps its thread blocks busy
//! with inter-block **work stealing**; without it, a few seed tasks with
//! huge match trees leave most of the grid idle. This module models both
//! policies over the per-task costs the kernel executor records:
//!
//! * [`Scheduling::Static`] — tasks assigned round-robin in submission
//!   order; the kernel finishes when the most-loaded block finishes;
//! * [`Scheduling::WorkStealing`] — list scheduling (each free block takes
//!   the next task), the classic 2-approximation of optimal makespan and a
//!   faithful stand-in for STMatch's stealing.
//!
//! [`imbalance_factor`] returns `makespan / ideal` (`≥ 1`); engines stretch
//! their kernel time by it, so the ablation bench can quantify what the
//! stealing buys on skewed workloads.

/// Block-scheduling policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheduling {
    /// Round-robin static assignment (no stealing).
    Static,
    /// Contiguous chunks in submission order: block `b` takes tasks
    /// `[b·⌈n/B⌉, (b+1)·⌈n/B⌉)`. Preserves task locality (neighbouring
    /// seeds share neighbourhoods) at the price of tolerating none of the
    /// skew round-robin at least spreads out.
    Chunked,
    /// Greedy list scheduling (work stealing).
    WorkStealing,
}

impl Scheduling {
    /// CLI spelling of the policy.
    pub fn name(&self) -> &'static str {
        match self {
            Scheduling::Static => "static",
            Scheduling::Chunked => "chunked",
            Scheduling::WorkStealing => "stealing",
        }
    }

    /// Parse a CLI spelling (`static`, `chunked`, `stealing`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "static" => Some(Scheduling::Static),
            "chunked" => Some(Scheduling::Chunked),
            "stealing" => Some(Scheduling::WorkStealing),
            _ => None,
        }
    }
}

/// Makespan of `task_costs` on `blocks` parallel blocks under `policy`.
pub fn makespan(task_costs: &[u64], blocks: usize, policy: Scheduling) -> u64 {
    if task_costs.is_empty() || blocks == 0 {
        return 0;
    }
    match policy {
        Scheduling::Static => {
            let mut loads = vec![0u64; blocks];
            for (i, &c) in task_costs.iter().enumerate() {
                loads[i % blocks] += c;
            }
            loads.into_iter().max().unwrap_or(0)
        }
        Scheduling::Chunked => {
            let chunk = task_costs.len().div_ceil(blocks);
            task_costs.chunks(chunk).map(|c| c.iter().sum()).max().unwrap_or(0)
        }
        Scheduling::WorkStealing => {
            // List scheduling via a min-heap of block finish times.
            use std::cmp::Reverse;
            use std::collections::BinaryHeap;
            let mut heap: BinaryHeap<Reverse<u64>> = (0..blocks).map(|_| Reverse(0u64)).collect();
            for &c in task_costs {
                let Reverse(t) = heap.pop().expect("blocks > 0");
                heap.push(Reverse(t + c));
            }
            heap.into_iter().map(|Reverse(t)| t).max().unwrap_or(0)
        }
    }
}

/// `makespan / ideal` where `ideal = ⌈total / blocks⌉` — the factor by
/// which the grid's finish time exceeds perfect balance. Always ≥ 1.
pub fn imbalance_factor(task_costs: &[u64], blocks: usize, policy: Scheduling) -> f64 {
    let total: u64 = task_costs.iter().sum();
    if total == 0 || blocks == 0 {
        return 1.0;
    }
    let ideal = (total as f64 / blocks as f64).max(1.0);
    (makespan(task_costs, blocks, policy) as f64 / ideal).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_tasks_balance_perfectly() {
        let costs = vec![10u64; 64];
        for p in [Scheduling::Static, Scheduling::Chunked, Scheduling::WorkStealing] {
            assert_eq!(makespan(&costs, 8, p), 80);
            assert!((imbalance_factor(&costs, 8, p) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn chunked_assigns_contiguous_runs() {
        // 6 tasks on 2 blocks: chunked takes [1,2,3] vs [10,1,1]; round-robin
        // interleaves to [1,3,1] vs [2,10,1].
        let costs = vec![1u64, 2, 3, 10, 1, 1];
        assert_eq!(makespan(&costs, 2, Scheduling::Chunked), 12);
        assert_eq!(makespan(&costs, 2, Scheduling::Static), 13);
        assert_eq!(makespan(&costs, 2, Scheduling::WorkStealing), 12);
        // A front-loaded burst punishes chunked hardest.
        let burst = vec![100u64, 100, 1, 1];
        assert_eq!(makespan(&burst, 2, Scheduling::Chunked), 200);
        assert_eq!(makespan(&burst, 2, Scheduling::Static), 101);
    }

    #[test]
    fn policy_names_round_trip() {
        for p in [Scheduling::Static, Scheduling::Chunked, Scheduling::WorkStealing] {
            assert_eq!(Scheduling::parse(p.name()), Some(p));
        }
        assert_eq!(Scheduling::parse("bogus"), None);
    }

    #[test]
    fn skewed_tasks_hurt_static_more() {
        // One giant task among many tiny ones, adversarially placed so
        // round-robin stacks extra work on the giant's block.
        let mut costs = vec![1u64; 64];
        costs[0] = 1000;
        costs[8] = 900; // same block as task 0 under round-robin with 8 blocks
        let s = imbalance_factor(&costs, 8, Scheduling::Static);
        let w = imbalance_factor(&costs, 8, Scheduling::WorkStealing);
        assert!(s > w, "static {s:.2} vs stealing {w:.2}");
        assert!(w <= 4.2, "stealing bounded by the giant task: {w:.2}");
    }

    #[test]
    fn stealing_is_within_2x_of_ideal() {
        // List scheduling's classic bound: makespan ≤ 2·OPT ≤ 2·(ideal + max).
        let costs: Vec<u64> = (1..200).map(|i| (i * 37) % 97 + 1).collect();
        let total: u64 = costs.iter().sum();
        let blocks = 16;
        let ideal = total.div_ceil(blocks as u64);
        let max = *costs.iter().max().unwrap();
        assert!(makespan(&costs, blocks, Scheduling::WorkStealing) <= ideal + max);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(makespan(&[], 8, Scheduling::Static), 0);
        assert_eq!(makespan(&[5], 0, Scheduling::WorkStealing), 0);
        assert_eq!(imbalance_factor(&[], 8, Scheduling::Static), 1.0);
        // One task: makespan = task, ideal = total/blocks ⇒ factor = blocks.
        assert!((imbalance_factor(&[100], 4, Scheduling::WorkStealing) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn single_block_equals_total() {
        let costs = vec![3u64, 7, 11];
        for p in [Scheduling::Static, Scheduling::Chunked, Scheduling::WorkStealing] {
            assert_eq!(makespan(&costs, 1, p), 21);
        }
    }
}
