//! # gcsm-gpusim — software model of the CPU–GPU memory system
//!
//! The paper runs its matching kernel on an RTX3090 connected over PCIe and
//! shows that the *entire* performance story of continuous subgraph matching
//! on out-of-core graphs is a data-movement story (Sec. II-C, Sec. VI):
//!
//! * **DMA** (`cudaMemcpy`) — efficient bulk transfers, but with a fixed
//!   setup cost per transaction;
//! * **zero-copy** — fine-grained loads of CPU pinned memory at cache-line
//!   (128 B) granularity, no setup cost, but every access crosses PCIe;
//! * **unified memory** — page (4 KiB) granularity with on-device page
//!   caching; catastrophic for fine-grained access (the paper measures
//!   69–210× slowdowns vs zero-copy);
//! * **device global memory** — fast (~760 GB/s) but capacity-limited.
//!
//! This crate reproduces those mechanisms in software. A [`Device`] owns a
//! set of atomic traffic counters; the matching engines route every
//! neighbor-list access through it, tagged with the access path taken. After
//! a run, [`Traffic::snapshot`] captures the traffic and
//! [`SimBreakdown::from_traffic`] converts it into a simulated execution
//! time using the calibrated constants in [`GpuConfig`]. The arithmetic work
//! (set-intersection element operations) is costed uniformly across engines,
//! so relative engine performance is decided by traffic alone — exactly the
//! quantity the paper's experiments isolate.
//!
//! The kernel executor ([`Device::launch`]) stands in for the CUDA grid: it
//! runs work items on a rayon pool (thread blocks → worker threads,
//! work-stealing standing in for STMatch's inter-block stealing) and charges
//! a per-launch overhead.

pub mod config;
pub mod counters;
pub mod device;
pub mod pagecache;
pub mod schedule;
pub mod simtime;
pub mod trace;

pub use config::GpuConfig;
pub use counters::{Traffic, TrafficSnapshot};
pub use device::{AccessPath, Device};
pub use pagecache::PageCache;
pub use schedule::{imbalance_factor, makespan, Scheduling};
pub use simtime::SimBreakdown;
pub use trace::{TraceEvent, TraceRing};
