//! Simulated-time model: traffic snapshot → seconds.
//!
//! Every engine's "execution time" in the reproduced figures is computed
//! here, from the same formula, so no engine can be favoured except through
//! the traffic it actually generated:
//!
//! ```text
//! t_dma     = dma_transactions · dma_setup + dma_bytes / dma_bandwidth
//! t_zc      = zc_transactions · (line/zc_bandwidth + stall)
//! t_um      = um_faults · (fault_latency + page/dma_bandwidth)
//! t_device  = device_bytes / device_bandwidth
//! t_compute = gpu_ops · gpu_op_cost  (or cpu_ops · cpu_op_cost)
//! t_launch  = kernel_launches · kernel_launch
//! ```
//!
//! GPU memory time and compute overlap imperfectly in reality; the model
//! sums them, which is the conservative choice and preserves orderings
//! (both terms are monotone in the work done).

use crate::config::GpuConfig;
use crate::counters::TrafficSnapshot;

/// Per-component simulated time (seconds) for one measured interval.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimBreakdown {
    pub dma: f64,
    pub zerocopy: f64,
    pub unified: f64,
    pub device_mem: f64,
    pub gpu_compute: f64,
    pub cpu_compute: f64,
    pub launches: f64,
    /// Inter-device peer transfers (sharded replica maintenance): each
    /// transaction pays the DMA setup, bytes stream at `peer_bandwidth`.
    pub peer: f64,
    /// Host-side time charged by the engine itself (frequency estimation,
    /// packing, reorganisation). Filled in by the engine layer; zero here.
    pub host_extra: f64,
}

impl SimBreakdown {
    /// Derive the breakdown from a traffic snapshot.
    pub fn from_traffic(t: &TrafficSnapshot, c: &GpuConfig) -> Self {
        let line_cost = c.zerocopy_line as f64 / c.zerocopy_bandwidth + c.zerocopy_stall;
        Self {
            dma: t.dma_transactions as f64 * c.dma_setup + t.dma_bytes as f64 / c.dma_bandwidth,
            zerocopy: t.zerocopy_transactions as f64 * line_cost,
            unified: t.um_faults as f64 * (c.um_fault_latency + c.um_page as f64 / c.dma_bandwidth),
            device_mem: t.device_bytes as f64 / c.device_bandwidth,
            gpu_compute: t.gpu_ops as f64 * c.gpu_op_cost,
            cpu_compute: t.cpu_ops as f64 * c.cpu_op_cost,
            launches: t.kernel_launches as f64 * c.kernel_launch,
            peer: t.peer_copies as f64 * c.dma_setup + t.peer_bytes as f64 / c.peer_bandwidth,
            host_extra: 0.0,
        }
    }

    /// Total simulated seconds.
    pub fn total(&self) -> f64 {
        self.dma
            + self.zerocopy
            + self.unified
            + self.device_mem
            + self.gpu_compute
            + self.cpu_compute
            + self.launches
            + self.peer
            + self.host_extra
    }

    /// Total in milliseconds (the unit of the paper's figures).
    pub fn total_ms(&self) -> f64 {
        self.total() * 1e3
    }

    /// The data-communication part (the paper's "DC" bars in Fig. 13):
    /// DMA + inter-device copies, excluding matching-time memory traffic.
    pub fn data_copy(&self) -> f64 {
        self.dma + self.peer
    }

    /// The matching-kernel part (the paper's "Match" bars in Fig. 13).
    pub fn match_kernel(&self) -> f64 {
        self.zerocopy + self.unified + self.device_mem + self.gpu_compute + self.launches
    }
}

impl std::ops::Add for SimBreakdown {
    type Output = SimBreakdown;
    fn add(self, r: Self) -> Self {
        Self {
            dma: self.dma + r.dma,
            zerocopy: self.zerocopy + r.zerocopy,
            unified: self.unified + r.unified,
            device_mem: self.device_mem + r.device_mem,
            gpu_compute: self.gpu_compute + r.gpu_compute,
            cpu_compute: self.cpu_compute + r.cpu_compute,
            launches: self.launches + r.launches,
            peer: self.peer + r.peer,
            host_extra: self.host_extra + r.host_extra,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        GpuConfig::default()
    }

    #[test]
    fn zero_traffic_zero_time() {
        let b = SimBreakdown::from_traffic(&TrafficSnapshot::default(), &cfg());
        assert_eq!(b.total(), 0.0);
    }

    #[test]
    fn um_dominates_zero_copy_for_fine_access() {
        // One 4-byte access via each path: UM pays a whole page fault.
        let c = cfg();
        let zc =
            TrafficSnapshot { zerocopy_bytes: 4, zerocopy_transactions: 1, ..Default::default() };
        let um = TrafficSnapshot { um_faults: 1, ..Default::default() };
        let t_zc = SimBreakdown::from_traffic(&zc, &c).total();
        let t_um = SimBreakdown::from_traffic(&um, &c).total();
        assert!(t_um / t_zc > 50.0, "um/zc ratio {}", t_um / t_zc);
    }

    #[test]
    fn dma_beats_zero_copy_for_bulk() {
        // 1 MB moved as one DMA vs as zero-copy lines.
        let c = cfg();
        let bytes = 1 << 20;
        let dma = TrafficSnapshot { dma_bytes: bytes, dma_transactions: 1, ..Default::default() };
        let zc = TrafficSnapshot {
            zerocopy_bytes: bytes,
            zerocopy_transactions: bytes / 128,
            ..Default::default()
        };
        assert!(
            SimBreakdown::from_traffic(&dma, &c).total()
                < SimBreakdown::from_traffic(&zc, &c).total()
        );
    }

    #[test]
    fn zero_copy_beats_dma_for_tiny_transfers() {
        // 128 bytes: DMA pays the setup; zero-copy just the line.
        let c = cfg();
        let dma = TrafficSnapshot { dma_bytes: 128, dma_transactions: 1, ..Default::default() };
        let zc =
            TrafficSnapshot { zerocopy_bytes: 128, zerocopy_transactions: 1, ..Default::default() };
        assert!(
            SimBreakdown::from_traffic(&zc, &c).total()
                < SimBreakdown::from_traffic(&dma, &c).total()
        );
    }

    #[test]
    fn addition_and_totals() {
        let c = cfg();
        let a = SimBreakdown::from_traffic(
            &TrafficSnapshot { gpu_ops: 1000, ..Default::default() },
            &c,
        );
        let b = SimBreakdown::from_traffic(
            &TrafficSnapshot { cpu_ops: 1000, ..Default::default() },
            &c,
        );
        let s = a + b;
        assert!((s.total() - (a.total() + b.total())).abs() < 1e-15);
        assert!((s.total_ms() - s.total() * 1e3).abs() < 1e-12);
    }

    proptest::proptest! {
        /// Simulated time is monotone in every traffic component and
        /// always nonnegative.
        #[test]
        fn time_is_monotone_in_traffic(
            dma in 0u64..1_000_000, zc in 0u64..1_000_000,
            faults in 0u64..10_000, dev in 0u64..10_000_000,
            gops in 0u64..10_000_000, bump in 1u64..100_000,
        ) {
            let c = GpuConfig::default();
            let base = TrafficSnapshot {
                dma_bytes: dma, dma_transactions: dma / 4096 + 1,
                zerocopy_bytes: zc, zerocopy_transactions: zc / 128 + 1,
                um_faults: faults, device_bytes: dev, gpu_ops: gops,
                ..Default::default()
            };
            let t0 = SimBreakdown::from_traffic(&base, &c).total();
            proptest::prop_assert!(t0 >= 0.0);
            for grow in [
                TrafficSnapshot { zerocopy_transactions: base.zerocopy_transactions + bump, ..base },
                TrafficSnapshot { um_faults: base.um_faults + bump, ..base },
                TrafficSnapshot { gpu_ops: base.gpu_ops + bump, ..base },
                TrafficSnapshot { dma_bytes: base.dma_bytes + bump, ..base },
            ] {
                let t1 = SimBreakdown::from_traffic(&grow, &c).total();
                proptest::prop_assert!(t1 > t0, "more traffic must cost more: {t1} vs {t0}");
            }
        }
    }

    #[test]
    fn peer_traffic_costs_setup_plus_bandwidth() {
        let c = cfg();
        let t = TrafficSnapshot { peer_copies: 2, peer_bytes: 1 << 20, ..Default::default() };
        let b = SimBreakdown::from_traffic(&t, &c);
        let expect = 2.0 * c.dma_setup + (1u64 << 20) as f64 / c.peer_bandwidth;
        assert!((b.peer - expect).abs() < 1e-12);
        assert!((b.total() - expect).abs() < 1e-12);
        // Peer transfers are communication, not kernel time.
        assert!((b.data_copy() - expect).abs() < 1e-12);
        assert_eq!(b.match_kernel(), 0.0);
    }

    #[test]
    fn breakdown_partition_matches_fig13_semantics() {
        let c = cfg();
        let t = TrafficSnapshot {
            dma_bytes: 1 << 20,
            dma_transactions: 1,
            zerocopy_bytes: 4096,
            zerocopy_transactions: 32,
            device_bytes: 1 << 16,
            gpu_ops: 10_000,
            kernel_launches: 1,
            ..Default::default()
        };
        let b = SimBreakdown::from_traffic(&t, &c);
        assert!((b.data_copy() + b.match_kernel() - b.total()).abs() < 1e-12);
    }
}
