//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the narrow slice of the `rand 0.8` API it actually uses: [`SmallRng`]
//! seeded with [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] /
//! [`Rng::gen_bool`] / [`Rng::gen`], and [`seq::SliceRandom`]'s shuffle and
//! choose. The generator is xoshiro256++ seeded through SplitMix64 —
//! deterministic for a given seed, which is all the workspace relies on
//! (nothing asserts agreement with upstream `rand`'s stream).

/// Core random-number source: everything is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Seeding interface (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] accepts. Generic over the output type
/// (rather than using an associated type) so the expected result type can
/// drive literal inference, as in `let x: u32 = rng.gen_range(0..100);`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128 + self.start as i128;
                v as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128 + lo as i128;
                v as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// The user-facing convenience methods, as in `rand 0.8`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and plenty for test workloads.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace never relies on StdRng's exact stream.
    pub type StdRng = SmallRng;
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and choosing, as in `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates, from the back.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// `rand::thread_rng` stand-in: seeded from the system time once per call
/// site invocation. Only for non-reproducible convenience paths.
pub fn thread_rng() -> rngs::SmallRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0xDEAD_BEEF);
    SeedableRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
