//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace uses: the
//! [`Strategy`] trait with `Value` associated type, integer-range / bool /
//! tuple / `collection::vec` strategies, [`ProptestConfig::with_cases`],
//! and the [`proptest!`] macro with `pattern in strategy` arguments plus
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! Differences from real proptest, by design:
//! * **No shrinking.** A failing case reports its case index and RNG seed
//!   (enough to replay deterministically) instead of a minimized input.
//! * **Deterministic by default.** Case `i` of test `t` always sees the
//!   same inputs, derived from `fxhash(t) ⊕ i` — CI failures reproduce
//!   locally without persistence files.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = SmallRng;

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// FNV-1a, used to derive a per-test seed from its name.
#[doc(hidden)]
pub fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A value generator. `Value` matches proptest's associated-type name so
/// `impl Strategy<Value = T>` return types compile unchanged.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `any::<T>()` support.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        use rand::Rng;
        rng.gen()
    }
}

macro_rules! any_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen()
            }
        }
    )*};
}
any_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        use rand::Rng;
        rng.gen()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            use rand::Rng;
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

#[doc(hidden)]
pub fn case_rng(test_seed: u64, case: u32) -> TestRng {
    // SplitMix-style mixing keeps neighbouring cases decorrelated.
    SmallRng::seed_from_u64(test_seed ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15))
}

/// Assert inside a proptest body (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr,) => {
        $crate::prop_assume!($cond)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr, $name:ident, ( $($pat:pat in $strat:expr),* $(,)? ), $body:block) => {{
        let config: $crate::ProptestConfig = $cfg;
        let test_seed = $crate::name_seed(concat!(module_path!(), "::", stringify!($name)));
        for __case in 0..config.cases {
            let mut __rng = $crate::case_rng(test_seed, __case);
            $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
            let __result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| $body));
            if let Err(payload) = __result {
                eprintln!(
                    "[proptest] {} failed at case {} of {} (test seed {:#x})",
                    stringify!($name),
                    __case,
                    config.cases,
                    test_seed,
                );
                std::panic::resume_unwind(payload);
            }
        }
    }};
}

/// The `proptest!` macro: expands each `fn name(pat in strategy, ...)`
/// item into a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($args:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_body!($cfg, $name, ( $($args)* ), $body);
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Any, ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic_per_case() {
        let strat = (0u32..100, collection::vec(0u8..10, 1..5));
        let mut a = crate::case_rng(1234, 7);
        let mut b = crate::case_rng(1234, 7);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        let mut c = crate::case_rng(1234, 8);
        // Different case index almost surely differs somewhere over many draws.
        let va: Vec<u32> = (0..32).map(|_| (0u32..1000).generate(&mut a)).collect();
        let vc: Vec<u32> = (0..32).map(|_| (0u32..1000).generate(&mut c)).collect();
        assert_ne!(va, vc);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u32..10, v in collection::vec(0u8..4, 2..6), b in any::<bool>()) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 4));
            let _ = b;
        }

        #[test]
        fn assume_skips_cases((a, b) in (0u8..10, 0u8..10)) {
            prop_assume!(a != b);
            prop_assert!(a != b);
        }
    }
}
