//! Offline stand-in for `rayon`.
//!
//! The build environment has no registry access, so the workspace vendors
//! the parallel-iterator subset it uses: `par_iter` / `par_iter_mut` /
//! `into_par_iter` plus the `map`, `map_init`, `fold`, `reduce`, `filter`,
//! `zip`, `for_each`, `sum`, and `collect` combinators.
//!
//! Unlike real rayon there is no work-stealing pool: a parallel iterator
//! materializes its items, splits them into one ordered chunk per available
//! core, and runs the chunks under [`std::thread::scope`]. Combinator
//! results preserve input order, and every reduction the workspace performs
//! is over integer counters, so chunking never changes observable results.

use std::thread;

/// Number of worker chunks for `n` items.
fn workers(n: usize) -> usize {
    if n <= 1 {
        return 1;
    }
    thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(n)
}

/// Split a vector into `k` contiguous chunks, preserving order.
fn split_into<T>(mut items: Vec<T>, k: usize) -> Vec<Vec<T>> {
    let n = items.len();
    if k <= 1 || n <= 1 {
        return vec![items];
    }
    let chunk = n.div_ceil(k);
    let mut out = Vec::with_capacity(k);
    while items.len() > chunk {
        let rest = items.split_off(chunk);
        out.push(std::mem::replace(&mut items, rest));
    }
    out.push(items);
    out
}

/// Run `f` over each chunk on its own scoped thread, in order.
fn run_chunks<T, R, F>(chunks: Vec<Vec<T>>, f: F) -> Vec<Vec<R>>
where
    T: Send,
    R: Send,
    F: Fn(Vec<T>) -> Vec<R> + Sync,
{
    if chunks.len() == 1 {
        return chunks.into_iter().map(&f).collect();
    }
    let f = &f;
    thread::scope(|s| {
        let handles: Vec<_> = chunks.into_iter().map(|c| s.spawn(move || f(c))).collect();
        handles.into_iter().map(|h| h.join().expect("parallel worker panicked")).collect()
    })
}

/// An eager "parallel iterator": items are materialized and heavy
/// combinators fan out across threads.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = self.items.len();
        let chunks = split_into(self.items, workers(n));
        let mapped = run_chunks(chunks, |c| c.into_iter().map(&f).collect());
        ParIter { items: mapped.into_iter().flatten().collect() }
    }

    /// Like rayon's `map_init`: one `init()` state per worker chunk.
    pub fn map_init<S, R, INIT, F>(self, init: INIT, f: F) -> ParIter<R>
    where
        R: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> R + Sync,
    {
        let n = self.items.len();
        let chunks = split_into(self.items, workers(n));
        let mapped = run_chunks(chunks, |c| {
            let mut state = init();
            c.into_iter().map(|x| f(&mut state, x)).collect()
        });
        ParIter { items: mapped.into_iter().flatten().collect() }
    }

    /// Like rayon's `fold`: each worker chunk folds into its own
    /// accumulator; the result is a parallel iterator over accumulators.
    pub fn fold<A, ID, F>(self, identity: ID, fold_op: F) -> ParIter<A>
    where
        A: Send,
        ID: Fn() -> A + Sync,
        F: Fn(A, T) -> A + Sync,
    {
        let n = self.items.len();
        let chunks = split_into(self.items, workers(n));
        let folded = run_chunks(chunks, |c| vec![c.into_iter().fold(identity(), &fold_op)]);
        ParIter { items: folded.into_iter().flatten().collect() }
    }

    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T,
        OP: Fn(T, T) -> T,
    {
        self.items.into_iter().fold(identity(), op)
    }

    pub fn filter<P>(mut self, predicate: P) -> ParIter<T>
    where
        P: Fn(&T) -> bool,
    {
        self.items.retain(|x| predicate(x));
        self
    }

    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter { items: self.items.into_iter().zip(other.items).collect() }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let n = self.items.len();
        let chunks = split_into(self.items, workers(n));
        run_chunks(chunks, |c| {
            c.into_iter().for_each(&f);
            Vec::<()>::new()
        });
    }

    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T>,
    {
        self.items.into_iter().sum()
    }

    pub fn collect<C>(self) -> C
    where
        C: FromIterator<T>,
    {
        self.items.into_iter().collect()
    }

    pub fn count(self) -> usize {
        self.items.len()
    }
}

/// `into_par_iter()` for owned collections and ranges.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter { items: self.into_iter().collect() }
    }
}

/// `par_iter()` for `&C`.
pub trait IntoParallelRefIterator<'data> {
    type Item: Send + 'data;
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
    <&'data C as IntoIterator>::Item: Send,
{
    type Item = <&'data C as IntoIterator>::Item;
    fn par_iter(&'data self) -> ParIter<Self::Item> {
        ParIter { items: self.into_iter().collect() }
    }
}

/// `par_iter_mut()` for `&mut C`.
pub trait IntoParallelRefMutIterator<'data> {
    type Item: Send + 'data;
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Item>;
}

impl<'data, C: ?Sized + 'data> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoIterator,
    <&'data mut C as IntoIterator>::Item: Send,
{
    type Item = <&'data mut C as IntoIterator>::Item;
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Item> {
        ParIter { items: self.into_iter().collect() }
    }
}

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter,
    };
}

/// `rayon::join` stand-in: runs both closures (in parallel when possible).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("join worker panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn fold_then_reduce_sums() {
        let v: Vec<u64> = (1..=1000).collect();
        let total = v.par_iter().fold(|| 0u64, |acc, &x| acc + x).reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 500_500);
    }

    #[test]
    fn map_init_keeps_per_chunk_state() {
        let v: Vec<u32> = (0..257).collect();
        let out: Vec<u32> = v
            .par_iter()
            .map_init(
                || 1u32,
                |s, &x| {
                    *s += 1;
                    x + (*s > 0) as u32
                },
            )
            .collect();
        assert_eq!(out, (1..258).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_and_zip_and_filter() {
        let mut v = vec![1u32; 8];
        let flags = [true, false, true, false, true, false, true, false];
        let n: usize = v
            .par_iter_mut()
            .zip(flags.par_iter())
            .filter(|(_, &f)| f)
            .map(|(x, _)| {
                *x += 1;
                1usize
            })
            .sum();
        assert_eq!(n, 4);
        assert_eq!(v, vec![2, 1, 2, 1, 2, 1, 2, 1]);
    }

    #[test]
    fn range_for_each_runs_every_item() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        (0..500usize).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }
}
