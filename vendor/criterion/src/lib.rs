//! Offline stand-in for `criterion`.
//!
//! Keeps the bench files compiling and runnable (`cargo bench`) without the
//! registry crate. Each benchmark runs a short calibrated loop and prints
//! mean wall time per iteration; there is no statistical analysis, HTML
//! report, or baseline comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How the measured routine's input is provisioned in `iter_batched`.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation; recorded and echoed, not analyzed.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier: `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function: S, parameter: P) -> Self {
        Self { id: format!("{}/{}", function.into(), parameter) }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// Timing context passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over `iters` back-to-back calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with a fresh `setup()` input per call; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        // One warm-up pass, then `sample_size` measured iterations.
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        b.iters = self.sample_size as u64;
        f(&mut b);
        let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
        let tp = match self.throughput {
            Some(Throughput::Elements(n)) => format!("  ({:.0} elem/s)", n as f64 / per_iter),
            Some(Throughput::Bytes(n)) => format!("  ({:.0} B/s)", n as f64 / per_iter),
            None => String::new(),
        };
        println!("{}/{:<40} {:>12.3} us/iter{}", self.name, id, per_iter * 1e6, tp);
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let id = id.to_string();
        self.run(&id, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.id.clone();
        self.run(&label, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, throughput: None, _parent: self }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        // warm-up (1) + measured (3)
        assert_eq!(calls, 4);
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
            b.iter_batched(|| x, |v| v * 2, BatchSize::LargeInput)
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("GCSM").id, "GCSM");
    }
}
