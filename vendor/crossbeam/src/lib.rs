//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel`'s bounded/unbounded MPSC channels over
//! `std::sync::mpsc`. Multi-producer cloning works as in crossbeam; the
//! receiver side is single-consumer (which is how the streaming subsystem
//! uses it — one sequencer, one worker).

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, TryRecvError};

    /// Error returned by [`Sender::send`] when the channel is disconnected.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(t) | TrySendError::Disconnected(t) => t,
            }
        }

        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }
    }

    enum Tx<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
            }
        }
    }

    /// The sending half; clone freely for multiple producers.
    pub struct Sender<T>(Tx<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocking send (blocks when a bounded channel is full).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Tx::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                Tx::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }

        /// Non-blocking send; `Full` only on bounded channels.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.0 {
                Tx::Bounded(s) => s.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
                Tx::Unbounded(s) => s.send(value).map_err(|e| TrySendError::Disconnected(e.0)),
            }
        }
    }

    /// The receiving half (single consumer).
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }

        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.0.try_iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// A channel with capacity `cap`; senders block (or `try_send` returns
    /// `Full`) when it is at capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Tx::Bounded(tx)), Receiver(rx))
    }

    /// A channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Tx::Unbounded(tx)), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn bounded_backpressure() {
        let (tx, rx) = channel::bounded::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        let err = tx.try_send(3).unwrap_err();
        assert!(err.is_full());
        assert_eq!(err.into_inner(), 3);
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn multi_producer_delivers_everything() {
        let (tx, rx) = channel::unbounded::<u32>();
        std::thread::scope(|s| {
            for p in 0..4u32 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 100 + i).unwrap();
                    }
                });
            }
        });
        drop(tx);
        let mut got: Vec<u32> = rx.into_iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..400).collect::<Vec<_>>());
    }

    #[test]
    fn disconnect_and_timeout() {
        let (tx, rx) = channel::bounded::<u32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
