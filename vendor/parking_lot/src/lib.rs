//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API: a
//! panicked holder does not poison the lock for everyone else (matching
//! parking_lot semantics, which the gpusim trace/page-cache code relies on
//! by calling `lock()` without unwrapping).

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards never surface poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1; // parking_lot semantics: no poisoning
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
