//! Offline stand-in for `rand_distr`: just [`Binomial`], which is all the
//! workspace uses (the merged walk estimator draws per-node binomials).
//!
//! Sampling strategy:
//! * `n ≤ 64` — count Bernoulli successes directly (exact);
//! * `n·min(p, 1−p) ≤ 32` — BINV inversion (exact);
//! * otherwise — normal approximation with continuity correction, clamped
//!   to `[0, n]` (the estimator consumes these counts statistically; the
//!   paper's guarantees are about expectations and variance, both of which
//!   the approximation preserves at this scale).

use rand::{Rng, RngCore};

/// Error for invalid distribution parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BinomialError;

impl std::fmt::Display for BinomialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid binomial parameters: p must be in [0, 1]")
    }
}

impl std::error::Error for BinomialError {}

/// Sampling interface, as in `rand_distr::Distribution`.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The binomial distribution `Binomial(n, p)`.
#[derive(Clone, Copy, Debug)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    pub fn new(n: u64, p: f64) -> Result<Self, BinomialError> {
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(BinomialError);
        }
        Ok(Self { n, p })
    }
}

impl Distribution<u64> for Binomial {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        let (n, p) = (self.n, self.p);
        if n == 0 || p == 0.0 {
            return 0;
        }
        if p == 1.0 {
            return n;
        }
        // Sample against q = min(p, 1-p) and flip at the end if needed.
        let flipped = p > 0.5;
        let q = if flipped { 1.0 - p } else { p };

        let successes = if n <= 64 {
            (0..n).filter(|_| rng.gen_bool(q)).count() as u64
        } else if n as f64 * q <= 32.0 {
            binv(n, q, rng)
        } else {
            normal_approx(n, q, rng)
        };
        if flipped {
            n - successes
        } else {
            successes
        }
    }
}

/// BINV: walk the CDF from k = 0. Exact; expected O(n·q) iterations.
fn binv<R: RngCore + ?Sized>(n: u64, q: f64, rng: &mut R) -> u64 {
    let s = q / (1.0 - q);
    let a = (n + 1) as f64 * s;
    let mut r = (1.0 - q).powi(n as i32); // P(X = 0); n·q ≤ 32 keeps this > 0
    let mut u: f64 = rng.gen::<f64>();
    let mut k = 0u64;
    while u > r {
        u -= r;
        k += 1;
        if k > n {
            // Float underflow guard: the tail mass was below representable
            // precision; clamp to the maximum.
            return n;
        }
        r *= a / k as f64 - s;
    }
    k
}

/// Normal approximation with continuity correction (for large n·q).
fn normal_approx<R: RngCore + ?Sized>(n: u64, q: f64, rng: &mut R) -> u64 {
    let mean = n as f64 * q;
    let sd = (mean * (1.0 - q)).sqrt();
    // Box–Muller.
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let x = (mean + sd * z + 0.5).floor();
    x.clamp(0.0, n as f64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_p() {
        assert!(Binomial::new(10, -0.1).is_err());
        assert!(Binomial::new(10, 1.1).is_err());
        assert!(Binomial::new(10, f64::NAN).is_err());
    }

    #[test]
    fn degenerate_cases() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(Binomial::new(0, 0.5).unwrap().sample(&mut rng), 0);
        assert_eq!(Binomial::new(9, 0.0).unwrap().sample(&mut rng), 0);
        assert_eq!(Binomial::new(9, 1.0).unwrap().sample(&mut rng), 9);
    }

    #[test]
    fn mean_is_close_across_regimes() {
        let mut rng = SmallRng::seed_from_u64(42);
        // (n, p) hitting the Bernoulli, BINV, and normal paths.
        for &(n, p) in &[(40u64, 0.3f64), (500, 0.01), (10_000, 0.4)] {
            let d = Binomial::new(n, p).unwrap();
            let trials = 4000;
            let sum: u64 = (0..trials).map(|_| d.sample(&mut rng)).sum();
            let mean = sum as f64 / trials as f64;
            let expect = n as f64 * p;
            let sd = (expect * (1.0 - p)).sqrt();
            // Mean of `trials` samples should sit well within 5 standard
            // errors of the expectation.
            assert!(
                (mean - expect).abs() < 5.0 * sd / (trials as f64).sqrt() + 1e-9,
                "n={n} p={p}: mean {mean} vs expected {expect}"
            );
            // Samples never exceed n.
            assert!((0..200).all(|_| d.sample(&mut rng) <= n));
        }
    }
}
