//! Integration tests for the random-walk estimator against the exact
//! access oracle on realistic (skewed) workloads — the machinery behind
//! Fig. 15 and Theorem 1.

use gcsm_datagen::rmat::{generate, RmatConfig};
use gcsm_freq::{estimate_merged, select_top_frequency, WalkParams};
use gcsm_graph::{DynamicGraph, EdgeUpdate};
use gcsm_matcher::{match_incremental, AccessCounter, DriverOptions, DynSource, RecordingSource};
use gcsm_pattern::{compile_incremental, queries, PlanOptions};
use rand::{rngs::SmallRng, Rng, SeedableRng};

fn skewed_workload(seed: u64) -> (DynamicGraph, Vec<EdgeUpdate>) {
    let g0 = generate(&RmatConfig::new(11, 10, seed));
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xabc);
    let mut g = DynamicGraph::from_csr(&g0);
    let mut batch = Vec::new();
    let mut used = std::collections::HashSet::new();
    while batch.len() < 64 {
        let a = rng.gen_range(0..g0.num_vertices() as u32);
        let b = rng.gen_range(0..g0.num_vertices() as u32);
        let (a, b) = (a.min(b), a.max(b));
        if a != b && !g0.has_edge(a, b) && used.insert((a, b)) {
            batch.push(EdgeUpdate::insert(a, b));
        }
    }
    let summary = g.apply_batch(&batch);
    (g, summary.applied)
}

fn oracle(g: &DynamicGraph, batch: &[EdgeUpdate], q: &gcsm_pattern::QueryGraph) -> AccessCounter {
    let src = DynSource::new(g);
    let counter = AccessCounter::new(g.num_vertices());
    let rec = RecordingSource::new(&src, &counter);
    match_incremental(&rec, q, batch, &DriverOptions::default());
    counter
}

/// The headline observation of the paper (Fig. 15a): access *traffic*
/// (bytes read) is concentrated — the top slice of traffic-ranked vertices
/// carries a disproportionate share (the paper reports 80% at top-5% on
/// its billion-edge graphs; at laptop scale with deliberately mild skew
/// the concentration is weaker but still strong relative to uniform).
#[test]
fn access_distribution_is_skewed() {
    let (g, batch) = skewed_workload(12);
    let q = queries::q2();
    let counter = oracle(&g, &batch, &q);
    let curve = counter.coverage_curve_weighted(&[0.05], |v| g.list_bytes(v) as u64);
    assert!(
        curve[0].1 > 0.20,
        "top-5% traffic-ranked vertices only carry {:.1}% of traffic",
        curve[0].1 * 100.0
    );
    // And far above the uniform baseline (5%).
    assert!(curve[0].1 > 3.0 * 0.05);
}

/// The estimator's cache selection covers most of the truly hot vertices
/// (Fig. 15b): coverage of the oracle's top-1% well above chance.
#[test]
fn estimator_covers_hot_set() {
    let (g, batch) = skewed_workload(21);
    let q = queries::triangle();
    let counter = oracle(&g, &batch, &q);
    let hot = counter.top_fraction(0.01);
    if hot.is_empty() {
        return; // degenerate batch; nothing to check
    }
    let plans = compile_incremental(&q, PlanOptions::default());
    let src = DynSource::new(&g);
    let est = estimate_merged(
        &src,
        &plans,
        &batch,
        g.max_degree_bound(),
        &WalkParams { walks: 200_000, seed: 9 },
    );
    // Generous budget: selection limited only by sampling quality.
    let sel = select_top_frequency(&est, usize::MAX, |v| g.list_bytes(v));
    let cov = sel.coverage_of(&hot);
    assert!(cov >= 0.9, "coverage of top-1% hot set only {:.2}", cov);
}

/// Under a byte budget the estimator still beats degree-based selection on
/// *access coverage* — the mechanism behind GCSM beating the Naive engine.
#[test]
fn frequency_selection_beats_degree_selection() {
    let (g, batch) = skewed_workload(33);
    let q = queries::q2();
    let counter = oracle(&g, &batch, &q);
    let ranked = counter.ranked();
    if ranked.len() < 20 {
        return;
    }
    let total_accesses: u64 = ranked.iter().map(|r| r.1).sum();

    let plans = compile_incremental(&q, PlanOptions::default());
    let src = DynSource::new(&g);
    let est = estimate_merged(
        &src,
        &plans,
        &batch,
        g.max_degree_bound(),
        &WalkParams { walks: 100_000, seed: 5 },
    );
    let budget = g.stats().adjacency_bytes / 16;
    let freq_sel = select_top_frequency(&est, budget, |v| g.list_bytes(v));
    let degree_sel = gcsm_freq::select_by_degree(
        (0..g.num_vertices() as u32).map(|v| (v, g.new_degree(v))).collect(),
        budget,
        |v| g.list_bytes(v),
    );

    let covered = |sel: &gcsm_freq::CacheSelection| -> u64 {
        ranked.iter().filter(|(v, _)| sel.contains(*v)).map(|(_, c)| *c).sum()
    };
    let freq_cov = covered(&freq_sel) as f64 / total_accesses as f64;
    let deg_cov = covered(&degree_sel) as f64 / total_accesses as f64;
    assert!(
        freq_cov > deg_cov,
        "frequency selection ({:.2}) must beat degree selection ({:.2})",
        freq_cov,
        deg_cov
    );
}
