//! Property tests for the DCSR cache and the k-hop machinery.

use gcsm_cache::{Dcsr, DeltaPlan};
use gcsm_datagen::er::gnm;
use gcsm_graph::{DynamicGraph, EdgeUpdate, UpdateOp, VertexId};
use proptest::prelude::*;

fn sealed_graph(seed: u64, reqs: &[(u8, u8, bool)]) -> DynamicGraph {
    let g0 = gnm(24, 70, seed);
    let mut g = DynamicGraph::from_csr(&g0);
    g.begin_batch();
    for &(a, b, ins) in reqs {
        g.apply(EdgeUpdate {
            src: a as u32,
            dst: b as u32,
            op: if ins { UpdateOp::Insert } else { UpdateOp::Delete },
        });
    }
    g.seal_batch();
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever subset of vertices is packed, the cached views must equal
    /// the live graph's views — for both N and N'.
    #[test]
    fn dcsr_views_always_match_graph(
        seed in 0u64..500,
        reqs in proptest::collection::vec((0u8..24, 0u8..24, any::<bool>()), 0..16),
        mask in 0u32..(1 << 24),
    ) {
        let g = sealed_graph(seed, &reqs);
        let selection: Vec<VertexId> =
            (0..g.num_vertices() as u32).filter(|&v| mask & (1 << v) != 0).collect();
        let d = Dcsr::pack(&g, &selection);
        prop_assert_eq!(d.len(), selection.len());
        for &v in &selection {
            let row = d.find(v).expect("packed vertex must be found");
            prop_assert_eq!(d.view(row, true).to_vec(), g.old_view(v).to_vec());
            prop_assert_eq!(d.view(row, false).to_vec(), g.new_view(v).to_vec());
        }
        // Vertices not selected never resolve.
        for v in 0..g.num_vertices() as u32 {
            if !selection.contains(&v) {
                prop_assert_eq!(d.find(v), None);
            }
        }
    }

    /// The delta plan partitions [resident ∪ selected] and its transfer set
    /// is exactly adds + refreshes.
    #[test]
    fn delta_plan_partitions(
        resident_mask in 0u32..(1 << 20),
        selected_mask in 0u32..(1 << 20),
        updated_mask in 0u32..(1 << 20),
    ) {
        let set = |m: u32| -> Vec<VertexId> {
            (0..20u32).filter(|&v| m & (1 << v) != 0).collect()
        };
        let (resident, selected, updated) =
            (set(resident_mask), set(selected_mask), set(updated_mask));
        let plan = DeltaPlan::diff(&resident, &selected, &updated);

        // keep ∪ refresh ∪ add = selected; drop = resident \ selected.
        let mut covered: Vec<VertexId> =
            plan.keep.iter().chain(&plan.refresh).chain(&plan.add).copied().collect();
        covered.sort_unstable();
        prop_assert_eq!(covered, selected.clone());
        let mut dropped = plan.drop.clone();
        dropped.sort_unstable();
        let expect_drop: Vec<VertexId> =
            resident.iter().copied().filter(|v| !selected.contains(v)).collect();
        prop_assert_eq!(dropped, expect_drop);
        // keep ∩ updated = ∅; refresh ⊆ updated ∩ resident.
        prop_assert!(plan.keep.iter().all(|v| !updated.contains(v)));
        prop_assert!(plan.refresh.iter().all(|v| updated.contains(v) && resident.contains(v)));
    }

    /// k-hop sets are monotone in k and always contain the batch endpoints.
    #[test]
    fn khop_monotone(
        seed in 0u64..200,
        reqs in proptest::collection::vec((0u8..24, 0u8..24, any::<bool>()), 1..10),
    ) {
        let g = sealed_graph(seed, &reqs);
        let batch = g.sealed_batch().applied.clone();
        prop_assume!(!batch.is_empty());
        let mut prev: Vec<VertexId> = Vec::new();
        for k in 0..4 {
            let cur = gcsm::khop::khop_vertices(&g, &batch, k);
            for u in &batch {
                prop_assert!(cur.binary_search(&u.src).is_ok());
                prop_assert!(cur.binary_search(&u.dst).is_ok());
            }
            prop_assert!(prev.iter().all(|v| cur.binary_search(v).is_ok()), "k-hop not monotone");
            prev = cur;
        }
    }
}
