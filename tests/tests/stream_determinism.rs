//! The streaming subsystem's hard requirement: replaying the same
//! sequenced update stream — any number of producers, any engine, ticks
//! included — produces exactly the batch boundaries and ΔM sequence of
//! the single-threaded serial reference ([`gcsm::stream::replay_serial`]).

use gcsm::stream::{
    replay_serial, Backpressure, SealPolicy, SequenceMode, StreamConfig, StreamEvent,
};
use gcsm::Pipeline;
use gcsm_bench::{make_engine, EngineKind, RunConfig, Workload};
use gcsm_datagen::Preset;
use gcsm_graph::EdgeUpdate;
use gcsm_pattern::{queries, QueryGraph};

/// A sequenced event stream: the workload's updates with a logical tick
/// every `tick_every` events (ticks consume sequence numbers too, so
/// tick-based seals replay exactly).
fn sequenced_events(tick_every: usize) -> (Workload, Vec<(u64, StreamEvent)>) {
    let rc = RunConfig { scale: 0.0625, ..Default::default() };
    let w = Workload::build(Preset::Amazon, rc.scale, 64, 4);
    let updates: Vec<EdgeUpdate> = w.batches.iter().flat_map(|b| b.iter().copied()).collect();
    let mut events = Vec::new();
    for (i, u) in updates.into_iter().enumerate() {
        events.push((events.len() as u64, StreamEvent::Update(u)));
        if (i + 1) % tick_every == 0 {
            events.push((events.len() as u64, StreamEvent::Tick));
        }
    }
    (w, events)
}

/// One serial-reference batch: the coalesced updates plus the ΔM a fresh
/// pipeline+engine produces for them.
fn serial_reference(
    w: &Workload,
    q: &QueryGraph,
    kind: EngineKind,
    events: &[(u64, StreamEvent)],
    policy: SealPolicy,
) -> Vec<(Vec<EdgeUpdate>, i64, u64, u64)> {
    let rc = RunConfig { scale: 0.0625, ..Default::default() };
    let mut pipeline = Pipeline::new(w.initial.clone(), q.clone());
    let mut engine = make_engine(kind, rc.engine_config(w));
    replay_serial(events, policy, |sealed| {
        let r = pipeline.process_batch(engine.as_mut(), &sealed.updates);
        (sealed.updates.clone(), r.matches, sealed.meta.first_seq, sealed.meta.last_seq)
    })
}

/// Run the concurrent session with `producers` threads striping the
/// sequenced events, and return the same shape as [`serial_reference`].
fn concurrent_run(
    w: &Workload,
    q: &QueryGraph,
    kind: EngineKind,
    events: &[(u64, StreamEvent)],
    policy: SealPolicy,
    producers: usize,
) -> Vec<(Vec<EdgeUpdate>, i64, u64, u64)> {
    let rc = RunConfig { scale: 0.0625, ..Default::default() };
    let pipeline = Pipeline::new(w.initial.clone(), q.clone());
    let base = pipeline.static_count(false);
    let session = gcsm::stream::spawn_pipeline(
        pipeline,
        make_engine(kind, rc.engine_config(w)),
        base,
        StreamConfig {
            seal_policy: policy,
            capacity: 256,
            backpressure: Backpressure::Block,
            mode: SequenceMode::Explicit,
        },
    );
    std::thread::scope(|s| {
        for p in 0..producers {
            let producer = session.producer();
            s.spawn(move || {
                let mut i = p;
                while i < events.len() {
                    let (seq, ev) = events[i];
                    match ev {
                        StreamEvent::Update(u) => producer.ingest_at(seq, u),
                        StreamEvent::Tick => producer.tick_at(seq),
                    };
                    i += producers;
                }
            });
        }
    });
    let (report, _) = session.finish();
    report
        .batches
        .into_iter()
        .map(|b| {
            let m = b.result.stream.expect("session batches carry stream meta");
            (b.updates, b.result.matches, m.first_seq, m.last_seq)
        })
        .collect()
}

/// The acceptance grid: N ∈ {1, 3, 5} producers × 2 engines × 2 seal
/// policies, all byte-identical to the serial reference — same number of
/// batches, same update sequence, same ΔM, same sequence spans.
#[test]
fn producer_count_never_changes_batches() {
    let (w, events) = sequenced_events(96);
    let q = queries::triangle();
    for kind in [EngineKind::ZeroCopy, EngineKind::Gcsm] {
        for policy in [SealPolicy::Size(48), SealPolicy::SizeOrTick(64)] {
            let reference = serial_reference(&w, &q, kind, &events, policy);
            assert!(reference.len() > 1, "degenerate reference for {policy:?}");
            for producers in [1usize, 3, 5] {
                let got = concurrent_run(&w, &q, kind, &events, policy, producers);
                assert_eq!(
                    got,
                    reference,
                    "{} with {producers} producers diverged under {policy:?}",
                    kind.name(),
                );
            }
        }
    }
}

/// Tick-driven boundaries are part of the determinism contract: with
/// `OnTick` the batch spans are delimited exactly at the tick sequence
/// numbers regardless of producer count.
#[test]
fn tick_boundaries_replay_exactly() {
    let (w, events) = sequenced_events(40);
    let q = queries::q1();
    let reference = serial_reference(&w, &q, EngineKind::Cpu, &events, SealPolicy::OnTick);
    assert!(reference.len() > 2);
    let got = concurrent_run(&w, &q, EngineKind::Cpu, &events, SealPolicy::OnTick, 4);
    assert_eq!(got, reference);
}

/// Arrival mode is the documented *non*-deterministic convenience mode;
/// it must still keep the ledger consistent even though boundaries may
/// differ between runs.
#[test]
fn arrival_mode_keeps_ledger_consistent() {
    let rc = RunConfig { scale: 0.0625, ..Default::default() };
    let w = Workload::build(Preset::Amazon, rc.scale, 64, 2);
    let updates: Vec<EdgeUpdate> = w.batches.iter().flat_map(|b| b.iter().copied()).collect();
    let pipeline = Pipeline::new(w.initial.clone(), queries::triangle());
    let base = pipeline.static_count(false);
    let session = gcsm::stream::spawn_pipeline(
        pipeline,
        make_engine(EngineKind::ZeroCopy, rc.engine_config(&w)),
        base,
        StreamConfig {
            seal_policy: SealPolicy::Size(32),
            mode: SequenceMode::Arrival,
            ..Default::default()
        },
    );
    std::thread::scope(|s| {
        for p in 0..3 {
            let producer = session.producer();
            let updates = &updates;
            s.spawn(move || {
                let mut i = p;
                while i < updates.len() {
                    producer.ingest(updates[i]);
                    i += 3;
                }
            });
        }
    });
    let (report, processor) = session.finish();
    let final_total = report.batches.last().map(|b| b.running_total).unwrap_or(base);
    assert_eq!(final_total, processor.into_pipeline().static_count(false));
}
