//! Model-based testing of the dynamic graph store: a `HashSet<(u,v)>` is
//! the reference model; the DynamicGraph must agree with it through
//! arbitrary multi-batch update sequences, in both views, at every step.

use gcsm_graph::{CsrGraph, DynamicGraph, EdgeUpdate, UpdateOp};
use proptest::prelude::*;
use std::collections::HashSet;

type Model = HashSet<(u32, u32)>;

fn canon(a: u32, b: u32) -> (u32, u32) {
    (a.min(b), a.max(b))
}

fn model_apply(model: &mut Model, u: &EdgeUpdate) -> bool {
    if u.src == u.dst {
        return false;
    }
    let e = canon(u.src, u.dst);
    match u.op {
        UpdateOp::Insert => model.insert(e),
        UpdateOp::Delete => model.remove(&e),
    }
}

fn assert_graph_matches_model(g: &DynamicGraph, model: &Model, old_model: &Model) {
    // New views == current model.
    let mut got: Vec<(u32, u32)> = Vec::new();
    for v in 0..g.num_vertices() as u32 {
        for w in g.new_view(v).iter_sorted() {
            if v < w {
                got.push((v, w));
            }
        }
    }
    let mut want: Vec<(u32, u32)> = model.iter().copied().collect();
    got.sort_unstable();
    want.sort_unstable();
    assert_eq!(got, want, "new view diverges from model");
    assert_eq!(g.num_edges(), model.len());

    // Old views == pre-batch model.
    let mut got_old: Vec<(u32, u32)> = Vec::new();
    for v in 0..g.num_vertices() as u32 {
        for w in g.old_view(v).iter_sorted() {
            if v < w {
                got_old.push((v, w));
            }
        }
    }
    let mut want_old: Vec<(u32, u32)> = old_model.iter().copied().collect();
    got_old.sort_unstable();
    want_old.sort_unstable();
    assert_eq!(got_old, want_old, "old view diverges from pre-batch model");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dynamic_graph_agrees_with_set_model(
        initial in proptest::collection::vec((0u32..20, 0u32..20), 0..40),
        batches in proptest::collection::vec(
            proptest::collection::vec((0u32..24, 0u32..24, any::<bool>()), 0..12),
            1..5,
        ),
    ) {
        // Seed.
        let mut model: Model = initial
            .iter()
            .filter(|(a, b)| a != b)
            .map(|&(a, b)| canon(a, b))
            .collect();
        let edges: Vec<(u32, u32)> = model.iter().copied().collect();
        let mut g = DynamicGraph::from_csr(&CsrGraph::from_edges(20, &edges));

        for batch in &batches {
            let old_model = model.clone();
            g.begin_batch();
            for &(a, b, ins) in batch {
                let u = EdgeUpdate {
                    src: a,
                    dst: b,
                    op: if ins { UpdateOp::Insert } else { UpdateOp::Delete },
                };
                let model_changed = model_apply(&mut model, &u);
                let graph_changed = g.apply(u);
                prop_assert_eq!(model_changed, graph_changed, "apply outcome diverges");
            }
            let summary = g.seal_batch();
            prop_assert_eq!(summary.len() + summary.skipped, batch.len());
            assert_graph_matches_model(&g, &model, &old_model);
            g.reorganize();
            // After reorganize, old == new == model.
            assert_graph_matches_model(&g, &model, &model);
        }
    }

    /// Degree accounting and the max-degree bound stay consistent.
    #[test]
    fn degree_bound_is_an_upper_bound(
        ops in proptest::collection::vec((0u32..16, 0u32..16, any::<bool>()), 1..60),
    ) {
        let mut g = DynamicGraph::with_vertices(16);
        g.begin_batch();
        for &(a, b, ins) in &ops {
            g.apply(EdgeUpdate {
                src: a,
                dst: b,
                op: if ins { UpdateOp::Insert } else { UpdateOp::Delete },
            });
        }
        g.seal_batch();
        let bound = g.max_degree_bound();
        for v in 0..g.num_vertices() as u32 {
            prop_assert!(g.new_degree(v) <= bound);
            prop_assert!(g.new_view(v).count() <= bound);
        }
        g.reorganize();
        prop_assert!(g.stats().max_degree <= g.max_degree_bound());
    }
}
