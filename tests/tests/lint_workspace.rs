//! Tier-1 gate: `gcsm-lint` must report zero findings over the workspace.
//! Any new violation either gets fixed or carries an inline
//! `// lint:allow(rule-id) -- reason` with a real justification.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root =
        Path::new(env!("CARGO_MANIFEST_DIR")).parent().expect("workspace root").to_path_buf();
    let findings = gcsm_lint::run(&root).expect("walk workspace");
    assert!(
        findings.is_empty(),
        "gcsm-lint found {} violation(s):\n{}",
        findings.len(),
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn rule_catalogue_is_stable() {
    // The documented rule set (DESIGN.md §9) — extend deliberately, not by
    // accident.
    assert_eq!(
        gcsm_lint::RULE_IDS,
        [
            "unsafe-doc",
            "hot-path-panic",
            "relaxed-justify",
            "lock-order",
            "no-debug-macros",
            "no-raw-clock",
            "vendor-pin"
        ]
    );
}
