//! Acceptance tests for the cross-batch resident DCSR cache (ISSUE 4):
//! on a stable-hot-set ER stream, delta shipping must cut per-batch PCIe
//! DMA by at least 40 % after warm-up without changing a single count,
//! and eviction must keep the resident footprint under the device budget.

use gcsm::{EngineConfig, GcsmEngine, Pipeline};
use gcsm_cache::Dcsr;
use gcsm_datagen::er::gnm;
use gcsm_datagen::temporal::{temporal_stream, TemporalConfig};
use gcsm_graph::EdgeUpdate;
use gcsm_pattern::queries;

/// The repro experiment's workload, shrunk for test time: dense ER so the
/// kite's walks read common-neighbor rows (the keepable ones), updates
/// pinned to a never-drifting focus region.
fn workload() -> (gcsm_graph::CsrGraph, Vec<Vec<EdgeUpdate>>) {
    let n = 384usize;
    let initial = gnm(n, 32 * n, 42);
    let stream = temporal_stream(
        &initial,
        &TemporalConfig {
            updates: 192 * 5,
            locality: 1.0,
            region: 24,
            drift_every: usize::MAX,
            seed: 9,
        },
    );
    let batches = stream.chunks(192).map(<[EdgeUpdate]>::to_vec).collect();
    (initial, batches)
}

fn run(
    initial: &gcsm_graph::CsrGraph,
    batches: &[Vec<EdgeUpdate>],
    cfg: EngineConfig,
) -> (Vec<u64>, Vec<i64>) {
    let mut engine = GcsmEngine::new(cfg);
    let mut pipeline = Pipeline::new(initial.clone(), queries::fig1_kite());
    let mut dma = Vec::new();
    let mut dm = Vec::new();
    for b in batches {
        let r = pipeline.process_batch(&mut engine, b);
        dma.push(r.traffic.dma_bytes);
        dm.push(r.matches);
    }
    (dma, dm)
}

#[test]
fn delta_shipping_cuts_warm_dma_by_40_percent() {
    let (initial, batches) = workload();
    let budget = initial.adjacency_bytes() * 2;
    let base =
        EngineConfig { walks_override: Some(20_000), ..EngineConfig::with_cache_budget(budget) };
    let delta = EngineConfig { delta_cache: true, ..base.clone() };

    let (full_dma, full_dm) = run(&initial, &batches, base);
    let (delta_dma, delta_dm) = run(&initial, &batches, delta);

    assert_eq!(delta_dm, full_dm, "delta shipping changed match counts");

    // Warm-up excluded: batch 0 populates the resident cache.
    let full_warm: u64 = full_dma[1..].iter().sum();
    let delta_warm: u64 = delta_dma[1..].iter().sum();
    let cut = 1.0 - delta_warm as f64 / full_warm as f64;
    assert!(
        cut >= 0.40,
        "warm DMA cut {:.1}% below the 40% acceptance bar ({} vs {} bytes)",
        cut * 100.0,
        delta_warm,
        full_warm
    );
}

#[test]
fn eviction_keeps_resident_footprint_under_budget_without_changing_counts() {
    let (initial, batches) = workload();
    // A budget too small for the full hot selection: the planner must
    // evict instead of overflowing the device.
    let tight = initial.adjacency_bytes() / 8;
    let base =
        EngineConfig { walks_override: Some(5_000), ..EngineConfig::with_cache_budget(tight) };
    let delta_cfg = EngineConfig { delta_cache: true, ..base.clone() };

    let (_, full_dm) = run(&initial, &batches, base);

    let mut engine = GcsmEngine::new(delta_cfg);
    let mut pipeline = Pipeline::new(initial.clone(), queries::fig1_kite());
    for (i, b) in batches.iter().enumerate() {
        let r = pipeline.process_batch(&mut engine, b);
        assert_eq!(r.matches, full_dm[i], "eviction changed batch {i} count");
        let footprint: usize = engine
            .resident()
            .iter()
            .map(|&v| pipeline.graph().list_bytes(v) + Dcsr::ROW_META_BYTES)
            .sum();
        assert!(
            footprint <= tight,
            "resident footprint {footprint} exceeds device budget {tight} after batch {i}"
        );
    }
}

#[test]
fn overlap_reduces_modeled_reorganize_exposure() {
    let (initial, batches) = workload();
    let budget = initial.adjacency_bytes() * 2;
    let cfg =
        EngineConfig { walks_override: Some(5_000), ..EngineConfig::with_cache_budget(budget) };

    let mut totals = [0.0f64; 2];
    let mut counts = [0i64; 2];
    for (i, overlap) in [false, true].into_iter().enumerate() {
        let mut engine = GcsmEngine::new(cfg.clone());
        let mut pipeline = Pipeline::new(initial.clone(), queries::fig1_kite());
        pipeline.set_overlap(overlap);
        for b in &batches {
            let r = pipeline.process_batch(&mut engine, b);
            totals[i] += r.phases.reorganize;
            counts[i] += r.matches;
        }
        totals[i] += pipeline.flush();
    }
    assert_eq!(counts[0], counts[1], "overlap changed counts");
    // Overlap charges only the exposed remainder of each deferred merge;
    // it can hide cost but never invent extra.
    assert!(
        totals[1] <= totals[0] + 1e-12,
        "overlapped reorganize exposure {} exceeds serial {}",
        totals[1],
        totals[0]
    );
}
