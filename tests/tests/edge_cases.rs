//! Edge cases and failure-injection across the stack.

use gcsm::prelude::*;
use gcsm_graph::{CsrGraph, DynamicGraph, EdgeUpdate};
use gcsm_matcher::{match_incremental, DriverOptions, DynSource};
use gcsm_pattern::{queries, QueryGraph};

fn engines(cfg: &EngineConfig) -> Vec<Box<dyn Engine>> {
    vec![
        Box::new(GcsmEngine::new(cfg.clone())),
        Box::new(ZeroCopyEngine::new(cfg.clone())),
        Box::new(UnifiedMemEngine::new(cfg.clone())),
        Box::new(VsgmEngine::new(cfg.clone())),
        Box::new(NaiveDegreeEngine::new(cfg.clone())),
        Box::new(CpuWcojEngine::new(cfg.clone())),
        Box::new(RapidFlowEngine::new(cfg.clone())),
    ]
}

/// An empty batch is a clean no-op for every engine.
#[test]
fn empty_batch_is_noop() {
    let g0 = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (0, 2)]);
    for mut e in engines(&EngineConfig::default()) {
        let mut p = Pipeline::new(g0.clone(), queries::triangle());
        let r = p.process_batch(e.as_mut(), &[]);
        assert_eq!(r.matches, 0, "{}", e.name());
        assert_eq!(r.traffic.zerocopy_bytes, 0, "{}", e.name());
    }
}

/// A batch made entirely of no-ops (duplicate inserts, missing deletes,
/// self loops) yields zero delta.
#[test]
fn all_noop_batch() {
    let g0 = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2)]);
    let batch = vec![
        EdgeUpdate::insert(0, 1), // exists
        EdgeUpdate::delete(0, 3), // absent
        EdgeUpdate::insert(2, 2), // self loop
    ];
    for mut e in engines(&EngineConfig::default()) {
        let mut p = Pipeline::new(g0.clone(), queries::triangle());
        let r = p.process_batch(e.as_mut(), &batch);
        assert_eq!(r.matches, 0, "{}", e.name());
    }
}

/// Deleting every edge of the only triangle exactly cancels its count.
#[test]
fn full_teardown() {
    let g0 = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
    let batch = vec![EdgeUpdate::delete(0, 1), EdgeUpdate::delete(1, 2), EdgeUpdate::delete(0, 2)];
    for mut e in engines(&EngineConfig::default()) {
        let mut p = Pipeline::new(g0.clone(), queries::triangle());
        let r = p.process_batch(e.as_mut(), &batch);
        assert_eq!(r.matches, -6, "{}", e.name());
        assert_eq!(p.graph().num_edges(), 0);
    }
}

/// Building a whole pattern from scratch in one batch on an empty graph.
#[test]
fn build_from_empty_graph() {
    let g0 = CsrGraph::from_edges(4, &[]);
    let q = queries::fig1_kite();
    let batch: Vec<EdgeUpdate> =
        q.edges().iter().map(|&(a, b)| EdgeUpdate::insert(a as u32, b as u32)).collect();
    for mut e in engines(&EngineConfig::default()) {
        let mut p = Pipeline::new(g0.clone(), q.clone());
        let r = p.process_batch(e.as_mut(), &batch);
        assert_eq!(r.matches, 4, "{} (kite |Aut| = 4)", e.name());
    }
}

/// Updates that introduce brand-new vertices mid-stream.
#[test]
fn growing_vertex_set() {
    let g0 = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
    let batch = vec![EdgeUpdate::insert(2, 7), EdgeUpdate::insert(1, 7), EdgeUpdate::insert(7, 9)];
    for mut e in engines(&EngineConfig::default()) {
        let mut p = Pipeline::new(g0.clone(), queries::triangle());
        let r = p.process_batch(e.as_mut(), &batch);
        assert_eq!(r.matches, 6, "{} (new triangle 1-2-7)", e.name());
        assert_eq!(p.graph().num_vertices(), 10);
    }
}

/// A two-vertex (single-edge) pattern: the seed is the whole match.
#[test]
fn edge_pattern() {
    let g0 = CsrGraph::from_edges(4, &[(0, 1)]);
    let q = QueryGraph::new("edge", 2, &[(0, 1)]);
    let mut g = DynamicGraph::from_csr(&g0);
    let s = g.apply_batch(&[EdgeUpdate::insert(2, 3), EdgeUpdate::delete(0, 1)]);
    let src = DynSource::new(&g);
    let r = match_incremental(&src, &q, &s.applied, &DriverOptions::default());
    assert_eq!(r.matches, 0); // +2 embeddings − 2 embeddings
}

/// Batch larger than the graph (mass insertion).
#[test]
fn mass_insertion() {
    let g0 = CsrGraph::from_edges(8, &[]);
    let mut batch = Vec::new();
    for a in 0..8u32 {
        for b in (a + 1)..8 {
            batch.push(EdgeUpdate::insert(a, b));
        }
    }
    // K8 triangle embeddings: C(8,3)·6 = 336.
    for mut e in engines(&EngineConfig::default()) {
        let mut p = Pipeline::new(g0.clone(), queries::triangle());
        let r = p.process_batch(e.as_mut(), &batch);
        assert_eq!(r.matches, 336, "{}", e.name());
    }
}

/// Insert and delete interleaved on the same edges across batches.
#[test]
fn oscillating_edge() {
    let g0 = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
    let mut e = GcsmEngine::new(EngineConfig::default());
    let mut p = Pipeline::new(g0, queries::triangle());
    let mut total = 0i64;
    for _ in 0..4 {
        total += p.process_batch(&mut e, &[EdgeUpdate::insert(0, 2)]).matches;
        total += p.process_batch(&mut e, &[EdgeUpdate::delete(0, 2)]).matches;
    }
    assert_eq!(total, 0);
}

/// Isolated vertices never break anything (walks, caches, k-hop).
#[test]
fn isolated_vertices_everywhere() {
    let g0 = CsrGraph::from_edges(50, &[(10, 11), (11, 12), (10, 12)]);
    for mut e in engines(&EngineConfig::default()) {
        let mut p = Pipeline::new(g0.clone(), queries::triangle());
        let r = p.process_batch(e.as_mut(), &[EdgeUpdate::insert(12, 13)]);
        assert_eq!(r.matches, 0, "{}", e.name());
    }
}
