//! Sharded-execution equivalence: the acceptance anchor for the
//! multi-device subsystem. Splitting a stream across N shards changes
//! *where* each update's matching runs and *what* crosses the simulated
//! peer links — it must not change a single count. Every test here pits
//! `ShardedPipeline` against the single-device `Pipeline` on the same
//! stream and demands batch-for-batch ΔM equality plus final-graph
//! agreement, across shard counts, partition policies, and workloads.

use gcsm::{shard_config, EngineConfig, Pipeline, ShardedPipeline};
use gcsm_bench::{make_engine, EngineKind};
use gcsm_datagen::{er::gnm, rmat, StreamConfig, UpdateStream};
use gcsm_graph::{CsrGraph, EdgeUpdate, UpdateOp};
use gcsm_pattern::{queries, QueryGraph};
use gcsm_shard::PartitionPolicy;
use proptest::prelude::*;

const POLICIES: [PartitionPolicy; 3] =
    [PartitionPolicy::HashSrc, PartitionPolicy::Range, PartitionPolicy::DegreeBalanced];

/// Per-batch ΔM from the single-device pipeline.
fn baseline(
    kind: EngineKind,
    initial: &CsrGraph,
    q: &QueryGraph,
    batches: &[&[EdgeUpdate]],
) -> Vec<i64> {
    let budget = initial.adjacency_bytes().max(1 << 16);
    let mut engine = make_engine(kind, EngineConfig::with_cache_budget(budget));
    let mut p = Pipeline::new(initial.clone(), q.clone());
    batches.iter().map(|b| p.process_batch(engine.as_mut(), b).matches).collect()
}

/// Per-batch ΔM from the sharded pipeline, plus its final static recount.
fn sharded(
    kind: EngineKind,
    initial: &CsrGraph,
    q: &QueryGraph,
    batches: &[&[EdgeUpdate]],
    policy: PartitionPolicy,
    shards: usize,
) -> (Vec<i64>, i64) {
    let budget = initial.adjacency_bytes().max(1 << 16);
    let cfg = shard_config(&EngineConfig::with_cache_budget(budget), shards);
    let engines = (0..shards).map(|_| make_engine(kind, cfg.clone())).collect();
    let mut p = ShardedPipeline::new(initial.clone(), q.clone(), policy, engines);
    let deltas = batches.iter().map(|b| p.process_batch(b).merged.matches).collect();
    (deltas, p.static_count(false))
}

/// Fixed-seed acceptance over the paper's update-stream recipe: ER and
/// skewed RMAT, shards ∈ {1, 2, 4}, all three partition policies.
#[test]
fn sharded_matches_single_device_on_er_and_rmat() {
    let workloads: [(&str, CsrGraph); 2] =
        [("er", gnm(512, 4096, 11)), ("rmat", rmat::generate(&rmat::RmatConfig::new(9, 12, 5)))];
    for (name, base) in workloads {
        let stream = UpdateStream::generate(&base, StreamConfig::Fraction(0.3), 23);
        let batches: Vec<&[EdgeUpdate]> = stream.updates.chunks(160).collect();
        let q = queries::triangle();
        let reference = baseline(EngineKind::Gcsm, &stream.initial, &q, &batches);
        let total: i64 = reference.iter().sum();
        let initial_static = Pipeline::new(stream.initial.clone(), q.clone()).static_count(false);
        for shards in [1usize, 2, 4] {
            for policy in POLICIES {
                let (deltas, recount) =
                    sharded(EngineKind::Gcsm, &stream.initial, &q, &batches, policy, shards);
                assert_eq!(
                    deltas,
                    reference,
                    "{name}: ΔM sequence diverges at {shards} shards / {}",
                    policy.name()
                );
                // The running ledger must agree with a from-scratch recount
                // of the final sealed graph.
                assert_eq!(
                    initial_static + total,
                    recount,
                    "{name}: ledger drifted from recount at {shards} shards / {}",
                    policy.name()
                );
            }
        }
    }
}

/// Deeper query + a second engine family: the routing layer sits above
/// the engines, so equivalence must hold regardless of how a shard reads
/// the graph.
#[test]
fn sharded_matches_single_device_zerocopy_kite() {
    let base = rmat::generate(&rmat::RmatConfig::new(8, 10, 3));
    let stream = UpdateStream::generate(&base, StreamConfig::Count(600), 17);
    let batches: Vec<&[EdgeUpdate]> = stream.updates.chunks(120).collect();
    let q = queries::fig1_kite();
    let reference = baseline(EngineKind::ZeroCopy, &stream.initial, &q, &batches);
    for shards in [2usize, 4] {
        let (deltas, _) = sharded(
            EngineKind::ZeroCopy,
            &stream.initial,
            &q,
            &batches,
            PartitionPolicy::HashSrc,
            shards,
        );
        assert_eq!(deltas, reference, "kite ΔM diverges at {shards} shards");
    }
}

/// One generated case: initial-graph seed, raw update requests (endpoint
/// pair + insert flag), batch size, shard count, policy selector.
type Case = (u64, Vec<(u8, u8, bool)>, usize, usize, u8);

fn case() -> impl Strategy<Value = Case> {
    (
        0u64..500,
        proptest::collection::vec((0u8..48, 0u8..48, any::<bool>()), 10..120),
        4usize..33,
        2usize..6,
        0u8..3,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary streams (duplicates, no-op deletes, self-loop-free),
    /// arbitrary shard counts and policies: per-batch ΔM is always the
    /// single-device sequence, and peer traffic is exactly the routed
    /// cut-update bill.
    #[test]
    fn sharded_delta_m_equals_single_device((seed, reqs, batch, shards, psel) in case()) {
        let initial = gnm(48, 160, seed);
        let updates: Vec<EdgeUpdate> = reqs
            .iter()
            .filter(|&&(a, b, _)| a != b)
            .map(|&(a, b, ins)| EdgeUpdate {
                src: a as u32,
                dst: b as u32,
                op: if ins { UpdateOp::Insert } else { UpdateOp::Delete },
            })
            .collect();
        prop_assume!(!updates.is_empty());
        let batches: Vec<&[EdgeUpdate]> = updates.chunks(batch).collect();
        let q = queries::triangle();
        let policy = POLICIES[psel as usize];
        let reference = baseline(EngineKind::Gcsm, &initial, &q, &batches);

        let cfg = shard_config(&EngineConfig::with_cache_budget(1 << 20), shards);
        let engines = (0..shards).map(|_| make_engine(EngineKind::Gcsm, cfg.clone())).collect();
        let mut p = ShardedPipeline::new(initial.clone(), q.clone(), policy, engines);
        // A mirror graph replays the same ingest so the test can see the
        // coalesced `applied` set the router actually consumed.
        let mut mirror = gcsm_graph::DynamicGraph::from_csr(&initial);
        for (i, b) in batches.iter().enumerate() {
            let r = p.process_batch(b);
            prop_assert_eq!(r.merged.matches, reference[i]);
            mirror.begin_batch();
            for &u in *b {
                mirror.apply(u);
            }
            let routed = gcsm_shard::route(&mirror.seal_batch().applied, p.partitioning());
            mirror.reorganize();
            // Peer bytes follow the router's cut accounting exactly.
            prop_assert_eq!(r.peer_bytes, routed.peer_bytes());
            prop_assert_eq!(r.cut_updates, routed.cut_updates);
        }
    }
}
