//! Behavioural assertions on the engines' *performance model* — the
//! directional claims every figure rests on, checked end-to-end on a
//! realistic clustered workload.

use gcsm::prelude::*;
use gcsm_datagen::social::{generate_social, SocialConfig};
use gcsm_datagen::{StreamConfig, UpdateStream};
use gcsm_graph::{CsrGraph, EdgeUpdate};
use gcsm_pattern::queries;

fn workload() -> (CsrGraph, Vec<Vec<EdgeUpdate>>) {
    let g = generate_social(&SocialConfig::new(14, 6, 0xBEEF));
    let stream = UpdateStream::generate(&g, StreamConfig::Fraction(0.05), 77);
    let batches = stream.batches(256).take(2).map(<[EdgeUpdate]>::to_vec).collect();
    (stream.initial, batches)
}

fn cfg(initial: &CsrGraph) -> EngineConfig {
    EngineConfig::with_cache_budget(initial.adjacency_bytes() / 8)
}

fn run<E: Engine>(
    mut engine: E,
    initial: &CsrGraph,
    batches: &[Vec<EdgeUpdate>],
) -> Vec<BatchResult> {
    let mut p = Pipeline::new(initial.clone(), queries::q2());
    batches.iter().map(|b| p.process_batch(&mut engine, b)).collect()
}

/// UM must be far slower than ZP (the paper: 69–210×) and both must agree
/// on counts.
#[test]
fn um_is_far_slower_than_zp() {
    let (initial, batches) = workload();
    let c = cfg(&initial);
    let zp = run(ZeroCopyEngine::new(c.clone()), &initial, &batches);
    let um = run(UnifiedMemEngine::new(c.clone()), &initial, &batches);
    let (zp_ms, um_ms): (f64, f64) =
        (zp.iter().map(BatchResult::total_ms).sum(), um.iter().map(BatchResult::total_ms).sum());
    assert_eq!(
        zp.iter().map(|r| r.matches).sum::<i64>(),
        um.iter().map(|r| r.matches).sum::<i64>()
    );
    assert!(um_ms > 10.0 * zp_ms, "UM/ZP = {:.1}", um_ms / zp_ms);
}

/// GCSM must beat ZP in simulated time *and* in bytes read from the CPU.
#[test]
fn gcsm_beats_zero_copy() {
    let (initial, batches) = workload();
    let c = cfg(&initial);
    let zp = run(ZeroCopyEngine::new(c.clone()), &initial, &batches);
    let gc = run(GcsmEngine::new(c.clone()), &initial, &batches);
    let zp_bytes: u64 = zp.iter().map(|r| r.cpu_access_bytes).sum();
    let gc_bytes: u64 = gc.iter().map(|r| r.cpu_access_bytes).sum();
    assert!(gc_bytes * 2 < zp_bytes, "traffic: {} vs {}", gc_bytes, zp_bytes);
    let zp_ms: f64 = zp.iter().map(BatchResult::total_ms).sum();
    let gc_ms: f64 = gc.iter().map(BatchResult::total_ms).sum();
    assert!(gc_ms < zp_ms, "time: {:.2} vs {:.2}", gc_ms, zp_ms);
}

/// VSGM's kernel never falls back to the CPU (k-hop coverage), and its
/// data-copy phase dominates GCSM's.
#[test]
fn vsgm_copies_more_but_never_misses() {
    let (initial, batches) = workload();
    let c = cfg(&initial);
    let vs = run(VsgmEngine::new(c.clone()), &initial, &batches);
    let gc = run(GcsmEngine::new(c.clone()), &initial, &batches);
    for r in &vs {
        assert_eq!(r.traffic.cache_misses, 0, "VSGM must cover every access");
        assert_eq!(r.traffic.zerocopy_bytes, 0);
    }
    let vs_copied: f64 = vs.iter().map(|r| r.cached_bytes as f64).sum();
    let gc_copied: f64 = gc.iter().map(|r| r.cached_bytes as f64).sum();
    assert!(vs_copied > 1.5 * gc_copied, "VSGM ships {} vs GCSM {}", vs_copied, gc_copied);
}

/// The GCSM phase breakdown is sane: FE and DC are real but do not dominate
/// (Table II's regime) on a match-heavy query.
#[test]
fn gcsm_overheads_are_minor_fractions() {
    let (initial, batches) = workload();
    let gc = run(GcsmEngine::new(cfg(&initial)), &initial, &batches);
    for r in &gc {
        assert!(r.phases.freq_est > 0.0);
        assert!(r.phases.data_copy > 0.0);
        let fe = r.phases.fe_fraction();
        let dc = r.phases.dc_fraction();
        assert!(fe < 0.5, "FE fraction {fe:.2}");
        assert!(dc < 0.5, "DC fraction {dc:.2}");
    }
}

/// Simulated time scales roughly with batch size (Fig. 12's proportionality).
#[test]
fn time_scales_with_batch_size() {
    let (initial, _) = workload();
    let g = generate_social(&SocialConfig::new(14, 6, 0xBEEF));
    let stream = UpdateStream::generate(&g, StreamConfig::Fraction(0.10), 7);
    let small: Vec<Vec<EdgeUpdate>> =
        stream.batches(64).take(1).map(<[EdgeUpdate]>::to_vec).collect();
    let large: Vec<Vec<EdgeUpdate>> =
        stream.batches(512).take(1).map(<[EdgeUpdate]>::to_vec).collect();
    let c = cfg(&initial);
    let t_small: f64 = run(ZeroCopyEngine::new(c.clone()), &stream.initial, &small)
        .iter()
        .map(BatchResult::total_ms)
        .sum();
    let t_large: f64 = run(ZeroCopyEngine::new(c.clone()), &stream.initial, &large)
        .iter()
        .map(BatchResult::total_ms)
        .sum();
    let ratio = t_large / t_small;
    assert!(ratio > 2.0 && ratio < 40.0, "8x batch gave {ratio:.1}x time");
}

/// The RF engine's candidate index grows with the graph and persists.
#[test]
fn rf_index_memory_reported_and_persistent() {
    let (initial, batches) = workload();
    let mut engine = RapidFlowEngine::new(cfg(&initial));
    let mut p = Pipeline::new(initial.clone(), queries::q1());
    let r1 = p.process_batch(&mut engine, &batches[0]);
    let r2 = p.process_batch(&mut engine, &batches[1]);
    assert!(r1.aux_bytes > 0);
    // Candidate counts drift slightly across batches; the bitset part is
    // |V|-bound, so the footprint stays in the same ballpark.
    let ratio = r1.aux_bytes as f64 / r2.aux_bytes as f64;
    assert!((0.5..2.0).contains(&ratio), "index sizes: {} vs {}", r1.aux_bytes, r2.aux_bytes);
    // At least the bitsets: |Q| × |V| bits.
    let floor = queries::q1().num_vertices() * initial.num_vertices() / 8;
    assert!(r1.aux_bytes >= floor, "{} < {}", r1.aux_bytes, floor);
}

/// The UM page cache persists across batches: a repeated identical batch
/// faults (far) fewer pages than the first one.
#[test]
fn um_page_cache_warms_across_batches() {
    let (initial, _) = workload();
    let mut engine = UnifiedMemEngine::new(cfg(&initial));
    let mut p = Pipeline::new(initial.clone(), queries::q2());
    // Oscillate the same edge set so both batches touch the same pages.
    let edges: Vec<EdgeUpdate> =
        vec![EdgeUpdate::insert(1, 2000), EdgeUpdate::insert(2, 2001), EdgeUpdate::insert(3, 2002)];
    let deletes: Vec<EdgeUpdate> = edges.iter().map(|u| EdgeUpdate::delete(u.src, u.dst)).collect();
    let r1 = p.process_batch(&mut engine, &edges);
    let r2 = p.process_batch(&mut engine, &deletes);
    let r3 = p.process_batch(&mut engine, &edges);
    let f = |r: &BatchResult| {
        r.traffic.um_faults as f64 / (r.traffic.um_faults + r.traffic.um_hits).max(1) as f64
    };
    assert!(
        f(&r3) < f(&r1),
        "warm batch must fault less: {:.2} vs {:.2} (mid {:.2})",
        f(&r3),
        f(&r1),
        f(&r2)
    );
}

/// Work stealing never loses to static block assignment, and counts are
/// unchanged by the scheduling policy.
#[test]
fn work_stealing_at_least_matches_static() {
    let (initial, batches) = workload();
    let mut times = Vec::new();
    let mut counts = Vec::new();
    for policy in [gcsm_gpusim::Scheduling::WorkStealing, gcsm_gpusim::Scheduling::Static] {
        let mut c = cfg(&initial);
        c.scheduling = policy;
        let rs = run(ZeroCopyEngine::new(c), &initial, &batches);
        times.push(rs.iter().map(BatchResult::total_ms).sum::<f64>());
        counts.push(rs.iter().map(|r| r.matches).sum::<i64>());
    }
    assert_eq!(counts[0], counts[1]);
    assert!(times[0] <= times[1] * 1.001, "stealing {} vs static {}", times[0], times[1]);
}

/// Degree-ranked caching (Naive) must not beat the walk-guided cache on
/// clustered workloads — the paper's core claim.
#[test]
fn frequency_cache_beats_degree_cache() {
    let (initial, batches) = workload();
    let c = cfg(&initial);
    let nv = run(NaiveDegreeEngine::new(c.clone()), &initial, &batches);
    let gc = run(GcsmEngine::new(c.clone()), &initial, &batches);
    let nv_hits: f64 = nv.iter().map(|r| r.cache_hit_rate).sum::<f64>() / nv.len() as f64;
    let gc_hits: f64 = gc.iter().map(|r| r.cache_hit_rate).sum::<f64>() / gc.len() as f64;
    assert!(gc_hits > nv_hits, "hit rates: GCSM {gc_hits:.2} vs Naive {nv_hits:.2}");
}
