//! Property-based tests over the core invariants.

use gcsm_datagen::er::gnm;
use gcsm_graph::{CsrGraph, DynamicGraph, EdgeUpdate, UpdateOp};
use gcsm_matcher::{
    match_incremental, match_static, CsrSource, DriverOptions, DynSource, EnumeratorKind,
};
use gcsm_pattern::{compile_incremental, queries, PlanOptions};
use proptest::prelude::*;

/// Strategy: a random graph (by seed) and a list of raw update requests.
fn graph_and_updates() -> impl Strategy<Value = (u64, Vec<(u8, u8, bool)>)> {
    (0u64..1000, proptest::collection::vec((0u8..24, 0u8..24, any::<bool>()), 1..20))
}

fn apply_requests(g: &mut DynamicGraph, reqs: &[(u8, u8, bool)]) -> Vec<EdgeUpdate> {
    g.begin_batch();
    for &(a, b, insert) in reqs {
        let u = EdgeUpdate {
            src: a as u32,
            dst: b as u32,
            op: if insert { UpdateOp::Insert } else { UpdateOp::Delete },
        };
        g.apply(u);
    }
    g.seal_batch().applied
}

fn static_count(g: &CsrGraph, q: &gcsm_pattern::QueryGraph, opts: &DriverOptions) -> i64 {
    let src = CsrSource::new(g);
    match_static(&src, q, &g.edges().collect::<Vec<_>>(), opts).matches
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Eq. (1): incremental delta == from-scratch difference, arbitrary
    /// (possibly no-op, duplicate, self-loop) update requests included.
    #[test]
    fn delta_equals_recompute((seed, reqs) in graph_and_updates()) {
        let g0 = gnm(24, 70, seed);
        let mut g = DynamicGraph::from_csr(&g0);
        let applied = apply_requests(&mut g, &reqs);
        let q = queries::triangle();
        let opts = DriverOptions::default();
        let before = static_count(&g.old_to_csr(), &q, &opts);
        let after = static_count(&g.to_csr(), &q, &opts);
        let delta = {
            let src = DynSource::new(&g);
            match_incremental(&src, &q, &applied, &opts).matches
        };
        prop_assert_eq!(delta, after - before);
    }

    /// Reorganize is semantically a no-op: snapshots before/after agree.
    #[test]
    fn reorganize_preserves_graph((seed, reqs) in graph_and_updates()) {
        let g0 = gnm(24, 70, seed);
        let mut g = DynamicGraph::from_csr(&g0);
        apply_requests(&mut g, &reqs);
        let sealed_snapshot: Vec<_> = g.to_csr().edges().collect();
        g.reorganize();
        let clean_snapshot: Vec<_> = g.to_csr().edges().collect();
        prop_assert_eq!(sealed_snapshot, clean_snapshot);
        // And every list is sorted, tombstone-free.
        for v in 0..g.num_vertices() as u32 {
            let (raw, old_len) = g.raw_list(v);
            prop_assert_eq!(old_len, raw.len());
            prop_assert!(raw.windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// The two enumerators agree on arbitrary inputs.
    #[test]
    fn enumerators_agree((seed, reqs) in graph_and_updates()) {
        let g0 = gnm(24, 70, seed);
        let mut g = DynamicGraph::from_csr(&g0);
        let applied = apply_requests(&mut g, &reqs);
        let src = DynSource::new(&g);
        let q = queries::fig1_kite();
        let rec = match_incremental(&src, &q, &applied, &DriverOptions {
            enumerator: EnumeratorKind::Recursive, ..Default::default()
        });
        let stk = match_incremental(&src, &q, &applied, &DriverOptions {
            enumerator: EnumeratorKind::Stack, ..Default::default()
        });
        prop_assert_eq!(rec.matches, stk.matches);
        prop_assert_eq!(rec.intersect_ops, stk.intersect_ops);
    }

    /// Σ_i ΔM_i over the delta plans is invariant to which intersect
    /// algorithm runs (the kernels are interchangeable).
    #[test]
    fn intersect_algorithms_agree((seed, reqs) in graph_and_updates()) {
        use gcsm_matcher::IntersectAlgo;
        let g0 = gnm(24, 70, seed);
        let mut g = DynamicGraph::from_csr(&g0);
        let applied = apply_requests(&mut g, &reqs);
        let src = DynSource::new(&g);
        let q = queries::triangle();
        let counts: Vec<i64> = [IntersectAlgo::Merge, IntersectAlgo::Gallop, IntersectAlgo::Blocked]
            .iter()
            .map(|&algo| {
                match_incremental(&src, &q, &applied, &DriverOptions { algo, ..Default::default() })
                    .matches
            })
            .collect();
        prop_assert_eq!(counts[0], counts[1]);
        prop_assert_eq!(counts[1], counts[2]);
    }

    /// The Eq. (1) invariant on *randomly generated connected patterns* —
    /// not just the curated query set. Patterns of size 3–5 with random
    /// extra edges; random graphs; random insert/delete batches.
    #[test]
    fn delta_equals_recompute_random_patterns(
        (seed, reqs) in graph_and_updates(),
        n_pat in 3usize..6,
        extra_mask in 0u16..1024,
        sb in any::<bool>(),
    ) {
        // Build a random connected pattern: a path backbone + random chords.
        let mut edges: Vec<(usize, usize)> = (0..n_pat - 1).map(|i| (i, i + 1)).collect();
        let mut k = 0;
        for a in 0..n_pat {
            for b in (a + 2)..n_pat {
                if extra_mask & (1 << k) != 0 {
                    edges.push((a, b));
                }
                k += 1;
            }
        }
        let q = gcsm_pattern::QueryGraph::new("rand", n_pat, &edges);

        let g0 = gnm(20, 60, seed);
        let mut g = DynamicGraph::from_csr(&g0);
        let applied = apply_requests(&mut g, &reqs);
        let opts = DriverOptions {
            plan: PlanOptions { symmetry_break: sb },
            ..Default::default()
        };
        let before = static_count(&g.old_to_csr(), &q, &opts);
        let after = static_count(&g.to_csr(), &q, &opts);
        let delta = {
            let src = DynSource::new(&g);
            match_incremental(&src, &q, &applied, &opts).matches
        };
        prop_assert_eq!(delta, after - before, "pattern edges: {:?}", q.edges());
    }

    /// Plan count and view split: every delta plan reads old views for
    /// edges below its index and new views above, on every generated query.
    #[test]
    fn plan_views_follow_eq1(qi in 0usize..6) {
        let q = queries::all()[qi].clone();
        let plans = compile_incremental(&q, PlanOptions::default());
        prop_assert_eq!(plans.len(), q.num_edges());
        for (i, p) in plans.iter().enumerate() {
            for lvl in &p.levels {
                for c in &lvl.constraints {
                    let expect = if c.edge < i {
                        gcsm_pattern::ViewSel::Old
                    } else {
                        gcsm_pattern::ViewSel::New
                    };
                    prop_assert_eq!(c.view, expect);
                }
            }
        }
    }
}
