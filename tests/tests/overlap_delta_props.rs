//! Differential properties for the cross-batch resident cache and the
//! overlapped reorganize: for arbitrary update streams — insert-heavy,
//! delete-heavy, duplicates, no-op deletes — and any engine, the
//! overlapped pipeline with delta shipping must produce batch-for-batch
//! identical `matches` and an identical final graph vs. the serial
//! full-repack path. The two paths differ in *when* merge work happens
//! (off-thread, one batch late) and in *what* crosses the simulated PCIe
//! link (plan rows vs. a full pack); neither may change observable
//! results.

use gcsm::{EngineConfig, Pipeline};
use gcsm_bench::{make_engine, EngineKind};
use gcsm_datagen::er::gnm;
use gcsm_graph::{EdgeUpdate, UpdateOp};
use gcsm_pattern::queries;
use proptest::prelude::*;

/// One raw request: endpoints and an op-selector byte. Encoding the op as
/// a byte lets the strategy skew insert/delete ratios per case.
type Req = (u8, u8, u8);

/// Strategy: graph seed, raw requests, insert-bias threshold (0 =>
/// delete-only, 255 => insert-only), batch size, engine selector.
fn case() -> impl Strategy<Value = (u64, Vec<Req>, u8, usize, u8)> {
    (
        0u64..200,
        proptest::collection::vec((0u8..24, 0u8..24, any::<u8>()), 8..80),
        any::<u8>(),
        2usize..17,
        0u8..4,
    )
}

fn decode(reqs: &[Req], bias: u8) -> Vec<EdgeUpdate> {
    reqs.iter()
        .filter(|&&(a, b, _)| a != b)
        .map(|&(a, b, sel)| EdgeUpdate {
            src: a as u32,
            dst: b as u32,
            op: if sel <= bias { UpdateOp::Insert } else { UpdateOp::Delete },
        })
        .collect()
}

fn engine_kind(selector: u8) -> EngineKind {
    match selector {
        0 => EngineKind::Gcsm,
        1 => EngineKind::NaiveDegree,
        2 => EngineKind::ZeroCopy,
        _ => EngineKind::Cpu,
    }
}

/// Run a batched stream through one pipeline configuration and return the
/// per-batch ΔM sequence plus the final sealed graph's edge set.
fn run(
    kind: EngineKind,
    initial: &gcsm_graph::CsrGraph,
    batches: &[Vec<EdgeUpdate>],
    delta: bool,
    overlap: bool,
) -> (Vec<i64>, Vec<(u32, u32)>, i64) {
    let cfg = EngineConfig { delta_cache: delta, ..Default::default() };
    let mut engine = make_engine(kind, cfg);
    let mut pipeline = Pipeline::new(initial.clone(), queries::triangle());
    pipeline.set_overlap(overlap);
    let deltas: Vec<i64> =
        batches.iter().map(|b| pipeline.process_batch(engine.as_mut(), b).matches).collect();
    pipeline.flush();
    let ledger = pipeline.static_count(false);
    let final_edges: Vec<(u32, u32)> = pipeline.graph().to_csr().edges().collect();
    (deltas, final_edges, ledger)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline differential: overlap+delta vs. serial full-repack.
    #[test]
    fn overlap_delta_matches_serial((seed, reqs, bias, batch, esel) in case()) {
        let initial = gnm(24, 60, seed);
        let updates = decode(&reqs, bias);
        prop_assume!(!updates.is_empty());
        let batches: Vec<Vec<EdgeUpdate>> =
            updates.chunks(batch).map(<[EdgeUpdate]>::to_vec).collect();
        let kind = engine_kind(esel);

        let (ref_deltas, ref_edges, ref_count) =
            run(kind, &initial, &batches, false, false);
        let (deltas, edges, count) = run(kind, &initial, &batches, true, true);

        prop_assert_eq!(deltas, ref_deltas, "per-batch ΔM diverged for {}", kind.name());
        prop_assert_eq!(edges, ref_edges, "final graph diverged for {}", kind.name());
        prop_assert_eq!(count, ref_count, "final count diverged for {}", kind.name());
    }

    /// The two mechanisms are independent: each alone must also be
    /// invisible (a failure here pins which one broke the headline).
    #[test]
    fn each_mechanism_alone_matches_serial((seed, reqs, bias, batch, esel) in case()) {
        let initial = gnm(24, 60, seed);
        let updates = decode(&reqs, bias);
        prop_assume!(!updates.is_empty());
        let batches: Vec<Vec<EdgeUpdate>> =
            updates.chunks(batch).map(<[EdgeUpdate]>::to_vec).collect();
        let kind = engine_kind(esel);

        let reference = run(kind, &initial, &batches, false, false);
        let delta_only = run(kind, &initial, &batches, true, false);
        let overlap_only = run(kind, &initial, &batches, false, true);
        prop_assert_eq!(&delta_only, &reference, "delta-only diverged for {}", kind.name());
        prop_assert_eq!(&overlap_only, &reference, "overlap-only diverged for {}", kind.name());
    }
}

/// Deterministic cross-engine sweep: every engine, a delete-heavy stream
/// ending below the initial edge count, exercising tombstone-heavy merges
/// under the overlapped install.
#[test]
fn all_engines_survive_delete_heavy_overlap() {
    let initial = gnm(30, 120, 7);
    // Delete a large slice of the initial edges, then re-insert a few:
    // merges see mostly-tombstoned prefixes with short tails.
    let mut updates: Vec<EdgeUpdate> =
        initial.edges().take(90).map(|(a, b)| EdgeUpdate::delete(a, b)).collect();
    let back: Vec<EdgeUpdate> =
        updates.iter().take(12).map(|u| EdgeUpdate::insert(u.src, u.dst)).collect();
    updates.extend(back);
    let batches: Vec<Vec<EdgeUpdate>> = updates.chunks(16).map(<[EdgeUpdate]>::to_vec).collect();

    for kind in [
        EngineKind::Gcsm,
        EngineKind::NaiveDegree,
        EngineKind::ZeroCopy,
        EngineKind::UnifiedMem,
        EngineKind::Vsgm,
        EngineKind::Cpu,
        EngineKind::RapidFlow,
        EngineKind::Recompute,
    ] {
        let reference = run(kind, &initial, &batches, false, false);
        let combined = run(kind, &initial, &batches, true, true);
        assert_eq!(combined, reference, "{} diverged under overlap+delta", kind.name());
    }
}
