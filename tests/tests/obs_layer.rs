//! The observability layer end to end: zero-cost-when-disabled, Chrome
//! trace schema + nesting, exact metrics reconciliation with engine stats,
//! and the stream session's gauges/window spans.
//!
//! Every test that flips the process-global [`gcsm_obs::global`] handle
//! serializes on [`OBS_LOCK`] — the test harness runs this file's tests on
//! parallel threads within one process, and the obs state is process-wide.

use gcsm::prelude::*;
use gcsm_graph::{CsrGraph, EdgeUpdate};
use gcsm_pattern::queries;
use std::sync::Mutex;

static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Take the global-obs lock and start from a clean, disabled state.
fn obs_test() -> std::sync::MutexGuard<'static, ()> {
    let guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let obs = gcsm_obs::global();
    obs.disable();
    obs.reset();
    guard
}

fn setup() -> (CsrGraph, Vec<EdgeUpdate>) {
    let g0 = CsrGraph::from_edges(8, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (5, 6)]);
    let updates = vec![
        EdgeUpdate::insert(2, 4),
        EdgeUpdate::insert(3, 5),
        EdgeUpdate::delete(0, 1),
        EdgeUpdate::insert(4, 6),
        EdgeUpdate::insert(0, 7),
        EdgeUpdate::insert(1, 7),
    ];
    (g0, updates)
}

#[test]
fn disabled_obs_records_nothing_and_results_are_identical() {
    let _g = obs_test();
    let obs = gcsm_obs::global();
    let (g0, updates) = setup();

    let run = || {
        let mut p = Pipeline::new(g0.clone(), queries::triangle());
        let mut e = GcsmEngine::new(EngineConfig::default());
        updates.chunks(2).map(|b| p.process_batch(&mut e, b).matches).collect::<Vec<_>>()
    };

    let disabled = run();
    assert_eq!(obs.tracer.spans().0.len(), 0, "disabled run must record no spans");
    let snap = obs.registry.snapshot();
    for e in &snap.entries {
        match &e.value {
            gcsm_obs::MetricValue::Counter(v) => assert_eq!(*v, 0, "{} nonzero", e.name),
            gcsm_obs::MetricValue::Gauge(v) => assert_eq!(*v, 0, "{} nonzero", e.name),
            gcsm_obs::MetricValue::Histogram(h) => assert_eq!(h.count, 0, "{} nonzero", e.name),
        }
    }

    obs.enable();
    let enabled = run();
    obs.disable();
    assert_eq!(disabled, enabled, "instrumentation must not change results");
    assert!(!obs.tracer.spans().0.is_empty(), "enabled run must record spans");
    obs.reset();
}

#[test]
fn disabled_span_overhead_is_a_branch() {
    let _g = obs_test();
    let obs = gcsm_obs::global();
    const N: u64 = 1_000_000;

    // Disabled: each call is one relaxed load plus a no-op guard drop.
    let t0 = std::time::Instant::now();
    for _ in 0..N {
        let _s = gcsm_obs::span("batch", gcsm_obs::cat::PIPELINE);
    }
    let disabled = t0.elapsed();
    assert_eq!(obs.tracer.spans().0.len(), 0);

    // Enabled does strictly more work (two clock reads + a ring push under
    // a lock), so the disabled path must not be slower on average.
    obs.enable();
    let t1 = std::time::Instant::now();
    for _ in 0..N {
        let _s = gcsm_obs::span("batch", gcsm_obs::cat::PIPELINE);
    }
    let enabled = t1.elapsed();
    obs.disable();
    obs.reset();

    let disabled_ns = disabled.as_nanos() as f64 / N as f64;
    assert!(
        disabled_ns < 1_000.0,
        "disabled span costs {disabled_ns:.1} ns/op — more than a branch"
    );
    assert!(disabled <= enabled, "disabled path ({disabled:?}) slower than enabled ({enabled:?})");
}

/// Per-tid strict nesting + monotone starts, mirroring what Perfetto needs:
/// after sorting by (ts, dur desc), every span must close before the
/// enclosing one does.
fn assert_nested(events: &[(u64, u64, u64)]) {
    let mut by_tid: std::collections::BTreeMap<u64, Vec<(u64, u64)>> = Default::default();
    for &(tid, ts, dur) in events {
        by_tid.entry(tid).or_default().push((ts, dur));
    }
    for (tid, mut spans) in by_tid {
        spans.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut stack: Vec<(u64, u64)> = Vec::new();
        for (ts, dur) in spans {
            let end = ts + dur;
            while let Some(&(_, open_end)) = stack.last() {
                if ts >= open_end {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(open_ts, open_end)) = stack.last() {
                assert!(
                    end <= open_end,
                    "tid {tid}: span [{ts},{end}] overlaps enclosing [{open_ts},{open_end}]"
                );
            }
            stack.push((ts, end));
        }
    }
}

#[test]
fn chrome_trace_export_has_phases_and_nests() {
    let _g = obs_test();
    let obs = gcsm_obs::global();
    obs.enable();

    let (g0, updates) = setup();
    let mut p = Pipeline::new(g0, queries::triangle());
    let mut e = GcsmEngine::new(EngineConfig::default());
    for b in updates.chunks(2) {
        p.process_batch(&mut e, b);
    }
    let json = obs.tracer.to_chrome_json();
    obs.disable();
    obs.reset();

    let v = gcsm_obs::parse(&json).expect("trace JSON parses");
    let events = v.get("traceEvents").and_then(|e| e.as_arr()).expect("traceEvents array");
    assert!(!events.is_empty());

    let mut names = std::collections::BTreeSet::new();
    let mut intervals = Vec::new();
    for ev in events {
        assert_eq!(ev.get("ph").and_then(|p| p.as_str()), Some("X"), "complete events only");
        assert_eq!(ev.get("pid").and_then(|p| p.as_u64()), Some(1));
        let name = ev.get("name").and_then(|n| n.as_str()).expect("name");
        assert!(ev.get("cat").and_then(|c| c.as_str()).is_some(), "cat");
        let tid = ev.get("tid").and_then(|t| t.as_u64()).expect("tid");
        let ts = ev.get("ts").and_then(|t| t.as_u64()).expect("ts");
        let dur = ev.get("dur").and_then(|d| d.as_u64()).expect("dur");
        names.insert(name.to_string());
        intervals.push((tid, ts, dur));
    }
    for required in [
        "batch",
        "ingest",
        "seal",
        "delta_build",
        "freq_est",
        "data_copy",
        "matching",
        "dm_i",
        "merge",
        "reorganize",
    ] {
        assert!(names.contains(required), "missing phase '{required}' in {names:?}");
    }
    assert_nested(&intervals);
}

#[test]
fn metrics_reconcile_exactly_with_engine_stats() {
    let _g = obs_test();
    let obs = gcsm_obs::global();
    obs.enable();

    let (g0, updates) = setup();
    let mut p = Pipeline::new(g0, queries::triangle());
    let mut e = GcsmEngine::new(EngineConfig::default());
    let (mut ops, mut accesses, mut matches, mut batches) = (0u64, 0u64, 0i64, 0u64);
    for b in updates.chunks(2) {
        let r = p.process_batch(&mut e, b);
        ops += r.stats.intersect_ops;
        accesses += r.stats.list_accesses;
        matches += r.matches;
        batches += 1;
    }
    let snap = obs.registry.snapshot();
    obs.disable();
    obs.reset();

    assert_eq!(snap.counter("matcher.intersect_ops"), Some(ops));
    assert_eq!(snap.counter("matcher.list_accesses"), Some(accesses));
    assert_eq!(snap.gauge("matcher.matches"), Some(matches));
    assert_eq!(snap.counter("pipeline.batches"), Some(batches));
    assert_eq!(snap.histogram("pipeline.batch_wall_us").map(|h| h.count), Some(batches));
}

#[test]
fn stream_session_gauges_and_window_spans() {
    let _g = obs_test();
    let obs = gcsm_obs::global();
    obs.enable();

    let (g0, updates) = setup();
    let pipeline = Pipeline::new(g0, queries::triangle());
    let session = gcsm::stream::spawn_pipeline(
        pipeline,
        Box::new(GcsmEngine::new(EngineConfig::default())),
        0,
        gcsm::stream::StreamConfig { seal_policy: SealPolicy::Size(2), ..Default::default() },
    );
    assert_eq!(session.blocked_producers(), 0);
    assert_eq!(session.dropped_updates(), 0);
    let p = session.producer();
    for &u in &updates {
        assert!(p.ingest(u));
    }
    drop(p);
    let (report, _) = session.finish();

    let snap = obs.registry.snapshot();
    let (spans, _) = obs.tracer.spans();
    obs.disable();
    obs.reset();

    let sealed = report.batches.len() as u64;
    assert!(sealed >= 3, "expected several sealed batches, got {sealed}");
    assert_eq!(snap.counter("stream.batches_sealed"), Some(sealed));
    assert_eq!(snap.counter("stream.updates_admitted"), Some(updates.len() as u64));
    assert_eq!(snap.gauge("stream.dropped_updates"), Some(0));
    assert!(snap.gauge("stream.queue_depth").is_some());
    let windows = spans.iter().filter(|s| s.name == "window").count() as u64;
    assert_eq!(windows, sealed, "one window span per sealed batch");
    // Window spans sit on the stream category so traces group them.
    assert!(spans.iter().filter(|s| s.name == "window").all(|s| s.cat == gcsm_obs::cat::STREAM));
}

#[test]
fn metrics_json_round_trips_through_parser() {
    // Local registry: no global state, no lock needed.
    let reg = gcsm_obs::Registry::default();
    reg.counter("a.count").add(42);
    reg.gauge("b.gauge").set(-7);
    for v in [0u64, 1, 3, 900, 5000] {
        reg.histogram("c.hist").observe(v);
    }
    let json = reg.snapshot().to_json();
    let v = gcsm_obs::parse(&json).expect("metrics JSON parses");
    assert_eq!(v.get("a.count").and_then(|x| x.as_u64()), Some(42));
    assert_eq!(v.get("b.gauge").and_then(|x| x.as_i64()), Some(-7));
    let h = v.get("c.hist").expect("histogram object");
    assert_eq!(h.get("count").and_then(|x| x.as_u64()), Some(5));
    assert_eq!(h.get("sum").and_then(|x| x.as_u64()), Some(5904));
    let buckets = h.get("buckets").and_then(|b| b.as_arr()).expect("buckets");
    let total: u64 = buckets.iter().filter_map(|b| b.as_arr()).filter_map(|b| b[1].as_u64()).sum();
    assert_eq!(total, 5, "bucket counts cover every observation");
}
