//! Cross-crate correctness invariants.
//!
//! The load-bearing property of the whole system (Eq. (1) of the paper):
//! the incremental result of any engine equals the from-scratch difference
//! `match(G_{k+1}) − match(G_k)`, for any graph, batch, and pattern.

use gcsm::prelude::*;
use gcsm_baselines::recompute_delta;
use gcsm_datagen::er::gnm;
use gcsm_graph::{CsrGraph, DynamicGraph, EdgeUpdate};
use gcsm_matcher::DriverOptions;
use gcsm_pattern::{queries, QueryGraph};
use rand::{rngs::SmallRng, Rng, SeedableRng};

fn random_batch(g: &CsrGraph, k: usize, seed: u64) -> Vec<EdgeUpdate> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let existing: Vec<_> = g.edges().collect();
    let mut batch = Vec::new();
    let mut used = std::collections::HashSet::new();
    let mut guard = 0;
    while batch.len() < k && guard < 100 * k {
        guard += 1;
        if rng.gen_bool(0.4) && !existing.is_empty() {
            let &(a, b) = &existing[rng.gen_range(0..existing.len())];
            if used.insert((a, b)) {
                batch.push(EdgeUpdate::delete(a, b));
            }
        } else {
            let a = rng.gen_range(0..g.num_vertices() as u32);
            let b = rng.gen_range(0..g.num_vertices() as u32);
            let (a, b) = (a.min(b), a.max(b));
            if a != b && !g.has_edge(a, b) && used.insert((a, b)) {
                batch.push(EdgeUpdate::insert(a, b));
            }
        }
    }
    batch
}

fn all_engines(cfg: &EngineConfig) -> Vec<Box<dyn Engine>> {
    vec![
        Box::new(GcsmEngine::new(cfg.clone())),
        Box::new(ZeroCopyEngine::new(cfg.clone())),
        Box::new(UnifiedMemEngine::new(cfg.clone())),
        Box::new(VsgmEngine::new(cfg.clone())),
        Box::new(NaiveDegreeEngine::new(cfg.clone())),
        Box::new(CpuWcojEngine::new(cfg.clone())),
        Box::new(RapidFlowEngine::new(cfg.clone())),
    ]
}

/// Every engine must produce the recompute-from-scratch delta.
fn check_engines_against_recompute(q: &QueryGraph, n: usize, m: usize, seed: u64) {
    let g0 = gnm(n, m, seed);
    let batch = random_batch(&g0, 12, seed ^ 0xfeed);
    let cfg = EngineConfig::with_cache_budget(4 << 10); // small budget: force misses
    for mut engine in all_engines(&cfg) {
        let mut g = DynamicGraph::from_csr(&g0);
        let summary = g.apply_batch(&batch);
        let r = engine.match_sealed(&g, &summary.applied, q);
        let reference = recompute_delta(&g, q, &DriverOptions::default());
        assert_eq!(
            r.matches,
            reference,
            "{} wrong on {} (n={n}, m={m}, seed={seed})",
            engine.name(),
            q.name()
        );
    }
}

#[test]
fn engines_match_recompute_triangle() {
    for seed in 0..4 {
        check_engines_against_recompute(&queries::triangle(), 30, 120, seed);
    }
}

#[test]
fn engines_match_recompute_kite() {
    for seed in 0..3 {
        check_engines_against_recompute(&queries::fig1_kite(), 25, 90, seed);
    }
}

#[test]
fn engines_match_recompute_q1() {
    check_engines_against_recompute(&queries::q1(), 25, 110, 7);
}

#[test]
fn engines_match_recompute_q3_prism() {
    check_engines_against_recompute(&queries::q3(), 22, 100, 11);
}

/// Multi-batch streams: cumulative deltas must track the from-scratch
/// counts at every step, for every engine, through reorganisations.
#[test]
fn streamed_deltas_track_ground_truth() {
    let g0 = gnm(35, 150, 99);
    let q = queries::triangle();
    let cfg = EngineConfig::default();
    let n_batches = 5;

    // Precompute batches against the evolving graph.
    for mut engine in all_engines(&cfg) {
        let mut pipeline = Pipeline::new(g0.clone(), q.clone());
        let mut cumulative = 0i64;
        let mut rng_seed = 1000u64;
        for _ in 0..n_batches {
            let snapshot = pipeline.graph().to_csr();
            let batch = random_batch(&snapshot, 8, rng_seed);
            rng_seed += 1;
            let r = pipeline.process_batch(engine.as_mut(), &batch);
            cumulative += r.matches;
        }
        // Ground truth: static counts on first and final snapshots.
        let final_graph = pipeline.graph().to_csr();
        let opts = DriverOptions::default();
        let before = {
            let src = gcsm_matcher::CsrSource::new(&g0);
            gcsm_matcher::match_static(&src, &q, &g0.edges().collect::<Vec<_>>(), &opts).matches
        };
        let after = {
            let src = gcsm_matcher::CsrSource::new(&final_graph);
            gcsm_matcher::match_static(&src, &q, &final_graph.edges().collect::<Vec<_>>(), &opts)
                .matches
        };
        assert_eq!(cumulative, after - before, "{} drifts over stream", engine.name());
    }
}

/// Symmetry-broken (unique subgraph) counting keeps the invariant too, and
/// equals embeddings / |Aut|.
#[test]
fn symmetry_breaking_preserves_invariant() {
    let g0 = gnm(28, 140, 5);
    let batch = random_batch(&g0, 10, 55);
    let q = queries::triangle();
    let mut cfg = EngineConfig::default();
    cfg.plan.symmetry_break = true;
    let opts_sb = DriverOptions { plan: cfg.plan, ..Default::default() };

    let mut g = DynamicGraph::from_csr(&g0);
    let summary = g.apply_batch(&batch);
    let mut engine = GcsmEngine::new(cfg);
    let r = engine.match_sealed(&g, &summary.applied, &q);
    let reference_sb = recompute_delta(&g, &q, &opts_sb);
    assert_eq!(r.matches, reference_sb);

    // Embedding count = 6 × subgraph count for triangles.
    let reference_emb = recompute_delta(&g, &q, &DriverOptions::default());
    assert_eq!(reference_emb, 6 * reference_sb);
}

/// Labeled matching end to end.
#[test]
fn labeled_patterns_respected_by_engines() {
    let mut b = gcsm_graph::CsrBuilder::new(40);
    let mut rng = SmallRng::seed_from_u64(3);
    for _ in 0..200 {
        let x = rng.gen_range(0..40u32);
        let y = rng.gen_range(0..40u32);
        b.add_edge(x, y);
    }
    let labels: Vec<u16> = (0..40).map(|i| (i % 3) as u16).collect();
    b.set_labels(labels);
    let g0 = b.build();
    let q = QueryGraph::with_labels("lt", 3, &[(0, 1), (0, 2), (1, 2)], vec![0, 1, 2]);
    let batch = random_batch(&g0, 10, 77);

    let cfg = EngineConfig::default();
    let mut expected = None;
    for mut engine in all_engines(&cfg) {
        let mut g = DynamicGraph::from_csr(&g0);
        let summary = g.apply_batch(&batch);
        let r = engine.match_sealed(&g, &summary.applied, &q);
        match expected {
            None => {
                let reference = recompute_delta(&g, &q, &DriverOptions::default());
                assert_eq!(r.matches, reference, "{}", engine.name());
                expected = Some(r.matches);
            }
            Some(e) => assert_eq!(r.matches, e, "{}", engine.name()),
        }
    }
}
