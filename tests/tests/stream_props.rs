//! Property tests over the streaming subsystem: for *arbitrary* update
//! request sequences (duplicates, no-op deletes, self-loops, interleaved
//! ticks), any seal policy and any producer count,
//!
//! 1. the running ledger `count(G_0) + Σ ΔM` equals a from-scratch
//!    recount after **every** seal, and
//! 2. the concurrent session replays to exactly the serial reference.

use gcsm::stream::{
    replay_serial, Backpressure, SealPolicy, SequenceMode, StreamConfig, StreamEvent,
};
use gcsm::{EngineConfig, Pipeline};
use gcsm_bench::{make_engine, EngineKind};
use gcsm_datagen::er::gnm;
use gcsm_graph::{EdgeUpdate, UpdateOp};
use gcsm_pattern::queries;
use proptest::prelude::*;

/// One raw request: endpoints (possibly equal — a self-loop), the op, and
/// whether a logical tick follows it in the sequenced stream.
type Req = (u8, u8, bool, bool);

/// Strategy: graph seed, raw request sequence, seal-policy selector,
/// producer count.
fn stream_case() -> impl Strategy<Value = (u64, Vec<Req>, u8, usize)> {
    (
        0u64..500,
        proptest::collection::vec((0u8..20, 0u8..20, any::<bool>(), any::<bool>()), 1..60),
        0u8..3,
        1usize..5,
    )
}

fn build_events(reqs: &[Req]) -> Vec<(u64, StreamEvent)> {
    let mut events = Vec::new();
    for &(a, b, insert, tick) in reqs {
        let u = EdgeUpdate {
            src: a as u32,
            dst: b as u32,
            op: if insert { UpdateOp::Insert } else { UpdateOp::Delete },
        };
        events.push((events.len() as u64, StreamEvent::Update(u)));
        if tick {
            events.push((events.len() as u64, StreamEvent::Tick));
        }
    }
    events
}

fn pick_policy(selector: u8, n: usize) -> SealPolicy {
    match selector {
        0 => SealPolicy::Size(1 + n % 13),
        1 => SealPolicy::OnTick,
        _ => SealPolicy::SizeOrTick(1 + n % 17),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Invariant: `count(G_k) = count(G_0) + Σ_{i≤k} ΔM_i` at every seal,
    /// no matter how ill-formed the request stream is (coalescing and
    /// `DynamicGraph::apply` both only count what actually changed).
    #[test]
    fn ledger_matches_recount_at_every_seal((seed, reqs, selector, _producers) in stream_case()) {
        let g0 = gnm(20, 50, seed);
        let events = build_events(&reqs);
        let policy = pick_policy(selector, reqs.len());
        let mut pipeline = Pipeline::new(g0, queries::triangle());
        let mut engine = make_engine(EngineKind::Cpu, EngineConfig::with_cache_budget(64 << 10));
        let mut total = pipeline.static_count(false);
        let checks = replay_serial(&events, policy, |sealed| {
            let r = pipeline.process_batch(engine.as_mut(), &sealed.updates);
            total += r.matches;
            assert_eq!(
                total,
                pipeline.static_count(false),
                "ledger drifted at batch {} under {policy:?}",
                sealed.meta.batch_index,
            );
        });
        // Even with zero sealed batches (everything coalesced away) the
        // base must still be the truth.
        prop_assert_eq!(total, pipeline.static_count(false));
        prop_assert!(checks.len() <= events.len());
    }

    /// Invariant: the concurrent session with any producer count produces
    /// the serial reference's batches — same updates, same ΔM, same
    /// sequence spans — for every seal policy.
    #[test]
    fn concurrent_session_equals_serial_replay((seed, reqs, selector, producers) in stream_case()) {
        let g0 = gnm(20, 50, seed);
        let events = build_events(&reqs);
        let policy = pick_policy(selector, reqs.len());
        let cfg = EngineConfig::with_cache_budget(64 << 10);

        let mut serial_pipeline = Pipeline::new(g0.clone(), queries::triangle());
        let mut serial_engine = make_engine(EngineKind::Cpu, cfg.clone());
        let reference: Vec<(Vec<EdgeUpdate>, i64, u64, u64)> =
            replay_serial(&events, policy, |sealed| {
                let r = serial_pipeline.process_batch(serial_engine.as_mut(), &sealed.updates);
                (sealed.updates.clone(), r.matches, sealed.meta.first_seq, sealed.meta.last_seq)
            });

        let pipeline = Pipeline::new(g0, queries::triangle());
        let base = pipeline.static_count(false);
        let session = gcsm::stream::spawn_pipeline(
            pipeline,
            make_engine(EngineKind::Cpu, cfg),
            base,
            StreamConfig {
                seal_policy: policy,
                capacity: 64,
                backpressure: Backpressure::Block,
                mode: SequenceMode::Explicit,
            },
        );
        std::thread::scope(|s| {
            for p in 0..producers {
                let producer = session.producer();
                let events = &events;
                s.spawn(move || {
                    let mut i = p;
                    while i < events.len() {
                        let (seq, ev) = events[i];
                        match ev {
                            StreamEvent::Update(u) => producer.ingest_at(seq, u),
                            StreamEvent::Tick => producer.tick_at(seq),
                        };
                        i += producers;
                    }
                });
            }
        });
        let (report, processor) = session.finish();
        let got: Vec<(Vec<EdgeUpdate>, i64, u64, u64)> = report
            .batches
            .iter()
            .map(|b| {
                let m = b.result.stream.expect("stream meta");
                (b.updates.clone(), b.result.matches, m.first_seq, m.last_seq)
            })
            .collect();
        prop_assert_eq!(got, reference);
        // And the session's own ledger closes against a final recount.
        let final_total = report.batches.last().map(|b| b.running_total).unwrap_or(base);
        prop_assert_eq!(final_total, processor.into_pipeline().static_count(false));
    }
}
