//! Empirical validation of the Theorem-1 variance bound (Eq. (7)):
//!
//! `Var[C̃_v] ≤ (n−1)·|ΔE|·D^{n−2}·C_v`   (single walk; /M for M walks).
//!
//! We measure the empirical variance of the single-walk estimator over many
//! independent runs and check it against the analytic bound for every
//! vertex with a meaningful access count.

use gcsm_datagen::er::gnm;
use gcsm_freq::{estimate_naive, WalkParams};
use gcsm_graph::{DynamicGraph, EdgeUpdate};
use gcsm_matcher::{match_incremental, AccessCounter, DriverOptions, DynSource, RecordingSource};
use gcsm_pattern::{compile_incremental, queries, PlanOptions};

#[test]
fn empirical_variance_within_theorem1_bound() {
    // Fixture: small dense-ish graph + insert-only batch.
    let g0 = gnm(40, 160, 9);
    let mut g = DynamicGraph::from_csr(&g0);
    let batch: Vec<EdgeUpdate> = vec![
        EdgeUpdate::insert(0, 5),
        EdgeUpdate::insert(1, 7),
        EdgeUpdate::insert(2, 9),
        EdgeUpdate::insert(3, 11),
    ];
    let summary = g.apply_batch(&batch);
    let q = queries::triangle();
    let n = q.num_vertices();
    let d = g.max_degree_bound();

    // Oracle counts C_v.
    let src = DynSource::new(&g);
    let counter = AccessCounter::new(g.num_vertices());
    {
        let rec = RecordingSource::new(&src, &counter);
        match_incremental(&rec, &q, &summary.applied, &DriverOptions::default());
    }
    let truth = counter.to_vec();

    // Estimator samples. The estimator draws M walks per *plan*; with
    // walks = 1 each run is one walk per plan, and the per-plan estimates
    // sum — so the bound applies per plan; summing m plans multiplies the
    // bound by ≤ m (walks are independent). Use the conservative m× bound.
    let plans = compile_incremental(&q, PlanOptions::default());
    let m_plans = plans.len() as f64;
    let runs = 3000;
    let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(runs); g.num_vertices()];
    for r in 0..runs {
        let est = estimate_naive(
            &src,
            &plans,
            &summary.applied,
            d,
            &WalkParams { walks: 1, seed: 5000 + r as u64 },
        );
        for v in 0..g.num_vertices() {
            samples[v].push(est.freq[v]);
        }
    }

    // The seed set S has both orientations: |seeds| = 2|ΔE|.
    let delta_e = 2.0 * summary.applied.len() as f64;
    let mut checked = 0;
    for v in 0..g.num_vertices() {
        let c_v = truth[v] as f64;
        if c_v < 3.0 {
            continue;
        }
        let mean: f64 = samples[v].iter().sum::<f64>() / runs as f64;
        let var: f64 =
            samples[v].iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / runs as f64;
        let bound = m_plans * (n as f64 - 1.0) * delta_e * (d as f64).powi(n as i32 - 2) * c_v;
        // Allow 30% statistical slack on the empirical variance.
        assert!(
            var <= bound * 1.3,
            "v{v}: empirical var {var:.1} exceeds Theorem-1 bound {bound:.1} (C_v = {c_v})"
        );
        checked += 1;
    }
    assert!(checked >= 3, "fixture must exercise several hot vertices ({checked})");
}

#[test]
fn estimator_mean_tracks_oracle_at_scale_of_walks() {
    // Complements the unit test in gcsm-freq: with a healthy M the mean of
    // a single run is already close for the hottest vertex.
    let g0 = gnm(60, 240, 4);
    let mut g = DynamicGraph::from_csr(&g0);
    let batch = vec![EdgeUpdate::insert(0, 30), EdgeUpdate::insert(1, 31)];
    let summary = g.apply_batch(&batch);
    let q = queries::triangle();
    let src = DynSource::new(&g);
    let counter = AccessCounter::new(g.num_vertices());
    {
        let rec = RecordingSource::new(&src, &counter);
        match_incremental(&rec, &q, &summary.applied, &DriverOptions::default());
    }
    let ranked = counter.ranked();
    if ranked.is_empty() {
        return;
    }
    let (hot, c_hot) = ranked[0];
    let plans = compile_incremental(&q, PlanOptions::default());
    let est = gcsm_freq::estimate_merged(
        &src,
        &plans,
        &summary.applied,
        g.max_degree_bound(),
        &WalkParams { walks: 400_000, seed: 2 },
    );
    let rel = (est.freq[hot as usize] - c_hot as f64).abs() / c_hot as f64;
    assert!(rel < 0.4, "hottest vertex estimate off by {:.0}%", rel * 100.0);
}
