//! Small API-surface checks that don't fit the larger suites: display
//! impls, lookup misses, workload-cache determinism, config invariants.

use gcsm::prelude::*;
use gcsm_graph::{CsrGraph, EdgeUpdate};
use gcsm_pattern::{compile_static, explain_plan, queries, PlanOptions};

#[test]
fn plan_display_matches_explain() {
    let q = queries::triangle();
    let p = compile_static(&q, PlanOptions::default());
    assert_eq!(format!("{p}"), explain_plan(&p));
    assert!(format!("{q}").contains("triangle"));
}

#[test]
fn multi_result_lookup_miss_is_none() {
    let g0 = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
    let mut multi = MultiPipeline::new(g0)
        .register(queries::triangle(), Box::new(CpuWcojEngine::new(EngineConfig::default())));
    let r = multi.process_batch(&[EdgeUpdate::insert(0, 2)]);
    assert!(r.get("triangle").is_some());
    assert!(r.get("nonexistent").is_none());
}

#[test]
fn engine_names_are_distinct() {
    let cfg = EngineConfig::default();
    let engines: Vec<Box<dyn Engine>> = vec![
        Box::new(GcsmEngine::new(cfg.clone())),
        Box::new(ZeroCopyEngine::new(cfg.clone())),
        Box::new(UnifiedMemEngine::new(cfg.clone())),
        Box::new(VsgmEngine::new(cfg.clone())),
        Box::new(NaiveDegreeEngine::new(cfg.clone())),
        Box::new(CpuWcojEngine::new(cfg.clone())),
        Box::new(RapidFlowEngine::new(cfg.clone())),
        Box::new(RecomputeEngine::new(cfg.clone())),
    ];
    let mut names: Vec<&str> = engines.iter().map(|e| e.name()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), 8, "engine names must be unique: {names:?}");
}

#[test]
fn workload_cache_is_deterministic() {
    use gcsm_bench::Workload;
    use gcsm_datagen::Preset;
    let a = Workload::build(Preset::Amazon, 0.0625, 32, 2);
    let b = Workload::build(Preset::Amazon, 0.0625, 64, 1);
    // Same cached stream, different batching.
    assert_eq!(a.initial.num_edges(), b.initial.num_edges());
    let flat_a: Vec<_> = a.batches.iter().flatten().copied().take(64).collect();
    let flat_b: Vec<_> = b.batches.iter().flatten().copied().take(64).collect();
    assert_eq!(flat_a, flat_b, "batching must not change the stream");
}

#[test]
fn adaptive_constants_are_sane() {
    assert!(EngineConfig::ADAPTIVE_ALPHA > 0.0);
    assert!((0.0..1.0).contains(&EngineConfig::ADAPTIVE_CONFIDENCE));
    assert!(EngineConfig::ADAPTIVE_MAX_ROUNDS >= 1);
}

#[test]
fn batch_result_defaults_are_neutral() {
    let r = BatchResult::default();
    assert_eq!(r.matches, 0);
    assert_eq!(r.total_ms(), 0.0);
    assert_eq!(r.cache_hit_rate, 0.0);
}

#[test]
fn agm_bound_consistency_with_plan_depth() {
    // The AGM bound for a batch-restricted relation never exceeds the
    // full-relation bound — the inequality Eq. (2) encodes.
    use gcsm_pattern::{agm_bound, delta_bound};
    for q in queries::all() {
        let full = agm_bound(&q, &vec![1e5; q.num_edges()]);
        for i in 0..q.num_edges() {
            let d = delta_bound(&q, i, 1e2, 1e5);
            assert!(
                d <= full * 1.0001,
                "{} ΔM_{}: delta bound {d:.3e} exceeds full {full:.3e}",
                q.name(),
                i + 1
            );
        }
    }
}
