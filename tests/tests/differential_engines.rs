//! Cross-engine differential suite: stream the same randomized batch
//! sequence through every engine and assert the per-batch ΔM sequences
//! are identical. The engines differ wildly in *how* they read the graph
//! (cached DCSR, zero-copy, unified memory, k-hop copies, CPU WCOJ,
//! candidate indexes, full recomputation) — the counts they produce must
//! not.

use gcsm::stream::SealPolicy;
use gcsm_bench::{run_stream_cell, EngineKind, RunConfig, Workload};
use gcsm_datagen::Preset;
use gcsm_pattern::{queries, QueryGraph};

const ENGINES: [EngineKind; 8] = [
    EngineKind::Gcsm,
    EngineKind::ZeroCopy,
    EngineKind::UnifiedMem,
    EngineKind::Vsgm,
    EngineKind::NaiveDegree,
    EngineKind::Cpu,
    EngineKind::RapidFlow,
    EngineKind::Recompute,
];

fn differential(q: &QueryGraph, symmetry_break: bool) {
    let rc = RunConfig { scale: 0.0625, symmetry_break, ..Default::default() };
    let w = Workload::build(Preset::Amazon, rc.scale, 96, 3);
    let mut reference: Option<(String, Vec<i64>, Vec<i64>)> = None;
    for kind in ENGINES {
        let c = run_stream_cell(kind, &w, q, &rc, 3, SealPolicy::Size(64));
        assert!(
            c.matches_serial,
            "{} diverged from its serial replay on {}",
            kind.name(),
            q.name()
        );
        assert_eq!(
            c.final_total,
            c.static_total,
            "{} ledger drifted from recount on {}",
            kind.name(),
            q.name()
        );
        let deltas: Vec<i64> = c.batches.iter().map(|b| b.result.matches).collect();
        let totals: Vec<i64> = c.batches.iter().map(|b| b.running_total).collect();
        match &reference {
            None => reference = Some((kind.name().to_string(), deltas, totals)),
            Some((ref_name, ref_deltas, ref_totals)) => {
                assert_eq!(
                    &deltas,
                    ref_deltas,
                    "per-batch ΔM: {} vs {} on {}",
                    kind.name(),
                    ref_name,
                    q.name()
                );
                assert_eq!(&totals, ref_totals, "running totals diverged on {}", q.name());
            }
        }
    }
    let (_, deltas, _) = reference.unwrap();
    assert!(deltas.len() > 1, "need multiple batches to be a differential test");
    assert!(deltas.iter().any(|&d| d != 0), "stream never changed the count for {}", q.name());
}

#[test]
fn all_engines_agree_on_triangle() {
    differential(&queries::triangle(), false);
}

#[test]
fn all_engines_agree_on_q1() {
    differential(&queries::q1(), false);
}

#[test]
fn all_engines_agree_on_q2() {
    differential(&queries::q2(), false);
}

/// Same grid under symmetry breaking (unique-subgraph counting), the mode
/// motif counts use.
#[test]
fn all_engines_agree_on_unique_triangles() {
    differential(&queries::triangle(), true);
}
