//! Multi-query differential suite: `MultiPipeline` over k registered
//! queries must report, per batch and per query, exactly what k
//! independent single-query `Pipeline`s report on the same stream — the
//! shared seal/reorganize and the per-query engine loop are an execution
//! optimization, never a semantic one. Exercised across the delta-cache
//! and overlapped-reorganize configuration grid, since those paths
//! reorder *when* work happens.

use gcsm::{EngineConfig, GcsmEngine, MultiPipeline, Pipeline};
use gcsm_datagen::{er::gnm, StreamConfig, UpdateStream};
use gcsm_graph::EdgeUpdate;
use gcsm_pattern::{queries, QueryGraph};

fn query_set() -> Vec<QueryGraph> {
    vec![queries::triangle(), queries::fig1_kite(), queries::q1()]
}

/// Per-query per-batch ΔM from k independent pipelines.
fn independent(
    initial: &gcsm_graph::CsrGraph,
    batches: &[&[EdgeUpdate]],
    cfg: &EngineConfig,
    overlap: bool,
) -> Vec<Vec<i64>> {
    query_set()
        .into_iter()
        .map(|q| {
            let mut engine = GcsmEngine::new(cfg.clone());
            let mut p = Pipeline::new(initial.clone(), q);
            p.set_overlap(overlap);
            let deltas = batches.iter().map(|b| p.process_batch(&mut engine, b).matches).collect();
            p.flush();
            deltas
        })
        .collect()
}

/// Per-query per-batch ΔM from one MultiPipeline over the same queries.
fn multiplexed(
    initial: &gcsm_graph::CsrGraph,
    batches: &[&[EdgeUpdate]],
    cfg: &EngineConfig,
    overlap: bool,
) -> Vec<Vec<i64>> {
    let mut mp = MultiPipeline::new(initial.clone());
    for q in query_set() {
        mp = mp.register(q, Box::new(GcsmEngine::new(cfg.clone())));
    }
    mp.set_overlap(overlap);
    let mut per_query: Vec<Vec<i64>> = vec![Vec::new(); mp.num_queries()];
    for b in batches {
        let r = mp.process_batch(b);
        for (qi, (_, br)) in r.per_query.iter().enumerate() {
            per_query[qi].push(br.matches);
        }
    }
    mp.flush();
    per_query
}

/// The full {delta_cache} × {overlap} grid on a shared ER stream.
#[test]
fn multi_pipeline_equals_independent_pipelines() {
    let base = gnm(384, 3072, 31);
    let stream = UpdateStream::generate(&base, StreamConfig::Fraction(0.25), 41);
    let batches: Vec<&[EdgeUpdate]> = stream.updates.chunks(128).collect();
    let budget = stream.initial.adjacency_bytes();
    for delta_cache in [false, true] {
        for overlap in [false, true] {
            let cfg = EngineConfig { delta_cache, ..EngineConfig::with_cache_budget(budget) };
            let expect = independent(&stream.initial, &batches, &cfg, overlap);
            let got = multiplexed(&stream.initial, &batches, &cfg, overlap);
            assert_eq!(
                got, expect,
                "per-query ΔM diverges (delta_cache={delta_cache}, overlap={overlap})"
            );
        }
    }
}

/// Final-graph agreement: after a full stream plus a drain of the
/// deferred reorganize, the multiplexed host graph is edge-identical to
/// a single-query pipeline's.
#[test]
fn multi_pipeline_final_graph_matches_single() {
    let base = gnm(256, 2048, 7);
    let stream = UpdateStream::generate(&base, StreamConfig::Fraction(0.3), 13);
    let batches: Vec<&[EdgeUpdate]> = stream.updates.chunks(96).collect();
    let cfg = EngineConfig::with_cache_budget(stream.initial.adjacency_bytes());

    let mut mp = MultiPipeline::new(stream.initial.clone());
    for q in query_set() {
        mp = mp.register(q, Box::new(GcsmEngine::new(cfg.clone())));
    }
    mp.set_overlap(true);
    let mut engine = GcsmEngine::new(cfg);
    let mut single = Pipeline::new(stream.initial.clone(), queries::triangle());
    for b in &batches {
        mp.process_batch(b);
        single.process_batch(&mut engine, b);
    }
    mp.flush();
    let a: Vec<_> = mp.graph().to_csr().edges().collect();
    let b: Vec<_> = single.graph().to_csr().edges().collect();
    assert_eq!(a, b, "multiplexed host graph drifted from the single-query pipeline's");
}
